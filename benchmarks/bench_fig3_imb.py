"""Regenerate Figure 3: IMB Allreduce / Bcast latency."""

from repro.core import run_experiment
from repro.imb import ImbBenchmark
from repro.machines import BGP, XT4_QC


def test_fig3_render(benchmark, save_artifact):
    text = benchmark(run_experiment, "fig3")
    save_artifact("fig3", text)
    assert "Allreduce" in text and "Bcast" in text


def test_fig3a_precision_effect(benchmark):
    """'a substantial performance benefit to using double precision
    over single precision on the BG/P but not the Cray XT'."""

    def ratios():
        out = {}
        for m in (BGP, XT4_QC):
            b = ImbBenchmark(m)
            d = b.size_sweep("allreduce", 8192, [32768], "float64")[0]
            s = b.size_sweep("allreduce", 8192, [32768], "float32")[0]
            out[m.name] = s.latency_us / d.latency_us
        return out

    r = benchmark(ratios)
    assert r["BG/P"] > 2.0
    assert 0.9 < r["XT4/QC"] < 1.1


def test_fig3b_allreduce_scalability(benchmark):
    """'the BG/P's double precision Allreduce scalability was
    exceptional across the tested range of process counts'."""

    def growth():
        out = {}
        for m in (BGP, XT4_QC):
            pts = ImbBenchmark(m).process_sweep("allreduce", 32768)
            out[m.name] = pts[-1].latency_us / pts[0].latency_us
        return out

    g = benchmark(growth)
    assert g["BG/P"] < 1.5  # flat: the tree depth barely grows
    assert g["BG/P"] < g["XT4/QC"]


def test_fig3cd_bcast_dominance(benchmark):
    """'the BG/P dramatically outperforms the Cray XT for all message
    sizes showing the benefit of the special-purpose tree network'."""

    def factors():
        out = []
        for nbytes in (4, 1024, 32768, 1048576):
            b = ImbBenchmark(BGP).size_sweep("bcast", 8192, [nbytes])[0]
            x = ImbBenchmark(XT4_QC).size_sweep("bcast", 8192, [nbytes])[0]
            out.append(x.latency_us / b.latency_us)
        return out

    fs = benchmark(factors)
    assert all(f > 2.0 for f in fs)
