"""Ablation benches: which design choices carry which results.

DESIGN.md calls out the load-bearing mechanisms of the reproduction;
each ablation removes one and shows the corresponding paper result
collapse, confirming the result comes from the mechanism rather than
from calibration:

* the collective **tree network** carries the Fig. 3 broadcast win and
  the allreduce precision effect;
* the **barrier network** carries the microsecond barriers;
* **allocation fragmentation** carries the XT's PTRANS variability
  (Fig. 1c);
* the **Chronopoulos-Gear** reduction fusion carries the XT barotropic
  relief (Fig. 4);
* **OpenMP efficiency** carries CAM's hybrid-mode advantage (Fig. 5).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.machines import BGP, XT4_QC
from repro.simmpi import CostModel
from repro.kernels import PtransModel
from repro.apps.pop import PopModel, CG_SIGNATURE, CHRONGEAR_SIGNATURE
from repro.apps.cam import CamModel, SPECTRAL_T85
from repro.simengine import make_rng


def _bgp_without_tree():
    """BG/P with the collective tree (and barrier) hardware deleted."""
    return replace(BGP, name="BG/P", tree=None)


def test_ablate_tree_network_bcast(benchmark):
    """Without the tree, BG/P broadcast falls to software-binomial cost
    and the Fig. 3c dominance disappears."""

    def run():
        p, nbytes = 8192, 32 * 1024
        with_tree = CostModel(BGP, "VN", p).bcast_time(nbytes)
        without = CostModel(_bgp_without_tree(), "VN", p).bcast_time(nbytes)
        xt = CostModel(XT4_QC, "VN", p).bcast_time(nbytes)
        return with_tree, without, xt

    with_tree, without, xt = benchmark(run)
    assert with_tree < xt / 2  # the paper's result...
    assert without > xt / 2  # ...is gone without the tree


def test_ablate_tree_network_allreduce_precision(benchmark):
    """The float64-vs-float32 allreduce gap is entirely the tree ALU."""

    def run():
        p, nbytes = 1024, 32 * 1024
        bare = CostModel(_bgp_without_tree(), "VN", p)
        return (
            bare.allreduce_time(nbytes, "float64"),
            bare.allreduce_time(nbytes, "float32"),
        )

    f64, f32 = benchmark(run)
    assert f64 == pytest.approx(f32, rel=0.05)  # no tree, no effect


def test_ablate_barrier_network(benchmark):
    """Microsecond barriers need the dedicated interrupt tree."""

    def run():
        p = 8192
        return (
            CostModel(BGP, "VN", p).barrier_time(),
            CostModel(_bgp_without_tree(), "VN", p).barrier_time(),
        )

    hw, sw = benchmark(run)
    assert hw < 10e-6
    assert sw > 5 * hw


def test_ablate_fragmentation(benchmark):
    """Quiet (unfragmented) allocations erase the XT's PTRANS spread."""

    def run():
        rng = make_rng(21)
        model = PtransModel(XT4_QC)
        busy = [model.run(1024, rng=rng, utilization=0.7).gb_per_s for _ in range(6)]
        quiet = [model.run(1024, rng=rng, utilization=0.0).gb_per_s for _ in range(6)]
        return np.ptp(busy) / np.mean(busy), np.ptp(quiet) / np.mean(quiet)

    busy_spread, quiet_spread = benchmark(run)
    assert busy_spread > 0.01
    assert quiet_spread == 0.0


def test_ablate_chrongear(benchmark):
    """One fused reduction halves the XT's latency-bound barotropic
    cost at scale — the mechanism the solver variant exists for."""

    def run():
        pop = PopModel(XT4_QC)
        cg = pop.run(22500, solver=CG_SIGNATURE).barotropic_s_per_day
        ch = pop.run(22500, solver=CHRONGEAR_SIGNATURE).barotropic_s_per_day
        return cg, ch

    cg, ch = benchmark(run)
    assert ch < 0.8 * cg


def test_ablate_openmp_efficiency(benchmark):
    """CAM's hybrid advantage needs reasonable thread efficiency: with
    the OpenMP discount deepened to ~0, hybrid loses its edge."""
    from repro.apps.cam import model as cam_model

    def run():
        cm = CamModel(BGP, SPECTRAL_T85)
        normal = cm.run(2048, hybrid=True).syd
        saved = cam_model.OPENMP_EFFICIENCY
        try:
            cam_model.OPENMP_EFFICIENCY = 0.01
            crippled = cm.run(2048, hybrid=True).syd
        finally:
            cam_model.OPENMP_EFFICIENCY = saved
        mpi = cm.run(2048, hybrid=False).syd
        return normal, crippled, mpi

    normal, crippled, mpi = benchmark(run)
    assert normal > 1.5 * mpi  # the paper's hybrid benefit
    assert crippled < 1.2 * mpi  # gone without thread efficiency
