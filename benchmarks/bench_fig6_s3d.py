"""Regenerate Figure 6: S3D weak-scaling cost."""

from repro.core import run_experiment
from repro.apps.s3d import S3dModel, pressure_wave_demo
from repro.machines import BGP, BGL, XT3, XT4_DC, XT4_QC


def test_fig6_render(benchmark, save_artifact):
    text = benchmark(run_experiment, "fig6")
    save_artifact("fig6", text)
    assert "core-hours per grid point per step" in text


def test_fig6_weak_scaling_flat(benchmark):
    """'S3D exhibits excellent parallel performance on several
    architectures and can scale efficiently to a large fraction of the
    processors available'."""

    def run():
        out = {}
        for m in (BGP, BGL, XT3, XT4_DC, XT4_QC):
            model = S3dModel(m)
            curve = [r.core_hours_per_point_step for r in model.weak_scaling([1, 64, 4096])]
            out[m.name] = max(curve) / min(curve)
        return out

    spreads = benchmark(run)
    assert all(s < 1.25 for s in spreads.values())


def test_fig6_platform_ordering(benchmark):
    """Per-point cost ordering across the five platforms."""

    def run():
        return {
            m.name: S3dModel(m).run(512).core_hours_per_point_step
            for m in (BGP, BGL, XT3, XT4_DC, XT4_QC)
        }

    costs = benchmark(run)
    assert costs["BG/L"] > costs["BG/P"] > costs["XT4/QC"]
    assert costs["XT3"] > costs["XT4/QC"]


def test_fig6_pressure_wave_problem(benchmark):
    """The actual test problem integrates correctly (mass conserved,
    Gaussian splits into two travelling waves)."""
    d = benchmark(pressure_wave_demo)
    assert d["mass_error"] < 1e-10
    assert 0.35 < d["peak_ratio"] < 0.65
