"""Shared fixtures for the figure/table regeneration benches.

Each bench regenerates one paper artifact under pytest-benchmark timing
and writes the rendered text to ``benchmarks/output/<id>.txt`` so the
reproduction is inspectable after a run.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Callable: save_artifact(experiment_id, text)."""

    def _save(experiment_id: str, text: str) -> pathlib.Path:
        path = artifact_dir / f"{experiment_id}.txt"
        path.write_text(text)
        return path

    return _save
