"""Shared fixtures for the figure/table regeneration benches.

Each bench regenerates one paper artifact under pytest-benchmark timing
and writes the rendered text to ``benchmarks/output/<id>.txt`` so the
reproduction is inspectable after a run.

Like ``tests/conftest.py``, puts ``src/`` on ``sys.path`` ahead of any
installed copy, so the bench scripts run identically standalone
(``python -m pytest benchmarks/bench_x.py``) and under the harness
(``repro bench run --scripts``) — no ``PYTHONPATH`` required.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Callable: save_artifact(experiment_id, text)."""

    def _save(experiment_id: str, text: str) -> pathlib.Path:
        path = artifact_dir / f"{experiment_id}.txt"
        path.write_text(text)
        return path

    return _save
