"""Regenerate Figure 8: LAMMPS and AMBER/PMEMD on RuBisCO."""

from repro.core import run_experiment
from repro.apps.md import LammpsModel, PmemdModel
from repro.machines import BGP, XT3, XT4_DC


def test_fig8_render(benchmark, save_artifact):
    text = benchmark(run_experiment, "fig8")
    save_artifact("fig8", text)
    assert "LAMMPS" in text and "PMEMD" in text and "290,220" in text


def test_fig8_generational_improvement(benchmark):
    """'subsequent generations of the systems ... result in performance
    improvements for applications particularly on large number of MPI
    tasks'."""

    def run():
        return {
            m.name: LammpsModel(m).run(2048).ns_per_day
            for m in (XT3, XT4_DC)
        }

    rates = benchmark(run)
    assert rates["XT4/DC"] > rates["XT3"]


def test_fig8_bgp_efficiency(benchmark):
    """'The collective network of the BG/P results in relatively higher
    parallel efficiencies' (LAMMPS rides the tree for its per-step
    reductions)."""

    def run():
        out = {}
        for m in (BGP, XT4_DC):
            model = LammpsModel(m)
            out[m.name] = model.run(4096).speedup_vs(model.run(64)) / 64
        return out

    eff = benchmark(run)
    assert eff["BG/P"] > eff["XT4/DC"]


def test_fig8_pmemd_limited(benchmark):
    """'PMEMD scaling is limited due to higher rate of increase in
    communication volume per MPI task ... and higher output
    frequencies.'"""

    def run():
        out = {}
        for Model in (LammpsModel, PmemdModel):
            model = Model(XT4_DC)
            out[Model.code] = model.run(4096).speedup_vs(model.run(64)) / 64
        return out

    eff = benchmark(run)
    assert eff["LAMMPS"] > eff["PMEMD"]
