"""Regenerate Figure 2: the HALO benchmark panels."""

from repro.core import run_experiment
from repro.halo import HaloBenchmark, PROTOCOLS
from repro.machines import BGP
from repro.topology import PAPER_FIG2_MAPPINGS


def test_fig2_render(benchmark, save_artifact):
    # Routing 8192-core grids across 8 mappings is the expensive part;
    # one timed round is plenty.
    text = benchmark.pedantic(run_experiment, args=("fig2",), rounds=1, iterations=1)
    save_artifact("fig2", text)
    for panel in "abcdef":
        assert f"Figure 2({panel})" in text


def test_fig2ab_protocol_insensitivity(benchmark):
    """Fig. 2a/b: protocol choice is a minor effect."""

    def spread():
        hb = HaloBenchmark(BGP, grid=(32, 32), mode="VN", mapping="TXYZ")
        out = []
        for w in (8, 2048):
            times = [hb.time_analytic(w, p) for p in PROTOCOLS]
            out.append(max(times) / min(times))
        return out

    spreads = benchmark(spread)
    assert all(s < 2.5 for s in spreads)


def test_fig2cd_mapping_sensitivity(benchmark):
    """Fig. 2c/d: mappings diverge only at large halo volumes."""

    def spreads():
        small, big = [], []
        for m in PAPER_FIG2_MAPPINGS:
            hb = HaloBenchmark(BGP, grid=(64, 64), mode="VN", mapping=m)
            small.append(hb.time_analytic(4))
            big.append(hb.time_analytic(50000))
        return max(small) / min(small), max(big) / min(big)

    small_spread, big_spread = benchmark.pedantic(spreads, rounds=1, iterations=1)
    assert small_spread < 1.5  # "unimportant for small halo volumes"
    assert big_spread > 2.0  # "important for larger volumes"


def test_fig2ef_grid_size_scalability(benchmark):
    """Fig. 2e/f: cost does not grow with the processor grid —
    'good scalability for the halo operator'."""

    def best_times():
        out = []
        for grid in ((16, 16), (32, 32), (64, 64)):
            benches = [
                HaloBenchmark(BGP, grid, mode="VN", mapping=m)
                for m in PAPER_FIG2_MAPPINGS
            ]
            out.append(min(hb.time_analytic(2048) for hb in benches))
        return out

    times = benchmark.pedantic(best_times, rounds=1, iterations=1)
    assert max(times) < 3 * min(times)
