"""Regenerate Table 1: the system configuration summary."""

from repro.core import run_experiment


def test_table1_config(benchmark, save_artifact):
    text = benchmark(run_experiment, "table1")
    save_artifact("table1", text)
    # The five systems of the paper, in its column order.
    for name in ("BG/L", "BG/P", "XT3", "XT4/DC", "XT4/QC"):
        assert name in text
    # Signature Table 1 values.
    assert "13.6" in text  # BG/P peak GF/node and memory bandwidth
    assert "850" in text  # BG/P clock
