"""Regenerate Figure 7: GYRO strong and weak scaling."""

import pytest

from repro.core import run_experiment
from repro.apps.gyro import GyroModel, B1_STD, B3_GTC, B3_GTC_MODIFIED
from repro.machines import BGP, BGL, XT4_QC


def test_fig7_render(benchmark, save_artifact):
    text = benchmark(run_experiment, "fig7")
    save_artifact("fig7", text)
    assert "B1-std" in text and "B3-gtc" in text


def test_fig7a_b1_strong_scaling(benchmark):
    """'the XT4 quickly runs out of work per process as the process
    count increases, while the BG/P system continues to scale'."""

    def run():
        out = {}
        for m in (BGP, XT4_QC):
            g = GyroModel(m, B1_STD)
            base = g.run(16)
            out[m.name] = g.run(2048).speedup_vs(base) / (2048 / 16)
        return out

    eff = benchmark(run)
    assert eff["BG/P"] > 0.7
    assert eff["XT4/QC"] < eff["BG/P"] - 0.15


def test_fig7b_b3_scaling_and_dual_mode(benchmark):
    """'both the XT4 and BG/P scaled up to 2048 processes without any
    significant drop in efficiency ... on BG/P the code had to be run
    in "DUAL" mode due to memory requirements'."""

    def run():
        out = {}
        for m in (BGP, XT4_QC):
            g = GyroModel(m, B3_GTC)
            r = g.run(2048)
            out[m.name] = (r.speedup_vs(g.run(64)) / 32, r.mode)
        return out

    data = benchmark(run)
    assert data["BG/P"][0] > 0.75 and data["XT4/QC"][0] > 0.75
    assert data["BG/P"][1] == "DUAL"
    assert data["XT4/QC"][1] == "VN"


def test_fig7c_weak_scaling_bgp_vs_bgl(benchmark):
    """'the BG/P and BG/L numbers are almost the same'."""

    def run():
        out = {}
        for m in (BGP, BGL):
            g = GyroModel(m, B3_GTC_MODIFIED)
            out[m.name] = [
                r.seconds_per_step for r in g.weak_scaling([64, 256, 1024])
            ]
        return out

    data = benchmark(run)
    for b, l in zip(data["BG/P"], data["BG/L"]):
        assert b == pytest.approx(l, rel=0.25)
