"""Regenerate Figure 5: CAM performance."""

import pytest

from repro.core import run_experiment
from repro.apps.cam import (
    CamModel,
    SPECTRAL_T42,
    SPECTRAL_T85,
    FV_1_9x2_5,
    FV_0_47x0_63,
)
from repro.machines import BGP, XT3, XT4_QC


def test_fig5_render(benchmark, save_artifact):
    text = benchmark(run_experiment, "fig5")
    save_artifact("fig5", text)
    for panel in "abcd":
        assert f"Figure 5({panel})" in text


def test_fig5ab_hybrid_extends_scaling(benchmark):
    """'OpenMP parallelism does enhance performance and scalability,
    and is an important enhancement for the BG/P over the BG/L'."""

    def run():
        out = {}
        for bmk in (SPECTRAL_T42, SPECTRAL_T85, FV_1_9x2_5):
            cm = CamModel(BGP, bmk)
            cores = bmk.mpi_rank_limit * 4
            out[bmk.name] = (
                cm.run(cores, hybrid=True).syd,
                cm.run(cores, hybrid=False).syd,
            )
        return out

    data = benchmark(run)
    for hybrid, mpi in data.values():
        assert hybrid > 1.5 * mpi


def test_fig5c_spectral_factors(benchmark):
    """'the BG/P is never less than a factor of 2.1 slower than the XT3
    and 3.1 slower than the XT4 for the spectral Eulerian problems'."""

    def run():
        out = []
        for bmk in (SPECTRAL_T42, SPECTRAL_T85):
            for cores in (32, 64):
                b = CamModel(BGP, bmk).run(cores).syd
                out.append(
                    (
                        CamModel(XT3, bmk).run(cores).syd / b,
                        CamModel(XT4_QC, bmk).run(cores).syd / b,
                    )
                )
        return out

    factors = benchmark(run)
    for xt3_f, xt4_f in factors:
        assert xt3_f >= 2.05
        assert xt4_f >= 3.0


def test_fig5d_fv_factors(benchmark):
    """'the XT4 advantage is between a factor of 2 and 2.5 and XT3
    advantage is less than a factor of 2' for the finite volume dycore."""

    def run():
        b = CamModel(BGP, FV_1_9x2_5).run(128).syd
        return (
            CamModel(XT3, FV_1_9x2_5).run(128).syd / b,
            CamModel(XT4_QC, FV_1_9x2_5).run(128).syd / b,
        )

    xt3_f, xt4_f = benchmark(run)
    assert xt3_f < 2.0
    assert 1.9 <= xt4_f <= 2.6


def test_fig5b_large_fv_memory_failure(benchmark):
    """'runtime (memory) problems are preventing the pure MPI runs for
    the FV 0.47x0.63 L26 benchmark from completing'."""

    def run():
        cm = CamModel(BGP, FV_0_47x0_63)
        try:
            cm.run(2048, hybrid=False)
            return False
        except MemoryError:
            return cm.run(2048, hybrid=True).syd > 0

    assert benchmark(run)
