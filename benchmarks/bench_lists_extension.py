"""Extension bench: June-2008 list placement and density (Sections I, II.C)."""

import pytest

from repro.core import run_experiment
from repro.machines import BGP, XT3, footprint_for_peak, density_ratio
from repro.power import place_configuration


def test_lists_render(benchmark, save_artifact):
    text = benchmark(run_experiment, "lists")
    save_artifact("lists", text)
    assert "TOP500" in text and "cores/rack" in text


def test_eugene_list_standing(benchmark):
    """Section II.C: '#74 on the June 2008 TOP500' and 'fifth overall
    on the Green500 List'."""
    pl = benchmark(place_configuration, BGP, 8192)
    assert abs(pl.top500_rank - 74) <= 5
    assert abs(pl.green500_rank - 5) <= 2


def test_density_headline(benchmark):
    """Section I.A: 21x the XT3's core density; 72 racks to a PFlop."""

    def run():
        return density_ratio(BGP, XT3), footprint_for_peak(BGP, 1000.0).racks

    ratio, racks = benchmark(run)
    assert ratio == pytest.approx(4096 / 192)
    assert racks == 72
