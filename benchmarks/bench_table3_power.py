"""Regenerate Table 3: the power comparison."""

import pytest

from repro.core import run_experiment
from repro.machines import BGP, XT4_QC, hpl_mflops_per_watt
from repro.power import build_table3


def test_table3_render(benchmark, save_artifact):
    text = benchmark.pedantic(run_experiment, args=("table3",), rounds=1, iterations=1)
    save_artifact("table3", text)
    assert "Power Comparison" in text
    assert "MFlops/W" in text


def test_table3_values(benchmark):
    """Every derived Table 3 quantity within tolerance of the paper."""

    def run():
        return {c.machine: c for c in build_table3([BGP, XT4_QC])}

    cols = benchmark.pedantic(run, rounds=1, iterations=1)
    b, x = cols["BG/P"], cols["XT4/QC"]
    # paper values in comments
    assert b.hpl_power_kw == pytest.approx(63, rel=0.02)  # 63
    assert x.hpl_power_kw == pytest.approx(1580, rel=0.01)  # 1580
    assert b.mflops_per_watt == pytest.approx(347.6, rel=0.02)  # 347.6
    assert x.mflops_per_watt == pytest.approx(129.7, rel=0.02)  # 129.7
    assert b.pop_syd_at_8192 == pytest.approx(3.6, rel=0.08)  # 3.6
    assert x.pop_syd_at_8192 == pytest.approx(12.5, rel=0.08)  # 12.5
    assert b.cores_for_12_syd == pytest.approx(40000, rel=0.1)  # ~40000
    assert x.cores_for_12_syd == pytest.approx(7500, rel=0.1)  # ~7500
    assert b.power_kw_for_12_syd == pytest.approx(293.0, rel=0.1)  # 293.0
    assert x.power_kw_for_12_syd == pytest.approx(363.2, rel=0.1)  # 363.2


def test_power_headline_ratios(benchmark):
    """'a difference of 6.6 times' per core; 'a ratio of 2.68' on
    MFlops/W; '24% more aggregate power' at fixed throughput."""

    def run():
        wcore = XT4_QC.power.hpl_watts_per_core / BGP.power.hpl_watts_per_core
        green = hpl_mflops_per_watt(BGP, 8192) / hpl_mflops_per_watt(XT4_QC, 30976)
        cols = {c.machine: c for c in build_table3([BGP, XT4_QC])}
        agg = (
            cols["XT4/QC"].power_kw_for_12_syd / cols["BG/P"].power_kw_for_12_syd
        )
        return wcore, green, agg

    wcore, green, agg = benchmark.pedantic(run, rounds=1, iterations=1)
    assert wcore == pytest.approx(6.6, rel=0.02)
    assert green == pytest.approx(2.68, rel=0.03)
    assert 1.1 < agg < 1.6  # paper: 1.24
