"""Bench: full-tree simlint run (syntactic rules + flow analyses).

The flow layer builds a CFG per function and a call graph over the
whole batch, so this is the one lint cost that could grow superlinearly
with the codebase.  The bench times a complete ``lint_paths`` over
``src/ examples/ benchmarks/`` and asserts the CI budget: the tree must
stay analyzable in under five seconds, and clean.
"""

import pathlib

from repro.lint import FLOW_RULE_IDS, lint_paths

REPO = pathlib.Path(__file__).resolve().parents[1]
TREE = [str(REPO / "src"), str(REPO / "examples"), str(REPO / "benchmarks")]

#: CI budget for one full-tree lint run, in seconds.
BUDGET_S = 5.0


def _mean_seconds(benchmark):
    return benchmark.stats.stats.mean


def test_full_tree_lint_under_budget(benchmark, save_artifact):
    result = benchmark.pedantic(lint_paths, args=(TREE,), rounds=1, iterations=1)

    assert result.files_checked > 100
    assert result.findings == [], "\n".join(f.format() for f in result.findings)
    mean = _mean_seconds(benchmark)
    assert mean < BUDGET_S, f"full-tree lint took {mean:.2f}s (budget {BUDGET_S}s)"
    # Deterministic artifact only — timings live in pytest-benchmark's
    # own report, not in a committed file that would churn every run.
    save_artifact(
        "bench_lint",
        f"files={result.files_checked} findings=0 budget={BUDGET_S}s\n"
        f"flow_rules={','.join(FLOW_RULE_IDS)}\n",
    )


def test_syntactic_only_lint_is_not_the_bottleneck(benchmark):
    """``--no-flow`` runs must stay well inside the same budget — if
    this creeps toward it, the flow layer is no longer the dominant
    cost and both budgets need revisiting."""
    result = benchmark.pedantic(
        lint_paths, args=(TREE,), kwargs={"flow": False}, rounds=1, iterations=1
    )
    assert not [f for f in result.findings if f.rule in FLOW_RULE_IDS]
    assert _mean_seconds(benchmark) < BUDGET_S
