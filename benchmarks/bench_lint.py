"""Bench: full-tree simlint run (syntactic rules + flow analyses).

The flow layer builds a CFG per function and a call graph over the
whole batch, so this is the one lint cost that could grow superlinearly
with the codebase.  The timing now rides the ``repro.perf`` harness:
the workloads and the 5 s CI budget live in the registered
``lint.full_tree`` / ``lint.syntactic_only`` benchmarks
(``repro.perf.suite``), this script just runs them through
``run_benchmarks`` and asserts the budget the snapshot entry carries —
one budget definition, enforced identically here, in ``repro bench
run``, and by the CI compare gate.
"""

from repro.perf import get_benchmark, run_benchmarks


def _run(name):
    snapshot = run_benchmarks([name], repeats=1, warmup=0)
    return snapshot.entries[name]


def test_full_tree_lint_under_budget(save_artifact):
    entry = _run("lint.full_tree")
    budget = get_benchmark("lint.full_tree").budget_s

    assert entry.meta["files"] > 100
    assert entry.meta["findings"] == 0
    assert budget is not None
    assert not entry.over_budget, (
        f"full-tree lint took {entry.median_s:.2f}s (budget {budget:g}s)"
    )
    # Deterministic artifact only — timings live in the BENCH_*.json
    # snapshots, not in a committed file that would churn every run.
    save_artifact(
        "bench_lint",
        f"files={entry.meta['files']} findings=0 budget={budget:g}s\n",
    )


def test_syntactic_only_lint_is_not_the_bottleneck():
    """``--no-flow`` runs must stay well inside the same budget — if
    this creeps toward it, the flow layer is no longer the dominant
    cost and both budgets need revisiting."""
    entry = _run("lint.syntactic_only")
    assert entry.meta["files"] > 100
    assert not entry.over_budget
