"""Regenerate Table 2: the HPCC comparison at 4096 processes, VN mode."""

from repro.core import run_experiment
from repro.core.hpcc import build_table2
from repro.machines import BGP, XT4_QC


def test_table2_hpcc(benchmark, save_artifact):
    text = benchmark(run_experiment, "table2")
    save_artifact("table2", text)
    assert "DGEMM" in text and "STREAM" in text and "Random-ring" in text


def test_table2_shapes(benchmark):
    """The Table 2 relationships the paper calls out."""

    def build():
        return build_table2([BGP, XT4_QC], processes=4096)

    cols = benchmark(build)
    b, x = cols["BG/P"], cols["XT4/QC"]
    # "the BG/P's lower clock rate ... smaller processing rate on DGEMM"
    assert b.dgemm_single_gflops < x.dgemm_single_gflops
    # "BG/P exhibited higher absolute bandwidth and less of a decline"
    assert b.stream_ep_gbs > x.stream_ep_gbs
    assert (b.stream_ep_gbs / b.stream_single_gbs) > (
        x.stream_ep_gbs / x.stream_single_gbs
    )
    # "the BG/P network's strength is low-latency communication whereas
    # the XT's strength is high-bandwidth communication"
    assert b.pingpong_latency_us < x.pingpong_latency_us
    assert b.ring_latency_us < x.ring_latency_us
    assert x.pingpong_bandwidth_gbs > b.pingpong_bandwidth_gbs
    assert x.ring_bandwidth_gbs > b.ring_bandwidth_gbs
