"""Regenerate Figure 1: HPL / FFT / PTRANS / RandomAccess scaling."""

import numpy as np

from repro.core import run_experiment
from repro.kernels import HplModel, FftModel, PtransModel, RandomAccessModel
from repro.machines import BGP, XT4_QC
from repro.simengine import make_rng

PROCS = [256, 512, 1024, 2048, 4096, 8192]


def test_fig1_render(benchmark, save_artifact):
    text = benchmark(run_experiment, "fig1")
    save_artifact("fig1", text)
    assert "HPL scaling" in text and "RandomAccess" in text


def test_fig1a_hpl_shape(benchmark):
    def curves():
        return {
            m.name: [HplModel(m).run(p).gflops for p in PROCS]
            for m in (BGP, XT4_QC)
        }

    data = benchmark(curves)
    # "The BG/P exhibited a smaller processing rate than the XT ...
    # but both systems scaled well."
    for name, ys in data.items():
        ratios = [ys[i + 1] / ys[i] for i in range(len(ys) - 1)]
        assert all(1.8 < r < 2.1 for r in ratios)  # near-linear doubling
    assert all(b < x for b, x in zip(data["BG/P"], data["XT4/QC"]))


def test_fig1b_fft_shape(benchmark):
    def curves():
        return {
            m.name: [FftModel(m).mpi_run(p).gflops_total for p in PROCS]
            for m in (BGP, XT4_QC)
        }

    data = benchmark(curves)
    assert all(b < x for b, x in zip(data["BG/P"], data["XT4/QC"]))
    for ys in data.values():
        assert ys == sorted(ys)


def test_fig1c_ptrans_shape(benchmark):
    rng = make_rng(11)

    def curves():
        return {
            m.name: [PtransModel(m).run(p, rng=rng).gb_per_s for p in PROCS]
            for m in (BGP, XT4_QC)
        }

    data = benchmark(curves)
    # "Both systems exhibited similar absolute performance and scaling
    # trends, though with a higher degree of variability on the XT."
    for b, x in zip(data["BG/P"], data["XT4/QC"]):
        assert 0.05 < b / x < 20


def test_fig1c_xt_variability(benchmark):
    rng = make_rng(12)

    def spreads():
        bgp = [PtransModel(BGP).run(1024, rng=rng).gb_per_s for _ in range(6)]
        xt = [PtransModel(XT4_QC).run(1024, rng=rng).gb_per_s for _ in range(6)]
        return np.ptp(bgp) / np.mean(bgp), np.ptp(xt) / np.mean(xt)

    bgp_spread, xt_spread = benchmark(spreads)
    assert xt_spread > bgp_spread


def test_fig1d_randomaccess_shape(benchmark):
    def curves():
        return {
            m.name: [RandomAccessModel(m).run(p).gups_total for p in PROCS]
            for m in (BGP, XT4_QC)
        }

    data = benchmark(curves)
    # "The two systems showed very similar performance and scalability
    # trends" — parity within a small factor everywhere.
    for b, x in zip(data["BG/P"], data["XT4/QC"]):
        assert 0.3 < b / x < 3.0
