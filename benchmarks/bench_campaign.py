"""Benchmark the campaign orchestrator's overhead regimes.

Three costs matter for batch regeneration: a cold campaign (compute +
cache fill), a warm rerun (pure cache-hit path — this is what CI and
iterative workflows pay), and spec expansion (the pure planning step).
The fast table/list experiments keep the compute share small so the
orchestrator's own overhead dominates what is measured.
"""

from repro.campaign import CampaignRunner, CampaignSpec

FAST = ["table1", "top500", "lists"]


def test_campaign_cold_run(benchmark, tmp_path_factory):
    """Cold pass: expand, compute every job, fill cache, write manifest."""

    def run():
        directory = tmp_path_factory.mktemp("cold")
        spec = CampaignSpec.from_ids(FAST, name="bench-cold")
        return CampaignRunner(spec, directory).run()

    result = benchmark(run)
    assert result.done == len(FAST)
    assert result.cache_hits == 0


def test_campaign_warm_rerun(benchmark, tmp_path):
    """Warm pass: 100% cache hits, artifacts untouched.  This is the
    orchestrator's fixed overhead per job — it must stay cheap enough
    to rerun reflexively."""
    spec = CampaignSpec.from_ids(FAST, name="bench-warm")
    runner = CampaignRunner(spec, tmp_path / "warm")
    runner.run()  # prime the cache outside the timed region

    result = benchmark(runner.run)
    assert result.cache_hits == len(FAST)
    assert result.executed == []
    assert result.artifacts_written == 0


def test_campaign_spec_expansion(benchmark):
    """Planning only: a swept spec expands to a deterministic job list."""
    spec_doc = {
        "name": "bench-expand",
        "jobs": [
            "table1",
            {"experiment": "fig6", "axes": {"edge": [30, 40, 50, 60, 70]}},
            {"experiment": "fig3", "axes": {"nbytes": [16384, 32768, 65536]}},
        ],
    }

    def expand():
        return CampaignSpec.from_dict(spec_doc).expand()

    jobs = benchmark(expand)
    assert len(jobs) == 1 + 5 + 3
    assert jobs == CampaignSpec.from_dict(spec_doc).expand()
