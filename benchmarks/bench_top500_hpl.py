"""Regenerate the Section II.C TOP500 HPL run on the ORNL BG/P."""

import pytest

from repro.core import run_experiment
from repro.kernels import HplModel
from repro.machines import BGP
from repro.power import measure_hpl


def test_top500_render(benchmark, save_artifact):
    text = benchmark(run_experiment, "top500")
    save_artifact("top500", text)
    assert "614399" in text


def test_top500_score(benchmark):
    """'a performance score of 2.140e4 gigaflops' — ranked #74 on the
    June 2008 TOP500 list."""
    res = benchmark(HplModel(BGP).top500_run)
    assert res.gflops == pytest.approx(21400, rel=0.03)


def test_green500_score(benchmark):
    """'a score of 310.93 MFLOPS/watt ... fifth overall on the
    Green500 List' — our model lands at the Table-3 (347.6) level; the
    measured TOP500 run sustained slightly less than the HPCC run."""
    run = benchmark(measure_hpl, BGP, 8192)
    assert 300 < run.mflops_per_watt < 360
