"""Regenerate Figure 4: POP tenth-degree benchmark performance."""

import pytest

from repro.core import run_experiment, crossover_point
from repro.apps.pop import PopModel, CG_SIGNATURE, CHRONGEAR_SIGNATURE
from repro.machines import BGP, XT4_DC


def test_fig4_render(benchmark, save_artifact):
    text = benchmark.pedantic(run_experiment, args=("fig4",), rounds=1, iterations=1)
    save_artifact("fig4", text)
    for panel in "abcd":
        assert f"Figure 4({panel})" in text


def test_fig4a_scaling(benchmark):
    """'scaling is linear out to 8000 processes, and is still scaling
    well out to 40,000'."""

    def run():
        pop = PopModel(BGP)
        return {p: pop.run(p).syd for p in (2000, 4000, 8000, 40000)}

    syd = benchmark(run)
    # Linear to 8000 within a few percent:
    assert syd[4000] / syd[2000] == pytest.approx(2.0, rel=0.1)
    assert syd[8000] / syd[4000] == pytest.approx(2.0, rel=0.1)
    # Still scaling well to 40000 (>50% efficiency over 5x ranks):
    assert syd[40000] / syd[8000] > 2.5


def test_fig4c_cross_machine_factors(benchmark):
    """'XT4 performance is approximately 3.6 times that of the BG/P for
    8000 processes, and 2.5 times for 22500 processes'."""

    def run():
        b, x = PopModel(BGP), PopModel(XT4_DC)
        return (
            x.run(8000).syd / b.run(8000).syd,
            x.run(22500).syd / b.run(22500).syd,
        )

    r8, r22 = benchmark(run)
    assert r8 == pytest.approx(3.6, rel=0.15)
    assert r22 == pytest.approx(2.5, rel=0.15)


def test_fig4d_barotropic_crossover(benchmark):
    """'indications are that Barotropic performance is superior on the
    BG/P for 22500 processes (and higher)'."""

    def run():
        procs = [8000, 16000, 22500, 32000]
        b = [PopModel(BGP).run(p).barotropic_s_per_day for p in procs]
        x = [PopModel(XT4_DC).run(min(p, 22500)).barotropic_s_per_day for p in procs]
        return procs, b, x

    procs, b, x = benchmark(run)
    # BG/P barotropic cheaper at 22500 and beyond.
    assert b[2] < x[2]


def test_fig4b_imbalance_comparable_to_barotropic(benchmark):
    """'the Baroclinic load imbalance ... is as large as the cost of the
    Barotropic phase for 8000 to 20000 processes'."""

    def run():
        out = {}
        for p in (8000, 16000):
            r = PopModel(BGP).run(p)
            out[p] = r.imbalance_s_per_day / r.barotropic_s_per_day
        return out

    ratios = benchmark(run)
    assert all(0.5 < v < 10 for v in ratios.values())


def test_fig4a_solver_variants_minor(benchmark):
    """'the performance difference between the two solver algorithms
    has little practical impact'."""

    def run():
        pop = PopModel(BGP)
        cg = pop.run(8000, solver=CG_SIGNATURE).syd
        ch = pop.run(8000, solver=CHRONGEAR_SIGNATURE).syd
        return cg, ch

    cg, ch = benchmark(run)
    assert cg == pytest.approx(ch, rel=0.1)
