"""DES-vs-analytic validation benches.

The figure harness trusts the analytic models at 8k–40k ranks; these
benches time the message-level *replays* of each application's schedule
at small scale and assert agreement — the anchor for the whole
reproduction methodology (DESIGN.md Section 2).
"""

import pytest

from repro.apps.cam import CamModel, SPECTRAL_T42
from repro.apps.cam.des_replay import replay_steps as cam_replay
from repro.apps.gyro import B1_STD, GyroModel
from repro.apps.gyro.des_replay import replay_steps as gyro_replay
from repro.apps.md import LammpsModel
from repro.apps.md.des_replay import replay_steps as md_replay
from repro.apps.pop import BarotropicConfig, PopGrid, PopModel, STEPS_PER_SIMDAY
from repro.apps.pop.des_replay import replay_steps as pop_replay
from repro.apps.s3d import S3dModel
from repro.apps.s3d.des_replay import replay_steps as s3d_replay
from repro.machines import BGP, XT4_DC


def test_pop_replay_validation(benchmark):
    grid = PopGrid(nx=360, ny=240, levels=40)

    def run():
        rep = pop_replay(BGP, 16, grid, solver_iterations=20)
        pm = PopModel(BGP, grid=grid)
        pm.barotropic = BarotropicConfig(20, 1, 1)
        ana = pm.run(16).seconds_per_simday / STEPS_PER_SIMDAY
        return rep.seconds_per_step, ana

    des, ana = benchmark(run)
    assert des == pytest.approx(ana, rel=0.5)


def test_s3d_replay_validation(benchmark):
    def run():
        rep = s3d_replay(BGP, 8, edge=20)
        ana = S3dModel(BGP).run(8, edge=20).seconds_per_step
        return rep.seconds_per_step, ana

    des, ana = benchmark(run)
    assert des == pytest.approx(ana, rel=0.5)


def test_gyro_replay_validation(benchmark):
    def run():
        rep = gyro_replay(BGP, 16, problem=B1_STD)
        ana = GyroModel(BGP, B1_STD).run(16, mode="VN").seconds_per_step
        return rep.seconds_per_step, ana

    des, ana = benchmark(run)
    assert des == pytest.approx(ana, rel=0.5)


def test_cam_replay_validation(benchmark):
    def run():
        rep = cam_replay(BGP, SPECTRAL_T42, 16)
        ana = (
            86400.0
            / (CamModel(BGP, SPECTRAL_T42).run(16).syd * 365.0)
            / SPECTRAL_T42.steps_per_day
        )
        return rep.seconds_per_step, ana

    des, ana = benchmark(run)
    assert des == pytest.approx(ana, rel=0.5)


def test_md_replay_validation(benchmark):
    def run():
        rep = md_replay(BGP, LammpsModel, 16)
        ana = LammpsModel(BGP).run(16).seconds_per_step
        return rep.seconds_per_step, ana

    des, ana = benchmark(run)
    assert des == pytest.approx(ana, rel=0.6)


def test_cross_machine_factor_preserved(benchmark):
    """DES and analytic agree on the XT4-vs-BG/P POP factor — the
    quantity the paper's comparison figures plot."""
    grid = PopGrid(nx=360, ny=240, levels=40)

    def run():
        db = pop_replay(BGP, 16, grid, solver_iterations=10).seconds_per_step
        dx = pop_replay(XT4_DC, 16, grid, solver_iterations=10).seconds_per_step

        def ana(machine):
            pm = PopModel(machine, grid=grid)
            pm.barotropic = BarotropicConfig(10, 1, 1)
            return pm.run(16).seconds_per_simday

        return db / dx, ana(BGP) / ana(XT4_DC)

    des_ratio, ana_ratio = benchmark(run)
    assert des_ratio == pytest.approx(ana_ratio, rel=0.25)
