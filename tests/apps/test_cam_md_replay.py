"""Integration: CAM and MD schedules replayed at message level."""

import pytest

from repro.apps.cam import CamModel, FV_1_9x2_5, SPECTRAL_T42
from repro.apps.cam.des_replay import replay_steps as cam_replay
from repro.apps.md import LammpsModel, PmemdModel
from repro.apps.md.des_replay import replay_steps as md_replay
from repro.machines import BGP, XT4_DC, XT4_QC


# ---------------------------------------------------------------------------
# CAM
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("bmk", [SPECTRAL_T42, FV_1_9x2_5], ids=lambda b: b.dycore)
def test_cam_replay_agrees_with_model(bmk):
    tasks = 16
    rep = cam_replay(BGP, bmk, tasks)
    ana = 86400.0 / (CamModel(BGP, bmk).run(tasks).syd * 365.0) / bmk.steps_per_day
    assert rep.seconds_per_step == pytest.approx(ana, rel=0.5)


def test_cam_replay_caps_at_rank_limit():
    rep = cam_replay(BGP, SPECTRAL_T42, tasks=1024)
    assert rep.tasks == SPECTRAL_T42.mpi_rank_limit


def test_cam_replay_spectral_uses_alltoall():
    spectral = cam_replay(XT4_QC, SPECTRAL_T42, tasks=8)
    fv = cam_replay(XT4_QC, FV_1_9x2_5, tasks=8)
    # FV's 6 halo sweeps x 2 dirs x 8 ranks = 96 p2p messages/step; the
    # spectral transposes pack into fewer, bigger messages.
    assert fv.messages >= 96
    assert spectral.messages != fv.messages


def test_cam_replay_validation():
    with pytest.raises(ValueError):
        cam_replay(BGP, SPECTRAL_T42, tasks=0)


# ---------------------------------------------------------------------------
# MD
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cls", [LammpsModel, PmemdModel], ids=lambda c: c.code)
def test_md_replay_agrees_with_model(cls):
    p = 16
    rep = md_replay(BGP, cls, p)
    ana = cls(BGP).run(p).seconds_per_step
    assert rep.seconds_per_step == pytest.approx(ana, rel=0.6)


def test_md_replay_pmemd_gathers():
    """PMEMD's output gather appears in the message stream (binomial:
    p-1 extra messages on the output step)."""
    lam = md_replay(XT4_DC, LammpsModel, 8)
    pme = md_replay(XT4_DC, PmemdModel, 8)
    assert pme.messages > lam.messages


def test_md_replay_cross_machine_ordering():
    b = md_replay(BGP, LammpsModel, 16).seconds_per_step
    x = md_replay(XT4_DC, LammpsModel, 16).seconds_per_step
    assert x < b  # XT faster absolute, as in Fig. 8


def test_md_replay_validation():
    with pytest.raises(ValueError):
        md_replay(BGP, LammpsModel, 0)
