"""POP: real solver/kernel correctness + Fig. 4 / Table 3 shapes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.pop import (
    baroclinic_step_numpy,
    CG_SIGNATURE,
    cg_solve,
    CHRONGEAR_SIGNATURE,
    chrongear_solve,
    decompose,
    imbalance,
    laplacian_2d,
    MAX_BGP_PROCESSES,
    PopGrid,
    PopModel,
    seconds_per_simday_to_syd,
    TENTH_DEGREE,
)
from repro.machines import BGP, XT4_DC


# ---------------------------------------------------------------------------
# grid and decomposition
# ---------------------------------------------------------------------------
def test_tenth_degree_grid():
    assert TENTH_DEGREE.nx == 3600
    assert TENTH_DEGREE.ny == 2400
    assert TENTH_DEGREE.levels == 40
    assert TENTH_DEGREE.points3d == 3600 * 2400 * 40


def test_land_mask_fraction():
    g = PopGrid(nx=360, ny=240, levels=4, ocean_fraction=0.71)
    mask = g.land_mask()
    land_frac = mask.mean()
    assert land_frac == pytest.approx(0.29, abs=0.03)


def test_decompose_covers():
    px, py = decompose(8000, 3600, 2400)
    assert px * py == 8000


@settings(max_examples=20)
@given(st.integers(1, 5000))
def test_decompose_property(p):
    px, py = decompose(p, 3600, 2400)
    assert px * py == p
    assert px >= 1 and py >= 1


def test_imbalance_at_least_one():
    for p in (100, 1000, 8000):
        assert imbalance(TENTH_DEGREE, p).factor >= 1.0


def test_imbalance_grows_with_ranks():
    small = imbalance(TENTH_DEGREE, 500).factor
    large = imbalance(TENTH_DEGREE, 40000).factor
    assert large >= small


# ---------------------------------------------------------------------------
# solvers (the real numerics)
# ---------------------------------------------------------------------------
def _rhs(n=16, seed=4):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n))


def test_cg_converges():
    b = _rhs()
    res = cg_solve(b)
    assert res.residual < 1e-9
    assert np.allclose(laplacian_2d(res.x), b, atol=1e-7)


def test_chrongear_converges_same_answer():
    b = _rhs()
    x1 = cg_solve(b).x
    x2 = chrongear_solve(b).x
    assert np.allclose(x1, x2, atol=1e-6)


def test_chrongear_halves_reductions():
    """The whole point of the C-G variant: one fused allreduce per
    iteration instead of two."""
    b = _rhs()
    std = cg_solve(b)
    cg = chrongear_solve(b)
    assert cg.reductions < std.reductions * 0.7
    assert CG_SIGNATURE.allreduces_per_iter == 2
    assert CHRONGEAR_SIGNATURE.allreduces_per_iter == 1


@settings(max_examples=10, deadline=None)
@given(st.integers(4, 24))
def test_solvers_agree_property(n):
    rng = np.random.default_rng(n)
    b = rng.standard_normal((n, n))
    assert np.allclose(cg_solve(b).x, chrongear_solve(b).x, atol=1e-5)


# ---------------------------------------------------------------------------
# baroclinic kernel
# ---------------------------------------------------------------------------
def test_baroclinic_conserves_tracer():
    rng = np.random.default_rng(8)
    f = rng.random((4, 16, 16))
    out = baroclinic_step_numpy(f)
    assert out.sum() == pytest.approx(f.sum(), rel=1e-12)


def test_baroclinic_smooths():
    f = np.zeros((1, 32, 32))
    f[0, 16, 16] = 1.0
    out = baroclinic_step_numpy(f, dt=0.5, kappa=0.2)
    assert out[0, 16, 16] < 1.0
    assert out[0, 15, 16] > 0.0


def test_baroclinic_shape_validation():
    with pytest.raises(ValueError):
        baroclinic_step_numpy(np.zeros((4, 4)))


# ---------------------------------------------------------------------------
# the performance model vs the paper
# ---------------------------------------------------------------------------
def test_syd_conversion():
    assert seconds_per_simday_to_syd(86400.0 / 365.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        seconds_per_simday_to_syd(0.0)


def test_bgp_3_6_syd_at_8000():
    """Table 3 / Fig. 4: BG/P obtains 3.6 SYD at ~8192 cores."""
    assert PopModel(BGP).run(8000).syd == pytest.approx(3.6, rel=0.08)


def test_xt4_factor_3_6_at_8000():
    """Fig. 4c: 'XT4 performance is approximately 3.6 times that of the
    BG/P for 8000 processes'."""
    ratio = PopModel(XT4_DC).run(8000).syd / PopModel(BGP).run(8000).syd
    assert ratio == pytest.approx(3.6, rel=0.15)


def test_xt4_factor_2_5_at_22500():
    """Fig. 4c: '... and 2.5 times for 22500 processes'."""
    ratio = PopModel(XT4_DC).run(22500).syd / PopModel(BGP).run(22500).syd
    assert ratio == pytest.approx(2.5, rel=0.15)


def test_bgp_scales_to_40000():
    """Fig. 4a: 'scaling is linear out to 8000 processes, and is still
    scaling well out to 40,000'."""
    pop = PopModel(BGP)
    r8, r40 = pop.run(8000), pop.run(40000)
    assert r40.syd / r8.syd > 2.5  # well above flat


def test_memory_wall_beyond_40000():
    """Section III.A: runs with more than 40000 processes failed."""
    with pytest.raises(MemoryError):
        PopModel(BGP).run(MAX_BGP_PROCESSES + 1)
    # ... but only on BG/P, and only above the wall.
    PopModel(BGP).run(MAX_BGP_PROCESSES)


def test_mode_insensitivity():
    """Fig. 4a: 'performance is relatively insensitive to the execution
    modes'."""
    pop = PopModel(BGP)
    vn = pop.run(8000, mode="VN").syd
    smp = pop.run(8000, mode="SMP").syd
    assert vn == pytest.approx(smp, rel=0.15)


def test_solver_choice_minor():
    """Fig. 4a: little practical impact of CG vs ChronGear on total."""
    pop = PopModel(BGP)
    cg = pop.run(8000, solver=CG_SIGNATURE).syd
    cheby = pop.run(8000, solver=CHRONGEAR_SIGNATURE).syd
    assert cg == pytest.approx(cheby, rel=0.1)


def test_chrongear_wins_at_scale_on_xt():
    """Section III.A: C-G 'a little faster for larger process counts'
    — fewer latency-bound reductions matter most on the XT."""
    pop = PopModel(XT4_DC)
    cg = pop.run(22500, solver=CG_SIGNATURE)
    cheby = pop.run(22500, solver=CHRONGEAR_SIGNATURE)
    assert cheby.barotropic_s_per_day < cg.barotropic_s_per_day


def test_xt4_barotropic_saturates():
    """Fig. 4d: 'XT4 Barotropic performance has stopped improving
    beyond 8000 processes'; on BG/P it keeps improving."""
    xt = PopModel(XT4_DC)
    assert (
        xt.run(22500).barotropic_s_per_day
        > 0.8 * xt.run(8000).barotropic_s_per_day
    )
    bgp = PopModel(BGP)
    assert bgp.run(40000).barotropic_s_per_day < bgp.run(8000).barotropic_s_per_day


def test_bgp_barotropic_less_than_half_baroclinic_at_40k():
    """Fig. 4d: barotropic 'is less than half the cost of the
    Baroclinic phase for 40000 processes'."""
    r = PopModel(BGP).run(40000)
    assert r.barotropic_s_per_day < 0.5 * r.baroclinic_s_per_day


def test_cores_for_12_syd():
    """Table 3: ~40,000 BG/P cores vs ~7,500 XT cores for 12 SYD."""
    assert PopModel(BGP).cores_for_syd(12.0) == pytest.approx(40000, rel=0.1)
    assert PopModel(XT4_DC).cores_for_syd(12.0) == pytest.approx(7500, rel=0.1)


def test_mapping_sensitivity_small():
    """Section III.A: 'The difference in performance between using the
    TXYZ ordering and the best observed among the other predefined
    mappings was less than 1.4% for VN mode'."""
    sens = PopModel(BGP).mapping_sensitivity(8000, "VN")
    best = max(sens.values())
    assert (best - sens["TXYZ"]) / sens["TXYZ"] < 0.014


def test_mapping_sensitivity_bg_only():
    with pytest.raises(ValueError):
        PopModel(XT4_DC).mapping_sensitivity(8000)


def test_sweep_stops_at_memory_wall():
    runs = PopModel(BGP).sweep([8000, 40000, 50000])
    assert [r.processes for r in runs] == [8000, 40000]


def test_unknown_machine_calibration():
    from repro.machines import MachineSpec
    from dataclasses import replace

    fake = replace(BGP, name="BG/Q")
    with pytest.raises(KeyError):
        PopModel(fake)
