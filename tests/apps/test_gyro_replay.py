"""Integration: GYRO's schedule replayed at message level."""

import pytest

from repro.apps.gyro import B1_STD, GyroModel
from repro.apps.gyro.des_replay import replay_steps
from repro.machines import BGP, XT4_QC


@pytest.mark.parametrize("machine", [BGP, XT4_QC], ids=lambda m: m.name)
def test_replay_agrees_with_model(machine):
    rep = replay_steps(machine, processes=16, problem=B1_STD)
    ana = GyroModel(machine, B1_STD).run(16, mode="VN").seconds_per_step
    assert rep.seconds_per_step == pytest.approx(ana, rel=0.5)


def test_replay_respects_process_granularity():
    with pytest.raises(ValueError):
        replay_steps(BGP, processes=20, problem=B1_STD)


def test_replay_reductions_cheaper_on_bgp():
    """The mechanism behind Fig. 7a: GYRO's many small reductions ride
    the BG/P tree.  Compare *communication-only* replays (zero compute)
    at equal rank counts."""
    from dataclasses import replace

    comm_only = replace(B1_STD, flops_per_point=1e-9)
    b = replay_steps(BGP, 32, problem=comm_only)
    x = replay_steps(XT4_QC, 32, problem=comm_only)
    # XT must ship its reductions as p2p messages; BG/P's ride the tree.
    assert x.messages > b.messages


def test_replay_multiple_steps():
    one = replay_steps(BGP, 16, problem=B1_STD, steps=1)
    two = replay_steps(BGP, 16, problem=B1_STD, steps=2)
    assert two.seconds_per_step == pytest.approx(one.seconds_per_step, rel=0.1)
