"""Integration: S3D's schedule replayed on the message-level simulator."""

import pytest

from repro.apps.s3d import S3dModel
from repro.apps.s3d.des_replay import replay_steps
from repro.machines import BGP, XT4_QC

EDGE = 20  # small per-rank block keeps the DES quick


@pytest.mark.parametrize("machine", [BGP, XT4_QC], ids=lambda m: m.name)
def test_replay_agrees_with_model(machine):
    rep = replay_steps(machine, processes=8, edge=EDGE)
    ana = S3dModel(machine).run(8, edge=EDGE).seconds_per_step
    assert rep.seconds_per_step == pytest.approx(ana, rel=0.5)


def test_replay_weak_scaling_flat():
    """The weak-scaling flatness of Fig. 6 holds at message level too.

    Power-of-two rank counts give well-shaped sub-tori; odd counts
    (e.g. 27 ranks -> 7 nodes -> a line) degrade — a real packing
    artifact BG operators avoided the same way.
    """
    t1 = replay_steps(BGP, processes=1, edge=EDGE).seconds_per_step
    t8 = replay_steps(BGP, processes=8, edge=EDGE).seconds_per_step
    t64 = replay_steps(BGP, processes=64, edge=EDGE).seconds_per_step
    assert t8 == pytest.approx(t64, rel=0.2)
    assert t64 < 1.5 * t1


def test_replay_message_budget():
    """6 stages x 6 faces x p ranks halo messages per step."""
    rep = replay_steps(BGP, processes=8, edge=EDGE)
    assert rep.messages == 6 * 6 * 8


def test_replay_cross_machine_factor():
    b = replay_steps(BGP, 8, edge=EDGE).seconds_per_step
    x = replay_steps(XT4_QC, 8, edge=EDGE).seconds_per_step
    ana = (
        S3dModel(BGP).run(8, edge=EDGE).seconds_per_step
        / S3dModel(XT4_QC).run(8, edge=EDGE).seconds_per_step
    )
    assert b / x == pytest.approx(ana, rel=0.25)


def test_replay_validation():
    with pytest.raises(ValueError):
        replay_steps(BGP, 0)
