"""GYRO: field-solve correctness + Fig. 7 shapes."""

import numpy as np
import pytest

from repro.apps.gyro import (
    B1_STD,
    B3_GTC,
    B3_GTC_MODIFIED,
    fieldsolve_flops,
    GyroModel,
    GyroProblem,
    poisson_solve_fft,
)
from repro.machines import BGL, BGP, XT4_QC


# ---------------------------------------------------------------------------
# problems
# ---------------------------------------------------------------------------
def test_b1_grid():
    """'a 16x140x8x8x20 grid' (Section III.D)."""
    assert (B1_STD.n_toroidal, B1_STD.n_radial) == (16, 140)
    assert B1_STD.points == 16 * 140 * 8 * 8 * 20
    assert B1_STD.timesteps == 500


def test_b3_grid():
    """'a 64x400x8x8x20 grid ... 100 timesteps'."""
    assert (B3_GTC.n_toroidal, B3_GTC.n_radial) == (64, 400)
    assert B3_GTC.timesteps == 100


def test_process_count_granularity():
    """'This test runs on multiples of 16 processes' (B1)."""
    assert B1_STD.valid_process_count(32)
    assert not B1_STD.valid_process_count(24)
    assert B3_GTC.valid_process_count(128)
    assert not B3_GTC.valid_process_count(96)


def test_problem_validation():
    with pytest.raises(ValueError):
        GyroProblem(
            name="bad", n_toroidal=0, n_radial=1, n_theta=1, n_lambda=1,
            n_energy=1, timesteps=1, flops_per_point=1, bytes_per_point=1,
            fft_field_solve=False,
        )


# ---------------------------------------------------------------------------
# field solve (real)
# ---------------------------------------------------------------------------
def test_poisson_solve_inverts_operator():
    rng = np.random.default_rng(1)
    rho = rng.standard_normal(128)
    phi = poisson_solve_fft(rho, alpha=3.0)
    k = 2 * np.pi * np.fft.fftfreq(128, d=1 / 128)
    lhs = np.real(np.fft.ifft((k**2 + 3.0) * np.fft.fft(phi)))
    assert np.allclose(lhs, rho, atol=1e-10)


def test_poisson_batched():
    rng = np.random.default_rng(2)
    rho = rng.standard_normal((4, 64))
    phi = poisson_solve_fft(rho, alpha=1.0)
    assert phi.shape == rho.shape


def test_poisson_validation():
    with pytest.raises(ValueError):
        poisson_solve_fft(np.ones(8), alpha=0.0)
    with pytest.raises(ValueError):
        fieldsolve_flops(1, 4)


# ---------------------------------------------------------------------------
# Fig. 7 shapes
# ---------------------------------------------------------------------------
def test_b1_bgp_outscales_xt4():
    """Fig. 7a: 'the XT4 quickly runs out of work per process ... while
    the BG/P system continues to scale'."""
    gb, gx = GyroModel(BGP, B1_STD), GyroModel(XT4_QC, B1_STD)
    eff_b = gb.run(2048).speedup_vs(gb.run(16)) / 128
    eff_x = gx.run(2048).speedup_vs(gx.run(16)) / 128
    assert eff_b > eff_x + 0.15
    assert eff_b > 0.7


def test_xt4_faster_absolute():
    """'a direct consequence of the difference in processor speed'."""
    assert (
        GyroModel(XT4_QC, B1_STD).run(256).seconds_total
        < GyroModel(BGP, B1_STD).run(256).seconds_total
    )


def test_b3_both_scale_to_2048():
    """Fig. 7b: 'both the XT4 and BG/P scaled up to 2048 processes
    without any significant drop in efficiency'."""
    for m in (BGP, XT4_QC):
        g = GyroModel(m, B3_GTC)
        eff = g.run(2048).speedup_vs(g.run(64)) / 32
        assert eff > 0.75


def test_b3_dual_mode_on_bgp():
    """Fig. 7b: 'on BG/P the code had to be run in "DUAL" mode due to
    memory requirements'."""
    assert GyroModel(BGP, B3_GTC).run(512).mode == "DUAL"
    assert GyroModel(XT4_QC, B3_GTC).run(512).mode == "VN"


def test_b1_fits_vn():
    assert GyroModel(BGP, B1_STD).run(256).mode == "VN"


def test_modified_b3_fits_bgp_vn():
    """'The problem was modified to fit the memory of a BG/P.'"""
    assert GyroModel(BGP, B3_GTC_MODIFIED).run(256).mode == "VN"


def test_weak_scaling_bgp_close_to_bgl():
    """Fig. 7c: 'the BG/P and BG/L numbers are almost the same'."""
    for p in (64, 256, 2048):
        b = GyroModel(BGP, B3_GTC_MODIFIED).weak_scaling([p])[0].seconds_per_step
        bgl = GyroModel(BGL, B3_GTC_MODIFIED).weak_scaling([p])[0].seconds_per_step
        assert b == pytest.approx(bgl, rel=0.25)


def test_optimized_collectives_would_help_bgp():
    """'This may be due to the lack of use of optimized collectives
    when doing the BG/P experiments.'"""
    p = 1024
    plain = GyroModel(BGP, B3_GTC, optimized_collectives=False).run(p)
    tuned = GyroModel(BGP, B3_GTC, optimized_collectives=True).run(p)
    assert tuned.seconds_per_step < plain.seconds_per_step


def test_invalid_count_rejected():
    with pytest.raises(ValueError):
        GyroModel(BGP, B1_STD).run(24)


def test_strong_scaling_skips_invalid():
    runs = GyroModel(BGP, B1_STD).strong_scaling([16, 24, 32])
    assert [r.processes for r in runs] == [16, 32]
