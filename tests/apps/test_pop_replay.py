"""Integration: POP's schedule replayed on the message-level simulator.

These tests exercise the full stack together — engine, torus links,
transport, collectives, application schedule — and anchor the analytic
Fig. 4 model against the simulation at small scale.
"""

import pytest

from repro.apps.pop import (
    BarotropicConfig,
    CG_SIGNATURE,
    CHRONGEAR_SIGNATURE,
    PopGrid,
    PopModel,
    replay_steps,
    STEPS_PER_SIMDAY,
)
from repro.machines import BGP, XT4_DC

#: A scaled-down tenth-degree grid the DES can chew through quickly.
SMALL_GRID = PopGrid(nx=360, ny=240, levels=40)
ITERS = 20


def _analytic_step(machine, processes):
    pm = PopModel(machine, grid=SMALL_GRID)
    pm.barotropic = BarotropicConfig(
        iterations_per_step=ITERS, halos_per_iteration=1, halo_width=1
    )
    return pm.run(processes).seconds_per_simday / STEPS_PER_SIMDAY


@pytest.mark.parametrize("machine", [BGP, XT4_DC], ids=lambda m: m.name)
def test_replay_agrees_with_analytic(machine):
    rep = replay_steps(
        machine, processes=16, grid=SMALL_GRID, solver_iterations=ITERS
    )
    ana = _analytic_step(machine, 16)
    assert rep.seconds_per_step == pytest.approx(ana, rel=0.5)


def test_replay_preserves_cross_machine_factor():
    """Whatever the absolute offsets, DES and analytic agree on the
    XT4-vs-BG/P ratio — the quantity Fig. 4c plots."""
    rb = replay_steps(BGP, 16, SMALL_GRID, solver_iterations=ITERS)
    rx = replay_steps(XT4_DC, 16, SMALL_GRID, solver_iterations=ITERS)
    ana_ratio = _analytic_step(BGP, 16) / _analytic_step(XT4_DC, 16)
    des_ratio = rb.seconds_per_step / rx.seconds_per_step
    assert des_ratio == pytest.approx(ana_ratio, rel=0.2)


def test_replay_message_budget():
    """Message counts are exactly the schedule's: per step, 8 baroclinic
    + 20 barotropic halo exchanges x 4 sends x 16 ranks, plus the tree
    allreduces (no p2p on BG/P)."""
    rep = replay_steps(BGP, 16, SMALL_GRID, solver_iterations=ITERS)
    halo_msgs = (8 + ITERS) * 4 * 16
    assert rep.messages == halo_msgs


def test_replay_xt_allreduces_add_messages():
    """On the XT the solver reductions are software (p2p messages)."""
    b = replay_steps(BGP, 16, SMALL_GRID, solver_iterations=ITERS)
    x = replay_steps(XT4_DC, 16, SMALL_GRID, solver_iterations=ITERS)
    assert x.messages > b.messages


def test_replay_multiple_steps_scale_linearly():
    one = replay_steps(BGP, 8, SMALL_GRID, steps=1, solver_iterations=5)
    three = replay_steps(BGP, 8, SMALL_GRID, steps=3, solver_iterations=5)
    assert three.seconds_per_step == pytest.approx(one.seconds_per_step, rel=0.1)


def test_replay_solver_reduction_count():
    """CG does twice the allreduces of ChronGear — visible in XT p2p
    message counts."""
    cg = replay_steps(
        XT4_DC, 8, SMALL_GRID, solver=CG_SIGNATURE, solver_iterations=10
    )
    ch = replay_steps(
        XT4_DC, 8, SMALL_GRID, solver=CHRONGEAR_SIGNATURE, solver_iterations=10
    )
    assert cg.messages > ch.messages


def test_replay_validation():
    with pytest.raises(ValueError):
        replay_steps(BGP, 0, SMALL_GRID)
