"""MD: force/cell/PME correctness + Fig. 8 shapes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.md import (
    CellList,
    LammpsModel,
    lj_forces_bruteforce,
    lj_forces_celllist,
    make_lattice_system,
    MdSystem,
    pme_fft_flops,
    PmemdModel,
    reciprocal_potential,
    RUBISCO,
    spread_charges,
    velocity_verlet,
)
from repro.machines import BGP, XT3, XT4_DC


# ---------------------------------------------------------------------------
# the RuBisCO workload (paper Section III.E)
# ---------------------------------------------------------------------------
def test_rubisco_descriptor():
    assert RUBISCO.n_atoms == 290_220
    assert RUBISCO.box == (150.0, 150.0, 135.0)
    assert RUBISCO.inner_cutoff == 10.0 and RUBISCO.outer_cutoff == 11.0
    assert RUBISCO.timestep_fs == 1.0


def test_rubisco_density_realistic():
    # Solvated biomolecules sit near 0.1 atoms/A^3.
    assert RUBISCO.density == pytest.approx(0.0955, abs=0.005)


def test_system_validation():
    with pytest.raises(ValueError):
        MdSystem("x", 0, (50, 50, 50), 10, 11, 1.0, (32, 32, 32))
    with pytest.raises(ValueError):
        MdSystem("x", 10, (50, 50, 50), 11, 10, 1.0, (32, 32, 32))
    with pytest.raises(ValueError):
        MdSystem("x", 10, (20, 50, 50), 10, 11, 1.0, (32, 32, 32))


# ---------------------------------------------------------------------------
# forces
# ---------------------------------------------------------------------------
def _jiggled_lattice(n_side=4, seed=9):
    sys_, pos = make_lattice_system(n_side, 1.3)
    rng = np.random.default_rng(seed)
    pos = (pos + rng.uniform(-0.1, 0.1, pos.shape)) % np.array(sys_.box)
    return sys_, pos


def test_newtons_third_law():
    sys_, pos = _jiggled_lattice()
    f, _ = lj_forces_bruteforce(pos, sys_.box, sys_.inner_cutoff)
    assert np.max(np.abs(f.sum(axis=0))) < 1e-10


def test_celllist_matches_bruteforce():
    sys_, pos = _jiggled_lattice(5)
    f1, e1 = lj_forces_bruteforce(pos, sys_.box, sys_.inner_cutoff)
    f2, e2 = lj_forces_celllist(pos, sys_.box, sys_.inner_cutoff)
    assert np.allclose(f1, f2, atol=1e-10)
    assert e1 == pytest.approx(e2)


@settings(max_examples=6, deadline=None)
@given(st.integers(3, 5), st.integers(0, 100))
def test_celllist_property(n_side, seed):
    sys_, pos = _jiggled_lattice(n_side, seed)
    f1, e1 = lj_forces_bruteforce(pos, sys_.box, sys_.inner_cutoff)
    f2, e2 = lj_forces_celllist(pos, sys_.box, sys_.inner_cutoff)
    assert np.allclose(f1, f2, atol=1e-9)


def test_energy_conservation_nve():
    """Velocity-Verlet NVE drift stays tiny over a short run."""
    sys_, pos = _jiggled_lattice(3)
    rng = np.random.default_rng(11)
    vel = 0.05 * rng.standard_normal(pos.shape)
    _, _, trace = velocity_verlet(
        pos, vel, sys_.box, sys_.inner_cutoff, dt=0.002, steps=50
    )
    drift = abs(trace[-1] - trace[0]) / max(1e-12, abs(trace[0]))
    assert drift < 0.01


def test_force_validation():
    with pytest.raises(ValueError):
        lj_forces_bruteforce(np.zeros((4, 3)), (1, 1, 1), cutoff=0.0)
    with pytest.raises(ValueError):
        CellList((0, 1, 1), 0.5)


# ---------------------------------------------------------------------------
# PME
# ---------------------------------------------------------------------------
def test_charge_spreading_conserves_charge():
    rng = np.random.default_rng(12)
    pos = rng.uniform(0, 10, (100, 3))
    q = rng.standard_normal(100)
    grid = spread_charges(pos, q, (10, 10, 10), (8, 8, 8))
    assert grid.sum() == pytest.approx(q.sum())


def test_reciprocal_potential_solves_poisson():
    rng = np.random.default_rng(13)
    rho = rng.standard_normal((8, 8, 8))
    rho -= rho.mean()  # neutral
    phi = reciprocal_potential(rho, (10.0, 10.0, 10.0))
    # Verify by applying -laplacian/4pi spectrally.
    kx = 2 * np.pi * np.fft.fftfreq(8, d=10 / 8)
    k2 = kx[:, None, None] ** 2 + kx[None, :, None] ** 2 + kx[None, None, :] ** 2
    back = np.real(np.fft.ifftn(np.fft.fftn(phi) * k2)) / (4 * np.pi)
    assert np.allclose(back, rho, atol=1e-10)


def test_pme_flops_validation():
    assert pme_fft_flops((16, 16, 16)) > 0
    with pytest.raises(ValueError):
        pme_fft_flops((1, 1, 1))


# ---------------------------------------------------------------------------
# Fig. 8 shapes
# ---------------------------------------------------------------------------
def test_lammps_outscales_pmemd():
    """'PMEMD scaling is limited due to higher rate of increase in
    communication volume per MPI task ... and higher output
    frequencies.'"""
    for m in (BGP, XT4_DC):
        lam, p = LammpsModel(m), PmemdModel(m)
        l_eff = lam.run(4096).speedup_vs(lam.run(64)) / 64
        p_eff = p.run(4096).speedup_vs(p.run(64)) / 64
        assert l_eff > p_eff


def test_bgp_higher_parallel_efficiency():
    """'The collective network of the BG/P results in relatively higher
    parallel efficiencies.'

    The effect shows on LAMMPS, whose per-step reductions ride the tree
    network; PMEMD is limited by its slab FFT on *both* machines, so
    there the efficiencies are close.
    """
    b, x = LammpsModel(BGP), LammpsModel(XT4_DC)
    eff_b = b.run(4096).speedup_vs(b.run(64)) / 64
    eff_x = x.run(4096).speedup_vs(x.run(64)) / 64
    assert eff_b > eff_x
    pb, px = PmemdModel(BGP), PmemdModel(XT4_DC)
    eff_pb = pb.run(4096).speedup_vs(pb.run(64)) / 64
    eff_px = px.run(4096).speedup_vs(px.run(64)) / 64
    assert eff_pb == pytest.approx(eff_px, rel=0.2)


def test_xt_faster_absolute():
    for Model in (LammpsModel, PmemdModel):
        assert Model(XT4_DC).run(512).ns_per_day > Model(BGP).run(512).ns_per_day


def test_generation_improvements():
    """'subsequent generations of the systems ... result in performance
    improvements' — XT4/DC above XT3 at scale."""
    assert (
        LammpsModel(XT4_DC).run(2048).ns_per_day
        > LammpsModel(XT3).run(2048).ns_per_day
    )


def test_ns_per_day_sane():
    r = LammpsModel(XT4_DC).run(1024)
    assert 1.0 < r.ns_per_day < 100.0


def test_scaling_skips_oversized():
    runs = LammpsModel(XT3).scaling([64, 10**7])
    assert [r.processes for r in runs] == [64]


def test_validation():
    with pytest.raises(ValueError):
        LammpsModel(BGP).run(0)
