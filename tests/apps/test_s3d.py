"""S3D: stencil/RK/chemistry correctness + Fig. 6 shapes."""

import numpy as np
import pytest

from repro.apps.s3d import (
    advance_chemistry,
    deriv8,
    deriv8_3d,
    filter10,
    integrate,
    N_SPECIES,
    pressure_wave_demo,
    reaction_rates,
    rk4_6stage_step,
    RK_STAGES,
    S3dModel,
    SPECIES,
)
from repro.machines import BGL, BGP, XT3, XT4_QC


# ---------------------------------------------------------------------------
# stencils
# ---------------------------------------------------------------------------
def _wave(n):
    x = np.linspace(0, 2 * np.pi, n, endpoint=False)
    return x, x[1] - x[0]


def test_deriv8_high_accuracy():
    x, dx = _wave(64)
    err = np.max(np.abs(deriv8(np.sin(x), dx) - np.cos(x)))
    assert err < 1e-9


def test_deriv8_eighth_order_convergence():
    errs = []
    for n in (16, 32):
        x, dx = _wave(n)
        errs.append(np.max(np.abs(deriv8(np.sin(3 * x), dx) - 3 * np.cos(3 * x))))
    order = np.log2(errs[0] / errs[1])
    assert order > 7.0  # 8th order: halving dx cuts error ~256x


def test_deriv8_validation():
    with pytest.raises(ValueError):
        deriv8(np.ones(8), dx=0.0)


def test_filter10_kills_nyquist():
    n = 32
    nyquist = np.cos(np.pi * np.arange(n))  # +1,-1,+1,...
    out = filter10(nyquist, strength=1.0)
    assert np.max(np.abs(out)) < 1e-12


def test_filter10_preserves_smooth():
    x, _ = _wave(64)
    smooth = np.sin(x)
    out = filter10(smooth, strength=1.0)
    assert np.max(np.abs(out - smooth)) < 1e-3


def test_filter10_strength_validation():
    with pytest.raises(ValueError):
        filter10(np.ones(16), strength=1.5)


def test_deriv8_3d():
    f = np.zeros((12, 12, 12))
    gx, gy, gz = deriv8_3d(f)
    assert gx.shape == f.shape
    with pytest.raises(ValueError):
        deriv8_3d(np.zeros((4, 4)))


# ---------------------------------------------------------------------------
# Runge-Kutta
# ---------------------------------------------------------------------------
def test_rk_accuracy_exponential():
    y = integrate(np.array([1.0]), lambda v: -v, dt=0.1, steps=10)
    assert abs(y[0] - np.exp(-1)) < 1e-6


def test_rk_fourth_order_convergence():
    def solve(dt):
        steps = int(round(1.0 / dt))
        return integrate(np.array([1.0]), lambda v: -v, dt, steps)[0]

    e1 = abs(solve(0.1) - np.exp(-1))
    e2 = abs(solve(0.05) - np.exp(-1))
    order = np.log2(e1 / e2)
    assert order > 3.5


def test_rk_validation():
    with pytest.raises(ValueError):
        rk4_6stage_step(np.ones(3), lambda v: v, dt=0.0)
    with pytest.raises(ValueError):
        integrate(np.ones(3), lambda v: v, 0.1, steps=-1)


def test_rk_stage_count():
    assert RK_STAGES == 6  # "six-stage, fourth-order explicit Runge-Kutta"


# ---------------------------------------------------------------------------
# chemistry
# ---------------------------------------------------------------------------
def test_eleven_species():
    assert N_SPECIES == 11  # "11 chemical species"
    assert "CO" in SPECIES and "H2" in SPECIES and "N2" in SPECIES


def test_rates_conserve_mass():
    rng = np.random.default_rng(3)
    y = rng.random((N_SPECIES, 10))
    y /= y.sum(axis=0)
    t = np.full(10, 1500.0)
    w = reaction_rates(y, t)
    assert np.max(np.abs(w.sum(axis=0))) < 1e-12


def test_advance_keeps_probability_simplex():
    rng = np.random.default_rng(4)
    y = rng.random((N_SPECIES, 8))
    y /= y.sum(axis=0)
    t = np.full(8, 1800.0)
    out = advance_chemistry(y, t, dt=1e-4)
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=0), 1.0)


def test_hot_reacts_faster():
    y = np.full((N_SPECIES, 1), 1.0 / N_SPECIES)
    cold = np.abs(reaction_rates(y, np.array([800.0]))).sum()
    hot = np.abs(reaction_rates(y, np.array([2500.0]))).sum()
    assert hot > cold


def test_chemistry_validation():
    with pytest.raises(ValueError):
        reaction_rates(np.ones((5, 4)), np.full(4, 1000.0))
    with pytest.raises(ValueError):
        advance_chemistry(np.ones((N_SPECIES, 1)), np.array([1000.0]), dt=0)


# ---------------------------------------------------------------------------
# the pressure-wave test problem (Section III.C), for real
# ---------------------------------------------------------------------------
def test_pressure_wave_conserves_mass():
    d = pressure_wave_demo()
    assert d["mass_error"] < 1e-10


def test_pressure_wave_splits_into_two():
    """The Gaussian splits into two half-amplitude travelling waves."""
    d = pressure_wave_demo()
    assert 0.35 < d["peak_ratio"] < 0.65
    assert d["center_drop"] < 0.2  # the bump leaves the center


# ---------------------------------------------------------------------------
# Fig. 6 shapes
# ---------------------------------------------------------------------------
def test_weak_scaling_flat():
    """'S3D exhibits excellent parallel performance on several
    architectures' — the flat lines of Fig. 6."""
    for machine in (BGP, XT4_QC):
        model = S3dModel(machine)
        costs = [
            model.run(p).core_hours_per_point_step for p in (1, 64, 4096)
        ]
        assert max(costs) / min(costs) < 1.2


def test_bgp_costs_more_per_point():
    b = S3dModel(BGP).run(512).core_hours_per_point_step
    x = S3dModel(XT4_QC).run(512).core_hours_per_point_step
    assert 1.8 < b / x < 3.0


def test_platform_ordering():
    """Newer generations are cheaper per point-step."""
    costs = {
        m.name: S3dModel(m).run(64).core_hours_per_point_step
        for m in (BGL, BGP, XT3, XT4_QC)
    }
    assert costs["BG/P"] < costs["BG/L"]
    assert costs["XT4/QC"] < costs["XT3"]


def test_50_cubed_default():
    r = S3dModel(BGP).run(64)
    assert r.points_per_rank == 50**3


def test_validation():
    with pytest.raises(ValueError):
        S3dModel(BGP).run(0)
    with pytest.raises(ValueError):
        S3dModel(BGP).run(8, edge=4)  # smaller than the stencil
