"""CAM: spectral/FV/physics kernel correctness + Fig. 5 shapes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cam import (
    CamModel,
    column_physics_step,
    courant_number,
    FV_0_47x0_63,
    FV_1_9x2_5,
    fv_advect_step,
    PhysicsLoadModel,
    spectral_roundtrip_error,
    SPECTRAL_T42,
    SPECTRAL_T85,
    SpectralTransform,
)
from repro.machines import BGP, XT3, XT4_QC


# ---------------------------------------------------------------------------
# spectral dycore kernel
# ---------------------------------------------------------------------------
def test_spectral_roundtrip_exact():
    assert spectral_roundtrip_error(32, 64) < 1e-10


def test_spectral_shapes():
    t = SpectralTransform(16, 32)
    spec = t.forward(np.ones((16, 32)))
    assert spec.shape == (16, 17)
    grid = t.inverse(spec)
    assert grid.shape == (16, 32)


def test_spectral_validation():
    with pytest.raises(ValueError):
        SpectralTransform(2, 32)
    with pytest.raises(ValueError):
        SpectralTransform(16, 33)  # odd nlon
    t = SpectralTransform(16, 32)
    with pytest.raises(ValueError):
        t.forward(np.ones((8, 32)))


def test_bandlimit_idempotent():
    t = SpectralTransform(24, 48)
    rng = np.random.default_rng(5)
    f = rng.standard_normal((24, 48))
    once = t.bandlimit(f)
    twice = t.bandlimit(once)
    assert np.allclose(once, twice, atol=1e-10)


# ---------------------------------------------------------------------------
# FV dycore kernel
# ---------------------------------------------------------------------------
def test_fv_conserves_mass():
    rng = np.random.default_rng(6)
    q = rng.random((20, 30))
    out = fv_advect_step(q, u=0.3, v=-0.2, dx=1.0, dy=1.0, dt=1.0)
    assert out.sum() == pytest.approx(q.sum(), rel=1e-12)


def test_fv_translates_peak():
    q = np.zeros((16, 16))
    q[8, 8] = 1.0
    out = q
    for _ in range(4):  # CFL 1: one cell per step
        out = fv_advect_step(out, u=1.0, v=0.0, dx=1.0, dy=1.0, dt=1.0)
    assert out[8, 12] == pytest.approx(1.0)


def test_fv_cfl_enforced():
    q = np.ones((8, 8))
    with pytest.raises(ValueError):
        fv_advect_step(q, u=2.0, v=0.0, dx=1.0, dy=1.0, dt=1.0)
    assert courant_number(2.0, 0.0, 1.0, 1.0, 1.0) == 2.0
    with pytest.raises(ValueError):
        courant_number(1.0, 1.0, 0.0, 1.0, 1.0)


@settings(max_examples=15, deadline=None)
@given(
    st.floats(-0.9, 0.9),
    st.floats(-0.9, 0.9),
    st.integers(4, 20),
)
def test_fv_conservation_property(u, v, n):
    rng = np.random.default_rng(abs(int(u * 100)) + n)
    q = rng.random((n, n))
    out = fv_advect_step(q, u=u, v=v, dx=1.0, dy=1.0, dt=1.0)
    assert out.sum() == pytest.approx(q.sum(), rel=1e-10)


# ---------------------------------------------------------------------------
# physics
# ---------------------------------------------------------------------------
def test_physics_relaxes_toward_equilibrium():
    t = np.full(26, 400.0)  # far too hot aloft
    q = np.zeros(26)
    t2, _ = column_physics_step(t, q, daylight=True)
    assert np.all(t2 < t)  # cooling toward t_eq


def test_physics_condensation_conserves_moist_enthalpy():
    t = np.full(10, 290.0)
    q = np.full(10, 0.05)  # super-saturated
    t2, q2 = column_physics_step(t, q, daylight=False, dt=0.0)
    # dt=0 isolates the adjustment: enthalpy h = T + L q conserved.
    assert np.allclose(t2 + 2.5 * q2, t + 2.5 * q)
    assert np.all(q2 <= q)


def test_physics_imbalance_model():
    pm = PhysicsLoadModel()
    assert pm.imbalance(load_balanced=True) == pytest.approx(1.05)
    assert pm.imbalance(load_balanced=False) > pm.imbalance(load_balanced=True)


# ---------------------------------------------------------------------------
# Fig. 5 shapes
# ---------------------------------------------------------------------------
def test_benchmark_grids():
    assert SPECTRAL_T42.columns == 64 * 128
    assert SPECTRAL_T85.columns == 128 * 256
    assert FV_0_47x0_63.columns == 384 * 576


def test_mpi_caps_at_rank_limit():
    cm = CamModel(BGP, SPECTRAL_T42)
    assert cm.run(64).syd == pytest.approx(cm.run(1024).syd, rel=0.01)


def test_hybrid_extends_scalability():
    """Fig. 5: 'OpenMP parallelism ... provides additional scalability
    for large processor counts'."""
    cm = CamModel(BGP, SPECTRAL_T85)
    assert cm.run(2048, hybrid=True).syd > 1.5 * cm.run(2048, hybrid=False).syd


def test_hybrid_comparable_small_counts():
    """Fig. 5: hybrid 'comparable to ... pure MPI parallelism for
    smaller processor counts'."""
    cm = CamModel(BGP, SPECTRAL_T85)
    mpi = cm.run(32, hybrid=False).syd
    hyb = cm.run(32, hybrid=True).syd
    assert hyb == pytest.approx(mpi, rel=0.35)


def test_spectral_factor_xt4():
    """'the BG/P is never less than ... 3.1 slower than the XT4 for the
    spectral Eulerian benchmark problems'."""
    for bmk in (SPECTRAL_T42, SPECTRAL_T85):
        for cores in (16, 64):
            ratio = (
                CamModel(XT4_QC, bmk).run(cores).syd
                / CamModel(BGP, bmk).run(cores).syd
            )
            assert ratio >= 3.0


def test_spectral_factor_xt3():
    """'never less than a factor of 2.1 slower than the XT3'."""
    ratio = (
        CamModel(XT3, SPECTRAL_T85).run(64).syd
        / CamModel(BGP, SPECTRAL_T85).run(64).syd
    )
    assert ratio >= 2.05


def test_fv_factors():
    """'the XT4 advantage is between a factor of 2 and 2.5 and XT3
    advantage is less than a factor of 2' for the FV dycore."""
    bgp = CamModel(BGP, FV_1_9x2_5).run(128).syd
    xt4 = CamModel(XT4_QC, FV_1_9x2_5).run(128).syd
    xt3 = CamModel(XT3, FV_1_9x2_5).run(128).syd
    assert 1.9 <= xt4 / bgp <= 2.6
    assert xt3 / bgp < 2.0


def test_fv_largest_pure_mpi_fails_on_bgp():
    """Fig. 5b: pure-MPI FV 0.47x0.63 runs do not complete on BG/P."""
    cm = CamModel(BGP, FV_0_47x0_63)
    with pytest.raises(MemoryError):
        cm.run(1024, hybrid=False)
    cm.run(1024, hybrid=True)  # hybrid works


def test_sweep_skips_failures():
    cm = CamModel(BGP, FV_0_47x0_63)
    assert cm.sweep([256, 1024]) == []  # pure MPI: all fail
    assert len(cm.sweep([256, 1024], hybrid=True)) == 2


def test_phase_breakdown_exposed():
    """Section III.B: CAM's time splits into dynamics and physics."""
    r = CamModel(BGP, SPECTRAL_T85).run(64)
    assert r.dynamics_s_per_step > 0
    assert r.physics_s_per_step > 0
    assert r.comm_s_per_step > 0
    total = r.dynamics_s_per_step + r.physics_s_per_step + r.comm_s_per_step
    implied_syd = 86400.0 / (total * SPECTRAL_T85.steps_per_day * 365.0)
    assert implied_syd == pytest.approx(r.syd, rel=0.01)


def test_load_balancing_affects_only_physics():
    cm = CamModel(BGP, SPECTRAL_T85)
    balanced = cm.run(64, load_balanced=True)
    raw = cm.run(64, load_balanced=False)
    assert raw.physics_s_per_step > balanced.physics_s_per_step
    assert raw.dynamics_s_per_step == pytest.approx(balanced.dynamics_s_per_step)


def test_validation():
    with pytest.raises(ValueError):
        CamModel(BGP, SPECTRAL_T42).run(0)
