"""Budgets and the livelock watchdog on Engine.run and Cluster.run."""

import pytest

from repro.machines import BGP
from repro.simengine import Budget, BudgetExceeded, Engine
from repro.simmpi import Cluster


def _ticker(env, dt=1.0):
    def proc():
        while True:
            yield env.timeout(dt)

    return env.process(proc())


def test_max_events_trips_deterministically():
    def run():
        env = Engine()
        _ticker(env)
        with pytest.raises(BudgetExceeded) as info:
            env.run(budget=Budget(max_events=10))
        return info.value.summary

    s0, s1 = run(), run()
    assert s0.reason == "max-events"
    assert s0.events == 10
    # Deterministic: identical cutoff point run-to-run (modulo wall clock).
    assert (s0.reason, s0.sim_time, s0.events, s0.stalled_events) == (
        s1.reason, s1.sim_time, s1.events, s1.stalled_events
    )


def test_max_sim_time_trips():
    env = Engine()
    _ticker(env, dt=2.0)
    with pytest.raises(BudgetExceeded) as info:
        env.run(budget=Budget(max_sim_time=7.0))
    s = info.value.summary
    assert s.reason == "max-sim-time"
    assert s.sim_time <= 7.0
    assert env.now <= 7.0


def test_livelock_watchdog_trips_at_zero_advance():
    env = Engine()

    def spin():
        while True:
            yield env.timeout(0.0)

    env.process(spin())
    with pytest.raises(BudgetExceeded) as info:
        env.run(budget=Budget(max_stalled_events=500))
    s = info.value.summary
    assert s.reason == "livelock"
    assert s.sim_time == 0.0
    assert s.stalled_events == 500
    assert "livelock watchdog" in s.format()


def test_healthy_run_never_trips_watchdog():
    env = Engine()

    def finite():
        for _ in range(50):
            yield env.timeout(0.5)
        return env.now

    proc = env.process(finite())
    env.run(proc, budget=Budget(max_stalled_events=100))
    assert env.now == pytest.approx(25.0)


def test_no_budget_path_unchanged():
    env = Engine()

    def finite():
        yield env.timeout(1.0)
        return "done"

    proc = env.process(finite())
    env.run(proc)
    assert proc.value == "done"


def test_summary_format_and_with_detail():
    env = Engine()
    _ticker(env)
    with pytest.raises(BudgetExceeded) as info:
        env.run(budget=Budget(max_events=3))
    err = info.value
    assert str(err).startswith("simulation budget exceeded (max-events)")
    enriched = err.with_detail("7/8 rank(s) still running")
    assert isinstance(enriched, BudgetExceeded)
    assert "7/8 rank(s) still running" in str(enriched)
    # The original is untouched (with_detail copies).
    assert "still running" not in str(err)


def test_cluster_run_enriches_budget_error():
    cluster = Cluster(BGP, ranks=4, mode="SMP")

    def program(comm):
        while True:
            yield comm.env.timeout(0.0)

    with pytest.raises(BudgetExceeded) as info:
        cluster.run(program, budget=Budget(max_stalled_events=2000))
    s = info.value.summary
    assert s.reason == "livelock"
    assert "cluster partial result: 4/4 rank(s) still running" in s.detail
    assert s.detail in str(info.value)


def test_cluster_budget_allows_completion():
    cluster = Cluster(BGP, ranks=4, mode="SMP")

    def program(comm):
        yield from comm.compute(seconds=0.1)
        yield from comm.barrier()
        return comm.rank

    res = cluster.run(program, budget=Budget(max_events=1_000_000))
    assert res.returns == [0, 1, 2, 3]
