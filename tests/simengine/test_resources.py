"""Unit tests for Resource, Channel and SerialLink."""

import pytest

from repro.simengine import Channel, Engine, Resource, SerialLink


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------
def test_resource_capacity_validation():
    env = Engine()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Engine()
    res = Resource(env, capacity=2)
    assert res.request().triggered
    assert res.request().triggered
    third = res.request()
    assert not third.triggered
    assert res.queue_length == 1


def test_resource_release_wakes_waiter_fifo():
    env = Engine()
    res = Resource(env, capacity=1)
    res.request()
    w1 = res.request()
    w2 = res.request()
    res.release()
    assert w1.triggered and not w2.triggered
    res.release()
    assert w2.triggered


def test_resource_release_without_request_raises():
    env = Engine()
    with pytest.raises(RuntimeError):
        Resource(env).release()


def test_resource_serializes_processes():
    env = Engine()
    res = Resource(env, capacity=1)
    spans = []

    def worker(env, res, hold):
        yield res.request()
        start = env.now
        yield env.timeout(hold)
        res.release()
        spans.append((start, env.now))

    env.process(worker(env, res, 2.0))
    env.process(worker(env, res, 3.0))
    env.run()
    assert spans == [(0.0, 2.0), (2.0, 5.0)]


# ---------------------------------------------------------------------------
# Channel
# ---------------------------------------------------------------------------
def test_channel_put_then_get():
    env = Engine()
    ch = Channel(env)
    ch.put("x")
    ev = ch.get()
    assert ev.triggered and ev.value == "x"


def test_channel_get_blocks_until_put():
    env = Engine()
    ch = Channel(env)
    got = []

    def consumer(env, ch):
        msg = yield ch.get()
        got.append((env.now, msg))

    def producer(env, ch):
        yield env.timeout(5.0)
        ch.put("hello")

    env.process(consumer(env, ch))
    env.process(producer(env, ch))
    env.run()
    assert got == [(5.0, "hello")]


def test_channel_fifo_order():
    env = Engine()
    ch = Channel(env)
    for i in range(5):
        ch.put(i)
    assert [ch.get().value for _ in range(5)] == [0, 1, 2, 3, 4]
    assert len(ch) == 0


# ---------------------------------------------------------------------------
# SerialLink
# ---------------------------------------------------------------------------
def test_link_validation():
    env = Engine()
    with pytest.raises(ValueError):
        SerialLink(env, bandwidth=0)
    with pytest.raises(ValueError):
        SerialLink(env, bandwidth=1e9, latency=-1)
    with pytest.raises(ValueError):
        SerialLink(env, bandwidth=1e9).transfer(-5)


def test_link_transfer_time():
    env = Engine()
    link = SerialLink(env, bandwidth=1e9, latency=1e-6)

    def proc(env, link):
        yield link.transfer(1e6)  # 1 MB at 1 GB/s = 1 ms

    env.process(proc(env, link))
    env.run()
    assert env.now == pytest.approx(1e-3 + 1e-6)


def test_link_serializes_transfers():
    env = Engine()
    link = SerialLink(env, bandwidth=1e9)
    done = []

    def proc(env, link, name):
        yield link.transfer(1e6)
        done.append((name, env.now))

    env.process(proc(env, link, "a"))
    env.process(proc(env, link, "b"))
    env.run()
    # Second transfer waits for the first to drain.
    assert done[0][1] == pytest.approx(1e-3)
    assert done[1][1] == pytest.approx(2e-3)


def test_link_book_cut_through_semantics():
    env = Engine()
    link = SerialLink(env, bandwidth=1e9, latency=1e-6)
    head, tail = link.book(1e6, earliest=0.0)
    assert head == pytest.approx(1e-6)
    assert tail == pytest.approx(1e-3 + 1e-6)
    # Second booking queues behind the first regardless of 'earliest'.
    head2, tail2 = link.book(1e6, earliest=0.0)
    assert head2 == pytest.approx(1e-3 + 1e-6)
    assert tail2 == pytest.approx(2e-3 + 1e-6)


def test_link_stats_and_utilization():
    env = Engine()
    link = SerialLink(env, bandwidth=1e9)
    link.book(5e5, earliest=0.0)
    assert link.transfers == 1
    assert link.bytes_carried == 5e5
    assert link.busy_time == pytest.approx(5e-4)
    assert link.utilization(elapsed=1e-3) == pytest.approx(0.5)
