"""Property-based tests on simulation invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machines import BGP, XT4_QC
from repro.simengine import Engine, SerialLink
from repro.simmpi import attach_stats, Cluster

pytestmark = pytest.mark.filterwarnings(
    "ignore:attach_stats\\(\\) is deprecated:DeprecationWarning"
)


# ---------------------------------------------------------------------------
# engine invariants
# ---------------------------------------------------------------------------
@settings(max_examples=25)
@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
def test_time_never_goes_backwards(delays):
    """Whatever the schedule, observed time is monotone."""
    env = Engine()
    seen = []

    def proc(env, delay):
        yield env.timeout(delay)
        seen.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert seen == sorted(seen)
    assert env.now == pytest.approx(max(delays))


@settings(max_examples=25)
@given(st.lists(st.tuples(st.floats(1.0, 1e6), st.floats(0.0, 1e6)), min_size=1, max_size=30))
def test_link_conserves_busy_time(transfers):
    """Sum of booked durations equals accumulated busy time."""
    env = Engine()
    link = SerialLink(env, bandwidth=1e9)
    expected = 0.0
    for nbytes, earliest in transfers:
        link.book(nbytes, earliest)
        expected += nbytes / 1e9
    assert link.busy_time == pytest.approx(expected)
    assert link.transfers == len(transfers)


@settings(max_examples=25)
@given(st.lists(st.floats(1.0, 1e6), min_size=2, max_size=20))
def test_link_bookings_never_overlap(sizes):
    """FIFO serialization: each booking starts at or after the
    previous one's bandwidth slot ends."""
    env = Engine()
    link = SerialLink(env, bandwidth=1e9, latency=1e-7)
    prev_tail = 0.0
    for nbytes in sizes:
        head, tail = link.book(nbytes, earliest=0.0)
        # head includes the latency; the bandwidth slot is [head - lat?]
        assert tail - head == pytest.approx(nbytes / 1e9)
        assert tail >= prev_tail
        prev_tail = tail


# ---------------------------------------------------------------------------
# MPI invariants
# ---------------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    st.integers(2, 8),
    st.lists(st.integers(0, 1 << 16), min_size=1, max_size=6),
    st.integers(0, 2**31),
)
def test_random_exchange_schedules_complete(p, sizes, seed):
    """Random all-pairs exchange patterns always terminate (no deadlock)
    and deliver exactly the injected bytes."""
    rng = np.random.default_rng(seed)
    targets = {r: int(rng.integers(0, p)) for r in range(p)}

    def program(comm):
        # every rank sends each size to a random target and must
        # receive whatever arrives (count known globally per rank)
        my_sends = [(targets[comm.rank], s) for s in sizes]
        incoming = sum(1 for r in range(p) if targets[r] == comm.rank) * len(sizes)
        reqs = [comm.irecv() for _ in range(incoming)]
        for dst, nbytes in my_sends:
            yield from comm.send(dst, nbytes=nbytes)
        yield from comm.waitall(reqs)
        return comm.now

    cluster = Cluster(BGP, ranks=p, mode="VN")
    stats = attach_stats(cluster)
    res = cluster.run(program)
    assert stats.messages == p * len(sizes)
    assert stats.bytes_total == p * sum(sizes)
    assert all(t >= 0 for t in res.returns)


@settings(max_examples=8, deadline=None)
@given(st.integers(2, 10), st.integers(0, 1 << 14))
def test_collective_sequence_terminates(p, nbytes):
    """Any machine, any rank count: a collective medley completes."""

    def program(comm):
        yield from comm.barrier()
        yield from comm.bcast(nbytes, root=0)
        yield from comm.allreduce(max(8, nbytes), dtype="float32")
        yield from comm.gather(64, root=p - 1)
        return comm.now

    for machine in (BGP, XT4_QC):
        res = Cluster(machine, ranks=p, mode="VN").run(program)
        finish = res.returns
        assert max(finish) > 0


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 20), st.integers(1, 1 << 18))
def test_message_time_monotone_in_size(hops_seed, nbytes):
    """A bigger payload between the same pair never arrives earlier."""
    from repro.simmpi import CostModel

    c = CostModel(BGP, "VN", 64)
    t1 = c.p2p_time(nbytes)
    t2 = c.p2p_time(nbytes * 2)
    assert t2 >= t1
