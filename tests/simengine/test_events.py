"""Unit tests for event primitives: triggering, conditions, failure."""

import pytest

from repro.simengine import Engine, Interrupt


def test_event_initially_untriggered():
    env = Engine()
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed


def test_succeed_sets_value():
    env = Engine()
    ev = env.event()
    ev.succeed(99)
    assert ev.triggered
    assert ev.value == 99


def test_value_before_trigger_raises():
    env = Engine()
    with pytest.raises(RuntimeError):
        env.event().value


def test_double_trigger_rejected():
    env = Engine()
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_fail_requires_exception():
    env = Engine()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_all_of_collects_values_in_submission_order():
    env = Engine()

    def proc(env, delay, value):
        yield env.timeout(delay)
        return value

    # Finish out of order; values must still come back in submission order.
    a = env.process(proc(env, 3.0, "a"))
    b = env.process(proc(env, 1.0, "b"))
    cond = env.all_of([a, b])
    env.run()
    assert cond.value == ["a", "b"]
    assert env.now == 3.0


def test_any_of_fires_on_first():
    env = Engine()

    def proc(env, delay, value):
        yield env.timeout(delay)
        return value

    a = env.process(proc(env, 3.0, "slow"))
    b = env.process(proc(env, 1.0, "fast"))
    cond = env.any_of([a, b])
    env.run(until=cond)
    assert cond.value == "fast"
    assert env.now == 1.0


def test_all_of_empty_triggers_immediately():
    env = Engine()
    cond = env.all_of([])
    assert cond.triggered


def test_all_of_with_already_processed_event():
    env = Engine()
    ev = env.event()
    ev.succeed("x")
    env.run()  # process it
    cond = env.all_of([ev])
    env.run()
    assert cond.value == ["x"]


def test_condition_rejects_foreign_engine():
    env1, env2 = Engine(), Engine()
    ev = env2.event()
    with pytest.raises(ValueError):
        env1.all_of([ev])  # simlint: ignore[yield-from-comm]


def test_interrupt_cause_accessible():
    exc = Interrupt("reason")
    assert exc.cause == "reason"
    assert Interrupt().cause is None


def test_process_interrupt():
    env = Engine()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            log.append((env.now, i.cause))
        yield env.timeout(1.0)
        log.append((env.now, "done"))

    def waker(env, victim):
        yield env.timeout(2.0)
        victim.interrupt("wake-up")

    victim = env.process(sleeper(env))
    env.process(waker(env, victim))
    env.run()
    # Interrupted at t=2, resumed work finishes at t=3; the abandoned
    # 100 s timeout still drains the queue but resumes nobody.
    assert log == [(2.0, "wake-up"), (3.0, "done")]
