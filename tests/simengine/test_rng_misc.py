"""Deterministic RNG utilities and engine odds and ends."""

import numpy as np
import pytest

from repro.simengine import DEFAULT_SEED, Engine, make_rng, spawn


def test_make_rng_deterministic():
    a = make_rng().integers(0, 1 << 30, size=5)
    b = make_rng().integers(0, 1 << 30, size=5)
    assert np.array_equal(a, b)


def test_make_rng_seed_override():
    a = make_rng(1).integers(0, 1 << 30, size=5)
    b = make_rng(2).integers(0, 1 << 30, size=5)
    assert not np.array_equal(a, b)


def test_spawn_independent_streams():
    root = make_rng()
    child_a = spawn(root, "allocator")
    root2 = make_rng()
    child_b = spawn(root2, "allocator")
    # Same key + same parent state => same stream (reproducible).
    assert np.array_equal(
        child_a.integers(0, 1 << 30, size=4), child_b.integers(0, 1 << 30, size=4)
    )


def test_spawn_different_keys_differ():
    root = make_rng()
    a = spawn(root, "allocator")
    root2 = make_rng()
    b = spawn(root2, "scheduler")
    assert not np.array_equal(
        a.integers(0, 1 << 30, size=4), b.integers(0, 1 << 30, size=4)
    )


def test_default_seed_is_stable_constant():
    assert DEFAULT_SEED == 20080815


# ---------------------------------------------------------------------------
# engine odds and ends
# ---------------------------------------------------------------------------
def test_peek_empty_queue():
    assert Engine().peek() == float("inf")


def test_process_yielding_non_event_fails():
    env = Engine()

    def bad(env):
        yield 42  # not an event

    env.process(bad(env))
    with pytest.raises(TypeError, match="non-event"):
        env.run()


def test_failed_event_defused_does_not_crash():
    env = Engine()
    ev = env.event()
    ev.fail(RuntimeError("handled elsewhere"))
    ev.defuse()
    env.run()  # no raise


def test_failed_event_undefused_crashes():
    env = Engine()
    ev = env.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_process_catches_child_failure():
    env = Engine()

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("child blew up")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"caught: {exc}"

    p = env.process(parent(env))
    env.run()
    assert p.value == "caught: child blew up"


def test_interrupt_finished_process_rejected():
    env = Engine()

    def quick(env):
        yield env.timeout(0.1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()
