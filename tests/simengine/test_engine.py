"""Unit tests for the discrete-event engine core."""

import pytest

from repro.simengine import EmptySchedule, Engine, US


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_clock_starts_at_initial_time():
    assert Engine(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Engine()

    def proc(env):
        yield env.timeout(2.5)

    env.process(proc(env))
    env.run()
    assert env.now == 2.5


def test_negative_timeout_rejected():
    env = Engine()
    with pytest.raises(ValueError):
        env.timeout(-1.0)  # simlint: ignore[yield-from-comm]


def test_run_until_time_stops_early():
    env = Engine()

    def proc(env):
        yield env.timeout(10.0)

    env.process(proc(env))
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_past_time_rejected():
    env = Engine(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Engine()

    def proc(env):
        yield env.timeout(1.0)
        return 42

    p = env.process(proc(env))
    assert env.run(until=p) == 42


def test_run_until_event_deadlock_detected():
    env = Engine()
    never = env.event()
    with pytest.raises(RuntimeError, match="deadlock"):
        env.run(until=never)


def test_same_time_events_fifo_order():
    env = Engine()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.process(proc(env, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_step_raises_on_empty_queue():
    with pytest.raises(EmptySchedule):
        Engine().step()


def test_step_empty_schedule_message_is_descriptive():
    env = Engine()

    def proc(env):
        yield env.timeout(2.5)

    env.process(proc(env))
    env.run()
    with pytest.raises(EmptySchedule, match=r"t=2\.5s .*event\(s\) processed"):
        env.step()


def test_run_until_after_drain_explains_the_gap():
    env = Engine()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    with pytest.raises(
        EmptySchedule, match=r"schedule drained at t=1s before reaching until=8s"
    ):
        env.run(until=8.0)
    # The clock stays at the drain point, not the requested horizon.
    assert env.now == 1.0


def test_events_processed_counter():
    env = Engine()

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env.events_processed >= 2


def test_run_all_returns_final_time():
    env = Engine()

    def proc(env):
        yield env.timeout(3 * US)

    env.process(proc(env))
    assert env.run_all() == pytest.approx(3e-6)


def test_unhandled_process_failure_propagates():
    env = Engine()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(bad(env))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_nested_processes_wait_for_each_other():
    env = Engine()

    def child(env):
        yield env.timeout(2.0)
        return "child-done"

    def parent(env):
        result = yield env.process(child(env))
        return result

    p = env.process(parent(env))
    env.run()
    assert p.value == "child-done"
    assert env.now == 2.0
