"""Test-suite configuration.

Makes a bare ``python -m pytest`` work from a checkout by putting
``src/`` on ``sys.path`` ahead of any installed copy, and provides the
``sanitize_runs`` fixture that turns the simulation sanitizer on for
every ``Cluster.run`` inside a test (see ``docs/linting.md``).
"""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)


@pytest.fixture
def sanitize_runs(monkeypatch):
    """Force every ``Cluster.run`` in this test to use ``sanitize=True``.

    Deadlocks then raise :class:`repro.lint.DeadlockError` with the rank
    wait-graph, and leaked requests / unreceived sends raise at program
    exit.  Opt whole suites in by setting ``REPRO_SANITIZE=1`` (see
    ``tests/simmpi/conftest.py``).
    """
    from repro.lint import force_sanitize

    force_sanitize(monkeypatch)
