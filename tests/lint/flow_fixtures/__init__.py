"""Golden fixture programs for the flow analyses.

Each module holds exactly one deliberately-broken ``program(comm)``
and is annotated so that the *only* unsuppressed findings are the flow
findings under test — the test suite asserts them exactly (rule, line)
and, for the rank-guarded collective, cross-checks the static verdict
against the runtime sanitizer on a real 2-rank cluster.
"""
