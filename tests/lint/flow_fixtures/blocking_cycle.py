"""Golden fixture: the classic head-to-head blocking exchange.

Both ranks send before they receive.  Under eager delivery this
completes; at rendezvous sizes it deadlocks — ``flow-blocking-cycle``
flags the symmetric send cycle 0->1 -> 1->0.
"""

__all__ = ["program"]


def program(comm):
    if comm.rank == 0:
        yield from comm.send(1, nbytes=1024, tag=0)  # FLAG: symmetric cycle
        yield from comm.recv(src=1, tag=0)
    else:
        yield from comm.send(0, nbytes=1024, tag=0)
        yield from comm.recv(src=0, tag=0)
