"""Golden fixture: a host wall-clock value stored into simulated state.

The per-line ``determinism-hazard`` suppression is the realistic part:
the clock read itself was judged fine (host measurement), but the
measured value then flows into communicator state, which two runs of
the "deterministic" simulator will disagree on — ``flow-determinism-
taint`` tracks the value past the suppressed source.
"""

__all__ = ["program"]

import time


def program(comm):
    t0 = time.perf_counter()  # simlint: ignore[determinism-hazard]
    comm.t_epoch = t0  # FLAG: host clock value in simulated state
    yield from comm.compute(seconds=1e-5)
