"""Golden fixture: an irecv request waited on only one branch.

Rank 1 returns with the request still pending — ``flow-request-leak``
statically, the sanitizer's ``RequestLeakError`` dynamically.
"""

__all__ = ["program"]


def program(comm):
    other = 1 - comm.rank
    req = comm.irecv(src=other, tag=0)  # FLAG: leaks on the else path
    yield from comm.send(other, nbytes=8, tag=0)
    if comm.rank == 0:
        msg = yield from comm.wait(req)
        return msg
    return None
