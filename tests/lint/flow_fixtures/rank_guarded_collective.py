"""Golden fixture: a collective only rank 0 ever enters.

Statically this is a ``flow-collective-match`` error; dynamically the
same program deadlocks under the sanitizer (rank 0 parks in the
barrier, rank 1 finishes) — the agreement test runs both.
"""

__all__ = ["program"]


def program(comm):
    yield from comm.compute(seconds=1e-5)
    if comm.rank == 0:
        yield from comm.barrier()  # FLAG: only rank 0 arrives
    else:
        yield from comm.compute(seconds=1e-6)
