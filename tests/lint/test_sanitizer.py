"""Runtime-sanitizer tests: deadlock wait-graphs, leaked requests,
unreceived sends, and the pytest opt-in fixture."""

import pytest

from repro.lint import DeadlockError, RequestLeakError, SanitizerError, UnmatchedSendError
from repro.machines import BGP, XT4_QC
from repro.simmpi import Cluster


def make_cluster(machine=BGP, ranks=2):
    return Cluster(machine, ranks=ranks, mode="SMP")


# -- deadlock detection -----------------------------------------------------


def recv_recv_deadlock(comm):
    other = 1 - comm.rank
    msg = yield from comm.recv(src=other)
    return msg


def test_two_rank_recv_recv_deadlock_is_reported():
    with pytest.raises(DeadlockError) as exc:
        make_cluster().run(recv_recv_deadlock, sanitize=True)
    report = exc.value.report
    assert {b.rank for b in report.blocked} == {0, 1}
    assert all(b.op == "recv" for b in report.blocked)
    assert report.cycle == [0, 1, 0]
    text = str(exc.value)
    assert "recv(src=1" in text and "recv(src=0" in text
    assert "wait cycle: 0 -> 1 -> 0" in text


def test_deadlock_without_sanitizer_keeps_generic_error():
    with pytest.raises(RuntimeError) as exc:
        make_cluster().run(recv_recv_deadlock)
    assert not isinstance(exc.value, SanitizerError)


def test_rendezvous_send_deadlock_names_the_sender():
    def lonely_send(comm):
        if comm.rank == 0:
            # Above the eager threshold: rendezvous blocks on a recv
            # that rank 1 never posts.
            yield from comm.send(1, nbytes=1 << 22, tag=5)
        else:
            yield from comm.recv(src=0, tag=99)

    with pytest.raises(DeadlockError) as exc:
        make_cluster().run(lonely_send, sanitize=True)
    ops = {b.rank: b.op for b in exc.value.report.blocked}
    assert ops[0] == "send"
    assert ops[1] == "recv"


def test_wildcard_recv_deadlock_reports_any_source():
    def starve(comm):
        if comm.rank == 0:
            yield from comm.recv()
        else:
            yield from comm.compute(seconds=1e-6)

    with pytest.raises(DeadlockError) as exc:
        make_cluster().run(starve, sanitize=True)
    (blocked,) = exc.value.report.blocked
    assert blocked.rank == 0
    assert "src=any" in blocked.format()
    assert exc.value.report.cycle is None


def test_partial_collective_deadlock_is_reported():
    def half_barrier(comm):
        if comm.rank == 0:
            yield from comm.barrier()
        else:
            yield from comm.compute(seconds=1e-6)

    with pytest.raises(DeadlockError) as exc:
        make_cluster().run(half_barrier, sanitize=True)
    (blocked,) = exc.value.report.blocked
    assert blocked.rank == 0
    assert blocked.op == "collective"
    assert "barrier" in blocked.detail


# -- exit-time leak checks --------------------------------------------------


def test_leaked_request_is_reported():
    def leak(comm):
        if comm.rank == 0:
            comm.isend(1, nbytes=64, tag=3)  # simlint: ignore[yield-from-comm]
            yield from comm.compute(seconds=1e-3)
        else:
            yield from comm.recv(src=0)

    with pytest.raises(RequestLeakError) as exc:
        make_cluster().run(leak, sanitize=True)
    text = str(exc.value)
    assert "rank 0" in text and "send request" in text and "tag=3" in text


def test_unmatched_send_is_reported():
    def lost(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8, tag=7)
        else:
            yield from comm.compute(seconds=1e-3)

    with pytest.raises(UnmatchedSendError) as exc:
        make_cluster().run(lost, sanitize=True)
    text = str(exc.value)
    assert "rank 0 -> rank 1" in text and "tag=7" in text


def test_clean_program_passes_sanitized():
    def pingpong(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1024)
            yield from comm.recv(src=1)
        else:
            yield from comm.recv(src=0)
            yield from comm.send(0, nbytes=1024)
        req = comm.irecv(src=1 - comm.rank, tag=9)
        yield from comm.send(1 - comm.rank, nbytes=16, tag=9)
        yield from comm.wait(req)
        yield from comm.barrier()
        return comm.now

    for machine in (BGP, XT4_QC):
        # XT machines add dissemination-barrier messages; BG uses the
        # hardware barrier network.
        result = make_cluster(machine).run(pingpong, sanitize=True)
        assert result.elapsed > 0
        assert result.messages >= 4


def test_waitall_marks_requests_consumed():
    def exchange(comm):
        peers = [r for r in range(comm.size) if r != comm.rank]
        reqs = [comm.irecv(src=p, tag=p) for p in peers]
        for p in peers:
            yield from comm.send(p, nbytes=32, tag=comm.rank)
        yield from comm.waitall(reqs)

    result = make_cluster(ranks=4).run(exchange, sanitize=True)
    assert result.messages == 12


def test_sanitizer_state_is_cleared_after_run():
    cluster = make_cluster()
    with pytest.raises(DeadlockError):
        cluster.run(recv_recv_deadlock, sanitize=True)
    assert cluster.sanitizer is None
    assert cluster.env.on_empty_schedule is None


# -- the pytest fixture -----------------------------------------------------


def test_sanitize_runs_fixture_enables_sanitizer(sanitize_runs):
    with pytest.raises(DeadlockError):
        make_cluster().run(recv_recv_deadlock)
