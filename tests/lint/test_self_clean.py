"""The repository's own source tree must lint clean.

This is the acceptance gate CI enforces with ``repro lint src/``; the
test keeps it enforced for anyone running plain pytest too.
"""

import pathlib

import repro
from repro.lint import lint_paths, render_text


def test_src_tree_lints_clean():
    src_root = pathlib.Path(repro.__file__).resolve().parent
    result = lint_paths([str(src_root)])
    assert result.files_checked > 90
    assert result.findings == [], "\n" + render_text(result)
