"""Tests for the flow layer: CFG construction, the four analyses on
their golden fixtures (exact findings), interprocedural summaries,
suppressions, the GitHub renderer, and — the acceptance bar — static/
dynamic agreement: the fixture the flow pass flags deadlocks for real
under the runtime sanitizer.
"""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    DeadlockError,
    FLOW_RULE_IDS,
    lint_paths,
    lint_text,
    render_github,
    RequestLeakError,
    Severity,
)
from repro.lint.flow import build_cfg
from repro.machines import BGP
from repro.simmpi import Cluster

FIXTURES = Path(__file__).parent / "flow_fixtures"
REPO = Path(__file__).resolve().parents[2]


def fixture_text(name):
    return (FIXTURES / name).read_text(encoding="utf-8")


def marker_line(text, marker="# FLAG"):
    for i, line in enumerate(text.splitlines(), start=1):
        if marker in line:
            return i
    raise AssertionError(f"no {marker!r} marker in fixture")


def flow_findings(text, path="fixture.py"):
    return [f for f in lint_text(text, path=path) if f.rule in FLOW_RULE_IDS]


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    return build_cfg(func)


# -- CFG construction -------------------------------------------------------


def test_cfg_straight_line_wires_entry_to_exit():
    cfg = cfg_of(
        """\
        def f():
            a = 1
            b = a + 1
        """
    )
    stmts = list(cfg.statements())
    assert len(stmts) == 2
    assert cfg.entry.successors() == [stmts[0]]
    assert stmts[1].successors("fall") == [cfg.exit]


def test_cfg_if_has_labelled_edges_and_joins():
    cfg = cfg_of(
        """\
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
        """
    )
    branch = next(n for n in cfg.statements() if n.kind == "branch")
    (true_succ,) = branch.successors("true")
    (false_succ,) = branch.successors("false")
    assert true_succ is not false_succ
    ret = next(n for n in cfg.statements() if isinstance(n.stmt, ast.Return))
    # Both arms fall through to the return, which edges to exit.
    assert {true_succ.successors()[0], false_succ.successors()[0]} == {ret}
    assert ret.successors("return") == [cfg.exit]


def test_cfg_while_loop_has_back_edge_and_exit():
    cfg = cfg_of(
        """\
        def f(n):
            while n:
                n -= 1
        """
    )
    branch = next(n for n in cfg.statements() if n.kind == "branch")
    (body,) = branch.successors("true")
    assert branch in body.successors()  # back edge
    assert cfg.exit in [s for s, _ in branch.succs]


def test_cfg_raise_routes_to_exc_exit_not_exit():
    cfg = cfg_of(
        """\
        def f():
            raise ValueError("no")
        """
    )
    (node,) = cfg.statements()
    assert node.successors("raise") == [cfg.exc_exit]
    assert cfg.exit not in [s for s, _ in node.succs]


def test_cfg_reachable_from_respects_stop_node():
    cfg = cfg_of(
        """\
        def f(x):
            while x:
                if x > 1:
                    a = 1
                else:
                    a = 2
        """
    )
    inner = next(
        n for n in cfg.statements() if n.kind == "branch" and isinstance(n.stmt, ast.If)
    )
    true_side = cfg.reachable_from(inner.successors("true"), stop=inner)
    false_side = cfg.reachable_from(inner.successors("false"), stop=inner)
    # Without the stop, the loop back edge would leak each arm into the
    # other; with it, the two arm statements stay exclusive.
    arm_stmts = {n for n in cfg.statements() if isinstance(n.stmt, ast.Assign)}
    assert len(arm_stmts & (true_side - false_side)) == 1
    assert len(arm_stmts & (false_side - true_side)) == 1


# -- golden fixtures: one exact finding each --------------------------------

GOLDEN = [
    ("rank_guarded_collective.py", "flow-collective-match", Severity.ERROR),
    ("leaked_request.py", "flow-request-leak", Severity.ERROR),
    ("blocking_cycle.py", "flow-blocking-cycle", Severity.WARNING),
    ("wallclock_taint.py", "flow-determinism-taint", Severity.ERROR),
]


@pytest.mark.parametrize("name,rule,severity", GOLDEN)
def test_golden_fixture_yields_exactly_its_finding(name, rule, severity):
    text = fixture_text(name)
    findings = lint_text(text, path=name)
    assert [f.rule for f in findings] == [rule]
    (finding,) = findings
    assert finding.severity is severity
    assert finding.line == marker_line(text)


def test_collective_finding_names_the_guard_line():
    text = fixture_text("rank_guarded_collective.py")
    (finding,) = flow_findings(text)
    guard = marker_line(text) - 1  # the `if comm.rank == 0:` line
    assert f"line {guard}" in finding.message
    assert "barrier" in finding.message


def test_blocking_cycle_message_shows_the_cycle():
    (finding,) = flow_findings(fixture_text("blocking_cycle.py"))
    assert "0->1" in finding.message and "1->0" in finding.message


def test_taint_finding_names_source_and_sink():
    (finding,) = flow_findings(fixture_text("wallclock_taint.py"))
    assert "perf_counter" in finding.message
    assert "comm.t_epoch" in finding.message


# -- static/dynamic agreement ----------------------------------------------


def test_rank_guarded_collective_agrees_with_sanitizer():
    from . import flow_fixtures  # noqa: F401  (package import sanity)
    from .flow_fixtures.rank_guarded_collective import program

    # Static verdict: the flow pass proves the deadlock from the text…
    text = fixture_text("rank_guarded_collective.py")
    (finding,) = flow_findings(text)
    assert finding.rule == "flow-collective-match"
    # …and the runtime sanitizer confirms it on a real 2-rank cluster.
    with pytest.raises(DeadlockError) as exc:
        Cluster(BGP, ranks=2, mode="SMP").run(program, sanitize=True)
    (blocked,) = exc.value.report.blocked
    assert blocked.rank == 0
    assert blocked.op == "collective"
    assert "barrier" in blocked.detail


def test_leaked_request_agrees_with_sanitizer():
    from .flow_fixtures.leaked_request import program

    (finding,) = flow_findings(fixture_text("leaked_request.py"))
    assert finding.rule == "flow-request-leak"
    with pytest.raises(RequestLeakError):
        Cluster(BGP, ranks=2, mode="SMP").run(program, sanitize=True)


# -- interprocedural summaries ----------------------------------------------


def test_collective_in_helper_is_flagged_at_rank_guarded_call():
    findings = flow_findings(
        textwrap.dedent(
            """\
            __all__ = []

            def sync(comm):
                yield from comm.barrier()

            def program(comm):
                if comm.rank == 0:
                    yield from sync(comm)
            """
        )
    )
    assert [f.rule for f in findings] == ["flow-collective-match"]
    assert findings[0].line == 8  # the call site, not the helper body


def test_request_returning_helper_transfers_the_obligation():
    body = """\
        __all__ = []

        def start(comm, peer):
            return comm.irecv(src=peer, tag=0)

        def program(comm):
            r = start(comm, 1)
            {tail}
        """
    leak = flow_findings(textwrap.dedent(body.format(tail="yield from comm.compute(seconds=1.0)")))
    assert [f.rule for f in leak] == ["flow-request-leak"]
    clean = flow_findings(textwrap.dedent(body.format(tail="yield from comm.wait(r)")))
    assert clean == []


# -- suppressions and opt-out -----------------------------------------------


def test_flow_findings_honor_line_suppressions():
    text = fixture_text("wallclock_taint.py").replace(
        "# FLAG: host clock value in simulated state",
        "# simlint: ignore[flow-determinism-taint]",
    )
    assert flow_findings(text) == []


def test_flow_false_disables_the_layer():
    text = fixture_text("rank_guarded_collective.py")
    assert lint_text(text, path="fixture.py", flow=False) == []
    assert len(lint_text(text, path="fixture.py", flow=True)) == 1


# -- no false positives on the shipped tree ---------------------------------


def test_shipped_tree_is_flow_clean():
    result = lint_paths(
        [str(REPO / "src"), str(REPO / "examples"), str(REPO / "benchmarks")]
    )
    flow = [f for f in result.findings if f.rule in FLOW_RULE_IDS]
    assert flow == [], "\n".join(f.format() for f in flow)
    assert result.files_checked > 100


# -- GitHub renderer --------------------------------------------------------


def test_render_github_emits_workflow_commands():
    result = lint_paths([str(FIXTURES / "rank_guarded_collective.py")])
    out = render_github(result)
    (annotation, summary) = out.splitlines()
    assert annotation.startswith("::error file=")
    assert "line=14" in annotation
    assert "title=simlint [flow-collective-match]" in annotation
    assert summary.startswith("simlint: 1 error(s)")


def test_render_github_escapes_newlines_and_percent():
    from repro.lint import LintResult
    from repro.lint.findings import Finding

    result = LintResult(
        findings=[
            Finding(
                path="x.py",
                line=1,
                col=1,
                rule="demo",
                severity=Severity.WARNING,
                message="50% worse\nsecond line",
            )
        ],
        files_checked=1,
    )
    out = render_github(result).splitlines()[0]
    assert "50%25 worse%0Asecond line" in out
    assert "\n" not in out
