"""Determinism regression: the same workload must produce bit-identical
traces, elapsed times, and event counts across independent runs.

This is the invariant the determinism-hazard lint rule protects (and
the property the engine's docstring promises); a regression here means
something nondeterministic crept into the simulator core.
"""

import pytest

from repro.machines import BGP, XT4_QC
from repro.simmpi import attach_stats, Cluster

pytestmark = pytest.mark.filterwarnings(
    "ignore:attach_stats\\(\\) is deprecated:DeprecationWarning"
)


def workload(comm):
    """A mixed workload: p2p, nonblocking ops, collectives, compute."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    req = comm.irecv(src=left, tag=1)
    yield from comm.send(right, nbytes=2048, tag=1)
    yield from comm.wait(req)
    yield from comm.compute(flops=1e6)
    yield from comm.allreduce(nbytes=8)
    yield from comm.alltoall(nbytes_per_pair=256)
    yield from comm.barrier()
    return comm.now


def run_once(machine, ranks=8, seed=42):
    import numpy as np

    cluster = Cluster(
        machine,
        ranks=ranks,
        mode="VN",
        rng=np.random.default_rng(seed),
        utilization=0.3,
    )
    stats = attach_stats(cluster)
    result = cluster.run(workload, sanitize=True)
    trace = [(e.time, e.src, e.dst, e.nbytes, e.tag) for e in stats.trace]
    return result, trace, cluster.env.events_processed


def test_identical_traces_across_runs():
    for machine in (BGP, XT4_QC):
        r1, t1, n1 = run_once(machine)
        r2, t2, n2 = run_once(machine)
        assert r1.elapsed == r2.elapsed, machine.name
        assert r1.returns == r2.returns
        assert r1.messages == r2.messages
        assert r1.bytes_sent == r2.bytes_sent
        assert t1 == t2
        assert n1 == n2


def test_different_seed_perturbs_allocation_but_stays_deterministic():
    _, t1, _ = run_once(XT4_QC, seed=1)
    _, t2, _ = run_once(XT4_QC, seed=1)
    assert t1 == t2
