"""Unit tests for every simlint static rule: one true-positive and one
clean fixture per rule, plus the suppression machinery."""

import textwrap

from repro.lint import lint_text, rule_ids, Severity


def lint(source):
    # flow=False: these are per-rule unit tests for the syntactic layer;
    # the flow analyses have their own suite in tests/lint/test_flow.py.
    return lint_text(textwrap.dedent(source), path="fixture.py", flow=False)


def rules_hit(source):
    return [f.rule for f in lint(source)]


def test_registry_contains_the_documented_rules():
    assert set(rule_ids()) >= {
        "yield-from-comm",
        "determinism-hazard",
        "unit-hygiene",
        "api-missing-all",
        "api-mutable-default",
    }


# -- yield-from-comm --------------------------------------------------------


def test_bare_comm_call_is_flagged():
    findings = lint(
        """\
        __all__ = []
        def program(comm):
            comm.send(1, nbytes=1024)
            yield from comm.barrier()
        """
    )
    assert [f.rule for f in findings] == ["yield-from-comm"]
    assert findings[0].line == 3
    assert findings[0].severity is Severity.ERROR
    assert "yield from" in findings[0].message


def test_yield_without_from_is_flagged():
    findings = lint(
        """\
        __all__ = []
        def program(comm):
            msg = yield comm.recv(src=0)
            return msg
        """
    )
    assert [f.rule for f in findings] == ["yield-from-comm"]
    assert "'yield from'" in findings[0].message


def test_discarded_request_is_flagged():
    assert rules_hit(
        """\
        __all__ = []
        def program(comm):
            comm.irecv(src=0)
            yield from comm.barrier()
        """
    ) == ["yield-from-comm"]


def test_discarded_event_factory_is_flagged():
    assert rules_hit(
        """\
        __all__ = []
        def program(comm):
            comm.env.timeout(1.0)
            yield from comm.barrier()
        """
    ) == ["yield-from-comm"]


def test_yield_from_event_factory_is_flagged():
    findings = lint(
        """\
        __all__ = []
        def program(env):
            yield from env.timeout(1.0)
        """
    )
    assert [f.rule for f in findings] == ["yield-from-comm"]
    assert "use 'yield'" in findings[0].message


def test_discarded_collective_generator_is_flagged():
    assert rules_hit(
        """\
        __all__ = []
        def program(comm):
            dissemination_barrier(comm)
            yield from comm.barrier()
        """
    ) == ["yield-from-comm"]


def test_correct_comm_idioms_are_clean():
    assert rules_hit(
        """\
        __all__ = []
        def program(comm):
            yield from comm.send(1, nbytes=8)
            msg = yield from comm.recv(src=1)
            req = comm.irecv(src=2)
            yield from comm.send(2, nbytes=8)
            other = yield from comm.wait(req)
            yield comm.env.timeout(1.0)
            yield from comm.barrier()
            return msg, other
        """
    ) == []


def test_non_comm_methods_are_not_flagged():
    assert rules_hit(
        """\
        __all__ = []
        def f(items, sock):
            items.append(1)
            sock.close()
        """
    ) == []


# -- determinism-hazard -----------------------------------------------------


def test_wall_clock_is_flagged():
    findings = lint(
        """\
        __all__ = []
        import time
        def f():
            return time.time()
        """
    )
    assert [f.rule for f in findings] == ["determinism-hazard"]


def test_datetime_now_is_flagged():
    assert rules_hit(
        """\
        __all__ = []
        import datetime
        def f():
            return datetime.datetime.now()
        """
    ) == ["determinism-hazard"]


def test_stdlib_random_is_flagged():
    assert rules_hit(
        """\
        __all__ = []
        import random
        def f():
            return random.randint(0, 7)
        """
    ) == ["determinism-hazard"]


def test_numpy_legacy_rng_is_flagged():
    assert rules_hit(
        """\
        __all__ = []
        import numpy as np
        def f():
            return np.random.rand(4)
        """
    ) == ["determinism-hazard"]


def test_unseeded_default_rng_is_flagged():
    assert rules_hit(
        """\
        __all__ = []
        import numpy as np
        def f():
            return np.random.default_rng()
        """
    ) == ["determinism-hazard"]


def test_seeded_default_rng_is_clean():
    assert rules_hit(
        """\
        __all__ = []
        import numpy as np
        def f(seed):
            rng = np.random.default_rng(seed)
            return rng.random(3)
        """
    ) == []


# -- unit-hygiene -----------------------------------------------------------


def test_magic_timeout_literal_is_flagged():
    findings = lint(
        """\
        __all__ = []
        def program(env):
            yield env.timeout(0.000003)
        """
    )
    assert [f.rule for f in findings] == ["unit-hygiene"]
    assert findings[0].severity is Severity.WARNING
    assert "US" in findings[0].message


def test_magic_latency_keyword_is_flagged():
    assert rules_hit(
        """\
        __all__ = []
        def f(make):
            return make(latency=0.0000028)
        """
    ) == ["unit-hygiene"]


def test_unit_constants_and_exponent_notation_are_clean():
    assert rules_hit(
        """\
        __all__ = []
        US = 1e-6
        def program(env, make):
            yield env.timeout(3 * US)
            yield env.timeout(2.5)
            yield env.timeout(0)
            return make(latency=3.0e-6, hop_latency=100e-9)
        """
    ) == []


# -- api-hygiene ------------------------------------------------------------


def test_missing_all_is_flagged():
    findings = lint("def f():\n    return 1\n")
    assert [f.rule for f in findings] == ["api-missing-all"]
    assert findings[0].severity is Severity.WARNING


def test_private_modules_are_exempt_from_all():
    assert lint_text("def f():\n    return 1\n", path="pkg/_private.py") == []
    assert lint_text("def f():\n    return 1\n", path="pkg/__main__.py") == []


def test_test_modules_are_exempt_from_all():
    body = "def f():\n    return 1\n"
    assert lint_text(body, path="tests/apps/test_x.py") == []
    assert lint_text(body, path="tests/conftest.py") == []
    assert lint_text(body, path="tests/apps/__init__.py") == []
    assert lint_text(body, path="benchmarks/bench_y.py") == []


def test_main_guarded_scripts_are_exempt_from_all():
    script = 'def main():\n    return 1\n\nif __name__ == "__main__":\n    main()\n'
    assert lint_text(script, path="examples/quickstart.py") == []
    # ...but an __init__ outside a tests/ tree is still public surface.
    body = "def f():\n    return 1\n"
    assert [f.rule for f in lint_text(body, path="pkg/__init__.py")] == ["api-missing-all"]


def test_mutable_default_is_flagged():
    findings = lint(
        """\
        __all__ = []
        def f(items=[]):
            return items
        """
    )
    assert [f.rule for f in findings] == ["api-mutable-default"]
    assert "'items'" in findings[0].message


def test_mutable_default_call_and_kwonly_are_flagged():
    assert rules_hit(
        """\
        __all__ = []
        def f(a, cache=dict(), *, seen=set()):
            return a, cache, seen
        """
    ) == ["api-mutable-default", "api-mutable-default"]


def test_none_default_is_clean():
    assert rules_hit(
        """\
        __all__ = []
        def f(items=None, n=3, name="x"):
            return items or [n, name]
        """
    ) == []


# -- suppressions -----------------------------------------------------------


def test_line_suppression_silences_only_that_line():
    findings = lint(
        """\
        __all__ = []
        import time
        def f():
            a = time.time()  # simlint: ignore[determinism-hazard]
            b = time.time()
            return a, b
        """
    )
    assert [f.line for f in findings] == [5]


def test_file_suppression_silences_the_named_rule_everywhere():
    findings = lint(
        """\
        # simlint: ignore[determinism-hazard]
        __all__ = []
        import time
        def f(items=[]):
            return time.time(), items
        """
    )
    assert [f.rule for f in findings] == ["api-mutable-default"]


def test_blanket_suppression_silences_everything():
    assert lint(
        """\
        # simlint: ignore
        import time
        def f(items=[]):
            return time.time(), items
        """
    ) == []


def test_parse_error_is_reported_not_raised():
    findings = lint("def broken(:\n")
    assert [f.rule for f in findings] == ["parse-error"]
