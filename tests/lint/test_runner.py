"""Tests for the lint runner and the ``repro lint`` CLI subcommand."""

import json
import textwrap

from repro.cli import main
from repro.lint import lint_paths, render_json, render_text

DIRTY = textwrap.dedent(
    """\
    import time
    def f():
        return time.time()
    """
)

CLEAN = textwrap.dedent(
    """\
    __all__ = ["f"]
    def f():
        return 1
    """
)


def write(tmp_path, name, text):
    p = tmp_path / name
    p.write_text(text)
    return p


def test_lint_paths_walks_directories(tmp_path):
    write(tmp_path, "dirty.py", DIRTY)
    write(tmp_path, "clean.py", CLEAN)
    (tmp_path / "sub").mkdir()
    write(tmp_path / "sub", "also_dirty.py", DIRTY)
    write(tmp_path, "not_python.txt", "time.time()")
    result = lint_paths([str(tmp_path)])
    assert result.files_checked == 3
    assert {f.rule for f in result.findings} == {
        "determinism-hazard",
        "api-missing-all",
    }
    assert result.exit_code == 1


def test_findings_are_deterministically_ordered(tmp_path):
    write(tmp_path, "b.py", DIRTY)
    write(tmp_path, "a.py", DIRTY)
    result = lint_paths([str(tmp_path)])
    assert [f.path for f in result.findings] == sorted(f.path for f in result.findings)


def test_render_text_has_one_line_per_finding_plus_summary(tmp_path):
    write(tmp_path, "dirty.py", DIRTY)
    result = lint_paths([str(tmp_path)])
    lines = render_text(result).splitlines()
    assert len(lines) == len(result.findings) + 1
    assert "error(s)" in lines[-1]
    assert any("[determinism-hazard]" in line for line in lines)


def test_render_json_roundtrips(tmp_path):
    write(tmp_path, "dirty.py", DIRTY)
    result = lint_paths([str(tmp_path)])
    doc = json.loads(render_json(result))
    assert doc["files_checked"] == 1
    assert doc["errors"] == 1
    by_rule = {f["rule"]: f for f in doc["findings"]}
    assert by_rule["determinism-hazard"]["severity"] == "error"
    assert by_rule["api-missing-all"]["severity"] == "warning"


def test_cli_exit_codes(tmp_path, capsys):
    clean = write(tmp_path, "clean.py", CLEAN)
    dirty = write(tmp_path, "dirty.py", DIRTY)
    assert main(["lint", str(clean)]) == 0
    assert main(["lint", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "determinism-hazard" in out


def test_cli_json_format(tmp_path, capsys):
    dirty = write(tmp_path, "dirty.py", DIRTY)
    assert main(["lint", "--format", "json", str(dirty)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["errors"] == 1


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "yield-from-comm" in out
    assert "determinism-hazard" in out
