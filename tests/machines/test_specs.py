"""Spec dataclass validation and derived quantities."""

import pytest

from repro.machines import (
    BGP,
    CacheLevel,
    CoreSpec,
    MemorySpec,
    MpiSpec,
    PowerSpec,
    TorusSpec,
    TreeSpec,
    XT4_QC,
)


# ---------------------------------------------------------------------------
# CacheLevel
# ---------------------------------------------------------------------------
def test_cache_validation():
    with pytest.raises(ValueError):
        CacheLevel(size_bytes=0, shared=False)
    with pytest.raises(ValueError):
        CacheLevel(size_bytes=1024, shared=False, line_bytes=48)  # not pow2


# ---------------------------------------------------------------------------
# MemorySpec
# ---------------------------------------------------------------------------
def test_memory_defaults_derive_from_peak():
    m = MemorySpec(capacity_bytes=1 << 30, peak_bandwidth=10e9)
    assert m.single_core_stream == pytest.approx(3.5e9)
    assert m.node_stream == pytest.approx(7.0e9)


def test_memory_validation():
    with pytest.raises(ValueError):
        MemorySpec(capacity_bytes=0, peak_bandwidth=1e9)
    with pytest.raises(ValueError):
        MemorySpec(capacity_bytes=1, peak_bandwidth=1e9, node_stream=2e9)


def test_stream_per_process_regimes():
    m = MemorySpec(
        capacity_bytes=1 << 30,
        peak_bandwidth=10e9,
        single_core_stream=4e9,
        node_stream=8e9,
    )
    assert m.stream_per_process(1) == 4e9  # single-core limited
    assert m.stream_per_process(4) == 2e9  # node-bandwidth share
    with pytest.raises(ValueError):
        m.stream_per_process(0)


# ---------------------------------------------------------------------------
# CoreSpec / TorusSpec / TreeSpec
# ---------------------------------------------------------------------------
def test_core_peak():
    c = CoreSpec(clock_hz=1e9, flops_per_cycle=4)
    assert c.peak_flops == 4e9


def test_torus_single_stream():
    t = TorusSpec(link_bandwidth=500e6, links_per_node=6, hop_latency=1e-7)
    assert t.single_stream_bandwidth == 500e6
    assert t.injection_bandwidth == 6e9


def test_torus_injection_cap():
    t = TorusSpec(
        link_bandwidth=2e9, links_per_node=6, hop_latency=1e-7, injection_cap=6.4e9
    )
    assert t.injection_bandwidth == 6.4e9


def test_tree_dtype_support():
    tree = TreeSpec(link_bandwidth=850e6, links_per_node=3, hop_latency=1e-7)
    assert tree.supports_reduce("float64")
    assert tree.supports_reduce("int32")
    assert not tree.supports_reduce("float32")


# ---------------------------------------------------------------------------
# MpiSpec / PowerSpec
# ---------------------------------------------------------------------------
def test_mpi_validation():
    with pytest.raises(ValueError):
        MpiSpec(
            latency=-1,
            send_overhead=0,
            recv_overhead=0,
            eager_threshold=1024,
            rendezvous_overhead=0,
        )


def test_power_aggregate_kinds():
    p = PowerSpec(hpl_watts_per_core=10.0, normal_watts_per_core=8.0)
    assert p.aggregate(100, "hpl") == 1000
    assert p.aggregate(100, "normal") == 800
    assert p.aggregate(100, "idle") == pytest.approx(480)
    with pytest.raises(KeyError):
        p.aggregate(1, "turbo")


# ---------------------------------------------------------------------------
# MachineSpec derived values
# ---------------------------------------------------------------------------
def test_machine_totals():
    assert BGP.total_cores == BGP.total_nodes * 4
    assert BGP.peak_flops_total == pytest.approx(BGP.total_nodes * 13.6e9)


def test_watts_per_gflop_peak():
    # BG/P SoC+system: ~2.3 W per peak GFlop/s at wall (1.8 for the SoC
    # alone per Section I.A; ours includes the full-system share).
    assert 1.8 < BGP.watts_per_gflop_peak < 2.6
    assert XT4_QC.watts_per_gflop_peak > 2 * BGP.watts_per_gflop_peak


def test_hpl_efficiency_bounds():
    import dataclasses

    with pytest.raises(ValueError):
        dataclasses.replace(BGP, hpl_efficiency=1.5)
