"""PowerMeter / power-helper behaviour beyond the Table 3 cases."""

import pytest

from repro.machines import (
    aggregate_power_kw,
    BGP,
    hpl_mflops_per_watt,
    PowerMeter,
    PowerSample,
    XT4_QC,
)


def test_sample_properties():
    s = PowerSample(start=1.0, end=3.0, watts=50.0, label="x")
    assert s.duration == 2.0
    assert s.joules == 100.0


def test_meter_empty():
    m = PowerMeter(BGP, cores=4)
    assert m.total_joules == 0.0
    assert m.elapsed == 0.0
    assert m.average_watts() == 0.0


def test_meter_gaps_handled():
    """Elapsed spans min(start)..max(end) even with gaps."""
    m = PowerMeter(BGP, cores=1)
    m.record(0, 1, "normal")
    m.record(5, 6, "normal")
    assert m.elapsed == 6.0
    assert m.average_watts() < m.watts_for("normal")


def test_aggregate_power_kw_helper():
    assert aggregate_power_kw(BGP, 8192, "hpl") == pytest.approx(63.1, rel=0.01)


def test_green500_default_cores():
    full = hpl_mflops_per_watt(BGP)
    partial = hpl_mflops_per_watt(BGP, 8192)
    # Per-core rates are uniform, so the metric is scale-free.
    assert full == pytest.approx(partial)


def test_bgp_tops_green500_ordering():
    """'BG/P and BG/L own the top 26 spots on the Green500' — at least:
    BG/P beats every XT here."""
    assert hpl_mflops_per_watt(BGP) > 2 * hpl_mflops_per_watt(XT4_QC)
