"""The machine catalog must encode the paper's Table 1/3 numbers."""

import pytest

from repro.machines import (
    all_machines,
    ANL_BGP_NODES,
    BGL,
    BGP,
    get_machine,
    MACHINE_NAMES,
    ORNL_BGP_NODES,
    XT3,
    XT4_DC,
    XT4_QC,
)


# ---------------------------------------------------------------------------
# Table 1 values
# ---------------------------------------------------------------------------
def test_bgp_node_shape():
    assert BGP.node.cores == 4
    assert BGP.node.core.clock_hz == 850e6
    # "3.4 GFlop/s per core, or 13.6 GFlop/s per compute node"
    assert BGP.node.core.peak_flops == pytest.approx(3.4e9)
    assert BGP.node.peak_flops == pytest.approx(13.6e9)


def test_bgp_memory():
    assert BGP.node.memory.capacity_bytes == 2 * 1024**3
    assert BGP.node.memory.peak_bandwidth == pytest.approx(13.6e9)


def test_bgp_torus_injection_bandwidth():
    # "425 MB/s in each direction for a total of 5.1 GB/s bidirectional"
    assert BGP.torus.link_bandwidth == pytest.approx(425e6)
    assert BGP.torus.injection_bandwidth == pytest.approx(5.1e9)


def test_bgp_tree_bandwidth():
    # "three links ... at 850 MB/s per direction"
    assert BGP.tree is not None
    assert BGP.tree.link_bandwidth == pytest.approx(850e6)
    assert BGP.tree.links_per_node == 3


def test_bgl_node_shape():
    assert BGL.node.cores == 2
    assert BGL.node.core.clock_hz == 700e6
    assert BGL.node.peak_flops == pytest.approx(5.6e9)


def test_xt4_qc_node_shape():
    assert XT4_QC.node.cores == 4
    assert XT4_QC.node.core.clock_hz == 2100e6
    # Cross-check against Table 3: 260.2 TF / 30976 cores = 8.4 GF/core.
    assert XT4_QC.node.core.peak_flops == pytest.approx(8.4e9)
    assert XT4_QC.total_cores == 30976
    assert XT4_QC.peak_flops_total == pytest.approx(260.2e12, rel=0.01)


def test_xt_injection_capped_at_6_4():
    for m in (XT3, XT4_DC, XT4_QC):
        assert m.torus.injection_bandwidth == pytest.approx(6.4e9)


def test_cache_hierarchy_per_table1():
    assert BGP.node.l1.size_bytes == 32 * 1024
    assert BGP.node.l3.size_bytes == 8 * 1024**2 and BGP.node.l3.shared
    assert BGL.node.l3.size_bytes == 4 * 1024**2
    assert XT3.node.l1.size_bytes == 64 * 1024
    assert XT3.node.l2.size_bytes == 1024**2 and not XT3.node.l2.shared
    assert XT3.node.l3 is None
    assert XT4_QC.node.l2.size_bytes == 512 * 1024
    assert XT4_QC.node.l3.size_bytes == 2 * 1024**2 and XT4_QC.node.l3.shared


def test_coherence_kinds():
    from repro.machines import CoherenceKind

    assert BGL.node.coherence is CoherenceKind.SOFTWARE
    assert BGP.node.coherence is CoherenceKind.HARDWARE


def test_density_cores_per_rack():
    # Section I.A: BG/P 4096/rack, XT3 192, XT4 quad 384.
    assert BGP.cores_per_rack == 4096
    assert XT3.cores_per_rack == 192
    assert XT4_QC.cores_per_rack == 384


# ---------------------------------------------------------------------------
# Table 3 values
# ---------------------------------------------------------------------------
def test_power_per_core_table3():
    assert BGP.power.hpl_watts_per_core == pytest.approx(7.7)
    assert BGP.power.normal_watts_per_core == pytest.approx(7.3)
    assert XT4_QC.power.hpl_watts_per_core == pytest.approx(51.0)
    assert XT4_QC.power.normal_watts_per_core == pytest.approx(48.4)


def test_power_ratio_6_6x():
    # "a difference of 6.6 times"
    ratio = XT4_QC.power.hpl_watts_per_core / BGP.power.hpl_watts_per_core
    assert ratio == pytest.approx(6.6, rel=0.01)


def test_hpl_efficiency_from_table3():
    assert BGP.hpl_efficiency == pytest.approx(21.9 / 27.9, abs=0.005)
    assert XT4_QC.hpl_efficiency == pytest.approx(205.0 / 260.2, abs=0.005)


# ---------------------------------------------------------------------------
# Lookup machinery
# ---------------------------------------------------------------------------
def test_get_machine_aliases():
    assert get_machine("bgp") is BGP
    assert get_machine("Intrepid") is BGP
    assert get_machine("jaguar") is XT4_QC
    assert get_machine("XT4/DC") is XT4_DC


def test_get_machine_unknown():
    with pytest.raises(KeyError):
        get_machine("crayon")


def test_all_machines_complete():
    machines = all_machines()
    assert set(machines) == set(MACHINE_NAMES)


def test_site_sizes():
    assert ORNL_BGP_NODES == 2048  # two racks (Section I.B)
    assert ANL_BGP_NODES == 40960  # forty racks (Section I.C)


def test_with_nodes_scales_install():
    eugene = BGP.with_nodes(ORNL_BGP_NODES)
    assert eugene.total_cores == 8192
    assert eugene.node is BGP.node  # spec shared, only scale changed


def test_torus_shape_factorization():
    shape = BGP.torus_shape(512)
    assert shape[0] * shape[1] * shape[2] == 512
    # Should be reasonably cubic.
    assert max(shape) / min(shape) <= 2
    with pytest.raises(ValueError):
        BGP.torus_shape(0)
