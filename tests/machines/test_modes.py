"""Execution-mode resolution (SMP/DUAL/VN, SN/VN) per paper Section I.A/D."""

import pytest

from repro.machines import available_modes, BGL, BGP, Mode, resolve_mode, XT4_QC


def test_bgp_supports_three_modes():
    assert available_modes(BGP) == (Mode.SMP, Mode.DUAL, Mode.VN)


def test_xt_uses_sn_vn():
    assert available_modes(XT4_QC) == (Mode.SN, Mode.VN)


def test_bgl_has_no_dual():
    assert Mode.DUAL not in available_modes(BGL)


def test_dual_rejected_on_xt():
    with pytest.raises(ValueError):
        resolve_mode(XT4_QC, Mode.DUAL)


def test_smp_mode_tasks_and_threads():
    cfg = resolve_mode(BGP, "SMP")
    assert cfg.tasks_per_node == 1
    assert cfg.threads_per_task == 4


def test_dual_mode_splits_evenly():
    # "Memory and cores are split evenly between the two tasks."
    cfg = resolve_mode(BGP, "DUAL")
    assert cfg.tasks_per_node == 2
    assert cfg.threads_per_task == 2
    assert cfg.memory_per_task == pytest.approx(1 * 1024**3)


def test_vn_mode_one_task_per_core():
    cfg = resolve_mode(BGP, "VN")
    assert cfg.tasks_per_node == 4
    assert cfg.threads_per_task == 1
    assert cfg.memory_per_task == pytest.approx(0.5 * 1024**3)


def test_sn_is_smp_synonym():
    xt_sn = resolve_mode(XT4_QC, "SN")
    assert xt_sn.tasks_per_node == 1
    # SMP accepted on XT via canonicalization.
    xt_smp = resolve_mode(XT4_QC, "SMP")
    assert xt_smp.tasks_per_node == 1


def test_injection_bandwidth_shared_among_tasks():
    # Section I.A: torus bandwidth "is shared among the node's four cores".
    vn = resolve_mode(BGP, "VN")
    smp = resolve_mode(BGP, "SMP")
    assert vn.injection_bw_per_task == pytest.approx(smp.injection_bw_per_task / 4)


def test_stream_bandwidth_share():
    vn = resolve_mode(BGP, "VN")
    single = BGP.node.memory.single_core_stream
    quarter = BGP.node.memory.node_stream / 4
    assert vn.stream_bw_per_task == pytest.approx(min(single, quarter))


def test_peak_flops_per_task():
    assert resolve_mode(BGP, "SMP").peak_flops_per_task == pytest.approx(13.6e9)
    assert resolve_mode(BGP, "VN").peak_flops_per_task == pytest.approx(3.4e9)


def test_rank_node_conversions():
    cfg = resolve_mode(BGP, "VN")
    assert cfg.ranks_for_nodes(16) == 64
    assert cfg.nodes_for_ranks(64) == 16
    assert cfg.nodes_for_ranks(65) == 17  # ceiling


def test_mode_string_case_insensitive():
    assert resolve_mode(BGP, "vn").tasks_per_node == 4
