"""I/O subsystem tests (paper Sections I.A-I.C)."""

import pytest

from repro.iosys import EUGENE_HOME, EUGENE_SCRATCH, GpfsConfig, IoForwarding
from repro.machines import BGP, XT4_QC


# ---------------------------------------------------------------------------
# GPFS
# ---------------------------------------------------------------------------
def test_eugene_scratch_from_paper():
    """'~70 TB ... 8 file servers and 2 metadata servers ... 24 LUNs,
    each ... approximately 3.6 TB'."""
    fs = EUGENE_SCRATCH
    assert fs.capacity_bytes == pytest.approx(70e12)
    assert fs.file_servers == 8
    assert fs.metadata_servers == 2
    assert fs.luns == 24
    assert fs.lun_capacity_bytes == pytest.approx(3.6e12)


def test_lun_capacity_covers_advertised():
    """24 x 3.6 TB = 86.4 TB raw for a ~70 TB filesystem (8+2 parity)."""
    assert EUGENE_SCRATCH.usable_fraction_check() == pytest.approx(
        86.4 / 70, rel=0.01
    )


def test_aggregate_bandwidth_is_min_of_stages():
    fs = EUGENE_SCRATCH
    assert fs.aggregate_bandwidth == min(
        fs.luns * fs.lun_bandwidth,
        fs.file_servers * fs.server_bandwidth,
        fs.controller_bandwidth,
    )


def test_home_slower_than_scratch():
    assert EUGENE_HOME.aggregate_bandwidth < EUGENE_SCRATCH.aggregate_bandwidth


def test_gpfs_validation():
    with pytest.raises(ValueError):
        GpfsConfig("x", 1e12, 0, 1, 1, 1e12)
    with pytest.raises(ValueError):
        GpfsConfig("x", 0, 1, 1, 1, 1e12)


# ---------------------------------------------------------------------------
# forwarding
# ---------------------------------------------------------------------------
def test_ion_ratio_64_to_1():
    """'each IO node serves the I/O requests from 64 compute nodes'."""
    io = IoForwarding(BGP, compute_nodes=2048)
    assert io.io_nodes == 32  # two racks x 16 IONs


def test_xt_has_no_tree_path():
    with pytest.raises(ValueError):
        IoForwarding(XT4_QC, compute_nodes=128)


def test_write_bandwidth_bounded_by_filesystem():
    io = IoForwarding(BGP, compute_nodes=2048)
    est = io.write(100e9)
    assert est.bandwidth <= EUGENE_SCRATCH.aggregate_bandwidth * 1.01
    assert est.bottleneck in io.stage_bandwidths()


def test_small_partition_limited_by_ions():
    """A one-ION partition cannot exceed one NIC."""
    io = IoForwarding(BGP, compute_nodes=32)
    est = io.write(10e9)
    assert est.bandwidth <= io.ion_nic_bandwidth * 1.01
    assert est.bottleneck in ("collective-tree", "ion-nics")


def test_few_writers_cannot_saturate():
    """Funnelled I/O (the anti-pattern behind the CAM I/O issue)."""
    io = IoForwarding(BGP, compute_nodes=2048)
    one = io.write(10e9, writers=1)
    many = io.write(10e9, writers=256)
    assert one.seconds > many.seconds
    assert one.bottleneck == "writer-fanout"


def test_bigger_partitions_write_faster_until_fs_limit():
    small = IoForwarding(BGP, compute_nodes=64).write(50e9)
    large = IoForwarding(BGP, compute_nodes=4096).write(50e9)
    assert large.seconds < small.seconds


def test_read_symmetric():
    io = IoForwarding(BGP, compute_nodes=512)
    assert io.read(1e9).seconds == io.write(1e9).seconds


def test_validation():
    io = IoForwarding(BGP, compute_nodes=512)
    with pytest.raises(ValueError):
        io.write(-1)
    with pytest.raises(ValueError):
        io.write(1e9, writers=0)
    with pytest.raises(ValueError):
        IoForwarding(BGP, compute_nodes=0)
