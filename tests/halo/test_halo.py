"""HALO benchmark: real exchange correctness + paper Fig. 2 shapes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.halo import (
    best_mapping,
    get_protocol,
    halo_exchange_numpy,
    HaloBenchmark,
    HaloSpec,
    neighbors2d,
    PROTOCOLS,
    WORD_BYTES,
)
from repro.machines import BGP
from repro.topology import PAPER_FIG2_MAPPINGS


# ---------------------------------------------------------------------------
# the real exchange
# ---------------------------------------------------------------------------
def test_numpy_halo_exact():
    assert halo_exchange_numpy(grid=(4, 4), local=8) == 0.0


def test_numpy_halo_rectangular():
    assert halo_exchange_numpy(grid=(2, 5), local=6) == 0.0


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 5), st.integers(2, 5), st.integers(3, 10))
def test_numpy_halo_property(px, py, local):
    """The exchange is exact for every grid/block size."""
    assert halo_exchange_numpy(grid=(px, py), local=local) == 0.0


def test_neighbors_periodic():
    nb = neighbors2d(0, (4, 4))
    assert nb["west"] == 3  # wraps
    assert nb["north"] == 12  # wraps
    assert nb["east"] == 1
    assert nb["south"] == 4


def test_neighbors_validation():
    with pytest.raises(ValueError):
        neighbors2d(16, (4, 4))


def test_spec_sizes():
    spec = HaloSpec(grid=(4, 4), words=100)
    assert spec.north_bytes == 100 * WORD_BYTES
    assert spec.south_bytes == 200 * WORD_BYTES
    assert spec.total_bytes_per_rank == 2 * 300 * WORD_BYTES
    with pytest.raises(ValueError):
        HaloSpec(grid=(0, 4), words=10)
    with pytest.raises(ValueError):
        HaloSpec(grid=(4, 4), words=0)


def test_protocol_lookup():
    assert get_protocol("sendrecv").serializes
    assert not get_protocol("ISEND_IRECV").serializes
    with pytest.raises(KeyError):
        get_protocol("CARRIER_PIGEON")


# ---------------------------------------------------------------------------
# DES vs analytic
# ---------------------------------------------------------------------------
def test_des_vs_analytic_small_scale():
    hb = HaloBenchmark(BGP, grid=(4, 4), mode="VN", mapping="TXYZ")
    for words in (8, 512):
        des = hb.run_des(words)
        ana = hb.time_analytic(words)
        assert des == pytest.approx(ana, rel=1.0)


def test_des_protocols_all_run():
    hb = HaloBenchmark(BGP, grid=(4, 4), mode="VN", mapping="TXYZ")
    times = {p: hb.run_des(64, protocol=p) for p in PROTOCOLS}
    assert all(t > 0 for t in times.values())


# ---------------------------------------------------------------------------
# paper Fig. 2 shapes
# ---------------------------------------------------------------------------
def test_protocol_insensitivity_small_halos():
    """Fig. 2a/b: 'performance is relatively insensitive to the choice
    of protocol'."""
    hb = HaloBenchmark(BGP, grid=(16, 16), mode="VN", mapping="TXYZ")
    times = [hb.time_analytic(8, p) for p in PROTOCOLS]
    assert max(times) / min(times) < 2.5


def test_sendrecv_slower_at_some_sizes():
    """Fig. 2a: 'MPI_SENDRECV is slower than the other options for
    certain halo sizes'."""
    hb = HaloBenchmark(BGP, grid=(16, 16), mode="VN", mapping="TXYZ")
    slower_somewhere = any(
        hb.time_analytic(w, "SENDRECV") > 1.1 * hb.time_analytic(w, "ISEND_IRECV")
        for w in (8, 512, 8192, 65536)
    )
    assert slower_somewhere


def test_mapping_unimportant_small_volumes():
    """Fig. 2c/d: 'the choice of mapping is unimportant for small halo
    volumes'."""
    times = [
        HaloBenchmark(BGP, (32, 32), mode="VN", mapping=m).time_analytic(4)
        for m in ("TXYZ", "XYZT", "TZYX")
    ]
    assert max(times) / min(times) < 1.5


def test_mapping_important_large_volumes():
    """Fig. 2c/d: 'it is important for larger volumes for these large
    processor grids'."""
    times = [
        HaloBenchmark(BGP, (64, 64), mode="VN", mapping=m).time_analytic(50000)
        for m in PAPER_FIG2_MAPPINGS
    ]
    assert max(times) / min(times) > 2.0


def test_cost_flat_in_grid_size():
    """Fig. 2e/f: 'the cost does not appear to be increasing as a
    function of the processor grid size' — good scalability."""
    small = best_mapping(BGP, (16, 16), 2048, list(PAPER_FIG2_MAPPINGS))[1]
    large = best_mapping(BGP, (64, 64), 2048, list(PAPER_FIG2_MAPPINGS))[1]
    assert large < 3 * small


def test_sweep_returns_points():
    hb = HaloBenchmark(BGP, grid=(8, 8), mode="VN", mapping="TXYZ")
    pts = hb.sweep([8, 64, 512])
    assert [p.words for p in pts] == [8, 64, 512]
    assert all(p.seconds > 0 for p in pts)
    # Cost grows with halo width.
    assert pts[-1].seconds > pts[0].seconds


def test_grid_capacity_validated():
    with pytest.raises(ValueError):
        # 1 node in SMP can host 1 rank; a 64x64 grid cannot fit.
        HaloBenchmark(BGP.with_nodes(1), grid=(64, 64), mode="SMP")
