"""API hygiene: every public item documented, every package importable."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.simengine",
    "repro.machines",
    "repro.topology",
    "repro.simmpi",
    "repro.memmodel",
    "repro.kernels",
    "repro.halo",
    "repro.imb",
    "repro.apps",
    "repro.apps.pop",
    "repro.apps.cam",
    "repro.apps.s3d",
    "repro.apps.gyro",
    "repro.apps.md",
    "repro.power",
    "repro.iosys",
    "repro.core",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    mod = importlib.import_module(name)
    assert mod.__doc__, f"{name} lacks a module docstring"


def _all_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                yield f"{pkg_name}.{info.name}"


@pytest.mark.parametrize("name", sorted(set(_all_modules())))
def test_module_docstrings(name):
    mod = importlib.import_module(name)
    assert mod.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("pkg_name", [p for p in PACKAGES if p != "repro.apps"])
def test_public_surface_documented(pkg_name):
    """Everything a package exports carries a docstring."""
    pkg = importlib.import_module(pkg_name)
    exported = getattr(pkg, "__all__", [])
    undocumented = []
    for name in exported:
        obj = getattr(pkg, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, f"{pkg_name}: undocumented exports {undocumented}"


@pytest.mark.parametrize("pkg_name", [p for p in PACKAGES if p not in ("repro", "repro.apps")])
def test_all_lists_are_accurate(pkg_name):
    """__all__ names must actually exist."""
    pkg = importlib.import_module(pkg_name)
    for name in getattr(pkg, "__all__", []):
        assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name}"


def test_version_string():
    assert repro.__version__ == "1.0.0"
