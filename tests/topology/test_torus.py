"""Torus routing, distances, and contention properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machines import BGP
from repro.simengine import Engine
from repro.topology import Torus3D


def make_torus(shape, env=None):
    return Torus3D(shape, BGP.torus, env)


def test_shape_validation():
    with pytest.raises(ValueError):
        make_torus((0, 2, 2))
    with pytest.raises(ValueError):
        Torus3D((2, 2), BGP.torus)


def test_num_nodes():
    assert make_torus((4, 3, 2)).num_nodes == 24


def test_neighbors_interior():
    t = make_torus((4, 4, 4))
    nbrs = t.neighbors((1, 1, 1))
    assert len(nbrs) == 6
    assert (0, 1, 1) in nbrs and (2, 1, 1) in nbrs


def test_neighbors_wraparound():
    t = make_torus((4, 4, 4))
    nbrs = t.neighbors((0, 0, 0))
    assert (3, 0, 0) in nbrs  # wrap in X
    assert (0, 3, 0) in nbrs  # wrap in Y


def test_degenerate_dimension_no_self_links():
    t = make_torus((4, 1, 1))
    nbrs = t.neighbors((0, 0, 0))
    assert (0, 0, 0) not in nbrs
    assert set(nbrs) == {(1, 0, 0), (3, 0, 0)}


def test_extent_two_single_neighbor():
    t = make_torus((2, 1, 1))
    assert t.neighbors((0, 0, 0)) == [(1, 0, 0)]


def test_hop_distance_wraps():
    t = make_torus((8, 8, 8))
    assert t.hop_distance((0, 0, 0), (7, 0, 0)) == 1  # wrap
    assert t.hop_distance((0, 0, 0), (4, 0, 0)) == 4
    assert t.hop_distance((0, 0, 0), (4, 4, 4)) == 12


def test_max_distance_diameter():
    assert make_torus((8, 8, 8)).max_distance() == 12
    assert make_torus((4, 1, 1)).max_distance() == 2


def test_average_distance_ring_formulas():
    # even extent k: mean k/4; odd k: (k^2-1)/(4k)
    assert make_torus((8, 1, 1)).average_distance() == pytest.approx(2.0)
    assert make_torus((5, 1, 1)).average_distance() == pytest.approx(24 / 20)
    assert make_torus((8, 8, 8)).average_distance() == pytest.approx(6.0)


def test_average_distance_matches_bruteforce():
    t = make_torus((4, 3, 2))
    nodes = list(t.nodes())
    total = sum(t.hop_distance(a, b) for a in nodes for b in nodes)
    brute = total / (len(nodes) ** 2)
    assert t.average_distance() == pytest.approx(brute)


def test_route_follows_dimension_order():
    t = make_torus((4, 4, 4))
    path = t.route((0, 0, 0), (2, 1, 0))
    # X first (2 hops), then Y (1 hop).
    assert len(path) == 3
    assert path[0] == ((0, 0, 0), (1, 0, 0))
    assert path[-1] == ((2, 0, 0), (2, 1, 0))


def test_route_takes_short_wrap():
    t = make_torus((8, 1, 1))
    path = t.route((0, 0, 0), (7, 0, 0))
    assert len(path) == 1
    assert path[0] == ((0, 0, 0), (7, 0, 0))


def test_route_endpoints_validated():
    t = make_torus((2, 2, 2))
    with pytest.raises(ValueError):
        t.route((0, 0, 0), (5, 0, 0))


def test_bisection_bandwidth_positive():
    t = make_torus((8, 8, 8))
    assert t.bisection_bandwidth() > 0
    # 8x8x8: cut area 64, two cuts, per-direction links = 128
    assert t.bisection_links() == 4 * 64


def test_links_built_with_engine():
    env = Engine()
    t = make_torus((2, 2, 2), env)
    # 8 nodes x 6 neighbours = 48 directed links... but extent-2 dims
    # have a single neighbour per dim: 8 nodes x 3 nbrs = 24 directed.
    assert len(t.links) == 24


def test_route_links_requires_engine():
    t = make_torus((2, 2, 2))
    with pytest.raises(RuntimeError):
        t.route_links((0, 0, 0), (1, 0, 0))


def test_hottest_links_after_traffic():
    env = Engine()
    t = make_torus((4, 1, 1), env)
    for link in t.route_links((0, 0, 0), (2, 0, 0)):
        link.book(1e6, earliest=0.0)
    hot = t.hottest_links(2)
    assert len(hot) == 2
    # Utilisation is measured against sim time, still 0 here; the raw
    # busy-time stats must show the booked traffic.
    assert max(link.busy_time for link in t.links.values()) > 0
    assert sum(link.transfers for link in t.links.values()) == 2


@settings(max_examples=30)
@given(
    st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)),
    st.data(),
)
def test_route_length_equals_hop_distance(shape, data):
    """Dimension-order routes are always shortest paths on a torus."""
    t = make_torus(shape)
    nodes = list(t.nodes())
    a = data.draw(st.sampled_from(nodes))
    b = data.draw(st.sampled_from(nodes))
    assert len(t.route(a, b)) == t.hop_distance(a, b)


@settings(max_examples=30)
@given(
    st.tuples(st.integers(2, 6), st.integers(1, 6), st.integers(1, 6)),
    st.data(),
)
def test_route_is_connected_path(shape, data):
    """Every route is a chain of adjacent nodes from src to dst."""
    t = make_torus(shape)
    nodes = list(t.nodes())
    a = data.draw(st.sampled_from(nodes))
    b = data.draw(st.sampled_from(nodes))
    path = t.route(a, b)
    cur = a
    for frm, to in path:
        assert frm == cur
        assert to in t.neighbors(frm)
        cur = to
    assert cur == b
