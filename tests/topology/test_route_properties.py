"""Property tests: adaptive routes are cycle-free paths that reach dst.

Randomised torus shapes, endpoints, and injected link faults — the
adaptive router must always produce a chain of adjacent nodes from src
to dst that never revisits a node, or raise :class:`NoRouteError` when
the faults genuinely partition the network.
"""

from hypothesis import given, settings, strategies as st

from repro.machines import BGP
from repro.simengine import Engine
from repro.topology import NoRouteError, Torus3D


def make_torus(shape):
    return Torus3D(shape, BGP.torus, Engine())


def assert_simple_path(torus, path, src, dst):
    """The path is a connected, cycle-free chain from src to dst."""
    visited = [src]
    cur = src
    for frm, to in path:
        assert frm == cur
        assert to in torus.neighbors(frm)
        assert (frm, to) not in torus.failed_links
        assert to not in visited, f"route revisits {to}: cycle"
        visited.append(to)
        cur = to
    assert cur == dst


shapes = st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))


@settings(max_examples=50, deadline=None)
@given(shapes, st.data())
def test_route_adaptive_simple_path_healthy(shape, data):
    t = make_torus(shape)
    nodes = list(t.nodes())
    src = data.draw(st.sampled_from(nodes))
    dst = data.draw(st.sampled_from(nodes))
    nbytes = data.draw(st.integers(1, 1 << 20))
    path = t.route_adaptive(src, dst, nbytes)
    assert_simple_path(t, path, src, dst)


@settings(max_examples=50, deadline=None)
@given(shapes, st.data())
def test_route_adaptive_simple_path_with_faults(shape, data):
    t = make_torus(shape)
    nodes = list(t.nodes())
    links = sorted(t.links)
    if links:
        n_faults = data.draw(st.integers(0, min(6, len(links))))
        for key in data.draw(
            st.lists(
                st.sampled_from(links),
                min_size=n_faults,
                max_size=n_faults,
                unique=True,
            )
        ):
            t.fail_link(key)
    src = data.draw(st.sampled_from(nodes))
    dst = data.draw(st.sampled_from(nodes))
    try:
        path = t.route_adaptive(src, dst, nbytes=4096)
    except NoRouteError:
        # Acceptable only if the faults truly disconnect src from dst.
        assert t._route_around(src, dst) is None
        return
    assert_simple_path(t, path, src, dst)


@settings(max_examples=30, deadline=None)
@given(shapes, st.data())
def test_route_adaptive_deterministic(shape, data):
    t = make_torus(shape)
    nodes = list(t.nodes())
    src = data.draw(st.sampled_from(nodes))
    dst = data.draw(st.sampled_from(nodes))
    assert t.route_adaptive(src, dst, 1024) == t.route_adaptive(src, dst, 1024)
