"""Allocation model: BG isolation vs XT fragmentation (Fig. 1c)."""

import numpy as np
import pytest

from repro.machines import BGP, XT4_QC
from repro.topology import allocate, Partition


def test_bg_partitions_are_isolated():
    p = allocate(BGP, 512)
    assert p.is_isolated
    assert p.route_dilation == 1.0
    assert p.contention_multiplier == 1.0


def test_bg_allocation_deterministic():
    a = allocate(BGP, 512)
    b = allocate(BGP, 512)
    assert a == b


def test_xt_allocation_fragmented():
    rng = np.random.default_rng(1)
    p = allocate(XT4_QC, 1024, rng=rng, utilization=0.7)
    assert not p.is_isolated
    assert p.route_dilation > 1.0
    assert p.contention_multiplier > 1.0


def test_xt_quiet_machine_is_clean():
    p = allocate(XT4_QC, 1024, utilization=0.0)
    assert p.is_isolated


def test_xt_allocations_vary_run_to_run():
    """The source of the paper's PTRANS variability on the XT."""
    rng = np.random.default_rng(2)
    factors = {
        allocate(XT4_QC, 1024, rng=rng, utilization=0.7).contention_multiplier
        for _ in range(10)
    }
    assert len(factors) > 1


def test_shape_covers_nodes():
    p = allocate(BGP, 100)
    x, y, z = p.torus_shape
    assert x * y * z >= 100


def test_request_validation():
    with pytest.raises(ValueError):
        allocate(BGP, 0)
    with pytest.raises(ValueError):
        allocate(BGP, BGP.total_nodes + 1)
    with pytest.raises(ValueError):
        allocate(BGP, 16, utilization=1.5)


def test_partition_validation():
    with pytest.raises(ValueError):
        Partition(BGP, 10, (2, 2, 2), 1.0, 1.0)  # shape too small
    with pytest.raises(ValueError):
        Partition(BGP, 8, (2, 2, 2), 0.5, 1.0)  # dilation < 1


def test_effective_hops_dilation():
    p = Partition(XT4_QC, 8, (2, 2, 2), route_dilation=1.5, contention_multiplier=1.2)
    assert p.effective_hops(10) == pytest.approx(15.0)


def test_build_torus_degrades_bandwidth_under_contention():
    p = Partition(XT4_QC, 8, (2, 2, 2), route_dilation=1.0, contention_multiplier=2.0)
    t = p.build_torus()
    assert t.spec.link_bandwidth == pytest.approx(XT4_QC.torus.link_bandwidth / 2)
