"""Hardware vs software barrier models."""

import pytest

from repro.machines import BGP
from repro.simengine import Engine
from repro.topology import BarrierNetwork, software_barrier_time


def test_validation():
    with pytest.raises(ValueError):
        BarrierNetwork(0)
    with pytest.raises(ValueError):
        software_barrier_time(0, 1e-6)


def test_hardware_barrier_scales_logarithmically():
    t_small = BarrierNetwork(64).barrier_time()
    t_big = BarrierNetwork(65536).barrier_time()
    assert t_big < 3 * t_small  # log growth, not linear
    assert t_big > t_small


def test_hardware_barrier_is_microseconds():
    # BG/P's full-machine barrier takes a handful of microseconds.
    assert BarrierNetwork(40960).barrier_time() < 10e-6


def test_software_barrier_log_rounds():
    lat = 7e-6
    assert software_barrier_time(1, lat) == 0.0
    assert software_barrier_time(2, lat) == pytest.approx(lat)
    assert software_barrier_time(1024, lat) == pytest.approx(10 * lat)
    assert software_barrier_time(1025, lat) == pytest.approx(11 * lat)


def test_hardware_beats_software_at_scale():
    """The dedicated barrier network is the whole point (Section I.A)."""
    hw = BarrierNetwork(8192).barrier_time()
    sw = software_barrier_time(8192, BGP.mpi.latency)
    assert hw < sw


def test_wait_requires_engine():
    with pytest.raises(RuntimeError):
        BarrierNetwork(8).wait()  # simlint: ignore[yield-from-comm]


def test_wait_event_fires():
    env = Engine()
    bn = BarrierNetwork(16, env)

    def proc(env, bn):
        yield bn.wait()  # simlint: ignore[yield-from-comm] (Event, not comm.wait)
        return env.now

    p = env.process(proc(env, bn))
    env.run()
    assert p.value == pytest.approx(bn.barrier_time())
    assert bn.operations == 1
