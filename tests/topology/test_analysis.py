"""Static traffic-analysis utility tests."""

import pytest

from repro.halo import neighbors2d
from repro.machines import BGP
from repro.topology import analyze_pattern, compare_mappings, PAPER_FIG2_MAPPINGS


def ring_pattern(n, nbytes=1000):
    return [(r, (r + 1) % n, float(nbytes)) for r in range(n)]


def test_basic_accounting():
    ta = analyze_pattern(BGP, (2, 2, 2), "XYZT", 1, ring_pattern(8))
    assert ta.total_bytes == 8000
    assert ta.network_messages + ta.intranode_messages == 8
    assert ta.max_link_bytes >= ta.mean_link_bytes > 0


def test_intranode_messages_skip_links():
    # TXYZ VN: ranks 0-3 share node (0,0,0): rank 0 -> 1 is intranode.
    pattern = [(0, 1, 500.0)]
    ta = analyze_pattern(BGP, (2, 2, 2), "TXYZ", 4, pattern)
    assert ta.intranode_messages == 1
    assert ta.network_messages == 0
    assert ta.max_link_bytes == 0.0


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        analyze_pattern(BGP, (2, 2, 2), "XYZT", 1, [(0, 1, -5.0)])


def test_phase_seconds():
    ta = analyze_pattern(BGP, (4, 1, 1), "XYZT", 1, ring_pattern(4))
    assert ta.phase_seconds(1e9) == pytest.approx(ta.max_link_bytes / 1e9)
    with pytest.raises(ValueError):
        ta.phase_seconds(0.0)


def test_hottest_sorted():
    pattern = ring_pattern(8) + [(0, 4, 1e6)]  # one heavy long route
    ta = analyze_pattern(BGP, (8, 1, 1), "XYZT", 1, pattern)
    hot = ta.hottest(3)
    loads = [v for _k, v in hot]
    assert loads == sorted(loads, reverse=True)
    assert loads[0] >= 1e6


def test_congestion_factor_uniform_ring():
    """A nearest-neighbour ring on a line torus loads links evenly."""
    ta = analyze_pattern(BGP, (8, 1, 1), "XYZT", 1, ring_pattern(8))
    assert ta.congestion_factor == pytest.approx(1.0)


def test_compare_mappings_finds_halo_spread():
    """The Fig. 2c effect, via the reusable analyzer: mappings differ
    in max-link load for a 2-D halo pattern at scale."""

    def halo_pattern(n):
        import math

        side = int(math.sqrt(n))
        grid = (side, side)
        out = []
        for r in range(side * side):
            nb = neighbors2d(r, grid)
            out.append((r, nb["north"], 4000.0))
            out.append((r, nb["south"], 8000.0))
        return out

    results = compare_mappings(
        BGP, (8, 8, 4), tasks_per_node=4, pattern_fn=halo_pattern,
        mappings=list(PAPER_FIG2_MAPPINGS),
    )
    assert set(results) == set(PAPER_FIG2_MAPPINGS)
    max_loads = [ta.max_link_bytes for ta in results.values()]
    assert max(max_loads) > 1.5 * min(max_loads)


def test_compare_mappings_validation():
    with pytest.raises(ValueError):
        compare_mappings(BGP, (2, 2, 2), 1, lambda n: [], [])
