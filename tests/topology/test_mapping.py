"""Mapping tests, including hypothesis round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.topology import Mapping, PAPER_FIG2_MAPPINGS, PREDEFINED_MAPPINGS


def test_invalid_order_rejected():
    with pytest.raises(ValueError):
        Mapping("XXYZ", (2, 2, 2))
    with pytest.raises(ValueError):
        Mapping("XYZ", (2, 2, 2))


def test_invalid_shape_rejected():
    with pytest.raises(ValueError):
        Mapping("XYZT", (0, 2, 2))


def test_paper_mapping_lists():
    assert len(PREDEFINED_MAPPINGS) == 12
    assert len(PAPER_FIG2_MAPPINGS) == 8
    assert set(PAPER_FIG2_MAPPINGS) <= set(PREDEFINED_MAPPINGS) | {
        "TYXZ",
        "TZXY",
        "TZYX",
    }


def test_xyzt_order_x_fastest():
    """XYZT: one process per node along X first (paper Section I.A)."""
    m = Mapping("XYZT", (4, 2, 2), tasks_per_node=2)
    assert m.coords(0) == (0, 0, 0, 0)
    assert m.coords(1) == (1, 0, 0, 0)
    assert m.coords(4) == (0, 1, 0, 0)
    assert m.coords(8) == (0, 0, 1, 0)
    # After filling all nodes, T increments.
    assert m.coords(16) == (0, 0, 0, 1)


def test_txyz_order_fills_node_first():
    """TXYZ in VN mode: 'processes 0-3 to the first node, 4-7 to the
    second node (in the X direction)' — paper Section I.A."""
    m = Mapping("TXYZ", (4, 2, 2), tasks_per_node=4)
    for t in range(4):
        assert m.coords(t) == (0, 0, 0, t)
    assert m.coords(4) == (1, 0, 0, 0)
    assert m.coords(7) == (1, 0, 0, 3)


def test_smp_xyzt_equals_txyz():
    """'In SMP mode, the XYZT and TXYZ orderings are identical.'"""
    a = Mapping("XYZT", (4, 4, 2), tasks_per_node=1)
    b = Mapping("TXYZ", (4, 4, 2), tasks_per_node=1)
    for r in range(a.size):
        assert a.coords(r) == b.coords(r)


def test_rank_out_of_range():
    m = Mapping("XYZT", (2, 2, 2))
    with pytest.raises(ValueError):
        m.coords(8)
    with pytest.raises(ValueError):
        m.coords(-1)


def test_rank_of_bad_coords():
    m = Mapping("XYZT", (2, 2, 2))
    with pytest.raises(ValueError):
        m.rank(2, 0, 0)


def test_node_index_flat():
    m = Mapping("XYZT", (2, 2, 2), tasks_per_node=1)
    seen = {m.node_index(r) for r in range(m.size)}
    assert seen == set(range(8))


@st.composite
def _mappings(draw):
    order = draw(st.sampled_from(PREDEFINED_MAPPINGS))
    shape = tuple(draw(st.integers(1, 5)) for _ in range(3))
    tpn = draw(st.sampled_from([1, 2, 4]))
    return Mapping(order, shape, tpn)


@given(_mappings(), st.data())
def test_coords_rank_roundtrip(m, data):
    """coords() and rank() are inverse bijections for every mapping."""
    rank = data.draw(st.integers(0, m.size - 1))
    x, y, z, t = m.coords(rank)
    assert m.rank(x, y, z, t) == rank


@given(_mappings())
def test_all_coords_is_bijection(m):
    seen = set()
    for r, c in m.all_coords():
        assert c not in seen
        seen.add(c)
    assert len(seen) == m.size


@given(_mappings(), st.data())
def test_tasks_per_node_honoured(m, data):
    """No node ever hosts more than tasks_per_node ranks."""
    from collections import Counter

    counts = Counter(m.node_of(r) for r in range(m.size))
    assert max(counts.values()) == m.tasks_per_node
