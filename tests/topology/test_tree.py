"""Collective-tree network model tests."""

import pytest

from repro.machines import BGP
from repro.simengine import Engine
from repro.topology import TreeNetwork


def test_validation():
    with pytest.raises(ValueError):
        TreeNetwork(0, BGP.tree)


def test_depth_log2():
    assert TreeNetwork(1, BGP.tree).depth == 1
    assert TreeNetwork(2, BGP.tree).depth == 1
    assert TreeNetwork(1024, BGP.tree).depth == 10
    assert TreeNetwork(1025, BGP.tree).depth == 11


def test_broadcast_time_pipelined():
    tree = TreeNetwork(1024, BGP.tree)
    small = tree.broadcast_time(0)
    big = tree.broadcast_time(1_000_000)
    assert small == pytest.approx(10 * BGP.tree.hop_latency)
    # Payload streams at link bandwidth after the latency.
    assert big - small == pytest.approx(1_000_000 / 850e6)


def test_broadcast_negative_payload():
    with pytest.raises(ValueError):
        TreeNetwork(8, BGP.tree).broadcast_time(-1)


def test_reduce_supports_double_not_single():
    """The tree ALU handles doubles in hardware, not single precision
    (the paper's Fig. 3a/b Allreduce precision effect)."""
    tree = TreeNetwork(64, BGP.tree)
    assert tree.reduce_time(1024, "float64") > 0
    with pytest.raises(ValueError):
        tree.reduce_time(1024, "float32")


def test_allreduce_is_reduce_plus_bcast():
    tree = TreeNetwork(64, BGP.tree)
    assert tree.allreduce_time(4096) == pytest.approx(
        tree.reduce_time(4096) + tree.broadcast_time(4096)
    )


def test_occupy_serializes_concurrent_ops():
    env = Engine()
    tree = TreeNetwork(16, BGP.tree, env)
    done = []

    def user(env, tree, name):
        yield tree.occupy(1e-3)
        done.append((name, env.now))

    env.process(user(env, tree, "a"))
    env.process(user(env, tree, "b"))
    env.run()
    assert done[0][1] == pytest.approx(1e-3)
    assert done[1][1] == pytest.approx(2e-3)
    assert tree.operations == 2


def test_occupy_requires_engine():
    with pytest.raises(RuntimeError):
        TreeNetwork(16, BGP.tree).occupy(1.0)
