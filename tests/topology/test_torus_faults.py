"""Torus fault state: failed links/nodes, derating, detour routing."""

import pytest

from repro.machines import BGP
from repro.simengine import Engine
from repro.topology import NoRouteError, Torus3D


def make_torus(shape, env=None):
    return Torus3D(shape, BGP.torus, env)


LINK = ((0, 0, 0), (1, 0, 0))


def test_fail_link_both_directions_default():
    t = make_torus((4, 4, 4))
    t.fail_link(LINK)
    assert not t.link_ok(LINK)
    assert not t.link_ok((LINK[1], LINK[0]))
    assert t.has_faults


def test_fail_link_single_direction():
    t = make_torus((4, 4, 4))
    t.fail_link(LINK, both_directions=False)
    assert not t.link_ok(LINK)
    assert t.link_ok((LINK[1], LINK[0]))


def test_fail_link_validates_adjacency():
    t = make_torus((4, 4, 4))
    with pytest.raises(ValueError):
        t.fail_link(((0, 0, 0), (2, 0, 0)))


def test_fail_node_fails_incident_links():
    t = make_torus((4, 4, 4))
    t.fail_node((1, 1, 1))
    assert (1, 1, 1) in t.failed_nodes
    for nbr in t.neighbors((1, 1, 1)):
        assert not t.link_ok(((1, 1, 1), nbr))
        assert not t.link_ok((nbr, (1, 1, 1)))


def test_degrade_and_restore_roundtrip():
    env = Engine()
    t = make_torus((4, 4, 4), env)
    spec_bw = t.spec.link_bandwidth
    t.degrade_link(LINK, factor=0.25)
    assert t.effective_bandwidth(LINK) == pytest.approx(spec_bw * 0.25)
    assert t.links[LINK].bandwidth == pytest.approx(spec_bw * 0.25)
    t.restore_link(LINK)
    assert t.effective_bandwidth(LINK) == pytest.approx(spec_bw)
    assert t.links[LINK].bandwidth == pytest.approx(spec_bw)


def test_degrade_factor_validated():
    t = make_torus((4, 4, 4))
    with pytest.raises(ValueError):
        t.degrade_link(LINK, factor=0.0)
    with pytest.raises(ValueError):
        t.degrade_link(LINK, factor=1.5)


def test_effective_bandwidth_zero_when_failed():
    t = make_torus((4, 4, 4))
    t.fail_link(LINK)
    assert t.effective_bandwidth(LINK) == 0.0


def test_restore_clears_failure():
    t = make_torus((4, 4, 4))
    t.fail_link(LINK)
    t.restore_link(LINK)
    assert t.link_ok(LINK)
    assert not t.has_faults


def test_bisection_bandwidth_degrades_with_faults():
    t = make_torus((4, 4, 4))
    healthy = t.bisection_bandwidth()
    # Fail one link crossing the bisection plane of the largest dim.
    key = t.bisection_link_keys()[0]
    t.fail_link(key)
    assert t.bisection_bandwidth() < healthy


def test_route_detours_around_failed_link():
    t = make_torus((4, 4, 4))
    t.fail_link(LINK)
    path = t.route((0, 0, 0), (1, 0, 0))
    assert LINK not in path
    assert path[0][0] == (0, 0, 0)
    assert path[-1][1] == (1, 0, 0)
    assert t.detours == 1


def test_route_raises_when_partitioned():
    t = make_torus((2, 1, 1))
    t.fail_link(((0, 0, 0), (1, 0, 0)))
    with pytest.raises(NoRouteError):
        t.route((0, 0, 0), (1, 0, 0))


def test_route_adaptive_avoids_failed_dimension_order():
    env = Engine()
    t = make_torus((4, 4, 4), env)
    # XYZ order (0,0,0)->(1,1,0) starts on the +X link; kill it.
    t.fail_link(LINK, both_directions=False)
    path = t.route_adaptive((0, 0, 0), (1, 1, 0), nbytes=1024)
    assert LINK not in path
    assert path[-1][1] == (1, 1, 0)


def test_link_utilisation_excludes_failed_links():
    env = Engine()
    t = make_torus((4, 1, 1), env)
    t.fail_link(LINK)
    assert LINK not in t.link_utilisation()
    assert (LINK[1], LINK[0]) not in t.link_utilisation()
