"""CLI surface: ``repro campaign run|status|clean`` and the
campaign-backed ``repro run all -o``."""

import json

from repro.cli import main


def test_campaign_run_and_rerun(tmp_path, capsys):
    directory = tmp_path / "camp"
    assert main(["campaign", "run", "table1", "top500", "-o", str(directory)]) == 0
    out = capsys.readouterr().out
    assert "[run ] table1" in out
    assert "2 done, 0 failed" in out
    assert (directory / "table1.txt").exists()
    assert (directory / "campaign.json").exists()
    assert (directory / "manifest.json").exists()
    assert (directory / "journal.jsonl").exists()

    assert main(["campaign", "run", "table1", "top500", "-o", str(directory)]) == 0
    out = capsys.readouterr().out
    assert "[hit ] table1" in out
    assert "cache hits: 2/2 (100%)" in out


def test_campaign_run_spec_file(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(
        json.dumps(
            {"name": "s", "jobs": [{"experiment": "fig6", "axes": {"edge": [40, 50]}}]}
        )
    )
    directory = tmp_path / "camp"
    assert main(["campaign", "run", str(spec), "-o", str(directory), "-j", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("[run ] fig6-") == 2
    artifacts = sorted(p.name for p in directory.glob("fig6-*.txt"))
    assert len(artifacts) == 2


def test_campaign_run_argument_errors(tmp_path, capsys):
    assert main(["campaign", "run"]) == 2
    assert "spec file, experiment ids, or 'all'" in capsys.readouterr().err
    assert main(["campaign", "run", "nope", "-o", str(tmp_path / "x")]) == 2
    assert "unknown experiment 'nope'" in capsys.readouterr().err
    assert main(["campaign", "run", "fig6", "--param", "edge=forty",
                 "-o", str(tmp_path / "x")]) == 2
    assert "non-numeric value" in capsys.readouterr().err


def test_campaign_status(tmp_path, capsys):
    directory = tmp_path / "camp"
    assert main(["campaign", "status", "-o", str(directory)]) == 2
    assert "no manifest" in capsys.readouterr().err

    main(["campaign", "run", "table1", "-o", str(directory)])
    capsys.readouterr()
    assert main(["campaign", "status", "-o", str(directory)]) == 0
    out = capsys.readouterr().out
    assert "1 job(s)" in out
    assert "table1" in out and "done" in out
    assert "summary: 1 done" in out


def test_campaign_clean(tmp_path, capsys):
    directory = tmp_path / "camp"
    main(["campaign", "run", "table1", "-o", str(directory)])
    capsys.readouterr()
    assert main(["campaign", "clean", "-o", str(directory), "--cache"]) == 0
    out = capsys.readouterr().out
    assert "removed 4 campaign file(s)" in out  # artifact + 3 bookkeeping files
    assert "cleared 1 cache entr(ies)" in out
    assert not (directory / "table1.txt").exists()
    assert not (directory / "manifest.json").exists()


def test_campaign_max_jobs_then_resume(tmp_path, capsys):
    directory = tmp_path / "camp"
    assert main(["campaign", "run", "table1", "top500", "lists",
                 "-o", str(directory), "--max-jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "interrupted (2 pending)" in out
    assert main(["campaign", "run", "table1", "top500", "lists",
                 "-o", str(directory)]) == 0
    out = capsys.readouterr().out
    assert "[hit ] table1" in out
    assert "computed: 2" in out


def test_run_all_to_directory_emits_manifest(tmp_path, capsys, monkeypatch):
    # trim the registry so 'run all' stays fast in unit tests
    from repro.core import evaluation

    fast = {k: evaluation.EXPERIMENTS[k] for k in ("table1", "top500")}
    monkeypatch.setattr(evaluation, "EXPERIMENTS", fast)
    directory = tmp_path / "out"
    assert main(["run", "all", "-o", str(directory)]) == 0
    out = capsys.readouterr().out
    assert f"wrote {directory / 'table1.txt'}" in out
    assert f"wrote {directory / 'manifest.json'}" in out
    doc = json.loads((directory / "manifest.json").read_text())
    assert doc["name"] == "run-all"
    assert [j["job_id"] for j in doc["jobs"]] == ["table1", "top500"]
    assert all(j["digest"] and j["status"] == "done" for j in doc["jobs"])
    # rerun rides the cache
    assert main(["run", "all", "-o", str(directory)]) == 0
    assert "cache hits: 2/2 (100%)" in capsys.readouterr().out


def test_run_single_experiment_unchanged(tmp_path, capsys):
    # the classic single-artifact path must not grow campaign files
    assert main(["run", "table1", "-o", str(tmp_path)]) == 0
    assert (tmp_path / "table1.txt").exists()
    assert not (tmp_path / "manifest.json").exists()
    assert not (tmp_path / "campaign.json").exists()


def test_campaign_clean_cache_orphans(tmp_path, capsys):
    from repro.campaign import ResultCache, cache_key

    directory = tmp_path / "camp"
    main(["campaign", "run", "table1", "-o", str(directory)])
    # plant an entry from an "older tree": wrong code fingerprint
    cache = ResultCache(directory / ".cache")
    stale = cache_key("table1", {}, fingerprint="stale-fingerprint")
    cache.put(stale, "old", meta={"experiment": "table1", "params": {}})
    capsys.readouterr()
    assert main(["campaign", "clean", "-o", str(directory), "--cache-orphans"]) == 0
    out = capsys.readouterr().out
    assert "pruned 1 orphaned cache entr(ies)" in out
    # the live entry survives: a re-run still hits the cache
    assert main(["campaign", "run", "table1", "-o", str(directory)]) == 0
    assert "[hit ] table1" in capsys.readouterr().out
