"""Hardened-runner satellites: seeded backoff determinism, poison-job
quarantine, interrupt classification, machine-readable status, and
torn-file recovery at the CLI layer."""

import json

import pytest

from repro.campaign import (
    NEVER_RETRY,
    CampaignRunner,
    CampaignSpec,
    backoff_delay,
    backoff_sequence,
    classify_failure,
)
from repro.chaos import ChaosEvent, ChaosSpec
from repro.cli import main
from repro.core.evaluation import EXPERIMENTS

FAST = ["table1", "top500", "lists"]


# ---------------------------------------------------------------------------
# seeded backoff: a pure function of (job, attempt, seed)
# ---------------------------------------------------------------------------
def test_backoff_delay_is_deterministic_and_capped():
    assert backoff_delay("j", 1) == backoff_delay("j", 1)
    assert backoff_delay("j", 1) != backoff_delay("k", 1)
    assert backoff_delay("j", 1, seed=0) != backoff_delay("j", 1, seed=1)
    # exponential envelope with jitter in [0.5, 1.5)
    for attempt in range(1, 6):
        delay = backoff_delay("j", attempt, base=0.1, cap=100.0)
        assert 0.05 * 2 ** (attempt - 1) <= delay < 0.15 * 2 ** (attempt - 1)
    assert backoff_delay("j", 30, base=0.1, cap=2.0) == 2.0


def test_backoff_sequence_and_validation():
    assert backoff_sequence("j", 3) == [backoff_delay("j", k) for k in (1, 2, 3)]
    with pytest.raises(ValueError):
        backoff_delay("j", 0)
    with pytest.raises(ValueError):
        backoff_delay("j", 1, base=-1)


def test_recorded_backoff_identical_across_jobs_1_and_jobs_n(tmp_path):
    """The manifest's backoff_s must not depend on the pool size."""
    chaos = ChaosSpec(
        events=(
            ChaosEvent(kind="kill", job="table1", attempt=1),
            ChaosEvent(kind="kill", job="top500", attempt=1),
        )
    )
    backoffs = {}
    for jobs in (1, 3):
        runner = CampaignRunner(
            CampaignSpec.from_ids(FAST, name=f"j{jobs}"),
            tmp_path / f"j{jobs}",
            jobs=jobs,
            retries=2,
            backoff_base=0.01,
            chaos=chaos,
        )
        result = runner.run()
        assert result.done == len(FAST)
        backoffs[jobs] = {r.job_id: r.backoff_s for r in result.records}
    assert backoffs[1] == backoffs[3]
    assert backoffs[1]["table1"] == [backoff_delay("table1", 1, base=0.01)]


# ---------------------------------------------------------------------------
# quarantine: N kills and the job is poison
# ---------------------------------------------------------------------------
def test_quarantine_after_exactly_n_worker_kills(tmp_path):
    chaos = ChaosSpec(
        events=(
            ChaosEvent(kind="kill", job="table1", attempt=1),
            ChaosEvent(kind="kill", job="table1", attempt=2),
        )
    )
    runner = CampaignRunner(
        CampaignSpec.from_ids(FAST, name="q"),
        tmp_path / "q",
        retries=5,
        backoff_base=0.01,
        quarantine_after=2,
        chaos=chaos,
    )
    result = runner.run()
    assert result.quarantined == 1 and result.crashes == 2
    record = {r.job_id: r for r in result.records}["table1"]
    assert record.status == "quarantined"
    assert record.classification == "poison"
    assert record.attempts == 2  # quarantined at the Nth kill, not after
    assert not record.ok

    # resume: the poison job is skipped, not fed more workers
    resumed = CampaignRunner(
        CampaignSpec.from_ids(FAST, name="q"), tmp_path / "q", retries=5
    ).run()
    assert resumed.quarantined == 1
    assert resumed.executed == []
    skipped = {r.job_id: r for r in resumed.records}["table1"]
    assert skipped.source == "journal"


def test_one_kill_below_threshold_just_retries(tmp_path):
    chaos = ChaosSpec(events=(ChaosEvent(kind="kill", job="table1", attempt=1),))
    result = CampaignRunner(
        CampaignSpec.from_ids(FAST, name="ok"),
        tmp_path / "ok",
        retries=2,
        backoff_base=0.01,
        quarantine_after=2,
        chaos=chaos,
    ).run()
    assert result.quarantined == 0 and result.done == len(FAST)


# ---------------------------------------------------------------------------
# interrupts are commands, not flaky infrastructure
# ---------------------------------------------------------------------------
def test_interrupts_classify_as_interrupt_and_never_retry():
    assert classify_failure(KeyboardInterrupt()) == "interrupt"
    assert classify_failure(SystemExit(1)) == "interrupt"
    assert "interrupt" in NEVER_RETRY


def test_worker_systemexit_is_not_retried(tmp_path, monkeypatch):
    calls = {"n": 0}

    def bail():
        calls["n"] += 1
        raise SystemExit(3)

    monkeypatch.setitem(EXPERIMENTS, "bail", bail)
    result = CampaignRunner(
        CampaignSpec.from_ids(["bail", "table1"], name="se"),
        tmp_path / "se",
        retries=5,
        backoff_base=0.01,
    ).run()
    assert calls["n"] == 1, "SystemExit must consume exactly one attempt"
    assert result.retries == 0
    record = {r.job_id: r for r in result.records}["bail"]
    assert record.status == "failed"
    assert record.classification == "interrupt"
    assert record.attempts == 1


def test_keyboardinterrupt_inline_interrupts_the_campaign(tmp_path, monkeypatch):
    def ctrl_c():
        raise KeyboardInterrupt

    monkeypatch.setitem(EXPERIMENTS, "ctrlc", ctrl_c)
    result = CampaignRunner(
        CampaignSpec.from_ids(["ctrlc", "table1"], name="ki"),
        tmp_path / "ki",
        retries=5,
        backoff_base=0.01,
    ).run()
    assert result.interrupted
    assert result.retries == 0, "Ctrl-C must never be retried"


# ---------------------------------------------------------------------------
# status --json and torn-file recovery at the CLI
# ---------------------------------------------------------------------------
def test_campaign_status_json(tmp_path, capsys):
    directory = tmp_path / "camp"
    assert main(["campaign", "run", "table1", "top500", "-o", str(directory)]) == 0
    capsys.readouterr()
    assert main(["campaign", "status", "-o", str(directory), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"] == {"done": 2}
    assert doc["rebuilt_from_journal"] is False
    by_id = {j["id"]: j for j in doc["jobs"]}
    assert set(by_id) == {"table1", "top500"}
    job = by_id["table1"]
    assert job["status"] == "done"
    assert job["attempts"] == 1
    assert job["retryable"] is False
    assert job["backoff_s"] == []


def test_campaign_status_survives_torn_manifest(tmp_path, capsys):
    directory = tmp_path / "camp"
    assert main(["campaign", "run", "table1", "top500", "-o", str(directory)]) == 0
    capsys.readouterr()
    manifest = directory / "manifest.json"
    raw = manifest.read_bytes()
    manifest.write_bytes(raw[: len(raw) // 2])  # tear it mid-write
    assert main(["campaign", "status", "-o", str(directory)]) == 0
    out = capsys.readouterr().out
    assert "rebuilt from journal" in out
    assert "2 done" in out
    assert main(["campaign", "status", "-o", str(directory), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["rebuilt_from_journal"] is True
    assert doc["counts"] == {"done": 2}


def test_campaign_run_chaos_cli_reports_fired_set(tmp_path, capsys):
    directory = tmp_path / "camp"
    assert main([
        "campaign", "run", "table1", "top500", "-o", str(directory),
        "--chaos", "seed=42,kills=1", "--backoff-base", "0.01",
    ]) == 0
    out = capsys.readouterr().out
    assert "chaos: 1 injection(s) fired" in out
    assert "kill " in out
    assert "2 done, 0 failed" in out


def test_chaos_plan_cli_is_deterministic(tmp_path, capsys):
    argv = ["chaos", "plan", "table1", "top500", "lists",
            "--chaos", "seed=42,kills=1,torn=1"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    assert capsys.readouterr().out == first
    assert "chaos plan (seed=42): 2 injection(s)" in first
    assert main(["chaos", "plan", "table1", "--chaos", "flavor=hot"]) == 2
    assert "unknown key" in capsys.readouterr().err


def test_backoff_exponent_is_clamped_for_huge_attempt_counts():
    """Pin the overflow guard: a lease-based dispatcher requeueing a
    poison job for days can reach attempt counts where ``2.0**(n-1)``
    overflows a float — the exponent clamps instead."""
    import math

    from repro.campaign.retry import MAX_BACKOFF_EXPONENT

    assert MAX_BACKOFF_EXPONENT == 60
    huge = backoff_delay("j", 5000, base=0.05, cap=float("inf"))
    assert math.isfinite(huge)
    # past the clamp the exponential term freezes: only jitter varies
    lo = 0.5 * 0.05 * 2.0**MAX_BACKOFF_EXPONENT
    hi = 1.5 * 0.05 * 2.0**MAX_BACKOFF_EXPONENT
    assert lo <= huge < hi
    # and any sane cap still wins
    assert backoff_delay("j", 5000, base=0.05, cap=2.0) == 2.0


def test_chaos_plan_cli_json(capsys):
    argv = ["chaos", "plan", "table1", "top500", "lists",
            "--chaos", "seed=42,kills=1,torn=1", "--json"]
    assert main(argv) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["seed"] == 42
    assert doc["count"] == 2 == len(doc["events"])
    assert doc["keys"] == [e["key"] for e in doc["events"]]
    # the JSON plan is the same plan the prose form prints
    assert main(argv) == 0
    assert json.loads(capsys.readouterr().out) == doc
