"""The campaign orchestrator's acceptance contract:

* ``--jobs N`` artifacts are byte-identical to a serial run,
* an immediate rerun is 100% cache hits and touches no artifact,
* an interrupted campaign resumes computing only the unfinished jobs,
* failures are classified and only transient ones retried.
"""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    classify_failure,
    read_journal,
)
from repro.core.evaluation import EXPERIMENTS

#: fast real experiments (all render in milliseconds)
FAST = ["table1", "top500", "lists", "fig6"]


def run_campaign(tmp_path, ids=None, name="t", max_jobs=None, **kwargs):
    spec = CampaignSpec.from_ids(ids or FAST, name=name)
    runner = CampaignRunner(spec, tmp_path / name, **kwargs)
    return runner, runner.run(max_jobs=max_jobs)


# ---------------------------------------------------------------------------
# parallel == serial, byte for byte
# ---------------------------------------------------------------------------
def test_jobs4_artifacts_byte_identical_to_serial(tmp_path):
    _, serial = run_campaign(tmp_path, name="serial", jobs=1)
    _, parallel = run_campaign(tmp_path, name="parallel", jobs=4)
    assert serial.done == parallel.done == len(FAST)
    for eid in FAST:
        a = (tmp_path / "serial" / f"{eid}.txt").read_bytes()
        b = (tmp_path / "parallel" / f"{eid}.txt").read_bytes()
        assert a == b, f"{eid} differs between --jobs 1 and --jobs 4"
    by_id = lambda r: {x.job_id: x.digest for x in r.records}  # noqa: E731
    assert by_id(serial) == by_id(parallel)


# ---------------------------------------------------------------------------
# rerun: all hits, nothing touched
# ---------------------------------------------------------------------------
def test_rerun_is_all_cache_hits_and_touches_nothing(tmp_path):
    runner, first = run_campaign(tmp_path, jobs=2)
    assert first.cache_hits == 0 and len(first.executed) == len(FAST)

    stats = {
        eid: (runner.directory / f"{eid}.txt").stat() for eid in FAST
    }
    second = runner.run()
    assert second.cache_hits == len(FAST)
    assert second.cache_misses == 0
    assert second.executed == []
    assert second.artifacts_written == 0
    assert "100%" in second.summary_line()
    for eid in FAST:
        after = (runner.directory / f"{eid}.txt").stat()
        before = stats[eid]
        assert (after.st_mtime_ns, after.st_size) == (
            before.st_mtime_ns,
            before.st_size,
        ), f"{eid}.txt was touched by an all-hit rerun"


def test_deleted_artifact_restored_from_cache_byte_identical(tmp_path):
    runner, _ = run_campaign(tmp_path, ids=["table1"])
    path = runner.directory / "table1.txt"
    original = path.read_bytes()
    path.unlink()
    second = runner.run()
    assert second.cache_hits == 1 and second.executed == []
    assert second.artifacts_written == 1
    assert path.read_bytes() == original


# ---------------------------------------------------------------------------
# interrupt + resume
# ---------------------------------------------------------------------------
def test_interrupted_campaign_resumes_only_unfinished(tmp_path):
    runner, first = run_campaign(tmp_path, max_jobs=2)
    assert first.interrupted
    assert first.executed == FAST[:2]
    assert first.pending == 2
    # the journal survived the interrupt with exactly the finished jobs
    journal = read_journal(runner.directory / "journal.jsonl")
    assert sorted(journal) == sorted(FAST[:2])

    second = runner.run()
    assert not second.interrupted
    assert second.executed == FAST[2:], "resume must compute only unfinished jobs"
    assert second.cache_hits == 2
    assert second.done == len(FAST)


def test_manifest_tracks_pending_jobs_across_interrupt(tmp_path):
    runner, _ = run_campaign(tmp_path, max_jobs=1)
    doc = json.loads((runner.directory / "manifest.json").read_text())
    statuses = {j["job_id"]: j["status"] for j in doc["jobs"]}
    assert statuses[FAST[0]] == "done"
    assert all(statuses[eid] == "pending" for eid in FAST[1:])
    runner.run()
    doc = json.loads((runner.directory / "manifest.json").read_text())
    assert all(j["status"] == "done" for j in doc["jobs"])
    # manifest digests are the artifacts' real content digests
    from repro.campaign import text_digest

    for job in doc["jobs"]:
        payload = (runner.directory / job["artifact"]).read_text(encoding="utf-8")
        assert job["digest"] == text_digest(payload)


# ---------------------------------------------------------------------------
# failure classification + retry policy
# ---------------------------------------------------------------------------
def test_classify_failure_by_type():
    from repro.faults.errors import FaultError
    from repro.simengine import BudgetExceeded
    from repro.simengine.budget import BudgetSummary

    budget = BudgetExceeded(BudgetSummary("max-events", 1.0, 5, 0.1))
    fault = FaultError(0, 1, 7, 1024)
    assert classify_failure(budget) == "budget"
    assert classify_failure(fault) == "fault"
    assert classify_failure(KeyError("bad experiment")) == "config"
    assert classify_failure(ValueError("bad param")) == "config"
    assert classify_failure(OSError("worker lost")) == "transient"
    assert classify_failure(MemoryError()) == "transient"


def _register(monkeypatch, name, fn):
    monkeypatch.setitem(EXPERIMENTS, name, fn)


def test_deterministic_failures_never_retry(tmp_path, monkeypatch):
    calls = {"budget": 0, "fault": 0}

    def budget_exp():
        calls["budget"] += 1
        from repro.simengine import BudgetExceeded
        from repro.simengine.budget import BudgetSummary

        raise BudgetExceeded(BudgetSummary("max-events", 1.0, 5, 0.1))

    def fault_exp():
        calls["fault"] += 1
        from repro.faults.errors import FaultError

        raise FaultError(0, 1, 7, 1024)

    _register(monkeypatch, "budget_exp", budget_exp)
    _register(monkeypatch, "fault_exp", fault_exp)
    runner, result = run_campaign(
        tmp_path, ids=["budget_exp", "fault_exp", "table1"], jobs=1, retries=3
    )
    assert calls == {"budget": 1, "fault": 1}, "deterministic failures retried"
    assert result.retries == 0
    assert result.failed == 2 and result.done == 1

    by_id = {r.job_id: r for r in result.records}
    assert by_id["budget_exp"].classification == "budget"
    assert by_id["budget_exp"].error_type == "BudgetExceeded"
    assert by_id["fault_exp"].classification == "fault"
    assert by_id["table1"].status == "done", "failures must not stop siblings"


def test_transient_failures_retry_to_success(tmp_path, monkeypatch):
    calls = {"n": 0}

    def flaky_exp():
        calls["n"] += 1
        if calls["n"] == 1:
            raise OSError("worker hiccough")
        return "flaky result"

    _register(monkeypatch, "flaky_exp", flaky_exp)
    runner, result = run_campaign(tmp_path, ids=["flaky_exp"], jobs=1, retries=1)
    assert calls["n"] == 2
    assert result.retries == 1 and result.done == 1
    (record,) = result.records
    assert record.attempts == 2 and record.status == "done"
    assert (runner.directory / "flaky_exp.txt").read_text() == "flaky result\n"


def test_transient_retries_are_bounded(tmp_path, monkeypatch):
    calls = {"n": 0}

    def doomed_exp():
        calls["n"] += 1
        raise OSError("always down")

    _register(monkeypatch, "doomed_exp", doomed_exp)
    _, result = run_campaign(tmp_path, ids=["doomed_exp"], jobs=1, retries=2)
    assert calls["n"] == 3  # 1 attempt + 2 retries
    (record,) = result.records
    assert record.status == "failed"
    assert record.classification == "transient"
    assert record.attempts == 3


# ---------------------------------------------------------------------------
# journal robustness
# ---------------------------------------------------------------------------
def test_journal_tolerates_torn_tail(tmp_path):
    runner, _ = run_campaign(tmp_path, ids=["table1"])
    journal = runner.directory / "journal.jsonl"
    with open(journal, "a") as fh:
        fh.write('{"job_id": "half-writ')  # hard-kill mid-append
    records = read_journal(journal)
    assert sorted(records) == ["table1"]
    # and the next pass still works
    result = runner.run()
    assert result.done == 1


def test_fresh_truncates_journal_but_keeps_cache(tmp_path):
    runner, _ = run_campaign(tmp_path, ids=["table1"])
    result = runner.run(fresh=True)
    assert result.cache_hits == 1  # cache survives --fresh
    journal = read_journal(runner.directory / "journal.jsonl")
    assert sorted(journal) == ["table1"]


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------
def test_campaign_telemetry(tmp_path):
    from repro.obs import Tracer, chrome_trace, metrics_dict, validate_trace_events

    tracer = Tracer()
    spec = CampaignSpec.from_ids(["table1", "top500"], name="obs")
    runner = CampaignRunner(spec, tmp_path / "obs", jobs=1, tracer=tracer)
    runner.run()
    runner.run()  # second pass: hits

    doc = chrome_trace(tracer)
    validate_trace_events(doc)
    names = [e["name"] for e in doc["traceEvents"]]
    assert "table1" in names and "top500" in names  # job spans
    assert "cache-miss" in names and "cache-hit" in names
    assert "running_jobs" in names  # worker-utilization counter track

    counters = metrics_dict(tracer)["counters"]
    assert counters["campaign.jobs_total"] == 4
    assert counters["campaign.cache_misses"] == 2
    assert counters["campaign.cache_hits"] == 2
    assert counters["campaign.executed"] == 2


def test_runner_validates_arguments(tmp_path):
    spec = CampaignSpec.from_ids(["table1"])
    with pytest.raises(ValueError, match="jobs must be >= 1"):
        CampaignRunner(spec, tmp_path, jobs=0)
    with pytest.raises(ValueError, match="retries must be >= 0"):
        CampaignRunner(spec, tmp_path, retries=-1)
