"""The chaos acceptance contract: a campaign under injected host
faults — worker kills, hangs past deadline, torn writes — completes
with artifacts byte-identical to an undisturbed run, and the same
chaos seed reproduces the same injection set across runs."""

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, read_journal
from repro.chaos import ChaosEvent, ChaosSpec

FAST = ["table1", "top500", "lists"]


def run_chaos(tmp_path, name, chaos=None, ids=None, **kwargs):
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("backoff_base", 0.01)
    spec = CampaignSpec.from_ids(ids or FAST, name=name)
    runner = CampaignRunner(spec, tmp_path / name, chaos=chaos, **kwargs)
    return runner, runner.run()


def assert_artifacts_match(tmp_path, a, b, ids=None):
    for eid in ids or FAST:
        left = (tmp_path / a / f"{eid}.txt").read_bytes()
        right = (tmp_path / b / f"{eid}.txt").read_bytes()
        assert left == right, f"{eid} differs between {a} and {b}"


# ---------------------------------------------------------------------------
# the headline acceptance: kill + hang + torn, byte-identical output
# ---------------------------------------------------------------------------
def test_full_chaos_campaign_completes_byte_identical(tmp_path):
    _, plain = run_chaos(tmp_path, "plain")
    chaos = ChaosSpec.from_string("seed=42,kills=1,hangs=1,torn=1,hang_seconds=0.4")
    runner, hurt = run_chaos(tmp_path, "hurt", chaos=chaos, deadline_s=0.2)
    assert plain.done == hurt.done == len(FAST)
    assert hurt.failed == 0
    assert len(hurt.chaos_fired) == 3
    assert hurt.crashes >= 1 and hurt.timeouts >= 1
    assert_artifacts_match(tmp_path, "plain", "hurt")


def test_same_seed_fires_the_same_injection_set(tmp_path):
    chaos = ChaosSpec.from_string("seed=42,kills=1,hangs=1,torn=1,hang_seconds=0.4")
    _, first = run_chaos(tmp_path, "one", chaos=chaos, deadline_s=0.2)
    _, second = run_chaos(tmp_path, "two", chaos=chaos, deadline_s=0.2)
    assert first.chaos_fired == second.chaos_fired
    assert len(first.chaos_fired) == 3
    assert_artifacts_match(tmp_path, "one", "two")


# ---------------------------------------------------------------------------
# worker kill: real SIGKILL in the pool, rebuild, requeue
# ---------------------------------------------------------------------------
def test_pool_worker_kill_breaks_and_rebuilds_the_pool(tmp_path):
    chaos = ChaosSpec(events=(ChaosEvent(kind="kill", job="table1"),))
    runner, result = run_chaos(tmp_path, "kill", chaos=chaos, jobs=2)
    assert result.done == len(FAST) and result.failed == 0
    assert result.crashes >= 1
    assert result.pool_rebuilds >= 1
    assert result.chaos_fired == ["kill:table1@1"]
    record = {r.job_id: r for r in result.records}["table1"]
    assert record.attempts == 2  # the killed attempt was consumed
    assert len(record.backoff_s) == 1  # and retried after a seeded delay


def test_inline_worker_kill_is_simulated_and_retried(tmp_path):
    chaos = ChaosSpec(events=(ChaosEvent(kind="kill", job="table1"),))
    _, result = run_chaos(tmp_path, "ikill", chaos=chaos, jobs=1)
    assert result.done == len(FAST) and result.crashes == 1
    assert result.pool_rebuilds == 0  # no pool to rebuild inline
    record = {r.job_id: r for r in result.records}["table1"]
    assert record.attempts == 2


# ---------------------------------------------------------------------------
# hangs: cooperative timeout vs the hard-hang watchdog
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_cooperative_hang_times_out_and_retries(tmp_path, jobs):
    chaos = ChaosSpec(
        events=(ChaosEvent(kind="hang", job="table1", seconds=5.0),)
    )
    _, result = run_chaos(
        tmp_path, f"hang{jobs}", chaos=chaos, jobs=jobs, deadline_s=0.2
    )
    assert result.done == len(FAST) and result.timeouts == 1
    record = {r.job_id: r for r in result.records}["table1"]
    assert record.attempts == 2 and len(record.backoff_s) == 1


def test_hard_hang_trips_the_parent_watchdog(tmp_path):
    chaos = ChaosSpec(
        events=(ChaosEvent(kind="hang", job="table1", seconds=30.0, hard=True),)
    )
    _, result = run_chaos(
        tmp_path, "hard", chaos=chaos, jobs=2, deadline_s=0.2, deadline_grace=0.2
    )
    assert result.done == len(FAST) and result.failed == 0
    assert result.timeouts >= 1
    assert result.pool_rebuilds >= 1  # the stuck worker had to be killed
    assert result.chaos_fired == ["hang:table1@1"]


# ---------------------------------------------------------------------------
# torn / ioerr writes are absorbed, recovery is a clean miss
# ---------------------------------------------------------------------------
def test_torn_cache_write_recomputes_next_pass(tmp_path):
    chaos = ChaosSpec(events=(ChaosEvent(kind="torn", stream="cache", job="table1"),))
    runner, first = run_chaos(tmp_path, "torn", chaos=chaos)
    assert first.done == len(FAST)
    # rerun without chaos: the torn entry is a miss, the others hit
    rerun = CampaignRunner(
        CampaignSpec.from_ids(FAST, name="torn"), tmp_path / "torn", retries=2
    )
    second = rerun.run()
    assert second.cache_hits == len(FAST) - 1
    assert second.executed == ["table1"]
    assert second.done == len(FAST)
    assert second.artifacts_written == 0  # recompute matched the old bytes


def test_journal_ioerr_is_absorbed_and_campaign_completes(tmp_path):
    chaos = ChaosSpec(events=(ChaosEvent(kind="ioerr", stream="journal", job="table1"),))
    runner, result = run_chaos(tmp_path, "ioerr", chaos=chaos)
    assert result.done == len(FAST) and result.failed == 0
    # the injected journal append was dropped; everything else landed
    journal = read_journal(runner.directory / "journal.jsonl")
    assert sorted(journal) == sorted(set(FAST) - {"table1"})
    # the manifest still has the full truth
    assert {r.job_id for r in result.records if r.status == "done"} == set(FAST)


def test_torn_manifest_write_is_recoverable(tmp_path):
    chaos = ChaosSpec(events=(ChaosEvent(kind="torn", stream="manifest"),))
    runner, result = run_chaos(tmp_path, "tmani", chaos=chaos)
    assert result.done == len(FAST)
    from repro.campaign import load_manifest, load_or_rebuild_manifest

    assert load_manifest(runner.directory / "manifest.json") is None  # torn
    doc = load_or_rebuild_manifest(runner.directory)
    assert doc is not None and doc["rebuilt_from_journal"] is True
    assert {j["job_id"]: j["status"] for j in doc["jobs"]} == {
        eid: "done" for eid in FAST
    }
