"""Content-addressed result cache: keys, round trips, invalidation."""

from repro.campaign import ResultCache, cache_key, code_fingerprint, text_digest


def test_key_binds_experiment_params_and_code():
    base = cache_key("fig6", {"edge": 40}, fingerprint="f1")
    assert cache_key("fig6", {"edge": 40}, fingerprint="f1") == base
    assert cache_key("fig6", {"edge": 41}, fingerprint="f1") != base
    assert cache_key("fig7", {"edge": 40}, fingerprint="f1") != base
    # any code change invalidates every key
    assert cache_key("fig6", {"edge": 40}, fingerprint="f2") != base


def test_key_is_param_insertion_order_free():
    a = cache_key("fig3", {"nbytes": 1024, "processes": 4096}, fingerprint="f")
    b = cache_key("fig3", {"processes": 4096, "nbytes": 1024}, fingerprint="f")
    assert a == b


def test_code_fingerprint_is_stable_within_a_tree():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


def test_round_trip_returns_exact_bytes(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = cache_key("table1", {}, fingerprint="f")
    assert cache.get(key) is None and key not in cache
    text = "Table 1\nwith unicode µs and trailing spaces  \n"
    cache.put(key, text, meta={"experiment": "table1"})
    assert cache.get(key) == text
    assert key in cache and len(cache) == 1


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = cache_key("table1", {}, fingerprint="f")
    cache.put(key, "good")
    path = cache._path(key)
    path.write_text("{torn write")
    assert cache.get(key) is None
    # tampered text fails the stored digest check too
    cache.put(key, "good")
    doc = path.read_text().replace("good", "evil")
    path.write_text(doc)
    assert cache.get(key) is None


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    for i in range(3):
        cache.put(cache_key("table1", {"i": i}, fingerprint="f"), f"text {i}")
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0
    assert cache.clear() == 0  # idempotent, missing dir ok


def test_text_digest_matches_sha256():
    import hashlib

    assert text_digest("abc") == hashlib.sha256(b"abc").hexdigest()


def test_prune_orphans_keeps_live_entries_only(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    fp = "fingerprint-now"
    live = cache_key("table1", {}, fingerprint=fp)
    cache.put(live, "live text", meta={"experiment": "table1", "params": {}})
    # written by an older tree: its recomputed key no longer matches
    stale = cache_key("table1", {}, fingerprint="fingerprint-old")
    cache.put(stale, "old text", meta={"experiment": "table1", "params": {}})
    # meta-less entry: its address cannot be recomputed at all
    cache.put(cache_key("top500", {}, fingerprint=fp), "no meta")
    assert len(cache) == 3
    assert cache.prune_orphans(fingerprint=fp) == 2
    assert cache.get(live) == "live text"
    assert len(cache) == 1
    assert cache.prune_orphans(fingerprint=fp) == 0  # idempotent
    # missing cache dir is a clean no-op
    assert ResultCache(tmp_path / "nowhere").prune_orphans(fingerprint=fp) == 0
