"""CampaignSpec expansion: deterministic, validated, addressable."""

import json

import pytest

from repro.campaign import CampaignSpec, Job, SpecError, params_digest
from repro.core.evaluation import experiment_ids


def test_from_ids_expands_all():
    spec = CampaignSpec.from_ids(["all"])
    jobs = spec.expand()
    assert [j.job_id for j in jobs] == experiment_ids()
    assert all(j.params == {} for j in jobs)


def test_job_ids_stable_and_param_order_free():
    a = Job("fig6", {"edge": 40})
    b = Job("fig6", dict([("edge", 40)]))
    assert a.job_id == b.job_id == f"fig6-{params_digest({'edge': 40})}"
    assert a.artifact_name == f"{a.job_id}.txt"
    assert Job("fig6").job_id == "fig6"  # param-free keeps the classic name


def test_axes_expand_last_fastest():
    spec = CampaignSpec.from_dict(
        {"jobs": [{"experiment": "fig3", "axes": {"nbytes": [16384, 32768], "processes": [4096, 8192]}}]}
    )
    jobs = spec.expand()
    assert [j.params for j in jobs] == [
        {"nbytes": 16384, "processes": 4096},
        {"nbytes": 16384, "processes": 8192},
        {"nbytes": 32768, "processes": 4096},
        {"nbytes": 32768, "processes": 8192},
    ]
    # expansion is a pure function of the spec
    assert [j.job_id for j in jobs] == [j.job_id for j in spec.expand()]


def test_axes_merge_over_params():
    spec = CampaignSpec.from_dict(
        {"jobs": [{"experiment": "fig3", "params": {"processes": 4096}, "axes": {"nbytes": [1024]}}]}
    )
    (job,) = spec.expand()
    assert job.params == {"processes": 4096, "nbytes": 1024}


def test_string_shorthand_and_named_spec(tmp_path):
    path = tmp_path / "night.json"
    path.write_text(json.dumps({"name": "nightly", "jobs": ["table1", "top500"]}))
    spec = CampaignSpec.from_file(path)
    assert spec.name == "nightly"
    assert [j.job_id for j in spec.expand()] == ["table1", "top500"]


def test_params_accept_cli_key_value_strings():
    spec = CampaignSpec.from_dict({"jobs": [{"experiment": "fig6", "params": ["edge=40"]}]})
    (job,) = spec.expand()
    assert job.params == {"edge": 40} and isinstance(job.params["edge"], int)


def test_params_share_the_canonical_parser_error():
    from repro.core.params import parse_params

    with pytest.raises(ValueError) as canonical:
        parse_params(["edge=forty"])
    with pytest.raises(SpecError) as via_spec:
        CampaignSpec.from_dict(
            {"jobs": [{"experiment": "fig6", "params": ["edge=forty"]}]}
        ).expand()
    # single error-message path: the spec loader surfaces the same text
    assert str(canonical.value) in str(via_spec.value)


def test_unknown_experiment_and_param_fail_fast():
    with pytest.raises(SpecError, match="unknown experiment 'nope'"):
        CampaignSpec.from_dict({"jobs": ["nope"]}).expand()
    with pytest.raises(SpecError, match=r"does not take parameter\(s\) \['bogus'\]"):
        CampaignSpec.from_dict(
            {"jobs": [{"experiment": "fig6", "params": {"bogus": 1}}]}
        ).expand()


def test_duplicate_jobs_rejected():
    with pytest.raises(SpecError, match="duplicate job 'table1'"):
        CampaignSpec.from_dict({"jobs": ["table1", "table1"]}).expand()


def test_malformed_specs_rejected(tmp_path):
    with pytest.raises(SpecError, match="non-empty 'jobs' array"):
        CampaignSpec.from_dict({"jobs": []})
    with pytest.raises(SpecError, match="unknown key"):
        CampaignSpec.from_dict({"jobs": [{"experiment": "table1", "axis": {}}]})
    with pytest.raises(SpecError, match="non-empty value list"):
        CampaignSpec.from_dict(
            {"jobs": [{"experiment": "fig6", "axes": {"edge": []}}]}
        ).expand()
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(SpecError, match="not valid JSON"):
        CampaignSpec.from_file(bad)
