"""Tests for repro.campaign."""
