"""STREAM model + real numpy STREAM execution."""

import pytest

from repro.machines import BGP, XT4_QC
from repro.memmodel import run_stream_numpy, STREAM_BYTES_PER_ITER, StreamModel
from repro.memmodel.workingset import (
    fits_in_memory,
    grid_working_set,
    hpcc_problem_size,
    hpl_local_matrix_bytes,
)


def test_byte_counts():
    assert STREAM_BYTES_PER_ITER["copy"] == 24
    assert STREAM_BYTES_PER_ITER["triad"] == 32


def test_single_process_rate():
    sm = StreamModel(BGP)
    assert sm.bandwidth_per_process(1) == pytest.approx(4.3e9)


def test_full_node_share():
    sm = StreamModel(BGP)
    assert sm.bandwidth_per_process(4) == pytest.approx(10.2e9 / 4)


def test_paper_stream_shape():
    """Table 2: BG/P higher absolute bandwidth, smaller decline."""
    b, x = StreamModel(BGP), StreamModel(XT4_QC)
    assert b.bandwidth_per_process(4) > x.bandwidth_per_process(4)
    assert b.decline_ratio() > x.decline_ratio()


def test_rates_struct():
    rates = StreamModel(BGP).rates(1).as_dict()
    assert set(rates) == {"copy", "scale", "add", "triad"}
    assert all(v > 0 for v in rates.values())


def test_run_stream_numpy_executes():
    res = run_stream_numpy(n=200_000, repeats=1)
    # The host machine is fast; just sanity-check the plumbing.
    assert res.triad > 1e8
    assert res.copy > 1e8


def test_run_stream_numpy_validation():
    with pytest.raises(ValueError):
        run_stream_numpy(n=0)


# ---------------------------------------------------------------------------
# working sets
# ---------------------------------------------------------------------------
def test_hpcc_problem_size_block_rounding():
    n = hpcc_problem_size(512 * 2**20, 8192, 0.8, block=144)
    assert n % 144 == 0
    assert n > 0


def test_hpcc_problem_size_matches_paper_scale():
    """The ORNL TOP500 run used N=614399 at ~70% of 2 GB x 2048 nodes."""
    n = hpcc_problem_size(512 * 2**20, 8192, fill_fraction=0.70)
    assert n == pytest.approx(614399, rel=0.02)


def test_hpl_local_matrix_bytes():
    assert hpl_local_matrix_bytes(1000, 10) == pytest.approx(8e5)
    with pytest.raises(ValueError):
        hpl_local_matrix_bytes(0, 1)


def test_grid_working_set():
    assert grid_working_set(100, 5) == 4000
    with pytest.raises(ValueError):
        grid_working_set(-1, 5)


def test_fits_in_memory_headroom():
    assert fits_in_memory(800, 1000, headroom=0.9)
    assert not fits_in_memory(950, 1000, headroom=0.9)
