"""Roofline model tests."""

import pytest

from repro.machines import BGP, XT4_QC
from repro.memmodel import KernelWork, Roofline


def test_work_validation():
    with pytest.raises(ValueError):
        KernelWork(flops=-1)
    with pytest.raises(ValueError):
        KernelWork(flops=1, flop_efficiency=0)
    with pytest.raises(ValueError):
        KernelWork(flops=1, flop_efficiency=1.5)


def test_arithmetic_intensity():
    w = KernelWork(flops=100, dram_bytes=50)
    assert w.arithmetic_intensity == 2.0
    assert KernelWork(flops=100).arithmetic_intensity == float("inf")


def test_work_addition_and_scaling():
    a = KernelWork(flops=10, dram_bytes=5, flop_efficiency=0.9)
    b = KernelWork(flops=20, dram_bytes=15, flop_efficiency=0.5)
    c = a + b
    assert c.flops == 30 and c.dram_bytes == 20
    assert c.flop_efficiency == 0.5  # pessimistic merge
    s = a.scaled(3)
    assert s.flops == 30 and s.dram_bytes == 15


def test_compute_bound_kernel():
    r = Roofline(BGP, "VN")
    w = KernelWork(flops=3.4e9, dram_bytes=0)
    assert r.time(w) == pytest.approx(1.0)
    assert r.rate_gflops(w) == pytest.approx(3.4)


def test_memory_bound_kernel():
    r = Roofline(BGP, "VN")
    bw = r.mem_bandwidth
    w = KernelWork(flops=1.0, dram_bytes=bw)  # 1 second of traffic
    assert r.time(w) == pytest.approx(1.0)


def test_flop_efficiency_slows_compute():
    r = Roofline(BGP, "VN")
    full = r.time(KernelWork(flops=1e9))
    half = r.time(KernelWork(flops=1e9, flop_efficiency=0.5))
    assert half == pytest.approx(2 * full)


def test_smp_mode_has_more_resources():
    smp = Roofline(BGP, "SMP")
    vn = Roofline(BGP, "VN")
    assert smp.peak_flops == pytest.approx(4 * vn.peak_flops)
    assert smp.mem_bandwidth > vn.mem_bandwidth


def test_thread_efficiency_discount():
    r = Roofline(BGP, "SMP")  # 4 threads per task
    w = KernelWork(flops=13.6e9)
    perfect = r.time(w, threads_efficiency=1.0)
    imperfect = r.time(w, threads_efficiency=0.5)
    assert perfect == pytest.approx(1.0)
    # 1 + 3*0.5 = 2.5 effective cores out of 4.
    assert imperfect == pytest.approx(4 / 2.5, rel=0.01)
    with pytest.raises(ValueError):
        r.time(w, threads_efficiency=0.0)


def test_xt_faster_per_core_than_bgp():
    w = KernelWork(flops=1e9)
    assert Roofline(XT4_QC, "VN").time(w) < Roofline(BGP, "VN").time(w)
