"""Cache-hierarchy model tests."""

import pytest

from repro.machines import BGP, XT3, XT4_QC
from repro.memmodel import CacheModel


def test_covering_level_walks_hierarchy():
    cm = CacheModel(BGP)
    assert cm.covering_level(16 * 1024).name == "L1"
    assert cm.covering_level(1024 * 1024).name == "L3"
    assert cm.covering_level(64 * 1024 * 1024).name == "DRAM"


def test_xt3_has_no_l3():
    cm = CacheModel(XT3)
    names = [lt.name for lt in cm._levels]
    assert "L3" not in names
    assert names[-1] == "DRAM"


def test_xt4qc_has_l3():
    cm = CacheModel(XT4_QC)
    assert "L3" in [lt.name for lt in cm._levels]


def test_shared_level_split_among_cores():
    cm = CacheModel(BGP)
    ws = 3 * 1024 * 1024  # fits 8MB L3 alone, not an eighth of it
    assert cm.covering_level(ws, cores_sharing=1).name == "L3"
    assert cm.covering_level(ws, cores_sharing=4).name == "DRAM"


def test_latency_increases_down_hierarchy():
    cm = CacheModel(BGP)
    l1 = cm.random_access_latency(1024)
    l3 = cm.random_access_latency(1024 * 1024)
    dram = cm.random_access_latency(1 << 30)
    assert l1 < l3 < dram


def test_negative_working_set_rejected():
    with pytest.raises(ValueError):
        CacheModel(BGP).covering_level(-1)


def test_dram_traffic_zero_when_cached():
    cm = CacheModel(BGP)
    assert cm.dram_traffic(1e6, working_set=8 * 1024) == 0.0


def test_dram_traffic_patterns():
    cm = CacheModel(BGP)
    ws = 1 << 30
    streaming = cm.dram_traffic(1e6, ws, "streaming")
    blocked = cm.dram_traffic(1e6, ws, "blocked", reuse=10)
    rand = cm.dram_traffic(1e6, ws, "random")
    assert streaming == 1e6
    assert blocked == pytest.approx(1e5)
    assert rand > streaming  # whole lines dragged per 8-byte access


def test_unknown_pattern_rejected():
    with pytest.raises(ValueError):
        CacheModel(BGP).dram_traffic(1.0, 1 << 30, "zigzag")
