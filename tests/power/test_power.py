"""Power analysis: Table 3 reproduction + the measurement harness."""

import pytest

from repro.machines import BGP, hpl_mflops_per_watt, PowerMeter, XT4_QC
from repro.power import build_column, build_table3, measure_hpl, measure_pop


# ---------------------------------------------------------------------------
# PowerMeter plumbing
# ---------------------------------------------------------------------------
def test_meter_integrates_energy():
    meter = PowerMeter(BGP, cores=100)
    meter.record(0.0, 10.0, kind="normal")
    expected_watts = 100 * 7.3
    assert meter.total_joules == pytest.approx(expected_watts * 10)
    assert meter.average_watts() == pytest.approx(expected_watts)


def test_meter_hpl_draws_more():
    meter = PowerMeter(BGP, cores=8192)
    assert meter.watts_for("hpl") > meter.watts_for("normal") > meter.watts_for("idle")


def test_meter_interval_validation():
    with pytest.raises(ValueError):
        PowerMeter(BGP, cores=1).record(5.0, 2.0)


def test_meter_breakdown():
    meter = PowerMeter(BGP, cores=10)
    meter.record(0, 1, "normal", "compute")
    meter.record(1, 2, "normal", "compute")
    meter.record(2, 3, "idle", "wait")
    bd = meter.breakdown()
    assert set(bd) == {"compute", "wait"}
    assert bd["compute"] > bd["wait"]


# ---------------------------------------------------------------------------
# Table 3 values against the paper
# ---------------------------------------------------------------------------
def test_table3_bgp_column():
    c = build_column(BGP)
    assert c.cores == 8192
    assert c.hpl_power_kw == pytest.approx(63, rel=0.02)  # paper: 63
    assert c.normal_power_kw == pytest.approx(60, rel=0.02)  # paper: 60
    assert c.peak_tflops == pytest.approx(27.9, rel=0.01)
    assert c.hpl_rmax_tflops == pytest.approx(21.9, rel=0.01)
    assert c.mflops_per_watt == pytest.approx(347.6, rel=0.02)
    assert c.pop_syd_at_8192 == pytest.approx(3.6, rel=0.08)
    assert c.pop_power_kw_at_8192 == pytest.approx(60.0, rel=0.02)
    assert c.cores_for_12_syd == pytest.approx(40000, rel=0.1)
    assert c.power_kw_for_12_syd == pytest.approx(293.0, rel=0.1)


def test_table3_xt_column():
    c = build_column(XT4_QC)
    assert c.cores == 30976
    assert c.hpl_power_kw == pytest.approx(1580, rel=0.01)
    assert c.normal_power_kw == pytest.approx(1500, rel=0.01)
    assert c.peak_tflops == pytest.approx(260.2, rel=0.01)
    assert c.hpl_rmax_tflops == pytest.approx(205.0, rel=0.01)
    assert c.mflops_per_watt == pytest.approx(129.7, rel=0.02)
    assert c.pop_syd_at_8192 == pytest.approx(12.5, rel=0.08)
    assert c.pop_power_kw_at_8192 == pytest.approx(396.7, rel=0.02)
    assert c.cores_for_12_syd == pytest.approx(7500, rel=0.1)
    assert c.power_kw_for_12_syd == pytest.approx(363.2, rel=0.1)


def test_green500_ratio():
    """'BG/P provides about 348 MFlops per watt, while the Cray XT
    generates about 130 ... a ratio of 2.68.'"""
    ratio = hpl_mflops_per_watt(BGP, 8192) / hpl_mflops_per_watt(XT4_QC, 30976)
    assert ratio == pytest.approx(2.68, rel=0.03)


def test_science_normalized_gap_much_smaller():
    """Section IV: at fixed 12 SYD the XT needs only ~24% more power —
    'a considerably smaller difference' than the 6.6x per-core gap."""
    cols = {c.machine: c for c in build_table3([BGP, XT4_QC])}
    gap = cols["XT4/QC"].power_kw_for_12_syd / cols["BG/P"].power_kw_for_12_syd
    per_core_gap = 51.0 / 7.7
    assert 1.1 < gap < 1.6
    assert gap < per_core_gap / 3


# ---------------------------------------------------------------------------
# measurement harness
# ---------------------------------------------------------------------------
def test_measure_hpl_bgp():
    run = measure_hpl(BGP, 8192)
    assert run.mflops_per_watt == pytest.approx(347.6, rel=0.03)
    assert run.joules > 0


def test_measure_pop_phases():
    run = measure_pop(BGP, 8000)
    assert run.workload == "POP"
    assert run.figure_of_merit == pytest.approx(3.6, rel=0.1)
    # POP draws a touch less than nameplate 'normal' because the
    # imbalance tail idles.
    assert run.average_watts < BGP.power.aggregate(8000, "normal")


def test_power_efficiency_holds_under_normal_load():
    """'on average, BG/P required 7.3 watts per core and the XT
    required 48 watts per core'."""
    assert BGP.power.normal_watts_per_core == pytest.approx(7.3)
    assert XT4_QC.power.normal_watts_per_core == pytest.approx(48.4)
