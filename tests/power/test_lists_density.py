"""TOP500/Green500 placement and physical-density analysis."""

import pytest

from repro.machines import BGP, density_ratio, footprint_for_cores, footprint_for_peak, XT3, XT4_QC
from repro.power import (
    GREEN500_JUNE_2008_ANCHORS,
    green500_rank,
    place_configuration,
    TOP500_JUNE_2008_ANCHORS,
    top500_rank,
)


# ---------------------------------------------------------------------------
# list placement
# ---------------------------------------------------------------------------
def test_eugene_places_at_paper_ranks():
    """Section II.C: Eugene was #74 on the TOP500 and 5th on the
    Green500 (June 2008)."""
    pl = place_configuration(BGP, 8192)
    assert pl.top500_rank == pytest.approx(74, abs=5)
    assert pl.green500_rank == pytest.approx(5, abs=2)


def test_jaguar_places_top_five():
    """Jaguar's 205 TF was #5 on the June-2008 list."""
    pl = place_configuration(XT4_QC, 30976)
    assert pl.top500_rank <= 6


def test_anchor_ranks_exact():
    assert top500_rank(21_400.0) == 74
    assert top500_rank(2_000_000.0) == 1  # above Roadrunner: rank 1
    assert top500_rank(100.0) == 501  # off the list
    assert green500_rank(310.9) == 5
    assert green500_rank(1.0) == 501


def test_rank_monotone_in_score():
    scores = [10_000, 21_400, 50_000, 205_000, 500_000]
    ranks = [top500_rank(s) for s in scores]
    assert ranks == sorted(ranks, reverse=True)


def test_rank_validation():
    with pytest.raises(ValueError):
        top500_rank(0)
    with pytest.raises(ValueError):
        green500_rank(-1)


def test_anchor_tables_sorted():
    for anchors in (TOP500_JUNE_2008_ANCHORS, GREEN500_JUNE_2008_ANCHORS):
        ranks = [r for r, _ in anchors]
        vals = [v for _, v in anchors]
        assert ranks == sorted(ranks)
        assert vals == sorted(vals, reverse=True)


# ---------------------------------------------------------------------------
# density / footprint
# ---------------------------------------------------------------------------
def test_density_ratios_from_paper():
    """Section I.A: 4096 vs 192 vs 384 cores per rack."""
    assert density_ratio(BGP, XT3) == pytest.approx(4096 / 192)
    assert density_ratio(BGP, XT4_QC) == pytest.approx(4096 / 384)


def test_petaflop_needs_72_racks():
    """Section I.A: 'A BG/P system with 72 racks ... 1 PFlop/s'."""
    fp = footprint_for_peak(BGP, 1000.0)
    assert fp.racks == 72
    # Filled racks carry the paper's 294,912 cores.
    assert fp.racks * BGP.cores_per_rack == 294_912


def test_same_peak_fewer_bgp_racks():
    """Density is the point: far fewer racks than the XT for the same
    peak."""
    bgp = footprint_for_peak(BGP, 100.0)
    xt = footprint_for_peak(XT4_QC, 100.0)
    assert bgp.racks < xt.racks / 3


def test_footprint_power_uses_normal_draw():
    fp = footprint_for_cores(BGP, 8192)
    assert fp.power_kw == pytest.approx(8192 * 7.3 / 1e3)


def test_footprint_validation():
    with pytest.raises(ValueError):
        footprint_for_cores(BGP, 0)
    with pytest.raises(ValueError):
        footprint_for_peak(BGP, 0.0)
