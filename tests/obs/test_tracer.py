"""Tracer behaviour: determinism, zero-cost-when-disabled, spans."""

import pytest

from repro.machines import BGP, XT4_QC
from repro.obs import (
    active_tracer,
    chrome_trace_json,
    Tracer,
    tracing,
)
from repro.simmpi import Cluster


def _ring_program(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    req = comm.irecv(src=left, tag=0)
    yield from comm.send(right, nbytes=4096, tag=0)
    yield from comm.wait(req)
    yield from comm.compute(seconds=1e-4)
    yield from comm.allreduce(8, dtype="float64")
    if comm.rank % 2 == 0:
        yield from comm.send(right, nbytes=64, tag=9)
    else:
        yield from comm.recv(src=left, tag=9)
    return comm.now


def _traced_run(machine=BGP, ranks=4, mode="VN"):
    cluster = Cluster(machine, ranks=ranks, mode=mode)
    result = cluster.run(_ring_program, trace=True)
    return cluster, result


# -- determinism -----------------------------------------------------------
def test_two_identical_runs_are_byte_identical():
    _, res_a = _traced_run()
    _, res_b = _traced_run()
    json_a = chrome_trace_json(res_a.trace)
    json_b = chrome_trace_json(res_b.trace)
    assert json_a == json_b
    assert json_a.encode() == json_b.encode()


# -- zero cost when disabled ----------------------------------------------
def test_untraced_run_attaches_nothing():
    cluster = Cluster(BGP, ranks=4, mode="VN")
    cluster.run(_ring_program)
    assert cluster.tracer is None
    assert cluster.env.obs is None
    assert cluster.transport._send_hooks == []
    assert all(link.observer is None for link in cluster.torus.links.values())


def test_disabled_tracer_records_nothing(monkeypatch):
    """With tracing off, no Tracer method may run at all."""
    for method in ("complete", "instant", "counter", "engine_step"):
        monkeypatch.setattr(
            Tracer,
            method,
            lambda self, *a, **k: pytest.fail(f"Tracer.{method} called"),
        )
    cluster = Cluster(BGP, ranks=4, mode="VN")
    res = cluster.run(_ring_program)
    assert res.trace is None


# -- Cluster.run(trace=True) ----------------------------------------------
def test_trace_true_returns_tracer_on_result():
    cluster, res = _traced_run()
    assert isinstance(res.trace, Tracer)
    assert res.trace is cluster.tracer
    names = {ev["name"] for ev in res.trace.events}
    assert {"send", "recv", "compute", "allreduce"} <= names


def test_span_totals_count_per_rank_spans():
    _, res = _traced_run(ranks=4)
    totals = res.trace.span_totals
    assert totals["compute"][0] == 4
    assert totals["allreduce"][0] == 4
    assert totals["send"][0] == 6  # 4 ring sends + 2 eager exchange sends
    assert totals["recv"][0] == 2


def test_collective_spans_carry_algorithm_attribute():
    _, res = _traced_run(machine=XT4_QC, ranks=4, mode="SMP")
    allreduces = [ev for ev in res.trace.events if ev["name"] == "allreduce"]
    assert allreduces
    # 8-byte payload is under the recursive-doubling threshold
    assert all(ev["args"]["algorithm"] == "recursive-doubling" for ev in allreduces)
    assert all(ev["args"]["nbytes"] == 8 for ev in allreduces)


def test_bg_allreduce_uses_tree_network():
    _, res = _traced_run(machine=BGP, ranks=4, mode="VN")
    allreduces = [ev for ev in res.trace.events if ev["name"] == "allreduce"]
    assert allreduces
    assert all(ev["args"]["algorithm"] == "tree" for ev in allreduces)


def test_attach_is_idempotent():
    cluster = Cluster(BGP, ranks=2, mode="SMP")
    tracer = Tracer()
    tracer.attach(cluster)
    tracer.attach(cluster)
    assert cluster.transport._send_hooks == [tracer._on_send]


def test_engine_and_process_metrics():
    _, res = _traced_run()
    counters = res.trace.metrics.to_dict()["counters"]
    assert counters["engine.events"] > 0
    assert counters["engine.processes_spawned"] >= 4
    assert counters["engine.processes_spawned"] == counters["engine.processes_finished"]
    gauges = res.trace.metrics.to_dict()["gauges"]
    assert gauges["engine.processes_live"]["value"] == 0
    assert gauges["engine.processes_live"]["max"] >= 4


def test_engine_stride_samples_fewer_counter_tracks():
    def run(stride):
        cluster = Cluster(BGP, ranks=4, mode="VN")
        Tracer(engine_stride=stride).attach(cluster)
        cluster.run(_ring_program)
        return sum(
            1 for ev in cluster.tracer.events if ev["name"] == "queue_depth"
        )

    assert run(64) < run(1)
    with pytest.raises(ValueError):
        Tracer(engine_stride=0)


# -- ambient tracing -------------------------------------------------------
def test_ambient_tracer_attaches_to_inner_clusters():
    tracer = Tracer()
    assert active_tracer() is None
    with tracing(tracer):
        assert active_tracer() is tracer
        cluster = Cluster(BGP, ranks=2, mode="SMP")
        cluster.run(_ring_program)
        assert cluster.tracer is tracer
    assert active_tracer() is None
    assert tracer.span_totals["send"][0] == 3  # 2 ring sends + 1 eager exchange


# -- named application phases ---------------------------------------------
def test_phase_spans_recorded():
    def program(comm):
        with comm.phase("baroclinic"):
            yield from comm.compute(seconds=1e-4)
        with comm.phase("barotropic"):
            yield from comm.allreduce(8, dtype="float64")
        return comm.now

    cluster = Cluster(BGP, ranks=4, mode="VN")
    res = cluster.run(program, trace=True)
    phases = [ev for ev in res.trace.events if ev["cat"] == "phase"]
    assert {ev["name"] for ev in phases} == {"baroclinic", "barotropic"}
    assert len(phases) == 8  # 2 phases x 4 ranks
    for ev in phases:
        assert ev["dur"] > 0


def test_phase_without_tracer_is_noop():
    def program(comm):
        with comm.phase("quiet"):
            yield from comm.compute(seconds=1e-5)
        return comm.now

    cluster = Cluster(BGP, ranks=2, mode="SMP")
    cluster.run(program)
    assert cluster.tracer is None


def test_pop_replay_emits_named_phases():
    from repro.apps.pop.des_replay import replay_steps
    from repro.apps.pop.grid import PopGrid

    tracer = Tracer(engine_stride=64)
    with tracing(tracer):
        replay_steps(
            BGP,
            processes=4,
            grid=PopGrid(nx=120, ny=80, levels=10),
            steps=1,
            solver_iterations=2,
        )
    assert tracer.span_totals["baroclinic"][0] == 4
    assert tracer.span_totals["barotropic"][0] == 4
    assert tracer.span_totals["allreduce"][0] > 0
