"""Per-link network telemetry on a 2x2x2 torus ring exchange."""

import pytest

from repro.machines import BGP
from repro.obs import NETWORK_PID, Tracer
from repro.simmpi import Cluster


NBYTES = 1 << 16
REPS = 4


def _ring_shift_run():
    """Every rank ships NBYTES to its ring successor, REPS times."""

    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for rep in range(REPS):
            req = comm.irecv(src=left, tag=rep)
            yield from comm.send(right, nbytes=NBYTES, tag=rep)
            yield from comm.wait(req)
        return comm.now

    cluster = Cluster(BGP, ranks=8, mode="SMP")
    result = cluster.run(program, trace=True)
    assert cluster.partition.torus_shape == (2, 2, 2)
    return cluster, result.trace


def test_tracer_links_match_link_objects():
    """Tracer telemetry must agree with the links' own counters."""
    cluster, tracer = _ring_shift_run()
    assert set(tracer.links) == set(cluster.torus.links)
    for key, row in tracer.links.items():
        link = cluster.torus.links[key]
        assert row["bytes"] == pytest.approx(link.bytes_carried)
        assert row["transfers"] == link.transfers
        assert row["busy_seconds"] == pytest.approx(link.busy_time)
        assert row["stalls"] >= 0
        assert row["stall_seconds"] >= 0


def test_total_link_bytes_equal_payload_times_hops():
    """Sum over links == sum over messages of nbytes * route hops.

    Rendezvous RTS control messages traverse links too but carry zero
    bytes, so payload bytes x hop count is exact.
    """
    cluster, tracer = _ring_shift_run()
    node = cluster.transport.mapping.node_of
    expected = 0
    for rank in range(8):
        hops = cluster.torus.hop_distance(node(rank), node((rank + 1) % 8))
        expected += REPS * NBYTES * hops
    assert sum(row["bytes"] for row in tracer.links.values()) == expected
    assert tracer.metrics.counter("net.link_bytes").value == expected


def test_link_counter_tracks_emitted():
    """Each active link gets a cumulative counter track on NETWORK_PID."""
    cluster, tracer = _ring_shift_run()
    tracks = {}
    for ev in tracer.events:
        if ev["ph"] == "C" and ev["pid"] == NETWORK_PID:
            tracks.setdefault(ev["name"], []).append(ev)
    active = {k for k, v in cluster.torus.links.items() if v.transfers}
    assert len(tracks) == len(active)
    for key in active:
        (ax, ay, az), (bx, by, bz) = key
        label = f"link ({ax},{ay},{az})->({bx},{by},{bz})"
        samples = tracks[label]
        # cumulative: bytes never decrease sample-to-sample
        values = [s["args"]["bytes"] for s in samples]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(tracer.links[key]["bytes"])


def test_link_table_uses_sorted_printable_labels():
    _, tracer = _ring_shift_run()
    table = tracer.link_table()
    labels = list(table)
    assert labels == sorted(labels)
    assert all(lbl.startswith("(") and "->" in lbl for lbl in labels)
    first = next(iter(table.values()))
    assert set(first) == {
        "bytes", "transfers", "stalls", "stall_seconds", "busy_seconds"
    }


def test_contention_stalls_are_observed():
    """Funnel traffic through one node so links serialize and stall."""
    from repro.simengine import Engine, SerialLink

    env = Engine()
    link = SerialLink(env, bandwidth=1e6, latency=0.0)
    calls = []
    link.observer = lambda nbytes, start, wait, dur: calls.append(wait)
    link.book(1e6, earliest=0.0)  # occupies [0, 1)
    link.book(1e6, earliest=0.0)  # must wait a full second
    assert calls[0] == 0.0
    assert calls[1] == pytest.approx(1.0)
