"""Exporter tests: Chrome trace schema, metrics JSON, ASCII summary."""

import json

import pytest

from repro.machines import BGP
from repro.obs import (
    chrome_trace,
    chrome_trace_json,
    metrics_dict,
    metrics_json,
    summary,
    Tracer,
    validate_trace_events,
    write_chrome_trace,
    write_metrics,
)
from repro.simmpi import Cluster


@pytest.fixture(scope="module")
def traced():
    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        req = comm.irecv(src=left, tag=0)
        yield from comm.send(right, nbytes=1 << 16, tag=0)
        yield from comm.wait(req)
        with comm.phase("work"):
            yield from comm.compute(seconds=1e-4)
        return comm.now

    cluster = Cluster(BGP, ranks=8, mode="SMP")
    return cluster.run(program, trace=True).trace


# -- schema ---------------------------------------------------------------
def test_exported_trace_passes_schema(traced):
    doc = json.loads(chrome_trace_json(traced))
    validate_trace_events(doc)  # must not raise


def test_trace_has_per_rank_process_metadata(traced):
    doc = chrome_trace(traced)
    names = {
        ev["pid"]: ev["args"]["name"]
        for ev in doc["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "process_name"
    }
    for rank in range(8):
        assert names[rank] == f"rank {rank}"
    assert "sim-engine" in names.values()
    assert "torus-network" in names.values()


@pytest.mark.parametrize(
    "doc",
    [
        [],  # not an object
        {"events": []},  # wrong key
        {"traceEvents": {}},  # not a list
        {"traceEvents": [[]]},  # event not an object
        {"traceEvents": [{"ph": "Q", "name": "x", "pid": 0}]},  # unknown phase
        {"traceEvents": [{"ph": "X", "pid": 0, "ts": 0, "dur": 1}]},  # no name
        {"traceEvents": [{"ph": "X", "name": "x", "ts": 0, "dur": 1}]},  # no pid
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "ts": -1, "dur": 1}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "ts": 0}]},  # no dur
        {"traceEvents": [{"ph": "C", "name": "x", "pid": 0, "ts": 0}]},  # no args
        {"traceEvents": [{"ph": "M", "name": "process_name", "pid": 0}]},
    ],
)
def test_schema_rejects_malformed_documents(doc):
    with pytest.raises(ValueError):
        validate_trace_events(doc)


def test_empty_tracer_exports_valid_trace():
    tracer = Tracer()
    doc = json.loads(chrome_trace_json(tracer))
    validate_trace_events(doc)
    assert doc["traceEvents"] == []


# -- files ----------------------------------------------------------------
def test_write_chrome_trace_roundtrip(tmp_path, traced):
    path = write_chrome_trace(traced, tmp_path / "t.json")
    text = path.read_text()
    assert text.endswith("\n")
    validate_trace_events(json.loads(text))


def test_write_metrics_roundtrip(tmp_path, traced):
    path = write_metrics(traced, tmp_path / "m.json")
    doc = json.loads(path.read_text())
    assert set(doc) == {"counters", "gauges", "histograms", "links", "spans"}
    assert doc["counters"]["mpi.messages"] == 8
    assert doc["spans"]["send"]["count"] == 8
    assert doc["spans"]["work"]["count"] == 8


def test_metrics_json_deterministic(traced):
    assert metrics_json(traced) == metrics_json(traced)
    d = metrics_dict(traced)
    assert d["histograms"]["mpi.message_bytes"]["count"] == 8


# -- summary --------------------------------------------------------------
def test_summary_sections_and_top_n(traced):
    text = summary(traced, n=2)
    assert "== span attribution (by total time) ==" in text
    assert "== hottest links (by bytes) ==" in text
    assert "== counters ==" in text
    span_section = text.split("== hottest links")[0]
    rows = [ln for ln in span_section.splitlines() if ln.startswith("  ")]
    assert len(rows) == 2


def test_summary_of_empty_tracer():
    text = summary(Tracer())
    assert "(no spans recorded)" in text
    assert "(no link traffic recorded)" in text
