"""CLI tests: `repro trace` and `repro run --trace`."""

import json

import pytest

from repro.cli import main
from repro.obs import scenario_ids, validate_trace_events


def test_trace_list_scenarios(capsys):
    assert main(["trace", "--list"]) == 0
    out = capsys.readouterr().out
    for sid in scenario_ids():
        assert sid in out


def test_trace_unknown_scenario_fails(capsys):
    assert main(["trace", "nope"]) == 2
    assert "unknown trace scenario" in capsys.readouterr().err


def test_trace_without_scenario_fails(capsys):
    assert main(["trace"]) == 2
    assert "--list" in capsys.readouterr().err


def test_trace_writes_valid_trace_and_metrics(tmp_path, capsys):
    trace_file = tmp_path / "ring.json"
    metrics_file = tmp_path / "ring.metrics.json"
    code = main(
        [
            "trace",
            "torus-ring",
            "-o",
            str(trace_file),
            "--metrics",
            str(metrics_file),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "ring shift x8" in out
    assert "== span attribution" in out  # summary printed by default

    doc = json.loads(trace_file.read_text())
    validate_trace_events(doc)
    pids = {ev["pid"] for ev in doc["traceEvents"] if ev["ph"] == "X"}
    assert set(range(8)) <= pids  # per-rank span tracks

    metrics = json.loads(metrics_file.read_text())
    assert metrics["counters"]["mpi.messages"] == 32


def test_trace_no_summary_flag(tmp_path, capsys):
    assert main(["trace", "pingpong", "-o", str(tmp_path / "p.json"), "--no-summary"]) == 0
    assert "== span attribution" not in capsys.readouterr().out


def test_trace_output_is_byte_identical_across_runs(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    assert main(["trace", "allreduce", "-o", str(a), "--no-summary"]) == 0
    assert main(["trace", "allreduce", "-o", str(b), "--no-summary"]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()


@pytest.mark.parametrize("scenario", ["pop"])
def test_app_scenario_has_named_phases(tmp_path, capsys, scenario):
    out_file = tmp_path / f"{scenario}.json"
    assert main(["trace", scenario, "-o", str(out_file), "--no-summary"]) == 0
    capsys.readouterr()
    doc = json.loads(out_file.read_text())
    validate_trace_events(doc)
    phases = {ev["name"] for ev in doc["traceEvents"] if ev.get("cat") == "phase"}
    assert {"baroclinic", "barotropic"} <= phases


def test_run_with_trace_and_metrics(tmp_path, capsys):
    trace_file = tmp_path / "halo.json"
    metrics_file = tmp_path / "halo.metrics.json"
    code = main(
        [
            "run",
            "table1",
            "--trace",
            str(trace_file),
            "--metrics",
            str(metrics_file),
        ]
    )
    assert code == 0
    capsys.readouterr()
    validate_trace_events(json.loads(trace_file.read_text()))
    json.loads(metrics_file.read_text())


def test_run_without_trace_writes_nothing(tmp_path, capsys):
    assert main(["run", "table1"]) == 0
    assert "wrote" not in capsys.readouterr().out
    assert list(tmp_path.iterdir()) == []
