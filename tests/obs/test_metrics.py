"""Metric instrument and registry tests."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_accumulates():
    c = Counter("x")
    c.inc()
    c.inc(41)
    assert c.value == 42


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("x").inc(-1)


def test_gauge_tracks_current_and_max():
    g = Gauge("depth")
    g.set(3)
    g.set(7)
    g.set(2)
    assert g.value == 2
    assert g.max == 7


def test_histogram_power_of_two_buckets():
    h = Histogram("sizes")
    for v in (0, 1, 2, 3, 1024):
        h.observe(v)
    # 0 -> bucket -1, 1 -> 0, 2..3 -> 1, 1024 -> 10
    assert h.buckets[-1] == 1
    assert h.buckets[0] == 1
    assert h.buckets[1] == 2
    assert h.buckets[10] == 1
    assert h.count == 5
    assert h.total == 1030


def test_registry_create_on_first_use_and_reuse():
    reg = MetricsRegistry()
    a = reg.counter("mpi.messages")
    b = reg.counter("mpi.messages")
    assert a is b
    reg.gauge("q").set(5)
    reg.histogram("sz").observe(8)
    d = reg.to_dict()
    assert d["counters"] == {"mpi.messages": 0}
    assert d["gauges"]["q"]["value"] == 5
    assert "3" in d["histograms"]["sz"]["buckets"]


def test_registry_dict_is_sorted():
    reg = MetricsRegistry()
    for name in ("zeta", "alpha", "mid"):
        reg.counter(name).inc()
    assert list(reg.to_dict()["counters"]) == ["alpha", "mid", "zeta"]
