"""Every example script must run clean end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert len(proc.stdout) > 100  # produced a real report
