"""Every example script must run clean end-to-end."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

# The examples import repro from the source tree; make sure the child
# process sees it even when the package is not installed.
_SRC = str(EXAMPLES_DIR.parent / "src")
_PATH = os.pathsep.join(filter(None, [_SRC, os.environ.get("PYTHONPATH")]))
_ENV = dict(os.environ, PYTHONPATH=_PATH)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=_ENV,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert len(proc.stdout) > 100  # produced a real report
