"""One-shot firing semantics and the torn-write primitives."""

from repro.campaign import JobRecord, ResultCache, read_journal
from repro.campaign.manifest import append_journal
from repro.chaos import (
    ChaosEvent,
    ChaosInjector,
    ChaosSpec,
    torn_bytes,
    torn_cache_put,
    torn_journal_append,
    torn_text_write,
)

JOBS = ["table1", "top500", "lists"]


def make_injector(*events):
    return ChaosInjector(ChaosSpec(events=tuple(events)).compile(JOBS))


# ---------------------------------------------------------------------------
# firing registry
# ---------------------------------------------------------------------------
def test_events_fire_exactly_once():
    event = ChaosEvent(kind="kill", job="table1")
    injector = make_injector(event)
    assert injector.fire(event) is True
    assert injector.fire(event) is False
    assert injector.fired_keys() == ["kill:table1@1"]


def test_kill_and_hang_queries_hide_fired_events():
    kill = ChaosEvent(kind="kill", job="table1")
    hang = ChaosEvent(kind="hang", job="top500", seconds=1.0)
    injector = make_injector(kill, hang)
    assert injector.kill_event("table1", 1) == kill
    injector.fire(kill)
    assert injector.kill_event("table1", 1) is None
    assert injector.hang_event("top500", 1) == hang
    injector.fire(hang)
    assert injector.hang_event("top500", 1) is None


def test_write_fault_fires_on_first_query_only():
    event = ChaosEvent(kind="torn", stream="cache", job="table1")
    injector = make_injector(event)
    assert injector.write_fault("cache", "table1") == event
    assert injector.write_fault("cache", "table1") is None
    assert injector.write_fault("cache", "top500") is None


def test_note_fired_absorbs_worker_reports_once():
    event = ChaosEvent(kind="hang", job="table1", seconds=0.5)
    injector = make_injector(event)
    keys = [event.key(), "hang:unknown@1"]
    assert injector.note_fired(keys) == [event]
    assert injector.note_fired(keys) == []  # already fired, unknown ignored
    assert injector.fired_keys() == [event.key()]


def test_report_is_sorted_and_deterministic():
    a = ChaosEvent(kind="torn", stream="cache", job="top500")
    b = ChaosEvent(kind="kill", job="table1")
    injector = make_injector(a, b)
    # fire in "racy" order; the report sorts by key
    injector.fire(a)
    injector.fire(b)
    report = injector.report()
    assert report.splitlines()[0] == "chaos: 2 injection(s) fired"
    assert report.index("kill") < report.index("torn")


# ---------------------------------------------------------------------------
# torn writes
# ---------------------------------------------------------------------------
def test_torn_bytes_is_a_proper_nonempty_prefix():
    payload = b"0123456789"
    torn = torn_bytes(payload)
    assert payload.startswith(torn)
    assert 0 < len(torn) < len(payload)
    assert torn_bytes(b"") == b""
    assert torn_bytes(b"ab", fraction=0.0) == b"a"
    assert torn_bytes(b"ab", fraction=1.0) == b"a"  # never all bytes


def test_torn_text_write_leaves_prefix_at_final_path(tmp_path):
    path = tmp_path / "deep" / "file.json"
    torn_text_write(path, '{"ok": true}')
    raw = path.read_bytes()
    assert raw and b'{"ok": true}'.startswith(raw)
    assert len(raw) < len(b'{"ok": true}')


def test_torn_cache_entry_reads_as_clean_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put("aa" * 32, "real entry")
    torn_cache_put(cache, "bb" * 32, "torn entry", meta={"experiment": "x"})
    assert cache.get("aa" * 32) == "real entry"
    assert cache.get("bb" * 32) is None  # miss, not an exception
    assert ("bb" * 32) not in cache


def test_torn_journal_tail_is_skipped_and_healed(tmp_path):
    path = tmp_path / "journal.jsonl"
    append_journal(path, JobRecord(job_id="a", experiment="a"))
    torn_journal_append(path, JobRecord(job_id="b", experiment="b"))
    # the torn record is invisible; the good one survives
    assert sorted(read_journal(path)) == ["a"]
    # the next real append heals the torn tail instead of fusing with it
    append_journal(path, JobRecord(job_id="c", experiment="c"))
    assert sorted(read_journal(path)) == ["a", "c"]
