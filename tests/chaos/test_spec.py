"""Chaos spec parsing, validation, and deterministic compilation."""

import json

import pytest

from repro.chaos import ChaosError, ChaosEvent, ChaosSpec

JOBS = ["table1", "top500", "lists", "fig6", "fig2", "fig3", "fig5", "table3"]


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------
def test_from_string_parses_every_key():
    spec = ChaosSpec.from_string(
        "seed=42, kills=2, hangs=1, torn=1, ioerr=1, hang-seconds=0.5, hard=1"
    )
    assert spec.seed == 42
    assert (spec.kills, spec.hangs, spec.torn, spec.ioerr) == (2, 1, 1, 1)
    assert spec.hang_seconds == 0.5
    assert spec.hard is True


@pytest.mark.parametrize(
    "text,fragment",
    [
        ("bogus", "key=value"),
        ("seed=x", "needs an integer"),
        ("hang_seconds=soon", "needs a number"),
        ("flavor=spicy", "unknown key"),
    ],
)
def test_from_string_rejects_malformed(text, fragment):
    with pytest.raises(ChaosError, match=fragment):
        ChaosSpec.from_string(text)


def test_parse_reads_json_file(tmp_path):
    path = tmp_path / "chaos.json"
    path.write_text(
        json.dumps(
            {
                "seed": 7,
                "kills": 1,
                "events": [{"kind": "hang", "job": "table1", "seconds": 2.0}],
            }
        )
    )
    spec = ChaosSpec.parse(str(path))
    assert spec.seed == 7 and spec.kills == 1
    assert spec.events[0] == ChaosEvent(kind="hang", job="table1", seconds=2.0)


@pytest.mark.parametrize(
    "doc,fragment",
    [
        ([], "JSON object"),
        ({"surprise": 1}, "unknown key"),
        ({"events": [{"job": "x"}]}, "object with a 'kind'"),
        ({"events": [{"kind": "melt", "job": "x"}]}, "unknown chaos kind"),
        ({"events": [{"kind": "kill"}]}, "needs a job id"),
        ({"events": [{"kind": "kill", "job": "x", "attempt": 0}]}, "attempt"),
        ({"events": [{"kind": "torn", "job": "x"}]}, "stream"),
        ({"events": [{"kind": "torn", "stream": "cache"}]}, "needs a job id"),
        (
            {"events": [{"kind": "hang", "job": "x", "seconds": -1}]},
            "seconds must be >= 0",
        ),
    ],
)
def test_from_dict_rejects_malformed(doc, fragment):
    with pytest.raises(ChaosError, match=fragment):
        ChaosSpec.from_dict(doc)


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------
def test_compile_same_seed_same_plan():
    spec = ChaosSpec.from_string("seed=42,kills=2,hangs=1,torn=2,ioerr=1")
    a, b = spec.compile(JOBS), spec.compile(JOBS)
    assert a == b
    assert a.describe() == b.describe()
    assert len(a) == 6


def test_compile_is_schedule_independent_of_job_order():
    spec = ChaosSpec.from_string("seed=42,kills=2,torn=1")
    forward = spec.compile(JOBS)
    backward = spec.compile(list(reversed(JOBS)))
    assert forward == backward


def test_compile_different_seeds_pick_different_targets():
    kills = {
        seed: tuple(
            e.job
            for e in ChaosSpec.from_string(f"seed={seed},kills=3").compile(JOBS).events
        )
        for seed in range(4)
    }
    assert len(set(kills.values())) > 1, "seed never changes the target set"


def test_compile_rejects_unknown_explicit_target():
    spec = ChaosSpec(events=(ChaosEvent(kind="kill", job="ghost"),))
    with pytest.raises(ChaosError, match="unknown job 'ghost'"):
        spec.compile(JOBS)


def test_compile_dedups_by_event_key():
    spec = ChaosSpec(
        seed=0,
        events=(ChaosEvent(kind="kill", job=JOBS[0]),),
        kills=len(JOBS),  # seeded picks include JOBS[0] again
    )
    plan = spec.compile(JOBS)
    keys = [e.key() for e in plan.events]
    assert len(keys) == len(set(keys)) == len(JOBS)


def test_plan_lookups_are_content_addressed():
    spec = ChaosSpec(
        events=(
            ChaosEvent(kind="kill", job="table1", attempt=2),
            ChaosEvent(kind="hang", job="top500", seconds=1.5, hard=True),
            ChaosEvent(kind="torn", stream="cache", job="lists"),
            ChaosEvent(kind="ioerr", stream="journal", job="fig6"),
        )
    )
    plan = spec.compile(JOBS)
    assert plan.kill_event("table1", 2) is not None
    assert plan.kill_event("table1", 1) is None
    assert plan.hang_event("top500", 1).hard is True
    assert plan.write_event("cache", "lists").kind == "torn"
    assert plan.write_event("journal", "fig6").kind == "ioerr"
    assert plan.write_event("manifest", "") is None


def test_plan_scaled_only_touches_hang_durations():
    spec = ChaosSpec(
        events=(
            ChaosEvent(kind="hang", job="table1", seconds=2.0),
            ChaosEvent(kind="kill", job="top500"),
        )
    )
    plan = spec.compile(JOBS).scaled(0.5)
    assert plan.hang_event("table1", 1).seconds == 1.0
    assert plan.kill_event("top500", 1) is not None


def test_event_keys_distinguish_attempt_and_stream():
    assert ChaosEvent(kind="kill", job="a", attempt=1).key() == "kill:a@1"
    assert ChaosEvent(kind="kill", job="a", attempt=2).key() == "kill:a@2"
    assert ChaosEvent(kind="torn", stream="cache", job="a").key() == "torn:cache:a"
    assert ChaosEvent(kind="ioerr", stream="journal", job="a").key() == "ioerr:journal:a"
