"""CSV export of figures."""

import csv
import io

from repro.core import Figure, figure_to_csv


def test_csv_roundtrip():
    fig = (
        Figure("F", "x", "y")
        .add("a", [(1, 2.0), (2, 4.0)])
        .add("b, with comma", [(1, 3.0)])
    )
    text = figure_to_csv(fig)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["series", "x", "y"]
    assert rows[1] == ["a", "1", "2.0"]
    assert rows[3][0] == "b, with comma"  # quoting survived


def test_csv_empty_figure():
    assert figure_to_csv(Figure("F", "x", "y")) == "series,x,y"


def test_csv_preserves_precision():
    fig = Figure("F", "x", "y").add("s", [(1, 0.123456789012345)])
    text = figure_to_csv(fig)
    assert "0.123456789012345" in text
