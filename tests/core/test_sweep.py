"""Direct coverage for :mod:`repro.core.sweep`.

The sweep helper now underpins the campaign layer's job fan-out, so
its contract — deterministic point order, per-point error isolation
with the exception *class* preserved, and the ``executor=`` map hook —
is pinned here rather than only exercised incidentally by the benches.
"""

import pytest

from repro.core.sweep import Sweep, SweepPoint
from repro.simengine import BudgetExceeded
from repro.simengine.budget import BudgetSummary


def _times(a, b):
    return a * b


def _fragile(a, b):
    if a == 2:
        raise ValueError(f"a={a} rejected")
    if b == 30 and a == 3:
        raise BudgetExceeded(
            BudgetSummary(reason="max-events", sim_time=1.0, events=5, wall_seconds=0.1)
        )
    return a * b


# ---------------------------------------------------------------------------
# expansion / validation
# ---------------------------------------------------------------------------
def test_cartesian_order_is_deterministic():
    sweep = Sweep().add_axis("a", [1, 2]).add_axis("b", [10, 20, 30])
    params = [p.params for p in sweep.run(_times)]
    assert params == [
        {"a": 1, "b": 10}, {"a": 1, "b": 20}, {"a": 1, "b": 30},
        {"a": 2, "b": 10}, {"a": 2, "b": 20}, {"a": 2, "b": 30},
    ]
    assert [p.value for p in sweep.run(_times)] == [10, 20, 30, 20, 40, 60]


def test_points_matches_run_order():
    sweep = Sweep().add_axis("a", [1, 2]).add_axis("b", [10, 20])
    assert sweep.points() == [p.params for p in sweep.run(_times)]


def test_empty_axis_rejected():
    with pytest.raises(ValueError, match="axis 'a' has no values"):
        Sweep().add_axis("a", [])


def test_no_axes_rejected():
    with pytest.raises(ValueError, match="no axes defined"):
        Sweep().run(_times)
    with pytest.raises(ValueError, match="no axes defined"):
        Sweep().points()


# ---------------------------------------------------------------------------
# error isolation + classification
# ---------------------------------------------------------------------------
def test_error_isolation_records_class_name():
    sweep = Sweep().add_axis("a", [1, 2, 3]).add_axis("b", [10, 30])
    points = sweep.run(_fragile)
    assert len(points) == 6

    by_params = {(p.params["a"], p.params["b"]): p for p in points}
    ok = by_params[(1, 10)]
    assert ok.ok and ok.value == 10 and ok.error == "" and ok.error_type == ""

    bad = by_params[(2, 10)]
    assert not bad.ok
    assert bad.error_type == "ValueError"
    assert bad.error == "a=2 rejected"
    assert bad.error_full == "ValueError: a=2 rejected"

    budget = by_params[(3, 30)]
    assert budget.error_type == "BudgetExceeded"
    assert "budget exceeded" in budget.error

    # The whole point of error_type: the two failure kinds are now
    # distinguishable without parsing messages.
    kinds = {p.error_type for p in points if not p.ok}
    assert kinds == {"ValueError", "BudgetExceeded"}


def test_successes_filters_failed_points():
    sweep = Sweep().add_axis("a", [1, 2, 3]).add_axis("b", [10, 30])
    points = sweep.run(_fragile)
    good = Sweep.successes(points)
    assert len(good) == 3  # a=1 both, a=3 b=10
    assert all(p.ok for p in good)


def test_legacy_point_without_error_type_is_ok():
    # Pre-campaign SweepPoints carried only the message; the default
    # error_type keeps old constructors working.
    p = SweepPoint(params={}, value=1)
    assert p.ok and p.error_full == ""
    q = SweepPoint(params={}, value=None, error="boom")
    assert not q.ok and q.error_full == "boom"


# ---------------------------------------------------------------------------
# the executor hook
# ---------------------------------------------------------------------------
def test_executor_map_hook_preserves_order_and_isolation():
    calls = []

    def spying_map(fn, items):
        items = list(items)
        calls.append(len(items))
        # evaluate in reverse to prove result order comes from the
        # executor's output order contract, not evaluation order
        return reversed([fn(p) for p in reversed(items)])

    sweep = Sweep().add_axis("a", [1, 2, 3]).add_axis("b", [10, 30])
    points = sweep.run(_fragile, executor=spying_map)
    assert calls == [6]
    assert [p.params for p in points] == sweep.points()
    assert points[0].value == 10
    assert points[2].error_type == "ValueError"


def test_executor_process_pool_roundtrip():
    from repro.campaign import pool_map

    sweep = Sweep().add_axis("a", [1, 2, 3]).add_axis("b", [10, 30])
    with pool_map(2) as ex:
        parallel = sweep.run(_fragile, executor=ex)
    serial = sweep.run(_fragile)
    assert [(p.params, p.value, p.error, p.error_type) for p in parallel] == [
        (p.params, p.value, p.error, p.error_type) for p in serial
    ]


def test_pool_map_degrades_to_plain_map():
    from repro.campaign import pool_map

    with pool_map(1) as ex:
        assert ex is map
