"""Evaluation core: metrics, reports, sweeps, registry, validation."""

import pytest

from repro.core import (
    build_table2,
    CLAIMS,
    crossover_point,
    experiment_ids,
    Figure,
    format_table,
    parallel_efficiency,
    relative_factor,
    run_experiment,
    speedup,
    Sweep,
    TABLE2_ROWS,
    validate_all,
    weak_scaling_efficiency,
)
from repro.machines import BGP, XT4_QC


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
def test_speedup():
    assert speedup(10.0, 2.0) == 5.0
    with pytest.raises(ValueError):
        speedup(0.0, 1.0)


def test_parallel_efficiency():
    assert parallel_efficiency(10.0, 8, 2.5, 32) == pytest.approx(1.0)
    assert parallel_efficiency(10.0, 8, 5.0, 32) == pytest.approx(0.5)


def test_weak_scaling_efficiency():
    assert weak_scaling_efficiency(2.0, 2.5) == pytest.approx(0.8)


def test_relative_factor():
    assert relative_factor(9.0, 3.0) == 3.0
    with pytest.raises(ValueError):
        relative_factor(1.0, 0.0)


def test_crossover_point():
    xs = [1, 2, 3, 4]
    ya = [0, 1, 4, 9]
    yb = [2, 2, 2, 2]
    x = crossover_point(xs, ya, yb)
    assert 2 < x < 3
    assert crossover_point([1, 2], [0, 0], [1, 1]) is None
    with pytest.raises(ValueError):
        crossover_point([1], [1], [1])


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------
def test_format_table_aligns():
    txt = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.14159]], title="T")
    lines = txt.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    assert len({len(ln) for ln in lines[2:]}) <= 2  # consistent width


def test_format_table_rejects_ragged():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_figure_render():
    fig = Figure("My figure", "x", "y").add("curve", [(1, 2.0), (10, 20.0)])
    text = fig.render()
    assert "My figure" in text and "curve" in text
    assert fig.series[0].xs == [1, 10]
    assert fig.series[0].ys == [2.0, 20.0]


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------
def test_sweep_cartesian():
    pts = Sweep().add_axis("a", [1, 2]).add_axis("b", [10, 20]).run(
        lambda a, b: a * b
    )
    assert len(pts) == 4
    assert {p.value for p in pts} == {10, 20, 40}


def test_sweep_isolates_failures():
    def maybe_fail(a):
        if a == 2:
            raise RuntimeError("nope")
        return a

    pts = Sweep().add_axis("a", [1, 2, 3]).run(maybe_fail)
    good = Sweep.successes(pts)
    assert [p.value for p in good] == [1, 3]
    assert any("nope" in p.error for p in pts)


def test_sweep_validation():
    with pytest.raises(ValueError):
        Sweep().run(lambda: 1)
    with pytest.raises(ValueError):
        Sweep().add_axis("a", [])


# ---------------------------------------------------------------------------
# HPCC table 2
# ---------------------------------------------------------------------------
def test_table2_builds_both_columns():
    cols = build_table2([BGP, XT4_QC], processes=1024)
    assert set(cols) == {"BG/P", "XT4/QC"}
    b, x = cols["BG/P"], cols["XT4/QC"]
    # Paper Table 2 relationships:
    assert b.dgemm_single_gflops < x.dgemm_single_gflops
    assert b.stream_ep_gbs > x.stream_ep_gbs
    assert b.pingpong_latency_us < x.pingpong_latency_us
    assert b.ring_bandwidth_gbs < x.ring_bandwidth_gbs
    assert b.hpl_tflops < x.hpl_tflops


def test_table2_row_count():
    assert len(TABLE2_ROWS) == 16


# ---------------------------------------------------------------------------
# validation + registry
# ---------------------------------------------------------------------------
def test_all_paper_claims_hold():
    """The ten qualitative findings of the paper all hold in the models."""
    assert validate_all(raise_on_failure=False) == []


def test_claims_have_unique_ids():
    ids = [c.id for c in CLAIMS]
    assert len(ids) == len(set(ids)) == 10


def test_registry_lists_all_artifacts():
    ids = experiment_ids()
    assert {"table1", "table2", "table3", "top500"} <= set(ids)
    assert {f"fig{i}" for i in range(1, 9)} <= set(ids)


def test_unknown_experiment():
    with pytest.raises(KeyError):
        run_experiment("fig99")


@pytest.mark.parametrize("eid", ["table1", "table3", "top500", "fig6"])
def test_cheap_experiments_render(eid):
    text = run_experiment(eid)
    assert len(text) > 100
