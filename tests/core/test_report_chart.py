"""ASCII chart rendering tests."""

import pytest

from repro.core import Figure


def _fig():
    return (
        Figure("Scaling", "procs", "TF")
        .add("BG/P", [(256, 1.0), (1024, 4.0), (4096, 16.0)])
        .add("XT4", [(256, 2.5), (1024, 10.0), (4096, 40.0)])
    )


def test_chart_renders_bars():
    text = _fig().render_chart(width=20)
    assert "Scaling" in text
    assert "#" in text
    # The largest value gets the full-width bar.
    assert "#" * 20 in text


def test_chart_bars_proportional():
    text = _fig().render_chart(width=40)
    lines = [ln for ln in text.splitlines() if "|" in ln]
    bars = [ln.split("|")[1].count("#") for ln in lines]
    # 6 points; last of second series is the maximum.
    assert max(bars) == 40
    assert bars[0] < bars[1] < bars[2]


def test_chart_log_scale():
    fig = Figure("Latency", "bytes", "us").add(
        "m", [(4, 1.0), (4096, 10.0), (1 << 20, 1000.0)]
    )
    linear = fig.render_chart(width=30)
    log = fig.render_chart(width=30, log_y=True)
    # On a linear scale the small values collapse to minimum-width bars;
    # the log scale separates them.
    def bars(text):
        return [
            ln.split("|")[1].count("#") for ln in text.splitlines() if "|" in ln
        ]

    assert bars(linear)[0] == 1
    assert bars(log)[0] < bars(log)[1] < bars(log)[2]


def test_chart_width_validation():
    with pytest.raises(ValueError):
        _fig().render_chart(width=5)


def test_chart_empty_figure_falls_back():
    fig = Figure("Empty", "x", "y")
    assert "Empty" in fig.render_chart()
