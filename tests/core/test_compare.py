"""Machine-comparison tool tests."""

import pytest

from repro.core import compare_machines, ComparisonRow, render_comparison
from repro.machines import BGL, BGP, XT4_QC


def test_rows_cover_the_paper_story():
    rows = {r.metric: r for r in compare_machines(BGP, XT4_QC)}
    # Compute: XT wins.
    assert rows["DGEMM per process"].winner == "B"
    assert rows["HPL @ 1024"].winner == "B"
    # Memory + latency + collectives: BG/P wins.
    assert rows["STREAM per process (EP)"].winner == "A"
    assert rows["MPI latency"].winner == "A"
    assert rows["bcast 32KB @ 1024"].winner == "A"
    # Power: BG/P wins.
    assert rows["power per core (HPL)"].winner == "A"
    assert rows["Green500"].winner == "A"
    # Bandwidth: XT wins.
    assert rows["p2p bandwidth"].winner == "B"


def test_ratio_and_winner_semantics():
    r = ComparisonRow("m", "u", a_value=2.0, b_value=6.0, higher_is_better=True)
    assert r.ratio == 3.0
    assert r.winner == "B"
    r2 = ComparisonRow("m", "u", a_value=2.0, b_value=6.0, higher_is_better=False)
    assert r2.winner == "A"
    assert ComparisonRow("m", "u", 1.0, 1.0).winner == "tie"


def test_bgl_vs_bgp():
    """Generational comparison within the family works too."""
    rows = {r.metric: r for r in compare_machines(BGL, BGP, processes=256)}
    assert rows["peak per core"].winner == "B"  # BG/P faster


def test_render_contains_names_and_ratio_column():
    text = render_comparison(BGP, XT4_QC, processes=256)
    assert "BG/P" in text and "XT4/QC" in text
    assert "XT4/QC/BG/P" in text
    assert "winner" in text


def test_validation():
    with pytest.raises(ValueError):
        compare_machines(BGP, XT4_QC, processes=1)


def test_cli_compare(capsys):
    from repro.cli import main

    assert main(["compare", "bgp", "xt3", "-p", "256"]) == 0
    out = capsys.readouterr().out
    assert "XT3" in out
    assert main(["compare", "bgp", "nonsense"]) == 2
