"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table3" in out and "fig4" in out


def test_run_single(capsys):
    assert main(["run", "top500"]) == 0
    assert "614399" in capsys.readouterr().out


def test_run_unknown(capsys):
    assert main(["run", "fig99"]) == 2


def test_run_to_directory(tmp_path, capsys):
    assert main(["run", "table1", "-o", str(tmp_path)]) == 0
    assert (tmp_path / "table1.txt").exists()
    assert "BG/P" in (tmp_path / "table1.txt").read_text()


def test_machines(capsys):
    assert main(["machines"]) == 0
    out = capsys.readouterr().out
    assert "XT4/QC" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
