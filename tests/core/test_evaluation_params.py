"""Direct coverage for ``run_experiment`` parameter handling.

The campaign layer addresses every job as ``(experiment, params)``, so
the registry's param passthrough and error messages are contract now.
"""

import pytest

from repro.core.evaluation import (
    EXPERIMENTS,
    experiment_ids,
    run_experiment,
    validate_experiment_params,
)


def test_unknown_experiment_message_lists_known_ids():
    with pytest.raises(KeyError) as exc:
        run_experiment("fig99")
    message = exc.value.args[0]
    assert "unknown experiment 'fig99'" in message
    for eid in experiment_ids():
        assert eid in message


def test_unknown_param_message_names_supported():
    with pytest.raises(KeyError) as exc:
        run_experiment("fig6", bogus=1)
    message = exc.value.args[0]
    assert "does not take parameter(s) ['bogus']" in message
    assert "supported: ['edge']" in message


def test_paramfree_experiment_reports_none_supported():
    with pytest.raises(KeyError) as exc:
        run_experiment("table1", edge=40)
    assert "supported: none" in exc.value.args[0]


def test_param_forwarding_into_fig6_backend():
    default = run_experiment("fig6")
    assert "50^3 points/rank" in default
    swept = run_experiment("fig6", edge=40)
    assert "40^3 points/rank" in swept
    # A different per-rank subgrid is a genuinely different weak-scaling
    # study, not just a retitled one.
    assert swept != default
    # And the default param produces the exact registry output.
    assert run_experiment("fig6", edge=50) == default


def test_param_forwarding_into_fig3_backend():
    default = run_experiment("fig3")
    assert "32KB" in default
    swept = run_experiment("fig3", nbytes=65536)
    assert "64KB" in swept and swept != default


def test_validate_experiment_params_matches_run_experiment():
    # fail-fast validation (used by campaign spec expansion) raises the
    # same messages run_experiment would
    with pytest.raises(KeyError, match="unknown experiment"):
        validate_experiment_params("nope", {})
    with pytest.raises(KeyError, match="does not take parameter"):
        validate_experiment_params("fig6", {"bogus": 1})
    validate_experiment_params("fig6", {"edge": 40})  # no raise
    assert set(EXPERIMENTS) == set(experiment_ids())
