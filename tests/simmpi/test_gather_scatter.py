"""Gather/scatter collectives: DES semantics + analytic agreement."""

import pytest

from repro.machines import BGP, XT4_QC
from repro.simmpi import Cluster, CostModel


def run(machine, ranks, program, mode="SMP"):
    return Cluster(machine, ranks=ranks, mode=mode).run(program)


def test_gather_completes_all_ranks():
    def program(comm):
        yield from comm.gather(1024, root=0)
        return comm.now

    res = run(BGP, 8, program)
    assert all(t > 0 for t in res.returns)


def test_gather_message_count_binomial():
    def program(comm):
        yield from comm.gather(64, root=0)

    res = run(BGP, 8, program)
    # A binomial gather over p ranks moves exactly p-1 messages.
    assert res.messages == 7


def test_gather_volume_includes_subtrees():
    def program(comm):
        yield from comm.gather(100, root=0)

    res = run(BGP, 8, program)
    # rank->root payloads carry whole subtrees: total moved bytes
    # exceed the naive (p-1) x nbytes.
    assert res.bytes_sent > 7 * 100
    # Exact: each of 7 senders forwards its subtree (total 7 ranks' data
    # travelling log distances): sum of subtree sizes at each send.
    assert res.bytes_sent == 100 * (1 + 1 + 2 + 1 + 1 + 2 + 4)


def test_scatter_completes():
    def program(comm):
        yield from comm.scatter(512, root=0)
        return comm.now

    for p in (4, 6, 8):
        res = run(XT4_QC, p, program)
        assert len(res.returns) == p


def test_scatter_message_count():
    def program(comm):
        yield from comm.scatter(64, root=0)

    res = run(BGP, 8, program)
    assert res.messages == 7


def test_nonzero_root():
    def program(comm):
        yield from comm.gather(64, root=3)
        yield from comm.scatter(64, root=3)
        return comm.now

    res = run(BGP, 6, program)
    assert all(t > 0 for t in res.returns)


def test_single_rank_trivial():
    def program(comm):
        yield from comm.gather(1024)
        yield from comm.scatter(1024)
        return comm.now

    res = run(BGP, 1, program)
    assert res.messages == 0


@pytest.mark.parametrize("machine", [BGP, XT4_QC], ids=lambda m: m.name)
def test_gather_des_vs_analytic(machine):
    nbytes = 4096

    def program(comm):
        yield from comm.gather(nbytes, root=0)

    cluster = Cluster(machine, ranks=16, mode="SMP")
    des = cluster.run(program).elapsed
    ana = cluster.cost.gather_time(nbytes)
    assert des == pytest.approx(ana, rel=1.0)


def test_analytic_gather_scales_with_ranks():
    small = CostModel(BGP, "VN", 64).gather_time(1024)
    large = CostModel(BGP, "VN", 1024).gather_time(1024)
    assert large > small


def test_analytic_scatter_equals_gather():
    c = CostModel(BGP, "VN", 256)
    assert c.scatter_time(2048) == c.gather_time(2048)
