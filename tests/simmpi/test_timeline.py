"""Per-rank timeline recording tests."""

import pytest

from repro.machines import BGP
from repro.simmpi import attach_timeline, Cluster, Timeline


def _staggered_run(ranks=4):
    cluster = Cluster(BGP, ranks=ranks, mode="VN")
    tl = attach_timeline(cluster)

    def program(comm):
        yield from comm.compute(seconds=0.001 * (comm.rank + 1))
        yield from comm.barrier()

    cluster.run(program)
    return tl


def test_compute_intervals_recorded():
    tl = _staggered_run()
    computes = [i for i in tl.intervals if i.kind == "compute"]
    assert len(computes) == 4
    assert {i.rank for i in computes} == {0, 1, 2, 3}


def test_busy_seconds_match_work():
    tl = _staggered_run()
    assert tl.busy_seconds(0, "compute") == pytest.approx(0.001)
    assert tl.busy_seconds(3, "compute") == pytest.approx(0.004)


def test_critical_rank_is_slowest():
    assert _staggered_run().critical_rank() == 3


def test_busy_fraction_reflects_imbalance():
    tl = _staggered_run()
    assert tl.busy_fraction(3) > tl.busy_fraction(0)
    assert tl.busy_fraction(3) == pytest.approx(1.0, abs=0.05)


def test_send_intervals_recorded():
    cluster = Cluster(BGP, ranks=2, mode="SMP")
    tl = attach_timeline(cluster)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1024)
        else:
            yield from comm.recv(src=0)

    cluster.run(program)
    sends = [i for i in tl.intervals if i.kind == "send"]
    assert len(sends) == 1
    assert sends[0].rank == 0
    assert sends[0].duration > 0


def test_gantt_renders_rows():
    text = _staggered_run().gantt(width=30)
    lines = text.splitlines()
    assert len(lines) == 4
    assert all("|" in ln for ln in lines)
    # Rank 3 computes the longest stretch of '#'.
    assert lines[3].count("#") > lines[0].count("#")


def test_empty_timeline():
    tl = Timeline()
    assert tl.span() == (0.0, 0.0)
    assert tl.gantt() == "(empty timeline)"
    with pytest.raises(ValueError):
        tl.critical_rank()


def test_interval_validation():
    with pytest.raises(ValueError):
        Timeline().record(0, 5.0, 1.0, "compute")


def test_overlapping_intervals_merged_not_double_counted():
    """Regression: a rank busy in two overlapping records at once
    (isend injection running alongside compute) must not count the
    overlap twice in busy_seconds."""
    tl = Timeline()
    tl.record(0, 0.0, 1.0, "compute")
    tl.record(0, 0.5, 1.5, "send")  # overlaps [0.5, 1.0)
    tl.record(0, 2.0, 3.0, "compute")
    assert tl.busy_seconds(0) == pytest.approx(2.5)  # not 3.0
    assert tl.merged(0) == [(0.0, 1.5), (2.0, 3.0)]


def test_merged_handles_contained_and_touching_intervals():
    tl = Timeline()
    tl.record(1, 0.0, 4.0, "compute")
    tl.record(1, 1.0, 2.0, "send")  # fully contained
    tl.record(1, 4.0, 5.0, "send")  # touching end-to-start
    assert tl.merged(1) == [(0.0, 5.0)]
    assert tl.busy_seconds(1) == pytest.approx(5.0)


def test_merged_filters_by_kind():
    tl = Timeline()
    tl.record(0, 0.0, 1.0, "compute")
    tl.record(0, 0.5, 1.5, "send")
    assert tl.busy_seconds(0, "compute") == pytest.approx(1.0)
    assert tl.busy_seconds(0, "send") == pytest.approx(1.0)


def test_attach_timeline_is_idempotent():
    cluster = Cluster(BGP, ranks=2, mode="SMP")
    first = attach_timeline(cluster)
    second = attach_timeline(cluster)
    assert second is first
    assert len(cluster.transport._send_hooks) == 1

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1024)
        else:
            yield from comm.recv(src=0)

    cluster.run(program)
    sends = [i for i in first.intervals if i.kind == "send"]
    assert len(sends) == 1  # recorded once, not twice
