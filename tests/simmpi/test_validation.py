"""Transport argument validation: bad ranks/tags fail at the call site."""

import pytest

from repro.machines import BGP
from repro.simmpi import ANY_SOURCE, ANY_TAG, Cluster


@pytest.fixture
def transport():
    return Cluster(BGP, ranks=8, mode="SMP").transport


def test_send_rejects_out_of_range_dst(transport):
    with pytest.raises(ValueError, match="destination rank 8 out of range"):
        transport.send(0, 8, nbytes=64)


def test_send_rejects_negative_src(transport):
    with pytest.raises(ValueError, match="source rank -1 out of range"):
        transport.send(-1, 1, nbytes=64)


def test_send_rejects_negative_tag(transport):
    with pytest.raises(ValueError, match="tag must be >= 0"):
        transport.send(0, 1, nbytes=64, tag=-3)


def test_send_rejects_negative_size(transport):
    with pytest.raises(ValueError, match="negative message size"):
        transport.send(0, 1, nbytes=-1)


def test_send_raises_before_iteration(transport):
    """Validation happens at the call, not on first next() of the
    generator — a bad call cannot silently produce a dormant generator."""
    try:
        transport.send(0, 99, nbytes=8)
    except ValueError:
        return
    pytest.fail("send(dst=99) returned instead of raising")


def test_post_recv_rejects_out_of_range_receiver(transport):
    with pytest.raises(ValueError, match="receiver rank 12 out of range"):
        transport.post_recv(12, src=0, tag=0)


def test_post_recv_rejects_out_of_range_src(transport):
    with pytest.raises(ValueError, match="source rank 9 out of range"):
        transport.post_recv(0, src=9, tag=0)


def test_post_recv_rejects_negative_tag(transport):
    with pytest.raises(ValueError, match="tag must be >= 0 or ANY_TAG"):
        transport.post_recv(0, src=1, tag=-2)


def test_post_recv_wildcards_accepted(transport):
    ev = transport.post_recv(0, src=ANY_SOURCE, tag=ANY_TAG)
    assert not ev.triggered


def test_bad_send_inside_program_surfaces_value_error():
    def program(comm):
        yield from comm.send(comm.size + 5, nbytes=8)

    with pytest.raises(ValueError, match="rank 9"):
        Cluster(BGP, ranks=4, mode="SMP").run(program)


def test_valid_boundary_ranks_accepted():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(comm.size - 1, nbytes=8)
        elif comm.rank == comm.size - 1:
            yield from comm.recv(src=0)
        else:
            return comm.now
        return comm.now

    result = Cluster(BGP, ranks=8, mode="SMP").run(program)
    assert result.elapsed > 0
