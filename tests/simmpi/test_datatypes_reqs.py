"""Datatype bookkeeping and request-handle semantics."""

import pytest

from repro.machines import BGP
from repro.simmpi import bytes_of, Cluster, DTYPE_SIZES


def test_dtype_sizes():
    assert DTYPE_SIZES["float32"] == 4
    assert DTYPE_SIZES["float64"] == 8
    assert DTYPE_SIZES["double"] == 8
    assert DTYPE_SIZES["float"] == 4  # IMB's MPI_FLOAT


def test_bytes_of():
    assert bytes_of(100) == 800  # float64 default
    assert bytes_of(100, "float32") == 400
    with pytest.raises(ValueError):
        bytes_of(-1)
    with pytest.raises(KeyError):
        bytes_of(1, "quaternion")


def test_request_result_before_completion():
    def program(comm):
        if comm.rank == 0:
            req = comm.irecv(src=1)
            assert not req.complete
            with pytest.raises(RuntimeError):
                req.result()
            msg = yield from comm.wait(req)
            assert req.complete
            assert req.result().payload == "hi"
            return msg.payload
        yield from comm.send(0, nbytes=8, payload="hi")

    res = Cluster(BGP, ranks=2, mode="SMP").run(program)
    assert res.returns[0] == "hi"


def test_waitall_returns_in_order():
    def program(comm):
        if comm.rank == 0:
            reqs = [comm.irecv(src=1, tag=t) for t in (0, 1, 2)]
            msgs = yield from comm.waitall(reqs)
            return [m.payload for m in msgs]
        # Send in reverse tag order; waitall must still return by tag.
        for t in (2, 1, 0):
            yield from comm.send(0, nbytes=8, tag=t, payload=t)

    res = Cluster(BGP, ranks=2, mode="SMP").run(program)
    assert res.returns[0] == [0, 1, 2]
