"""Sub-communicator (MPI_Comm_split) tests."""

import pytest

from repro.machines import BGP
from repro.simmpi import Cluster, split_by, SubComm


def test_split_ranks_renumbered():
    def program(comm):
        row = split_by(comm, lambda r: r // 4)
        yield from comm.compute(seconds=0.0)
        return (row.rank, row.size, row.world_rank(row.rank))

    res = Cluster(BGP, ranks=8, mode="VN").run(program)
    for world, (sub_rank, size, back) in enumerate(res.returns):
        assert size == 4
        assert sub_rank == world % 4
        assert back == world


def test_row_allreduce_independent_groups():
    """Two row communicators reduce concurrently without crosstalk."""

    def program(comm):
        row = split_by(comm, lambda r: r // 4)
        yield from row.allreduce(2048, dtype="float64")
        return comm.now

    res = Cluster(BGP, ranks=8, mode="VN").run(program)
    assert all(t > 0 for t in res.returns)


def test_row_and_column_pattern():
    """The GYRO/CAM idiom: reduce along rows, then along columns."""

    def program(comm):
        row = split_by(comm, lambda r: r // 4)
        col = split_by(comm, lambda r: r % 4)
        yield from row.allreduce(1024)
        yield from col.allreduce(1024)
        yield from row.barrier()
        return comm.now

    res = Cluster(BGP, ranks=16, mode="VN").run(program)
    assert len(res.returns) == 16


def test_subcomm_p2p_translation():
    def program(comm):
        row = split_by(comm, lambda r: r // 2)
        if row.rank == 0:
            yield from row.send(1, nbytes=64, payload=f"from-{comm.rank}")
        else:
            msg = yield from row.recv(src=0)
            # The message really came from the row partner's world rank.
            assert msg.src == comm.rank - 1
            return msg.payload

    res = Cluster(BGP, ranks=4, mode="VN").run(program)
    assert res.returns[1] == "from-0"
    assert res.returns[3] == "from-2"


def test_subcomm_tags_do_not_collide_with_world():
    """Same-tag traffic on a subcomm and the world comm stays separate."""

    def program(comm):
        sub = split_by(comm, lambda r: 0)  # everyone, but renumbered
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8, tag=5, payload="world")
            yield from sub.send(1, nbytes=8, tag=5, payload="sub")
        else:
            w = yield from comm.recv(src=0, tag=5)
            s = yield from sub.recv(src=0, tag=5)
            return (w.payload, s.payload)

    res = Cluster(BGP, ranks=2, mode="SMP").run(program)
    assert res.returns[1] == ("world", "sub")


def test_subcomm_gather_scatter_alltoall():
    def program(comm):
        half = split_by(comm, lambda r: r % 2)
        yield from half.gather(128, root=0)
        yield from half.scatter(128, root=0)
        yield from half.alltoall(64)
        return comm.now

    res = Cluster(BGP, ranks=8, mode="VN").run(program)
    assert all(t > 0 for t in res.returns)


def test_key_fn_reorders():
    def program(comm):
        # Reverse ordering within the group.
        sub = split_by(comm, lambda r: 0, key_fn=lambda r: -r)
        yield from comm.compute(seconds=0.0)
        return sub.rank

    res = Cluster(BGP, ranks=4, mode="VN").run(program)
    assert res.returns == [3, 2, 1, 0]


def test_membership_validation():
    def program(comm):
        yield from comm.compute(seconds=0.0)
        with pytest.raises(ValueError):
            SubComm(comm, [comm.rank + 1 if comm.rank == 0 else 0], 0)
        with pytest.raises(ValueError):
            SubComm(comm, [comm.rank, comm.rank], 0)

    Cluster(BGP, ranks=2, mode="SMP").run(program)
