"""Property-based tests on the analytic cost model's invariants."""

from hypothesis import given, settings, strategies as st

from repro.machines import all_machines, BGP, XT4_QC
from repro.simmpi import CostModel

MACHINES = list(all_machines().values())


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(MACHINES),
    st.integers(1, 4096),
    st.integers(0, 1 << 22),
)
def test_all_costs_nonnegative_and_finite(machine, ranks, nbytes):
    """Every cost function returns a finite, non-negative time for any
    in-range configuration."""
    mode = "VN"
    if ranks > machine.total_cores:
        ranks = machine.total_cores
    c = CostModel(machine, mode, ranks)
    values = [
        c.p2p_time(nbytes),
        c.barrier_time(),
        c.bcast_time(nbytes),
        c.allreduce_time(nbytes, "float64"),
        c.allreduce_time(nbytes, "float32"),
        c.allgather_time(nbytes),
        c.alltoall_time(nbytes),
        c.gather_time(nbytes),
        c.reduce_time(nbytes),
    ]
    for v in values:
        assert v >= 0.0
        assert v == v and v != float("inf")  # finite


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 2048), st.integers(0, 1 << 20))
def test_collectives_monotone_in_payload(ranks, nbytes):
    c = CostModel(BGP, "VN", ranks)
    for fn in (c.bcast_time, c.allgather_time, c.alltoall_time):
        assert fn(nbytes * 2) >= fn(nbytes) - 1e-15


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 12), st.integers(0, 1 << 16))
def test_software_collectives_monotone_in_ranks(log2p, nbytes):
    """Doubling the rank count never makes a software collective
    cheaper (on the XT, with no offload hardware)."""
    p = 1 << log2p
    if p * 2 > XT4_QC.total_cores:
        return
    a = CostModel(XT4_QC, "VN", p)
    b = CostModel(XT4_QC, "VN", p * 2)
    assert b.bcast_time(nbytes) >= a.bcast_time(nbytes) - 1e-12
    assert b.barrier_time() >= a.barrier_time() - 1e-12


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 4096))
def test_tree_allreduce_beats_software_on_bgp(ranks):
    """For hardware dtypes the tree path is never slower than the
    software fallback at any scale."""
    c = CostModel(BGP, "VN", ranks)
    nbytes = 8192
    assert c.allreduce_time(nbytes, "float64") <= c.allreduce_time(
        nbytes, "float32"
    ) * 1.05


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 4), st.integers(0, 1 << 18))
def test_modes_share_resources_consistently(tasks_exp, nbytes):
    """Denser modes never get more per-task injection bandwidth."""
    smp = CostModel(BGP, "SMP", 64)
    vn = CostModel(BGP, "VN", 64)
    assert vn.mode.injection_bw_per_task <= smp.mode.injection_bw_per_task
    assert vn.mode.memory_per_task <= smp.mode.memory_per_task
