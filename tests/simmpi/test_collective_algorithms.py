"""Algorithm-level unit tests: message counts and structure of each
software collective, independent of machine parameters."""

import math

import pytest

from repro.machines import XT4_QC
from repro.simmpi import Cluster


def count_messages(program, ranks, machine=XT4_QC):
    res = Cluster(machine, ranks=ranks, mode="VN").run(program)
    return res.messages


@pytest.mark.parametrize("p", [2, 3, 4, 7, 8, 16])
def test_binomial_bcast_message_count(p):
    """A binomial broadcast moves exactly p-1 messages."""

    def program(comm):
        yield from comm.bcast(4096, root=0)

    assert count_messages(program, p) == p - 1


@pytest.mark.parametrize("p", [2, 4, 8, 16])
def test_dissemination_barrier_message_count(p):
    """Dissemination barrier: p x ceil(log2 p) zero-byte messages."""

    def program(comm):
        yield from comm.barrier()

    assert count_messages(program, p) == p * math.ceil(math.log2(p))


@pytest.mark.parametrize("p", [2, 4, 8])
def test_recursive_doubling_allreduce_count(p):
    """Power-of-two recursive doubling: p x log2 p messages (small
    payload keeps it below the Rabenseifner switch)."""

    def program(comm):
        yield from comm.allreduce(64, dtype="float32")

    assert count_messages(program, p) == p * int(math.log2(p))


def test_allreduce_non_pof2_extra_messages():
    """Non-power-of-two adds the fold/unfold pre/post messages."""

    def program(comm):
        yield from comm.allreduce(64, dtype="float32")

    pof2 = count_messages(program, 4)
    non = count_messages(program, 5)  # rem=1: +2 extra messages
    assert non == 4 * 2 + 2  # 4 effective ranks x 2 rounds + fold pair


@pytest.mark.parametrize("p", [2, 5, 8])
def test_ring_allgather_count(p):
    def program(comm):
        yield from comm.allgather(256)

    assert count_messages(program, p) == p * (p - 1)


@pytest.mark.parametrize("p", [2, 4, 8, 16])
def test_bruck_alltoall_count(p):
    def program(comm):
        yield from comm.alltoall(8)  # tiny: Bruck wins

    assert count_messages(program, p) == p * math.ceil(math.log2(p))


@pytest.mark.parametrize("p", [3, 5, 6])
def test_pairwise_alltoall_non_pof2(p):
    def program(comm):
        yield from comm.alltoall(1 << 20)  # big: pairwise

    assert count_messages(program, p) == p * (p - 1)


@pytest.mark.parametrize("p", [2, 4, 8, 16])
def test_reduce_scatter_completes(p):
    def program(comm):
        yield from comm.reduce_scatter(8192)
        return comm.now

    res = Cluster(XT4_QC, ranks=p, mode="VN").run(program)
    assert all(t > 0 for t in res.returns)


def test_reduce_scatter_single_rank():
    def program(comm):
        yield from comm.reduce_scatter(8192)
        return comm.now

    res = Cluster(XT4_QC, ranks=1, mode="VN").run(program)
    assert res.messages == 0


def test_reduce_message_count():
    """Binomial reduce to root: p-1 messages."""

    def program(comm):
        yield from comm.reduce(2048, root=0)

    assert count_messages(program, 8) == 7
