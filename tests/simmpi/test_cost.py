"""Analytic cost-model behaviour and paper-shape assertions."""

import pytest

from repro.machines import BGP, XT4_QC
from repro.simmpi import CostModel


def cm(machine, ranks=64, mode="VN", **kw):
    return CostModel(machine, mode, ranks, **kw)


def test_validation():
    with pytest.raises(ValueError):
        CostModel(BGP, "VN", 0)
    with pytest.raises(ValueError):
        cm(BGP).p2p_time(-1)


def test_p2p_monotone_in_size():
    m = cm(BGP)
    assert m.p2p_time(1 << 20) > m.p2p_time(1 << 10) > m.p2p_time(0)


def test_rendezvous_jump_at_threshold():
    m = cm(BGP)
    below = m.p2p_time(BGP.mpi.eager_threshold)
    above = m.p2p_time(BGP.mpi.eager_threshold + 1)
    assert above - below > BGP.mpi.rendezvous_overhead * 0.9


def test_bgp_latency_advantage_xt_bandwidth_advantage():
    """Table 2: BG/P strength low latency; XT strength high bandwidth."""
    b, x = cm(BGP), cm(XT4_QC)
    assert b.p2p_time(8) < x.p2p_time(8)
    assert b.p2p_bandwidth < x.p2p_bandwidth


def test_intranode_cheaper_than_network():
    m = cm(BGP)
    assert m.p2p_time(1 << 14, intranode=True) < m.p2p_time(1 << 14)


def test_barrier_hardware_vs_software():
    assert cm(BGP, 4096).barrier_time() < cm(XT4_QC, 4096).barrier_time()


def test_bcast_tree_vs_binomial():
    """Fig. 3c/d shape: BG/P bcast beats XT at every size and scale."""
    for nbytes in (64, 4096, 1 << 20):
        for p in (64, 1024, 8192):
            assert cm(BGP, p).bcast_time(nbytes) < cm(XT4_QC, p).bcast_time(nbytes)


def test_bcast_scaling_flat_on_tree():
    """Tree bcast cost grows only with depth, not rank count."""
    t1 = cm(BGP, 512).bcast_time(32 * 1024)
    t2 = cm(BGP, 8192).bcast_time(32 * 1024)
    assert t2 < 1.5 * t1


def test_allreduce_precision_effect_bgp_only():
    """Fig. 3a/b: double >> single on BG/P; no such effect on the XT."""
    p, nbytes = 1024, 32 * 1024
    bgp_d = cm(BGP, p).allreduce_time(nbytes, "float64")
    bgp_s = cm(BGP, p).allreduce_time(nbytes, "float32")
    assert bgp_d < bgp_s / 2
    xt_d = cm(XT4_QC, p).allreduce_time(nbytes, "float64")
    xt_s = cm(XT4_QC, p).allreduce_time(nbytes, "float32")
    assert xt_d == pytest.approx(xt_s, rel=0.05)


def test_allreduce_single_rank_trivial():
    assert cm(BGP, 1).allreduce_time(1024) < 1e-5


def test_alltoall_grows_superlinearly_in_ranks():
    nb = 1024
    t64 = cm(XT4_QC, 64).alltoall_time(nb)
    t256 = cm(XT4_QC, 256).alltoall_time(nb)
    assert t256 > 3 * t64


def test_alltoall_single_rank_zero():
    assert cm(BGP, 1).alltoall_time(1024) == 0.0


def test_allgather_single_rank_zero():
    assert cm(BGP, 1).allgather_time(1024) == 0.0


def test_random_ring_shapes():
    """Table 2: BG/P lower random-ring latency, XT higher bandwidth."""
    b, x = cm(BGP, 4096), cm(XT4_QC, 4096)
    assert b.random_ring_latency() < x.random_ring_latency()
    assert b.random_ring_bandwidth() < x.random_ring_bandwidth()


def test_compute_time_roofline():
    m = cm(BGP, 4, mode="VN")
    # Pure flops: bound by 3.4 GF/s per core.
    assert m.compute_time(flops=3.4e9) == pytest.approx(1.0, rel=0.01)
    # Pure streaming: bound by the VN-mode share of node bandwidth.
    bw = m.mode.stream_bw_per_task
    assert m.compute_time(flops=0, bytes_moved=bw) == pytest.approx(1.0, rel=0.01)
    with pytest.raises(ValueError):
        m.compute_time(flops=-1)


def test_partition_contention_slows_xt():
    import numpy as np

    quiet = CostModel(XT4_QC, "VN", 1024, utilization=0.0)
    rng = np.random.default_rng(3)
    busy = CostModel(XT4_QC, "VN", 1024, rng=rng, utilization=0.9)
    assert busy.p2p_time(1 << 20) > quiet.p2p_time(1 << 20)


def test_partition_too_small_rejected():
    from repro.topology import allocate

    part = allocate(BGP, 2)
    with pytest.raises(ValueError):
        CostModel(BGP, "VN", 1024, partition=part)
