"""Mid-scale DES integration: hundreds of ranks through the full stack.

The figure benches lean on the analytic models at paper scale; these
tests push the message-level simulator itself to a few hundred ranks to
confirm it stays correct and tractable there — the regime where the
per-link contention model earns its keep.
"""

import time

import pytest

from repro.machines import BGP, XT4_QC
from repro.simmpi import Cluster


def test_256_rank_collective_medley():
    def program(comm):
        yield from comm.barrier()
        yield from comm.allreduce(4096, dtype="float64")
        yield from comm.bcast(32768, root=0)
        return comm.now

    t0 = time.perf_counter()  # simlint: ignore[determinism-hazard]
    res = Cluster(BGP, ranks=256, mode="VN").run(program)
    wall = time.perf_counter() - t0  # simlint: ignore[determinism-hazard]
    assert len(res.returns) == 256
    assert wall < 20.0  # tractability guard


def test_512_rank_halo_wave():
    """A 2-D halo wavefront across 512 ranks completes and balances."""
    from repro.halo import neighbors2d

    grid = (32, 16)

    def program(comm):
        nb = neighbors2d(comm.rank, grid)
        reqs = [
            comm.irecv(src=nb["north"], tag=1),
            comm.irecv(src=nb["south"], tag=2),
            comm.irecv(src=nb["west"], tag=3),
            comm.irecv(src=nb["east"], tag=4),
        ]
        yield from comm.send(nb["south"], 2048, tag=1)
        yield from comm.send(nb["north"], 2048, tag=2)
        yield from comm.send(nb["east"], 2048, tag=3)
        yield from comm.send(nb["west"], 2048, tag=4)
        yield from comm.waitall(reqs)
        return comm.now

    res = Cluster(BGP, ranks=512, mode="VN", mapping="TXYZ").run(program)
    assert res.messages == 512 * 4
    # A symmetric exchange finishes nearly simultaneously everywhere.
    assert max(res.returns) < 3 * min(r for r in res.returns if r > 0)


def test_midscale_des_matches_analytic_allreduce():
    nbytes = 16384

    def program(comm):
        yield from comm.allreduce(nbytes, dtype="float32")

    cluster = Cluster(XT4_QC, ranks=128, mode="VN")
    des = cluster.run(program).elapsed
    ana = cluster.cost.allreduce_time(nbytes, dtype="float32")
    assert des == pytest.approx(ana, rel=0.6)


def test_event_counts_scale_linearly():
    """Engine work grows with messages, not rank-count squared."""

    def program(comm):
        yield from comm.send((comm.rank + 1) % comm.size, 1024)
        yield from comm.recv(src=(comm.rank - 1) % comm.size)

    small = Cluster(BGP, ranks=64, mode="VN")
    small.run(program)
    big = Cluster(BGP, ranks=256, mode="VN")
    big.run(program)
    ratio = big.env.events_processed / small.env.events_processed
    assert ratio == pytest.approx(4.0, rel=0.3)
