"""Communication statistics / tracing tests."""

import pytest

from repro.machines import BGP
from repro.simmpi import attach_stats, Cluster


def _run_traffic(ranks=4):
    cluster = Cluster(BGP, ranks=ranks, mode="VN")
    stats = attach_stats(cluster)

    def program(comm):
        peer = (comm.rank + 1) % comm.size
        prev = (comm.rank - 1) % comm.size
        req = comm.irecv(src=prev, tag=1)
        yield from comm.send(peer, nbytes=1024, tag=1)
        yield from comm.wait(req)
        yield from comm.send(peer, nbytes=0, tag=2)
        yield from comm.recv(src=prev, tag=2)

    cluster.run(program)
    return stats


def test_counts_and_volume():
    stats = _run_traffic(4)
    assert stats.messages == 8  # 4 ranks x 2 sends
    assert stats.bytes_total == 4 * 1024


def test_size_histogram_buckets():
    stats = _run_traffic(4)
    assert stats.size_histogram[10] == 4  # 1024 = 2^10
    assert stats.size_histogram[-1] == 4  # zero-byte messages


def test_traffic_matrix():
    stats = _run_traffic(4)
    assert stats.traffic_matrix[(0, 1)] == 1024
    sent, recv = stats.rank_volume(0)
    assert sent == 1024 and recv == 1024


def test_heaviest_pairs():
    stats = _run_traffic(4)
    pairs = stats.heaviest_pairs(2)
    assert len(pairs) == 2
    assert all(v == 1024 for _, v in pairs)


def test_trace_events_ordered_in_time():
    stats = _run_traffic(4)
    times = [e.time for e in stats.trace]
    assert times == sorted(times)
    assert stats.trace[0].nbytes in (0, 1024)


def test_trace_limit_respected():
    cluster = Cluster(BGP, ranks=2, mode="VN")
    stats = attach_stats(cluster, trace_limit=3)

    def program(comm):
        if comm.rank == 0:
            for i in range(10):
                yield from comm.send(1, nbytes=8, tag=i)
        else:
            for i in range(10):
                yield from comm.recv(src=0, tag=i)

    cluster.run(program)
    assert stats.messages == 10  # stats keep counting
    assert len(stats.trace) == 3  # trace capped


def test_summary_renders():
    stats = _run_traffic(4)
    text = stats.summary()
    assert "messages: 8" in text
    assert "2^10" in text


def test_mean_message_bytes():
    stats = _run_traffic(4)
    assert stats.mean_message_bytes() == pytest.approx(512.0)
