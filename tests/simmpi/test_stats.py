"""Communication statistics / tracing tests.

``attach_stats`` is deprecated in favour of the ``repro.obs`` tracer;
this suite keeps it covered as a shim, so the warning is expected.
"""

import pytest

from repro.machines import BGP
from repro.simmpi import attach_stats, Cluster

pytestmark = pytest.mark.filterwarnings(
    "ignore:attach_stats\\(\\) is deprecated:DeprecationWarning"
)


def _run_traffic(ranks=4):
    cluster = Cluster(BGP, ranks=ranks, mode="VN")
    stats = attach_stats(cluster)

    def program(comm):
        peer = (comm.rank + 1) % comm.size
        prev = (comm.rank - 1) % comm.size
        req = comm.irecv(src=prev, tag=1)
        yield from comm.send(peer, nbytes=1024, tag=1)
        yield from comm.wait(req)
        yield from comm.send(peer, nbytes=0, tag=2)
        yield from comm.recv(src=prev, tag=2)

    cluster.run(program)
    return stats


def test_counts_and_volume():
    stats = _run_traffic(4)
    assert stats.messages == 8  # 4 ranks x 2 sends
    assert stats.bytes_total == 4 * 1024


def test_size_histogram_buckets():
    stats = _run_traffic(4)
    assert stats.size_histogram[10] == 4  # 1024 = 2^10
    assert stats.size_histogram[-1] == 4  # zero-byte messages


def test_traffic_matrix():
    stats = _run_traffic(4)
    assert stats.traffic_matrix[(0, 1)] == 1024
    sent, recv = stats.rank_volume(0)
    assert sent == 1024 and recv == 1024


def test_heaviest_pairs():
    stats = _run_traffic(4)
    pairs = stats.heaviest_pairs(2)
    assert len(pairs) == 2
    assert all(v == 1024 for _, v in pairs)


def test_trace_events_ordered_in_time():
    stats = _run_traffic(4)
    times = [e.time for e in stats.trace]
    assert times == sorted(times)
    assert stats.trace[0].nbytes in (0, 1024)


def _capped_run(trace_limit=3):
    cluster = Cluster(BGP, ranks=2, mode="VN")
    stats = attach_stats(cluster, trace_limit=trace_limit)

    def program(comm):
        if comm.rank == 0:
            for i in range(10):
                yield from comm.send(1, nbytes=8, tag=i)
        else:
            for i in range(10):
                yield from comm.recv(src=0, tag=i)

    cluster.run(program)
    return stats


def test_trace_limit_respected():
    stats = _capped_run(trace_limit=3)
    assert stats.messages == 10  # stats keep counting
    assert len(stats.trace) == 3  # trace capped


def test_dropped_events_counted_and_surfaced():
    stats = _capped_run(trace_limit=3)
    assert stats.dropped == 7  # truncation is no longer silent
    text = stats.summary()
    assert "TRUNCATED" in text
    assert "7 event(s) dropped" in text


def test_uncapped_run_reports_no_truncation():
    stats = _run_traffic(4)
    assert stats.dropped == 0
    assert "TRUNCATED" not in stats.summary()


def test_attach_is_idempotent():
    cluster = Cluster(BGP, ranks=2, mode="VN")
    first = attach_stats(cluster, trace_limit=5)
    second = attach_stats(cluster, trace_limit=99)
    assert second is first
    assert second.trace_limit == 5  # later limit ignored
    assert len(cluster.transport._send_hooks) == 1

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=64)
        else:
            yield from comm.recv(src=0)

    cluster.run(program)
    assert first.messages == 1  # recorded once, not twice


@pytest.mark.filterwarnings("error::DeprecationWarning")
def test_attach_warns_deprecation():
    cluster = Cluster(BGP, ranks=2, mode="VN")
    with pytest.warns(DeprecationWarning, match="repro.obs"):
        attach_stats(cluster)


def test_summary_renders():
    stats = _run_traffic(4)
    text = stats.summary()
    assert "messages: 8" in text
    assert "2^10" in text


def test_mean_message_bytes():
    stats = _run_traffic(4)
    assert stats.mean_message_bytes() == pytest.approx(512.0)
