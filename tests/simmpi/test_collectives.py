"""Collective-operation semantics and machine-specific algorithm choice."""

import pytest

from repro.machines import BGP, XT4_QC
from repro.simmpi import Cluster


def elapsed(machine, ranks, program, mode="VN", **kw):
    return Cluster(machine, ranks=ranks, mode=mode, **kw).run(program).elapsed


def test_barrier_synchronizes_all_ranks():
    def program(comm):
        yield from comm.compute(seconds=0.1 * comm.rank)
        yield from comm.barrier()
        return comm.now

    res = Cluster(XT4_QC, ranks=4, mode="VN").run(program)
    finish = res.returns
    # All ranks leave the barrier at (nearly) the same time, after the
    # slowest rank arrived.
    assert max(finish) - min(finish) < 1e-3
    assert min(finish) >= 0.3


def test_bgp_barrier_uses_hardware_and_is_fast():
    def program(comm):
        yield from comm.barrier()
        return comm.now

    bgp = elapsed(BGP, 64, program)
    xt = elapsed(XT4_QC, 64, program)
    assert bgp < xt
    assert bgp < 20e-6


def test_bcast_reaches_everyone():
    def program(comm):
        yield from comm.bcast(1 << 15, root=0)
        return comm.now

    for machine in (BGP, XT4_QC):
        res = Cluster(machine, ranks=8, mode="VN").run(program)
        assert all(t > 0 for t in res.returns)


def test_bgp_bcast_dramatically_faster():
    """Fig. 3c/d: 'the BG/P dramatically outperforms the Cray XT for
    all message sizes showing the benefit of the special-purpose tree
    network'."""

    def program(comm):
        yield from comm.bcast(32 * 1024, root=0)
        return comm.now

    bgp = elapsed(BGP, 64, program)
    xt = elapsed(XT4_QC, 64, program)
    assert bgp < xt / 2


def test_allreduce_double_uses_tree_on_bgp():
    """Fig. 3a/b: double precision allreduce is much faster than single
    precision on BG/P (tree ALU), but not on the XT."""

    def make(dtype):
        def program(comm):
            yield from comm.allreduce(32 * 1024, dtype=dtype)
            return comm.now

        return program

    bgp_double = elapsed(BGP, 64, make("float64"))
    bgp_single = elapsed(BGP, 64, make("float32"))
    assert bgp_double < bgp_single / 2

    xt_double = elapsed(XT4_QC, 64, make("float64"))
    xt_single = elapsed(XT4_QC, 64, make("float32"))
    assert xt_double == pytest.approx(xt_single, rel=0.3)


def test_reduce_completes():
    def program(comm):
        yield from comm.reduce(4096, root=0)
        return comm.now

    for machine in (BGP, XT4_QC):
        res = Cluster(machine, ranks=6, mode="VN").run(program)
        assert all(t > 0 for t in res.returns)


def test_allreduce_non_power_of_two():
    def program(comm):
        yield from comm.allreduce(1024, dtype="float32")
        return comm.now

    for p in (3, 5, 6, 7):
        res = Cluster(XT4_QC, ranks=p, mode="VN").run(program)
        assert len(res.returns) == p


def test_alltoall_message_count_pairwise():
    """Large payloads use pairwise exchange: p x (p-1) messages."""

    def program(comm):
        yield from comm.alltoall(1 << 20)

    res = Cluster(XT4_QC, ranks=8, mode="VN").run(program)
    assert res.messages == 8 * 7


def test_alltoall_message_count_bruck():
    """Small payloads switch to Bruck: p x ceil(log2 p) messages."""

    def program(comm):
        yield from comm.alltoall(8)

    res = Cluster(XT4_QC, ranks=8, mode="VN").run(program)
    assert res.messages == 8 * 3


def test_alltoall_non_power_of_two():
    def program(comm):
        yield from comm.alltoall(64)
        return comm.now

    res = Cluster(BGP, ranks=6, mode="VN").run(program)
    assert all(t > 0 for t in res.returns)


def test_allgather_ring_messages():
    def program(comm):
        yield from comm.allgather(512)

    res = Cluster(BGP, ranks=5, mode="VN").run(program)
    assert res.messages == 5 * 4  # p * (p-1) ring shifts


def test_collective_mismatch_detected():
    def program(comm):
        if comm.rank == 0:
            yield from comm.bcast(64, root=0)
        else:
            yield from comm.barrier()

    with pytest.raises(RuntimeError, match="collective mismatch"):
        Cluster(BGP, ranks=4, mode="VN").run(program)


def test_two_sequential_collectives():
    def program(comm):
        yield from comm.barrier()
        t1 = comm.now
        yield from comm.bcast(1024, root=0)
        return (t1, comm.now)

    res = Cluster(BGP, ranks=8, mode="VN").run(program)
    for t1, t2 in res.returns:
        assert t2 > t1


def test_allreduce_scaling_with_ranks():
    def program(comm):
        yield from comm.allreduce(8192, dtype="float32")
        return comm.now

    t16 = elapsed(XT4_QC, 16, program)
    t64 = elapsed(XT4_QC, 64, program)
    assert t64 > t16  # more rounds
    assert t64 < t16 * 4  # but logarithmic-ish, not linear
