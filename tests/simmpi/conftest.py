"""simmpi suite configuration: opt-in sanitized runs.

Setting ``REPRO_SANITIZE=1`` runs every ``Cluster.run`` in this suite
under the simulation sanitizer — CI does this so deadlocks and request
leaks introduced by new code fail loudly here.  Tests that deliberately
violate sanitizer invariants can opt out with
``@pytest.mark.no_sanitize``.
"""

import os

import pytest


@pytest.fixture(autouse=True)
def _sanitize_when_requested(request):
    if os.environ.get("REPRO_SANITIZE") and "no_sanitize" not in request.keywords:
        request.getfixturevalue("sanitize_runs")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "no_sanitize: skip the REPRO_SANITIZE autouse sanitizer"
    )
