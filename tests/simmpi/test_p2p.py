"""Point-to-point semantics of the simulated MPI."""

import pytest

from repro.machines import BGP, XT4_QC
from repro.simmpi import ANY_SOURCE, Cluster


def run(machine, ranks, program, mode="SMP", **kw):
    return Cluster(machine, ranks=ranks, mode=mode, **kw).run(program)


def test_send_recv_payload():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=64, payload={"k": "v"})
        else:
            msg = yield from comm.recv(src=0)
            return msg.payload

    res = run(BGP, 2, program)
    assert res.returns[1] == {"k": "v"}
    assert res.messages == 1
    assert res.bytes_sent == 64


def test_recv_any_source():
    def program(comm):
        if comm.rank == 0:
            msgs = []
            for _ in range(2):
                m = yield from comm.recv(src=ANY_SOURCE)
                msgs.append(m.src)
            return sorted(msgs)
        yield from comm.send(0, nbytes=8)

    res = run(BGP, 3, program)
    assert res.returns[0] == [1, 2]


def test_tag_matching_out_of_order():
    """A recv for tag 7 must skip an earlier-arrived tag-3 message."""

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8, tag=3, payload="three")
            yield from comm.send(1, nbytes=8, tag=7, payload="seven")
        else:
            m7 = yield from comm.recv(src=0, tag=7)
            m3 = yield from comm.recv(src=0, tag=3)
            return (m7.payload, m3.payload)

    res = run(BGP, 2, program)
    assert res.returns[1] == ("seven", "three")


def test_fifo_order_same_src_tag():
    def program(comm):
        if comm.rank == 0:
            for i in range(4):
                yield from comm.send(1, nbytes=8, tag=0, payload=i)
        else:
            out = []
            for _ in range(4):
                m = yield from comm.recv(src=0, tag=0)
                out.append(m.payload)
            return out

    res = run(BGP, 2, program)
    assert res.returns[1] == [0, 1, 2, 3]


def test_eager_send_completes_before_recv_posted():
    """Small sends buffer at the receiver (eager protocol)."""

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8)
            return comm.now  # must not wait for rank 1's late recv
        yield from comm.compute(seconds=1.0)
        yield from comm.recv(src=0)
        return comm.now

    res = run(BGP, 2, program)
    send_done, recv_done = res.returns
    assert send_done < 1e-3
    assert recv_done > 1.0


def test_rendezvous_send_waits_for_receiver():
    """Large sends synchronize with the matching receive."""
    big = BGP.mpi.eager_threshold * 100

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=big)
            return comm.now
        yield from comm.compute(seconds=1.0)
        yield from comm.recv(src=0)
        return comm.now

    res = run(BGP, 2, program)
    send_done, recv_done = res.returns
    assert send_done > 1.0  # sender blocked on the handshake


def test_rendezvous_prepost_receiver():
    big = BGP.mpi.eager_threshold * 100

    def program(comm):
        if comm.rank == 0:
            yield from comm.compute(seconds=0.5)
            yield from comm.send(1, nbytes=big)
        else:
            msg = yield from comm.recv(src=0)
            return (comm.now, msg.nbytes)

    res = run(BGP, 2, program)
    t, n = res.returns[1]
    assert n == big
    assert t > 0.5


def test_isend_wait():
    def program(comm):
        if comm.rank == 0:
            reqs = [comm.isend(1, nbytes=8, tag=i) for i in range(3)]
            yield from comm.waitall(reqs)
        else:
            tags = []
            for i in range(3):
                m = yield from comm.recv(src=0, tag=i)
                tags.append(m.tag)
            return tags

    res = run(BGP, 2, program)
    assert res.returns[1] == [0, 1, 2]


def test_sendrecv_exchange_no_deadlock():
    def program(comm):
        peer = 1 - comm.rank
        msg = yield from comm.sendrecv(
            dst=peer, send_bytes=1 << 16, src=peer
        )
        return msg.src

    res = run(XT4_QC, 2, program)
    assert res.returns == [1, 0]


def test_bigger_messages_take_longer():
    def program(comm, nbytes):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=nbytes)
        else:
            yield from comm.recv(src=0)
            return comm.now

    small = run(BGP, 2, lambda c: program(c, 1 << 10)).returns[1]
    large = run(BGP, 2, lambda c: program(c, 1 << 20)).returns[1]
    assert large > small


def test_intranode_faster_than_internode():
    """VN-mode peers on one node use shared memory (Section I.A)."""

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1 << 15)
        elif comm.rank == 1:
            yield from comm.recv(src=0)
            return comm.now

    # ranks 0,1 share a node with TXYZ; with XYZT they are 1 hop apart.
    same = Cluster(BGP, ranks=8, mode="VN", mapping="TXYZ").run(program)
    diff = Cluster(BGP, ranks=8, mode="VN", mapping="XYZT").run(program)
    assert same.returns[1] < diff.returns[1]


def test_self_send():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(0, nbytes=8, payload="me")
            m = yield from comm.recv(src=0)
            return m.payload
        yield from comm.compute(seconds=0.0)

    res = run(BGP, 2, program)
    assert res.returns[0] == "me"


def test_invalid_peer_rejected():
    def program(comm):
        yield from comm.send(99, nbytes=8)

    with pytest.raises(ValueError):
        run(BGP, 2, program)


def test_bgp_lower_latency_than_xt():
    """Table 2 commentary: BG/P's strength is low-latency communication."""

    def pingpong(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8)
            yield from comm.recv(src=1)
            return comm.now
        yield from comm.recv(src=0)
        yield from comm.send(0, nbytes=8)

    bgp = run(BGP, 2, pingpong).returns[0]
    xt = run(XT4_QC, 2, pingpong).returns[0]
    assert bgp < xt


def test_xt_higher_bandwidth_than_bgp():
    """Table 2 commentary: the XT's strength is high bandwidth."""
    nbytes = 4 << 20

    def stream(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=nbytes)
        else:
            yield from comm.recv(src=0)
            return comm.now

    bgp = run(BGP, 2, stream).returns[1]
    xt = run(XT4_QC, 2, stream).returns[1]
    assert xt < bgp  # more bytes/s on the XT
