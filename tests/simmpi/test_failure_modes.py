"""Failure injection: the simulator must fail loudly, not silently."""

import pytest

from repro.machines import BGP, XT4_QC
from repro.simmpi import Cluster


def test_unmatched_recv_deadlocks_with_diagnosis():
    """A receive that can never match must surface as a deadlock, not
    hang or silently complete."""

    def program(comm):
        if comm.rank == 0:
            yield from comm.recv(src=1, tag=99)  # never sent
        else:
            yield from comm.compute(seconds=1.0)

    with pytest.raises(RuntimeError, match="deadlock"):
        Cluster(BGP, ranks=2, mode="SMP").run(program)


def test_missing_collective_participant_deadlocks():
    def program(comm):
        if comm.rank != 3:
            yield from comm.allreduce(1024, dtype="float32")

    with pytest.raises(RuntimeError, match="deadlock"):
        Cluster(XT4_QC, ranks=4, mode="VN").run(program)


def test_rendezvous_without_receiver_deadlocks():
    big = BGP.mpi.eager_threshold * 10

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=big)  # synchronous, no recv
        else:
            yield from comm.compute(seconds=0.1)

    with pytest.raises(RuntimeError, match="deadlock"):
        Cluster(BGP, ranks=2, mode="SMP").run(program)


@pytest.mark.no_sanitize  # the unmatched send here is the point of the test
def test_eager_send_without_receiver_is_fine():
    """Small sends are buffered: no receiver needed for completion
    (matching real MPI eager semantics)."""

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8)
        else:
            yield from comm.compute(seconds=0.1)
        return comm.now

    res = Cluster(BGP, ranks=2, mode="SMP").run(program)
    assert len(res.returns) == 2


def test_program_exception_propagates():
    def program(comm):
        yield from comm.compute(seconds=0.1)
        if comm.rank == 1:
            raise ValueError("rank 1 exploded")

    with pytest.raises(ValueError, match="rank 1 exploded"):
        Cluster(BGP, ranks=2, mode="SMP").run(program)


def test_oversubscribed_machine_rejected():
    with pytest.raises(ValueError):
        Cluster(BGP.with_nodes(2), ranks=64, mode="VN")


def test_negative_message_rejected_at_injection():
    def program(comm):
        yield from comm.send((comm.rank + 1) % 2, nbytes=-1)

    with pytest.raises(ValueError):
        Cluster(BGP, ranks=2, mode="SMP").run(program)


def test_wrong_tag_never_matches():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8, tag=1)
            yield from comm.send(1, nbytes=8, tag=2)
        else:
            yield from comm.recv(src=0, tag=1)
            yield from comm.recv(src=0, tag=3)  # wrong: deadlock

    with pytest.raises(RuntimeError, match="deadlock"):
        Cluster(BGP, ranks=2, mode="SMP").run(program)
