"""Adaptive (congestion-aware) torus routing."""

import pytest

from repro.machines import BGP
from repro.simengine import Engine
from repro.simmpi import Cluster
from repro.topology import Torus3D


def test_route_dim_order_validation():
    t = Torus3D((4, 4, 4), BGP.torus)
    with pytest.raises(ValueError):
        t.route((0, 0, 0), (1, 1, 0), dim_order=(0, 0, 1))


def test_zyx_route_differs_from_xyz():
    t = Torus3D((4, 4, 4), BGP.torus)
    xyz = t.route((0, 0, 0), (2, 2, 0))
    zyx = t.route((0, 0, 0), (2, 2, 0), dim_order=(2, 1, 0))
    assert len(xyz) == len(zyx) == 4  # both shortest
    assert xyz != zyx  # different corners


def test_adaptive_requires_engine():
    t = Torus3D((4, 4, 4), BGP.torus)
    with pytest.raises(RuntimeError):
        t.route_adaptive((0, 0, 0), (1, 1, 0), 1000)


def test_adaptive_avoids_congested_path():
    env = Engine()
    t = Torus3D((4, 4, 1), BGP.torus, env)
    # Congest the XYZ route's first X link heavily.
    for key in t.route((0, 0, 0), (2, 2, 0)):
        t.links[key].book(10e6, earliest=0.0)
    alt = t.route_adaptive((0, 0, 0), (2, 2, 0), nbytes=1e6)
    # The adaptive choice must not be the congested XYZ path.
    assert alt == t.route((0, 0, 0), (2, 2, 0), dim_order=(2, 1, 0))


def test_adaptive_same_length_as_deterministic():
    env = Engine()
    t = Torus3D((4, 4, 4), BGP.torus, env)
    det = t.route((0, 0, 0), (2, 1, 3))
    ada = t.route_adaptive((0, 0, 0), (2, 1, 3), 1000)
    assert len(ada) == len(det)  # minimal either way


def test_cluster_adaptive_flag_runs():
    def program(comm):
        peer = (comm.rank + comm.size // 2) % comm.size
        req = comm.irecv(src=(comm.rank - comm.size // 2) % comm.size)
        yield from comm.send(peer, nbytes=1 << 16)
        yield from comm.wait(req)
        return comm.now

    det = Cluster(BGP, ranks=16, mode="SMP").run(program)
    ada = Cluster(BGP, ranks=16, mode="SMP", adaptive_routing=True).run(program)
    # Adaptive routing spreads contended shift traffic: never slower.
    assert ada.elapsed <= det.elapsed * 1.01
