"""DES vs analytic cross-validation.

The figure benches trust the analytic CostModel at scales where
message-level simulation is impractical; these tests anchor that trust
by checking the two levels agree within tolerance at small scale, on
both machine families, for the operations the paper's figures use.
"""

import pytest

from repro.machines import BGP, XT4_QC
from repro.simmpi import Cluster


def des_elapsed(machine, ranks, program, mode="SMP", mapping="XYZT"):
    return Cluster(machine, ranks=ranks, mode=mode, mapping=mapping).run(program).elapsed


TOL = 0.5  # relative tolerance between fidelity levels


@pytest.mark.parametrize("machine", [BGP, XT4_QC], ids=lambda m: m.name)
@pytest.mark.parametrize("nbytes", [8, 1024, 1 << 17])
def test_pingpong_des_vs_analytic(machine, nbytes):
    def pingpong(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=nbytes)
            yield from comm.recv(src=1)
        else:
            yield from comm.recv(src=0)
            yield from comm.send(0, nbytes=nbytes)

    # SMP mode: both ranks on distinct, adjacent nodes.
    cluster = Cluster(machine, ranks=2, mode="SMP")
    des = cluster.run(pingpong).elapsed
    analytic = cluster.cost.pingpong_time(nbytes, hops=1.0)
    assert des == pytest.approx(analytic, rel=TOL)


@pytest.mark.parametrize("machine", [BGP, XT4_QC], ids=lambda m: m.name)
def test_barrier_des_vs_analytic(machine):
    def program(comm):
        yield from comm.barrier()

    cluster = Cluster(machine, ranks=16, mode="SMP")
    des = cluster.run(program).elapsed
    analytic = cluster.cost.barrier_time()
    assert des == pytest.approx(analytic, rel=TOL)


@pytest.mark.parametrize("machine", [BGP, XT4_QC], ids=lambda m: m.name)
@pytest.mark.parametrize("nbytes", [512, 32 * 1024])
def test_bcast_des_vs_analytic(machine, nbytes):
    def program(comm):
        yield from comm.bcast(nbytes, root=0)

    cluster = Cluster(machine, ranks=16, mode="SMP")
    des = cluster.run(program).elapsed
    analytic = cluster.cost.bcast_time(nbytes)
    assert des == pytest.approx(analytic, rel=TOL)


@pytest.mark.parametrize("machine", [BGP, XT4_QC], ids=lambda m: m.name)
@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_allreduce_des_vs_analytic(machine, dtype):
    nbytes = 4096

    def program(comm):
        yield from comm.allreduce(nbytes, dtype=dtype)

    cluster = Cluster(machine, ranks=16, mode="SMP")
    des = cluster.run(program).elapsed
    analytic = cluster.cost.allreduce_time(nbytes, dtype=dtype)
    assert des == pytest.approx(analytic, rel=TOL)


@pytest.mark.parametrize("machine", [BGP, XT4_QC], ids=lambda m: m.name)
def test_alltoall_des_vs_analytic(machine):
    nbytes = 2048

    def program(comm):
        yield from comm.alltoall(nbytes)

    cluster = Cluster(machine, ranks=16, mode="SMP")
    des = cluster.run(program).elapsed
    analytic = cluster.cost.alltoall_time(nbytes)
    # Alltoall is the loosest model (pairwise DES vs bound-based
    # analytic); accept a factor-2 agreement.
    assert des == pytest.approx(analytic, rel=1.0)


def test_relative_machine_ordering_preserved():
    """Whatever the absolute gaps, DES and analytic must agree on *who
    wins* — that is what the figures assert."""

    def pingpong(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8)
            yield from comm.recv(src=1)
        else:
            yield from comm.recv(src=0)
            yield from comm.send(0, nbytes=8)

    des_bgp = des_elapsed(BGP, 2, pingpong)
    des_xt = des_elapsed(XT4_QC, 2, pingpong)
    c_bgp = Cluster(BGP, ranks=2, mode="SMP").cost.pingpong_time(8)
    c_xt = Cluster(XT4_QC, ranks=2, mode="SMP").cost.pingpong_time(8)
    assert (des_bgp < des_xt) == (c_bgp < c_xt)
