"""IMB collective benchmarks: Fig. 3 shapes."""

import pytest

from repro.imb import DEFAULT_PROC_COUNTS, DEFAULT_SIZES, ImbBenchmark
from repro.machines import BGP, XT4_QC


def test_size_sweep_structure():
    pts = ImbBenchmark(BGP).size_sweep("allreduce", processes=256)
    assert len(pts) == len(DEFAULT_SIZES)
    assert all(p.processes == 256 for p in pts)
    # Latency grows with size.
    lats = [p.latency_us for p in pts]
    assert lats[-1] > lats[0]


def test_process_sweep_structure():
    pts = ImbBenchmark(BGP).process_sweep("bcast")
    assert [p.processes for p in pts] == list(DEFAULT_PROC_COUNTS)


def test_unknown_operation():
    with pytest.raises(ValueError):
        ImbBenchmark(BGP).size_sweep("alltoallw", processes=16)


def test_fig3a_allreduce_precision_bgp():
    """Fig. 3a: 'a substantial performance benefit to using double
    precision over single precision on the BG/P but not the Cray XT'."""
    b = ImbBenchmark(BGP)
    for nbytes in (1024, 32768):
        d = b.size_sweep("allreduce", 8192, [nbytes], "float64")[0].latency_us
        s = b.size_sweep("allreduce", 8192, [nbytes], "float32")[0].latency_us
        assert d < s / 2
    x = ImbBenchmark(XT4_QC)
    d = x.size_sweep("allreduce", 8192, [32768], "float64")[0].latency_us
    s = x.size_sweep("allreduce", 8192, [32768], "float32")[0].latency_us
    assert d == pytest.approx(s, rel=0.05)


def test_fig3b_allreduce_scalability():
    """Fig. 3b: 'the BG/P's double precision Allreduce scalability was
    exceptional across the tested range of process counts'."""
    pts = ImbBenchmark(BGP).process_sweep("allreduce", 32768)
    lats = [p.latency_us for p in pts]
    assert lats[-1] < 2 * lats[0]  # nearly flat 16 -> 8192


def test_fig3c_bcast_bgp_dominates():
    """Fig. 3c: 'the BG/P dramatically outperforms the Cray XT for all
    message sizes'."""
    for nbytes in (4, 1024, 32768, 1048576):
        b = ImbBenchmark(BGP).size_sweep("bcast", 8192, [nbytes])[0].latency_us
        x = ImbBenchmark(XT4_QC).size_sweep("bcast", 8192, [nbytes])[0].latency_us
        assert b < x / 2


def test_fig3d_bcast_scaling():
    """Fig. 3d: BG/P bcast latency nearly flat in process count; the
    XT software tree grows logarithmically."""
    b = ImbBenchmark(BGP).process_sweep("bcast", 32768)
    x = ImbBenchmark(XT4_QC).process_sweep("bcast", 32768)
    b_growth = b[-1].latency_us / b[0].latency_us
    x_growth = x[-1].latency_us / x[0].latency_us
    assert b_growth < x_growth


def test_bcast_precision_irrelevant():
    """Section II.B.2: 'numerical precision had no substantive impact
    on Bcast latency'."""
    b = ImbBenchmark(BGP)
    d = b.size_sweep("bcast", 1024, [32768], "float64")[0].latency_us
    s = b.size_sweep("bcast", 1024, [32768], "float32")[0].latency_us
    assert d == pytest.approx(s, rel=0.05)


def test_des_cross_check_small():
    bench = ImbBenchmark(BGP)
    des = bench.measure_des("bcast", processes=16, nbytes=4096)
    ana = bench.size_sweep("bcast", processes=16, sizes=[4096])[0]
    assert des.latency_us == pytest.approx(ana.latency_us, rel=1.0)
