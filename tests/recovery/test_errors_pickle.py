"""Every resilience-layer error must survive a pickle round trip.

Multiprocess sweep workers propagate these errors across process
boundaries; a naive ``Exception`` subclass with a multi-arg ``__init__``
breaks un-pickling unless ``__reduce__`` rebuilds it from its original
arguments.  Each error also exposes the structured diagnostic triple
(``entity``, ``sim_time``, ``attempt``).
"""

import pickle

import pytest

from repro.faults.errors import FaultError
from repro.recovery.errors import RankFailedError, RestartsExhaustedError
from repro.simengine import Budget, BudgetExceeded
from repro.simengine.budget import BudgetSummary


def _roundtrip(err):
    clone = pickle.loads(pickle.dumps(err))
    assert type(clone) is type(err)
    assert str(clone) == str(err)
    return clone


def test_fault_error_roundtrip():
    err = FaultError(
        src=3, dst=7, tag=42, nbytes=4096,
        link=((0, 0, 0), (1, 0, 0)), attempts=2, time=1.25, reason="corruption",
    )
    clone = _roundtrip(err)
    assert clone.src == 3 and clone.dst == 7
    assert clone.tag == 42 and clone.nbytes == 4096
    assert clone.link == ((0, 0, 0), (1, 0, 0))
    assert clone.reason == "corruption"
    assert clone.entity == "link (0, 0, 0)->(1, 0, 0)"
    assert clone.sim_time == pytest.approx(1.25)
    assert clone.attempt == 2


def test_fault_error_entity_without_link():
    err = FaultError(src=0, dst=5, tag=0, nbytes=8, time=0.5)
    assert _roundtrip(err).entity == "route 0->5"


def test_rank_failed_error_roundtrip():
    err = RankFailedError(
        [5, 7], node=(1, 2, 3), sim_time=2.5, op="recv", rank=4, peer=5
    )
    clone = _roundtrip(err)
    assert clone.failed_ranks == frozenset({5, 7})
    assert clone.node == (1, 2, 3)
    assert clone.op == "recv" and clone.rank == 4 and clone.peer == 5
    assert clone.entity == "node (1, 2, 3)"
    assert clone.sim_time == pytest.approx(2.5)
    assert clone.attempt == 0


def test_rank_failed_error_entity_without_node():
    err = RankFailedError([2], sim_time=1.0)
    assert _roundtrip(err).entity == "rank(s) [2]"


def test_restarts_exhausted_roundtrip():
    err = RestartsExhaustedError(
        5, 4, sim_time=99.0, last_error="node (0, 0, 0) failed"
    )
    clone = _roundtrip(err)
    assert clone.attempts == 5 and clone.max_restarts == 4
    assert clone.last_error == "node (0, 0, 0) failed"
    assert clone.entity == "recovery-driver"
    assert clone.sim_time == pytest.approx(99.0)
    assert clone.attempt == 5


def test_budget_exceeded_roundtrip():
    err = BudgetExceeded(
        BudgetSummary(
            reason="livelock", sim_time=0.0, events=1000,
            wall_seconds=0.1, stalled_events=1000, detail="4/4 running",
        )
    )
    clone = _roundtrip(err)
    assert clone.summary == err.summary
    assert clone.summary.reason == "livelock"
    assert "4/4 running" in str(clone)


def test_budget_validation():
    with pytest.raises(ValueError):
        Budget(max_events=0)
    with pytest.raises(ValueError):
        Budget(max_sim_time=-1.0)
    with pytest.raises(ValueError):
        Budget(max_wall_seconds=0.0)
    with pytest.raises(ValueError):
        Budget(max_stalled_events=0)
