"""The restart driver: rewind-to-checkpoint orchestration.

Includes the acceptance check of the recovery layer: the *executed*
checkpoint/restart protocol must land within 15% of the analytic
Young/Daly ``CheckpointModel.expected_runtime`` on at least two Table 1
machines.
"""

import pytest

from repro.faults import FaultPlan, NodeFail
from repro.machines import BGP, XT4_QC
from repro.recovery import (
    CheckpointSchedule,
    RecoveryPolicy,
    RestartsExhaustedError,
    run_recovered,
)
from repro.simmpi import Cluster

RANKS = 8
STEPS = 10
STEP_SECONDS = 0.5


def _cluster_factory(env):
    return Cluster(BGP, ranks=RANKS, mode="VN", env=env)


def _program_factory(runtime, start_step):
    def program(comm):
        for step in range(start_step, STEPS):
            yield from comm.compute(seconds=STEP_SECONDS)
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            req = comm.irecv(src=left, tag=step)
            yield from comm.send(right, 4096, tag=step)
            yield from comm.waitall([req])
            runtime.end_step(comm, step)
            yield from runtime.maybe_checkpoint(comm, step)
        return comm.now

    return program


def _policy(interval=1.4, write=0.2, restart=0.5, **kw):
    return RecoveryPolicy(
        mode="restart",
        schedule=CheckpointSchedule(
            interval_seconds=interval,
            write_seconds=write,
            restart_seconds=restart,
        ),
        **kw,
    )


def _plan(kill_time=2.6, rank=5):
    node = Cluster(BGP, ranks=RANKS, mode="VN").mapping.node_of(rank)
    return FaultPlan((NodeFail(time=kill_time, node=node),))


def test_restart_completes_and_accounts_exactly():
    out = run_recovered(
        _policy(), _cluster_factory, _program_factory,
        plan=_plan(), sanitize=True,
    )
    assert out.attempts == 2
    assert out.checkpoints_written >= 2
    assert out.failed_ranks  # the killed node's ranks
    t = out.times
    assert t.walltime == pytest.approx(
        t.clean + t.lost + t.rework + t.checkpoint_overhead
    )
    kinds = {seg.kind for seg in out.segments}
    assert {"clean", "lost", "ckpt", "restart"} <= kinds
    # Segments tile one continuous timeline across both attempts.
    edge = 0.0
    for seg in out.segments:
        assert seg.start == pytest.approx(edge, abs=1e-12)
        edge = seg.end
    assert edge == pytest.approx(t.walltime, abs=1e-9)
    # The final attempt finished past the failure: elapsed is positive
    # and the run produced per-rank results on every rank.
    assert len(out.result.returns) == RANKS


def test_restart_rewinds_to_durable_step():
    """Work after the last completed checkpoint is re-executed."""
    out = run_recovered(
        _policy(), _cluster_factory, _program_factory, plan=_plan()
    )
    # The failure hit mid-step-3 with a checkpoint completed after step
    # 2: steps 0..2 must never be re-executed (no rework segments for
    # them), and there is lost time for the aborted progress.
    reworked = {s.step for s in out.segments if s.kind == "rework"}
    assert all(step is None or step >= 3 for step in reworked)
    assert out.times.lost > 0


def test_no_faults_single_attempt():
    out = run_recovered(_policy(), _cluster_factory, _program_factory)
    assert out.attempts == 1
    assert out.failed_ranks == frozenset()
    assert out.times.lost == 0 and out.times.rework == 0
    assert out.times.clean == pytest.approx(
        out.times.walltime - out.times.checkpoint_overhead
    )


def test_restarts_exhausted():
    """A plan that keeps killing nodes exhausts max_restarts."""
    node0 = Cluster(BGP, ranks=RANKS, mode="VN").mapping.node_of(5)
    node1 = Cluster(BGP, ranks=RANKS, mode="VN").mapping.node_of(0)
    plan = FaultPlan(
        tuple(
            NodeFail(time=2.6 + 3.0 * k, node=(node0 if k % 2 else node1))
            for k in range(8)
        )
    )
    with pytest.raises(RestartsExhaustedError) as info:
        run_recovered(
            _policy(max_restarts=2), _cluster_factory, _program_factory,
            plan=plan,
        )
    assert info.value.attempts == 3
    assert info.value.entity == "recovery-driver"


def test_cluster_factory_must_use_given_engine():
    with pytest.raises(ValueError, match="provided engine"):
        run_recovered(
            _policy(),
            lambda env: Cluster(BGP, ranks=RANKS, mode="VN"),
            _program_factory,
        )


@pytest.mark.parametrize("machine", [BGP, XT4_QC], ids=lambda m: m.name)
def test_simulated_restart_matches_analytic_model(machine):
    """Executed checkpoint/restart within 15% of Young/Daly (Table 1)."""
    from repro.recovery.scenarios import simulate_checkpointing

    cmp_ = simulate_checkpointing(machine, steps=300)
    assert cmp_.attempts >= 2, "the plan must actually kill the job"
    assert cmp_.checkpoints >= 2
    assert abs(cmp_.delta_fraction) < 0.15, cmp_.format()
