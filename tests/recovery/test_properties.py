"""Property-based invariants of the recovery time accounting.

Whatever fault plan the adversary picks, the walltime decomposition
``clean + lost + rework + checkpoint_overhead == walltime`` must hold
exactly — it is built from an exhaustive segment tiling, not from
subtraction — and the segments themselves must tile ``[0, walltime]``.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.faults import FaultPlan, NodeFail  # noqa: E402
from repro.machines import BGP  # noqa: E402
from repro.recovery import (  # noqa: E402
    CheckpointSchedule,
    RankFailedError,
    RecoveryPolicy,
    RecoveryRuntime,
    RestartsExhaustedError,
    run_recovered,
)
from repro.simmpi import Cluster  # noqa: E402

RANKS = 4
STEPS = 5
STEP_SECONDS = 0.4


def _check_tiling(segments, walltime):
    edge = 0.0
    for seg in segments:
        assert seg.start == pytest.approx(edge, abs=1e-9)
        assert seg.end >= seg.start
        edge = seg.end
    assert edge == pytest.approx(walltime, abs=1e-9)


def _check_decomposition(times):
    total = times.clean + times.lost + times.rework + times.checkpoint_overhead
    assert times.walltime == pytest.approx(total, abs=1e-9)
    for part in (times.clean, times.lost, times.rework,
                 times.checkpoint_overhead):
        assert part >= 0.0


def _program_factory(runtime, start_step):
    def program(comm):
        for step in range(start_step, STEPS):
            yield from comm.compute(seconds=STEP_SECONDS)
            req = comm.irecv(src=(comm.rank - 1) % comm.size, tag=step)
            yield from comm.send((comm.rank + 1) % comm.size, 2048, tag=step)
            yield from comm.waitall([req])
            runtime.end_step(comm, step)
            yield from runtime.maybe_checkpoint(comm, step)
        return comm.now

    return program


@settings(max_examples=15, deadline=None)
@given(
    kill_times=st.lists(
        st.floats(min_value=0.05, max_value=6.0, allow_nan=False),
        min_size=0, max_size=3, unique=True,
    ),
    kill_rank=st.integers(min_value=0, max_value=RANKS - 1),
    interval=st.floats(min_value=0.5, max_value=3.0, allow_nan=False),
    write=st.floats(min_value=0.05, max_value=0.4, allow_nan=False),
)
def test_restart_decomposition_invariant(kill_times, kill_rank, interval, write):
    node = Cluster(BGP, ranks=RANKS, mode="VN").mapping.node_of(kill_rank)
    plan = FaultPlan(
        tuple(NodeFail(time=t, node=node) for t in sorted(kill_times))
    )
    policy = RecoveryPolicy(
        mode="restart",
        schedule=CheckpointSchedule(
            interval_seconds=interval, write_seconds=write,
            restart_seconds=0.3,
        ),
        max_restarts=8,
    )
    try:
        out = run_recovered(
            policy,
            lambda env: Cluster(BGP, ranks=RANKS, mode="VN", env=env),
            _program_factory,
            plan=plan,
        )
    except RestartsExhaustedError:
        # An adversarial plan may kill faster than checkpoints complete;
        # giving up is legitimate, accounting is checked on success.
        return
    _check_decomposition(out.times)
    _check_tiling(out.segments, out.times.walltime)
    assert out.attempts >= 1


@settings(max_examples=15, deadline=None)
@given(
    kill_time=st.floats(min_value=0.05, max_value=1.8, allow_nan=False),
    kill_rank=st.integers(min_value=0, max_value=RANKS - 1),
)
def test_shrink_decomposition_invariant(kill_time, kill_rank):
    cluster = Cluster(BGP, ranks=RANKS, mode="VN")
    node = cluster.mapping.node_of(kill_rank)
    plan = FaultPlan((NodeFail(time=kill_time, node=node),))
    runtime = RecoveryRuntime(RecoveryPolicy(mode="shrink"))

    def program(world):
        comm, step = world, 0
        while step < STEPS:
            try:
                yield from comm.compute(seconds=STEP_SECONDS)
                req = comm.irecv(src=(comm.rank - 1) % comm.size, tag=step)
                yield from comm.send(
                    (comm.rank + 1) % comm.size, 2048, tag=step
                )
                yield from comm.waitall([req])
                runtime.end_step(comm, step)
                step += 1
            except RankFailedError:
                comm, step = yield from runtime.recover(world, step)
        return comm.size

    res = cluster.run(program, recovery=runtime, faults=plan)
    times = runtime.times()
    assert times.walltime == pytest.approx(res.elapsed, abs=1e-9)
    _check_decomposition(times)
    _check_tiling(runtime.segments, times.walltime)
