"""Tests for repro.recovery (ULFM shrink, checkpoint/restart, budgets)."""
