"""The ``repro recover`` subcommand and ``faults checkpoint --simulate``."""

import json

from repro.cli import main
from repro.recovery.scenarios import recover_scenario_ids


def test_recover_list(capsys):
    assert main(["recover", "--list"]) == 0
    out = capsys.readouterr().out
    for sid in recover_scenario_ids():
        assert sid in out
    assert {"pop-shrink", "pop-restart", "s3d-shrink", "livelock",
            "checkpoint-sim"} <= set(recover_scenario_ids())


def test_recover_requires_scenario(capsys):
    assert main(["recover"]) == 2
    assert "scenario id" in capsys.readouterr().err


def test_recover_unknown_scenario_exits_2(capsys):
    assert main(["recover", "nope"]) == 2
    assert "unknown recovery scenario" in capsys.readouterr().err


def test_recover_unsupported_param_exits_2(capsys):
    assert main(["recover", "livelock", "--param", "bogus=1"]) == 2
    assert "does not take parameter" in capsys.readouterr().err


def test_recover_livelock_budget_fires(capsys):
    assert main(["recover", "livelock"]) == 0
    out = capsys.readouterr().out
    assert "livelock stopped as intended" in out
    assert "budget exceeded" in out


def test_recover_pop_shrink_writes_artifacts(tmp_path, capsys):
    trace = tmp_path / "shrink.trace.json"
    metrics = tmp_path / "shrink.metrics.json"
    assert main(
        [
            "recover", "pop-shrink",
            "--param", "processes=8", "--param", "steps=4",
            "-o", str(trace), "--metrics", str(metrics),
        ]
    ) == 0
    stdout = capsys.readouterr().out
    assert "shrink" in stdout
    doc = json.loads(trace.read_text())
    assert any(ev.get("cat") == "recovery" for ev in doc["traceEvents"])
    mdoc = json.loads(metrics.read_text())
    assert any(k.startswith("recovery.") for k in mdoc.get("counters", mdoc))


def test_faults_checkpoint_simulate(capsys):
    assert main(["faults", "checkpoint", "--simulate"]) == 0
    out = capsys.readouterr().out
    assert "executed vs analytic" in out
    # Both Table 1 machines are compared and each shows a signed delta.
    assert out.count("executed vs analytic") >= 2
    assert "%" in out


def test_faults_checkpoint_without_simulate_is_analytic_only(capsys):
    assert main(["faults", "checkpoint"]) == 0
    assert "executed vs analytic" not in capsys.readouterr().out
