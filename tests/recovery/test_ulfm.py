"""ULFM semantics at the simmpi level: revoke, agree, shrink, recover."""

import pytest

from repro.faults import FaultPlan, NodeFail
from repro.machines import BGP
from repro.recovery import (
    RANK_FAILED,
    RankFailedError,
    RecoveryPolicy,
    RecoveryRuntime,
)
from repro.simmpi import Cluster

RANKS = 8
STEP_SECONDS = 0.5
STEPS = 6


def _ring_step(comm, step):
    """One compute + ring-exchange step (blocks until neighbours arrive)."""
    yield from comm.compute(seconds=STEP_SECONDS)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    req = comm.irecv(src=left, tag=step)
    yield from comm.send(right, 4096, tag=step)
    yield from comm.waitall([req])


def _recovering_program(runtime):
    def program(world):
        comm = world
        step = 0
        while step < STEPS:
            try:
                yield from _ring_step(comm, step)
                runtime.end_step(comm, step)
                step += 1
            except RankFailedError:
                comm, step = yield from runtime.recover(world, step)
        return comm.size

    return program


def _cluster_and_plan(kill_rank=5, kill_time=1.6):
    cluster = Cluster(BGP, ranks=RANKS, mode="VN")
    node = cluster.mapping.node_of(kill_rank)
    plan = FaultPlan((NodeFail(time=kill_time, node=node),))
    return cluster, plan, node


def test_shrink_and_continue_completes():
    cluster, plan, node = _cluster_and_plan()
    runtime = RecoveryRuntime(RecoveryPolicy(mode="shrink"))
    res = cluster.run(
        _recovering_program(runtime),
        recovery=runtime, faults=plan, sanitize=True,
    )
    dead = {
        r for r in range(RANKS) if cluster.mapping.node_of(r) == node
    }
    assert runtime.dead_ranks == dead
    survivors = RANKS - len(dead)
    for r in range(RANKS):
        if r in dead:
            assert res.returns[r] is RANK_FAILED
        else:
            assert res.returns[r] == survivors


def test_time_decomposition_sums_to_walltime():
    cluster, plan, _node = _cluster_and_plan()
    runtime = RecoveryRuntime(RecoveryPolicy(mode="shrink"))
    res = cluster.run(_recovering_program(runtime), recovery=runtime, faults=plan)
    times = runtime.times()
    assert times.walltime == pytest.approx(res.elapsed, abs=1e-12)
    assert times.walltime == pytest.approx(
        times.clean + times.lost + times.rework + times.checkpoint_overhead
    )
    assert times.lost > 0 and times.rework > 0
    # Segments tile [0, walltime] without gaps or overlaps.
    edge = 0.0
    for seg in runtime.segments:
        assert seg.start == pytest.approx(edge, abs=1e-12)
        assert seg.end >= seg.start
        edge = seg.end
    assert edge == pytest.approx(res.elapsed, abs=1e-12)


def test_world_comm_is_revoked_after_failure():
    """Operations on the world comm raise at entry once ranks died."""
    cluster, plan, _node = _cluster_and_plan()

    seen = []

    def program(comm):
        try:
            for step in range(STEPS):
                yield from _ring_step(comm, step)
        except RankFailedError:
            # The world communicator is now revoked: any further world
            # operation must raise immediately, without blocking.
            with pytest.raises(RankFailedError):
                comm.irecv(src=(comm.rank - 1) % comm.size, tag=999)
            with pytest.raises(RankFailedError):
                yield from comm.send((comm.rank + 1) % comm.size, 64, tag=999)
            seen.append(comm.rank)
        return comm.rank

    cluster.run(program, recovery=RecoveryPolicy(mode="shrink"), faults=plan)
    assert seen  # at least one survivor took the revoked path


def test_agree_and_shrink_api():
    """comm.agree() returns the dead set; comm.shrink() a live SubComm."""
    cluster, plan, node = _cluster_and_plan()
    dead_expected = {
        r for r in range(RANKS) if cluster.mapping.node_of(r) == node
    }

    def program(comm):
        try:
            for step in range(STEPS):
                yield from _ring_step(comm, step)
        except RankFailedError:
            dead = yield from comm.agree()
            assert dead == frozenset(dead_expected)
            sub = yield from comm.shrink()
            assert sub.size == RANKS - len(dead_expected)
            yield from sub.allreduce(64)
            return sub.size
        return -1

    res = cluster.run(program, recovery=RecoveryPolicy(mode="shrink"), faults=plan)
    live = [r for r in range(RANKS) if r not in dead_expected]
    for r in live:
        assert res.returns[r] == len(live)


def test_agree_requires_recovery_runtime():
    cluster = Cluster(BGP, ranks=2, mode="SMP")

    def program(comm):
        if False:
            yield None
        with pytest.raises(RuntimeError, match="RecoveryPolicy"):
            comm.agree().send(None)
        return 0

    res = cluster.run(program)
    assert res.returns == [0, 0]


def test_shrink_below_min_ranks_raises():
    cluster, plan, _node = _cluster_and_plan()
    runtime = RecoveryRuntime(RecoveryPolicy(mode="shrink", min_ranks=RANKS))

    with pytest.raises(RankFailedError, match="min_ranks"):
        cluster.run(
            _recovering_program(runtime), recovery=runtime, faults=plan
        )


def test_restart_policy_propagates_failure():
    """Without the driver, a restart-mode failure escapes Cluster.run."""
    from repro.recovery import CheckpointSchedule

    cluster, plan, _node = _cluster_and_plan()
    sched = CheckpointSchedule(interval_seconds=1.0, write_seconds=0.1)
    runtime = RecoveryRuntime(RecoveryPolicy(mode="restart", schedule=sched))

    def program(comm):
        for step in range(STEPS):
            yield from _ring_step(comm, step)
            runtime.end_step(comm, step)
            yield from runtime.maybe_checkpoint(comm, step)
        return comm.now

    with pytest.raises(RankFailedError):
        cluster.run(program, recovery=runtime, faults=plan)
    assert runtime.dead_ranks


def test_stale_subcomm_raises_after_second_failure():
    """A SubComm from generation 1 is revoked by a second node failure."""
    cluster = Cluster(BGP, ranks=RANKS, mode="VN")
    node_a = cluster.mapping.node_of(RANKS - 1)
    node_b = cluster.mapping.node_of(0)
    assert node_a != node_b
    plan = FaultPlan(
        (NodeFail(time=1.6, node=node_a), NodeFail(time=2.6, node=node_b))
    )
    runtime = RecoveryRuntime(RecoveryPolicy(mode="shrink"))
    res = cluster.run(
        _recovering_program(runtime), recovery=runtime, faults=plan
    )
    assert runtime.generation == 2
    survivors = len(runtime.live_ranks())
    assert survivors == RANKS - len(runtime.dead_ranks)
    for r in runtime.live_ranks():
        assert res.returns[r] == survivors
