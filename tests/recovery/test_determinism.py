"""Recovery must not cost determinism.

The whole point of *simulated* fault tolerance is reproducible failure
experiments: the same fault plan against the same machine must produce
byte-identical Chrome traces run-to-run, whether recovery shrinks the
communicator or rewinds to a checkpoint.
"""

import filecmp
import json

import pytest

from repro.obs import Tracer, tracing, write_chrome_trace
from repro.recovery.scenarios import run_recover_scenario

POP_PARAMS = dict(processes=8, steps=4)


def _run_twice(tmp_path, scenario_id, **params):
    paths = []
    lines = []
    for i in (0, 1):
        tracer, line = run_recover_scenario(scenario_id, **params)
        path = tmp_path / f"{scenario_id}-{i}.json"
        write_chrome_trace(tracer, path)
        paths.append(path)
        lines.append(line)
    return paths, lines


@pytest.mark.parametrize("scenario_id", ["pop-shrink", "pop-restart"])
def test_pop_recovery_traces_are_byte_identical(tmp_path, scenario_id):
    paths, lines = _run_twice(tmp_path, scenario_id, **POP_PARAMS)
    assert lines[0] == lines[1]
    assert filecmp.cmp(paths[0], paths[1], shallow=False), (
        f"{scenario_id}: repeated runs produced different traces"
    )
    assert paths[0].stat().st_size > 0


def test_pop_shrink_emits_recovery_telemetry(tmp_path):
    tracer, _line = run_recover_scenario("pop-shrink", **POP_PARAMS)
    # Trace side: instant events in the dedicated "recovery" category.
    path = tmp_path / "telemetry.json"
    write_chrome_trace(tracer, path)
    events = json.loads(path.read_text())["traceEvents"]
    assert any(ev.get("cat") == "recovery" for ev in events)
    # Metrics side: the recovery.* counter family actually counted.
    counters = {
        name: c.value
        for name, c in tracer.metrics._counters.items()
        if name.startswith("recovery.")
    }
    assert counters.get("recovery.node_failures", 0) >= 1
    assert counters.get("recovery.shrinks", 0) >= 1
    assert counters.get("recovery.rank_kills", 0) >= 1


def test_s3d_shrink_trace_is_byte_identical(tmp_path):
    paths, lines = _run_twice(tmp_path, "s3d-shrink", processes=8, steps=4)
    assert lines[0] == lines[1]
    assert filecmp.cmp(paths[0], paths[1], shallow=False)


def test_direct_replay_double_run_identical(tmp_path):
    """Byte-identity also holds outside the scenario wrappers."""
    from repro.apps.pop import PopGrid, replay_steps
    from repro.faults import FaultPlan, NodeFail
    from repro.machines import BGP
    from repro.recovery import RecoveryPolicy
    from repro.simmpi import Cluster

    grid = PopGrid(nx=120, ny=80, levels=10)
    node = Cluster(BGP, ranks=8, mode="VN").mapping.node_of(4)

    paths = []
    for i in (0, 1):
        tracer = Tracer(engine_stride=64)
        with tracing(tracer):
            res = replay_steps(
                BGP, 8, grid, steps=4, mode="VN",
                faults=FaultPlan((NodeFail(time=0.01, node=node),)),
                recovery=RecoveryPolicy(mode="shrink"),
            )
        assert res.recovery is not None
        path = tmp_path / f"direct-{i}.json"
        write_chrome_trace(tracer, path)
        paths.append(path)
    assert filecmp.cmp(paths[0], paths[1], shallow=False)
