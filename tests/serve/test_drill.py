"""The acceptance drill: SIGKILL the server mid-campaign, restart,
and prove zero lost jobs and byte-identical artifacts.

This is the same scenario the CI ``serve`` job runs from the shell:
a real server subprocess with a seeded ``server_kill`` injection, four
concurrent clients submitting overlapping specs, the process dying by
actual SIGKILL at a lease grant, and a chaos-free restart finishing
everything.  The batch runner over the same jobs is the oracle.
"""

import filecmp
import json
import os
import pathlib
import subprocess
import sys
import threading
import time

from repro.cli import main
from repro.serve.client import ServeClient, discover
from repro.serve.protocol import ServeError

EXPERIMENTS = ["table1", "top500", "lists"]

_SRC = str(pathlib.Path(__file__).parent.parent.parent / "src")
_ENV = dict(
    os.environ,
    PYTHONPATH=os.pathsep.join(filter(None, [_SRC, os.environ.get("PYTHONPATH")])),
)


def start_server(directory, *extra):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "start",
            "-o",
            str(directory),
            "--jobs",
            "2",
            "--lease-ttl",
            "2.0",
            *extra,
        ],
        env=_ENV,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for_server(directory, proc, timeout=60.0):
    deadline = time.monotonic() + timeout
    marker = pathlib.Path(directory) / "server.json"
    while time.monotonic() < deadline:
        if marker.is_file():
            doc = json.loads(marker.read_text())
            if doc.get("pid") == proc.pid:
                return ServeClient(doc["host"], doc["port"])
        if proc.poll() is not None and not marker.is_file():
            raise AssertionError("server process exited before binding")
        time.sleep(0.05)
    raise AssertionError("server never wrote server.json")


def submit_until_accepted(directory, spec, results, index, timeout=120.0):
    """One client: keep (re)discovering and submitting until a 201.

    Submission is idempotent (campaign id and job keys are content
    addresses), so retrying across the server's death is safe — the
    worst case is a dedup response, which also counts as accepted.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client = discover(directory)  # re-reads server.json: new pid, new port
            results[index] = client.submit_with_retry(spec, timeout=5)
            return
        except (ServeError, OSError):
            time.sleep(0.1)
    results[index] = None


def test_sigkill_drill_loses_nothing_and_matches_batch(tmp_path):
    batch = tmp_path / "batch"
    srv = tmp_path / "srv"

    # the oracle: an undisturbed batch run of the same jobs
    assert main(["campaign", "run", *EXPERIMENTS, "-o", str(batch), "--jobs", "1"]) == 0

    # phase 1: a chaotic server — one seeded server_kill, one worker
    # kill, one torn journal write
    proc = start_server(srv, "--chaos", "seed=7,server_kills=1,kills=1,torn=1")
    wait_for_server(srv, proc)

    # four concurrent clients, overlapping specs (dedup across clients)
    specs = [
        {"name": "c0", "jobs": [EXPERIMENTS[0]]},
        {"name": "c1", "jobs": [EXPERIMENTS[1]]},
        {"name": "c2", "jobs": [EXPERIMENTS[2]]},
        {"name": "c3", "jobs": EXPERIMENTS},  # all three: pure dedup fodder
    ]
    results = [None] * len(specs)
    threads = [
        threading.Thread(target=submit_until_accepted, args=(srv, s, results, i))
        for i, s in enumerate(specs)
    ]
    for t in threads:
        t.start()

    # the server SIGKILLs itself at a lease grant; wait for the corpse
    assert proc.wait(timeout=120) is not None
    assert proc.returncode != 0  # killed, not a clean exit

    # phase 2: restart over the same directory with no --chaos — the
    # persisted plan and durable fired-set reload from SQLite
    proc2 = start_server(srv)
    wait_for_server(srv, proc2)
    for t in threads:
        t.join(timeout=120)
    assert all(r is not None for r in results), "a client never got its 201"

    # drain: the server finishes the backlog, then exits on its own
    assert main(["serve", "drain", "-o", str(srv), "--wait"]) == 0
    assert proc2.wait(timeout=60) == 0

    # zero lost jobs: every accepted job is terminal and done
    manifest = json.loads((srv / "manifest.json").read_text())
    states = {j["job_id"]: j["status"] for j in manifest["jobs"]}
    assert states == {eid: "done" for eid in EXPERIMENTS}

    # the server_kill fired exactly once across both processes
    db_check = subprocess.run(
        [
            sys.executable,
            "-c",
            "import sqlite3,sys;"
            f"c=sqlite3.connect({str(srv / 'serve.db')!r});"
            "print(*[r[0] for r in c.execute('SELECT key FROM chaos_fired')],sep='\\n')",
        ],
        capture_output=True,
        text=True,
        check=True,
    )
    fired = db_check.stdout.split()
    assert sum(1 for k in fired if k.startswith("server_kill:")) == 1

    # duplicates surfaced as cache/dedup, and artifacts are
    # byte-identical to the undisturbed batch run
    for eid in EXPERIMENTS:
        assert filecmp.cmp(batch / f"{eid}.txt", srv / f"{eid}.txt", shallow=False), (
            f"{eid}.txt diverged from the batch run"
        )
