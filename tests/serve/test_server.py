"""CampaignServer: routes, shedding, chaos recovery, live service."""

import json
import time

import pytest

from repro.campaign.cache import cache_key
from repro.chaos import ChaosEvent, ChaosPlan
from repro.cli import main
from repro.serve.protocol import ProtocolError, Request
from repro.serve.server import CampaignServer, ServerConfig
from repro.serve.client import ServeClient


def make_server(tmp_path, **overrides):
    overrides.setdefault("directory", tmp_path / "srv")
    overrides.setdefault("tick_s", 0.02)
    return CampaignServer(ServerConfig(**overrides))


def post_spec(server, jobs, name="camp"):
    body = json.dumps({"name": name, "jobs": jobs}).encode()
    return server._route(Request("POST", "/v1/campaigns", body=body))


def wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


# ---------------------------------------------------------------------------
# routing, no event loop: the dispatcher is off, the ledger still works
# ---------------------------------------------------------------------------
def test_submit_accepts_then_dedupes(tmp_path):
    server = make_server(tmp_path)
    status, doc, _ = post_spec(server, ["table1", "top500"])
    assert status == 201
    assert doc["total"] == 2 and doc["accepted"] == 2 and doc["dedup"] == 0
    again_status, again, _ = post_spec(server, ["table1", "top500"])
    assert again_status == 201
    assert again["campaign"] == doc["campaign"]  # same spec, same address
    assert again["accepted"] == 0 and again["dedup"] == 2
    assert server.store.backlog() == 2


def test_submit_time_cache_hits_skip_the_queue(tmp_path):
    server = make_server(tmp_path)
    key = cache_key("table1", {}, server._fingerprint)
    server.cache.put(key, "cached artifact text", meta={})
    status, doc, _ = post_spec(server, ["table1"])
    assert status == 201
    assert doc["cache"] == 1 and doc["accepted"] == 0
    row = server.store.job(key)
    assert row.state == "done" and row.source == "cache"
    assert (server.directory / "table1.txt").read_text() == "cached artifact text\n"
    assert server.store.backlog() == 0


def test_full_backlog_sheds_with_retry_after(tmp_path):
    server = make_server(tmp_path, max_backlog=1, shed_retry_after=3.0)
    assert post_spec(server, ["table1"])[0] == 201
    status, doc, headers = post_spec(server, ["top500"], name="second")
    assert status == 429
    assert headers["Retry-After"] == "3"
    assert "backlog full" in doc["error"]
    assert server.counters["shed"] == 1
    # nothing of the shed spec was admitted — that is the durability bar
    assert server.store.backlog() == 1


def test_draining_server_refuses_submissions(tmp_path):
    server = make_server(tmp_path)
    status, doc, _ = server._route(Request("POST", "/v1/drain"))
    assert status == 200 and doc["draining"] is True
    status, doc, headers = post_spec(server, ["table1"])
    assert status == 503
    assert "Retry-After" in headers


def test_unknown_routes_and_methods(tmp_path):
    server = make_server(tmp_path)
    with pytest.raises(ProtocolError) as err:
        server._route(Request("GET", "/nope"))
    assert err.value.status == 404
    with pytest.raises(ProtocolError) as err:
        server._route(Request("PUT", "/v1/campaigns"))
    assert err.value.status == 405
    with pytest.raises(ProtocolError) as err:
        server._route(Request("GET", "/v1/jobs/missing"))
    assert err.value.status == 404
    with pytest.raises(ProtocolError) as err:
        server._route(Request("GET", "/v1/jobs/missing/artifact"))
    assert err.value.status == 404


def test_campaign_and_health_docs(tmp_path):
    server = make_server(tmp_path)
    _, doc, _ = post_spec(server, ["table1", "top500"])
    cid = doc["campaign"]
    status, camp, _ = server._route(Request("GET", f"/v1/campaigns/{cid}"))
    assert status == 200
    assert camp["counts"] == {"queued": 2}
    assert camp["done"] is False
    assert [j["job_id"] for j in camp["jobs"]] == ["table1", "top500"]
    _, health, _ = server._route(Request("GET", "/v1/health"))
    assert health["backlog"] == 2 and health["draining"] is False
    _, listing, _ = server._route(Request("GET", "/v1/campaigns"))
    assert listing["campaigns"] == [cid]


def test_campaign_status_json_reports_an_in_flight_campaign(tmp_path):
    """Satellite: ``repro campaign status --json`` against a serve
    directory mid-flight — queued/leased/running are first-class."""
    server = make_server(tmp_path)
    post_spec(server, ["table1", "top500", "lists"])
    leased = server.store.acquire(worker=0, lease_ttl=5.0)
    running = server.store.acquire(worker=1, lease_ttl=5.0)
    server.store.mark_running(running.key, running.lease_token)
    server._write_manifest()
    import io
    from contextlib import redirect_stdout

    out = io.StringIO()
    with redirect_stdout(out):
        rc = main(["campaign", "status", "-o", str(server.directory), "--json"])
    assert rc == 0
    doc = json.loads(out.getvalue())
    assert doc["counts"] == {"leased": 1, "queued": 1, "running": 1}
    by_id = {j["id"]: j["status"] for j in doc["jobs"]}
    assert by_id[leased.job_id] == "leased"
    assert by_id[running.job_id] == "running"


# ---------------------------------------------------------------------------
# live service: background thread, real sockets, real worker pool
# ---------------------------------------------------------------------------
def test_live_submit_complete_and_artifact_roundtrip(tmp_path):
    server = make_server(tmp_path, jobs=2)
    handle = server.start_background()
    try:
        client = ServeClient("127.0.0.1", server.port)
        doc = client.submit({"name": "live", "jobs": ["table1"]})
        assert doc["accepted"] == 1
        final = client.wait(doc["campaign"], timeout=60)
        assert final["done"] is True
        job = final["jobs"][0]
        assert job["state"] == "done" and job["source"] == "computed"
        body = client.artifact(job["key"])
        assert body.decode() == (server.directory / "table1.txt").read_text()
        # resubmission dedupes onto the finished row: nothing re-runs
        again = client.submit({"name": "live", "jobs": ["table1"]})
        assert again["dedup"] == 1 and again["accepted"] == 0
        stats = client.stats()
        assert stats["counters"]["completed"] == 1
    finally:
        handle.stop()


def test_heartbeat_loss_expires_the_lease_and_retries(tmp_path):
    """A lease that stops heartbeating dies of timeout while its worker
    is still running; the late result is discarded as stale and the
    retry produces the artifact."""
    plan = ChaosPlan(
        seed=0,
        events=(
            ChaosEvent(kind="heartbeat_loss", job="table1", attempt=1),
            ChaosEvent(kind="hang", job="table1", attempt=1, seconds=1.5),
        ),
    )
    server = make_server(tmp_path, jobs=1, lease_ttl=0.3, retries=1, chaos=plan)
    handle = server.start_background()
    try:
        client = ServeClient("127.0.0.1", server.port)
        doc = client.submit({"name": "hb", "jobs": ["table1"]})
        final = client.wait(doc["campaign"], timeout=60)
        assert final["done"] is True
        assert final["jobs"][0]["state"] == "done"
        stats = client.stats()
        assert stats["counters"]["chaos_heartbeat_loss"] == 1
        assert stats["counters"]["lease_expiries"] >= 1
        assert stats["counters"]["retries"] >= 1
        assert stats["counters"].get("stale_discards", 0) >= 1
    finally:
        handle.stop()


def test_server_kill_fires_once_and_restart_recovers(tmp_path):
    """The tentpole drill in-process: a server_kill injection stops the
    server at lease-grant (fired key already durable); a fresh server
    over the same directory requeues the lease, never re-fires the
    event, and finishes the campaign."""
    directory = tmp_path / "srv"
    plan = ChaosPlan(
        seed=0, events=(ChaosEvent(kind="server_kill", job="table1", attempt=1),)
    )
    first = CampaignServer(
        ServerConfig(directory=directory, tick_s=0.02, jobs=1, chaos=plan)
    )
    first.config.on_server_kill = first.request_stop  # in-process stand-in
    handle = first.start_background()
    try:
        client = ServeClient("127.0.0.1", first.port)
        doc = client.submit({"name": "drill", "jobs": ["table1"]})
        assert doc["accepted"] == 1
        assert wait_for(lambda: not handle.thread.is_alive(), timeout=30)
    finally:
        handle.stop()
    assert first.counters["chaos_server_kill"] == 1

    # restart: no chaos argument — the persisted plan reloads from SQLite
    second = CampaignServer(ServerConfig(directory=directory, tick_s=0.02, jobs=1))
    assert second.counters["recovered_leases"] == 1
    handle = second.start_background()
    try:
        client = ServeClient("127.0.0.1", second.port)
        final = client.wait(doc["campaign"], timeout=60)
        assert final["done"] is True
        assert final["jobs"][0]["state"] == "done"
        stats = client.stats()
        # the one-shot survived the restart: fired set came from SQLite
        assert stats["counters"].get("chaos_server_kill", 0) == 0
        assert stats["chaos_fired"] == ["server_kill:table1@1"]
    finally:
        handle.stop()


def test_drain_completes_backlog_then_exits(tmp_path):
    server = make_server(tmp_path, jobs=2)
    handle = server.start_background()
    try:
        client = ServeClient("127.0.0.1", server.port)
        doc = client.submit({"name": "drain", "jobs": ["table1", "top500"]})
        drained = client.drain()
        assert drained["draining"] is True
        assert wait_for(lambda: not handle.thread.is_alive(), timeout=60)
    finally:
        handle.stop()
    # the drained server finished everything before exiting
    counts = {
        j["status"]
        for j in json.loads(
            (server.directory / "manifest.json").read_text()
        )["jobs"]
    }
    assert counts == {"done"}
    assert server.store.recover.__self__ is server.store  # store object survives
