"""The durable queue: transactions, fencing tokens, recovery."""

import sqlite3

import pytest

from repro.serve.store import SCHEMA_VERSION, JobStore, StoreError


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def make_store(tmp_path, clock=None):
    return JobStore(tmp_path / "q.db", clock=clock or FakeClock())


def submit_three(store):
    rows = [
        {"key": f"k{i}", "job_id": f"j{i}", "experiment": "e", "params": {"n": i}}
        for i in range(3)
    ]
    return store.submit("cid", "camp", {"jobs": ["e"]}, rows)


def test_submit_is_idempotent_by_key(tmp_path):
    store = make_store(tmp_path)
    assert submit_three(store) == ["accepted"] * 3
    assert submit_three(store) == ["dedup"] * 3
    assert store.counts()["queued"] == 3
    assert store.backlog() == 3


def test_submit_accepts_cache_done_rows(tmp_path):
    store = make_store(tmp_path)
    rows = [
        {
            "key": "k0",
            "job_id": "j0",
            "experiment": "e",
            "params": {},
            "state": "done",
            "source": "cache",
            "digest": "d",
            "artifact": "j0.txt",
        }
    ]
    assert store.submit("c", "n", {}, rows) == ["cache"]
    job = store.job("k0")
    assert job.state == "done" and job.source == "cache"
    assert store.backlog() == 0


def test_acquire_leases_oldest_once_with_unique_tokens(tmp_path):
    store = make_store(tmp_path)
    submit_three(store)
    a = store.acquire(worker=0, lease_ttl=5.0)
    b = store.acquire(worker=1, lease_ttl=5.0)
    assert a.job_id == "j0" and b.job_id == "j1"
    assert a.lease_token != b.lease_token
    assert store.counts()["leased"] == 2
    # the third grant gets the last job; a fourth gets nothing
    assert store.acquire(worker=0, lease_ttl=5.0).job_id == "j2"
    assert store.acquire(worker=0, lease_ttl=5.0) is None


def test_backoff_gates_acquisition(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock)
    submit_three(store)
    job = store.acquire(worker=0, lease_ttl=5.0)
    assert store.requeue_failure(
        job.key, job.lease_token, "transient", "boom", "RuntimeError", delay_s=10.0
    )
    requeued = store.job(job.key)
    assert requeued.state == "queued"
    assert requeued.attempts == 1
    assert requeued.backoff_s == [10.0]
    # j0 is backing off: the next two grants skip to j1, j2
    assert store.acquire(worker=0, lease_ttl=5.0).job_id == "j1"
    assert store.acquire(worker=0, lease_ttl=5.0).job_id == "j2"
    assert store.acquire(worker=0, lease_ttl=5.0) is None
    clock.now += 11.0
    assert store.acquire(worker=0, lease_ttl=5.0).job_id == "j0"


def test_complete_is_fenced_by_token(tmp_path):
    store = make_store(tmp_path)
    submit_three(store)
    job = store.acquire(worker=0, lease_ttl=5.0)
    assert store.complete(job.key, "stale-token", "d", "a.txt") is False
    assert store.job(job.key).state == "leased"
    assert store.complete(job.key, job.lease_token, "d", "a.txt") is True
    done = store.job(job.key)
    assert done.state == "done" and done.digest == "d" and done.attempts == 1
    # a second commit with the spent token is also stale
    assert store.complete(job.key, job.lease_token, "d", "a.txt") is False


def test_heartbeat_extends_and_expiry_fires_without_it(tmp_path):
    clock = FakeClock()
    store = make_store(tmp_path, clock)
    submit_three(store)
    a = store.acquire(worker=0, lease_ttl=5.0)
    b = store.acquire(worker=1, lease_ttl=5.0)
    clock.now += 4.0
    assert store.heartbeat([(a.key, a.lease_token)], lease_ttl=5.0) == 1
    clock.now += 3.0  # a heartbeated at t+4 (deadline t+9); b expired at t+5
    expired = store.expired_leases()
    assert [j.job_id for j in expired] == [b.job_id]


def test_finalize_failure_validates_status(tmp_path):
    store = make_store(tmp_path)
    submit_three(store)
    job = store.acquire(worker=0, lease_ttl=5.0)
    with pytest.raises(StoreError):
        store.finalize_failure(job.key, job.lease_token, "done", "x", "e", "T")
    assert store.finalize_failure(
        job.key, job.lease_token, "quarantined", "poison", "e", "T", add_kill=True
    )
    row = store.job(job.key)
    assert row.state == "quarantined" and row.kills == 1 and row.attempts == 1


def test_release_innocent_consumes_nothing(tmp_path):
    store = make_store(tmp_path)
    submit_three(store)
    job = store.acquire(worker=0, lease_ttl=5.0)
    assert store.release_innocent(job.key, job.lease_token)
    row = store.job(job.key)
    assert row.state == "queued" and row.attempts == 0 and row.backoff_s == []


def test_recover_requeues_every_lease(tmp_path):
    store = make_store(tmp_path)
    submit_three(store)
    a = store.acquire(worker=0, lease_ttl=5.0)
    b = store.acquire(worker=1, lease_ttl=5.0)
    store.mark_running(b.key, b.lease_token)
    store.complete(a.key, a.lease_token, "d", "a.txt")
    store.close()
    # a new process opens the same database
    reopened = JobStore(tmp_path / "q.db", clock=FakeClock())
    assert reopened.recover() == 1  # only b was still leased/running
    counts = reopened.counts()
    assert counts["queued"] == 2 and counts["done"] == 1
    assert reopened.job(b.key).attempts == 0  # a server crash is free


def test_refuses_databases_from_a_newer_schema(tmp_path):
    store = make_store(tmp_path)
    store.close()
    conn = sqlite3.connect(tmp_path / "q.db")
    conn.execute(f"PRAGMA user_version={SCHEMA_VERSION + 1}")
    conn.close()
    with pytest.raises(StoreError, match="newer"):
        make_store(tmp_path)


def test_chaos_fired_and_meta_persist(tmp_path):
    store = make_store(tmp_path)
    store.note_chaos_fired("server_kill:j0@1")
    store.note_chaos_fired("server_kill:j0@1")
    store.set_meta("chaos_plan", "{}")
    store.set_meta("chaos_plan", '{"seed": 1}')
    store.close()
    reopened = JobStore(tmp_path / "q.db", clock=FakeClock())
    assert reopened.chaos_fired_keys() == ["server_kill:j0@1"]
    assert reopened.get_meta("chaos_plan") == '{"seed": 1}'
    assert reopened.get_meta("missing") is None
