"""LeaseManager: the shared failure policy applied to the ledger."""

from repro.campaign.policy import FailurePolicy
from repro.campaign.retry import backoff_delay
from repro.serve.leases import LeaseManager
from repro.serve.store import JobStore


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_manager(tmp_path, clock=None, **policy_kwargs):
    store = JobStore(tmp_path / "q.db", clock=clock or FakeClock())
    policy = FailurePolicy(**policy_kwargs)
    return LeaseManager(store, policy, lease_ttl=5.0), store


def submit_one(store, job_id="j0"):
    store.submit(
        "cid",
        "camp",
        {},
        [{"key": job_id, "job_id": job_id, "experiment": "e", "params": {}}],
    )


def test_success_and_stale_commit(tmp_path):
    manager, store = make_manager(tmp_path)
    submit_one(store)
    job = manager.acquire(worker=0)
    done = manager.settle_success(job, job.lease_token, "digest", "j0.txt")
    assert done.action == "done" and done.applied and done.attempts == 1
    # a second worker's late commit with a lost token is a pure noop
    stale = manager.settle_success(job, "other-token", "digest", "j0.txt")
    assert stale.action == "stale" and not stale.applied
    assert store.job("j0").state == "done"


def test_transient_failure_retries_with_batch_identical_backoff(tmp_path):
    manager, store = make_manager(tmp_path, retries=2, backoff_base=0.05, seed=0)
    submit_one(store)
    job = manager.acquire(worker=0)
    settled = manager.settle_failure(job, job.lease_token, "transient", "boom", "E")
    assert settled.action == "retry"
    # the delay is the exact seeded stream the batch runner would use
    assert settled.delay_s == backoff_delay("j0", 1, base=0.05, cap=2.0, seed=0)
    assert store.job("j0").state == "queued"


def test_budget_failures_never_retry(tmp_path):
    manager, store = make_manager(tmp_path, retries=3)
    submit_one(store)
    job = manager.acquire(worker=0)
    settled = manager.settle_failure(job, job.lease_token, "budget", "over budget", "E")
    assert settled.action == "final"
    assert store.job("j0").state == "failed"
    assert store.job("j0").classification == "budget"


def test_exhausted_retries_finalize(tmp_path):
    manager, store = make_manager(tmp_path, retries=1)
    submit_one(store)
    job = manager.acquire(worker=0)
    first = manager.settle_failure(job, job.lease_token, "transient", "boom", "E")
    assert first.action == "retry"
    store._conn.execute("UPDATE jobs SET not_before=0")  # skip the backoff wait
    store._conn.commit()
    job = manager.acquire(worker=0)
    second = manager.settle_failure(job, job.lease_token, "transient", "boom", "E")
    assert second.action == "final" and second.attempts == 2
    assert store.job("j0").state == "failed"


def test_repeated_kills_quarantine_as_poison(tmp_path):
    manager, store = make_manager(tmp_path, retries=5, quarantine_after=2)
    submit_one(store)
    job = manager.acquire(worker=0)
    first = manager.settle_failure(
        job, job.lease_token, "crash", "killed", "E", add_kill=True
    )
    assert first.action == "retry"
    store._conn.execute("UPDATE jobs SET not_before=0")
    store._conn.commit()
    job = manager.acquire(worker=0)
    second = manager.settle_failure(
        job, job.lease_token, "crash", "killed", "E", add_kill=True
    )
    assert second.action == "quarantine"
    row = store.job("j0")
    assert row.state == "quarantined" and row.classification == "poison"
    assert row.kills == 2


def test_innocent_release_consumes_no_attempt(tmp_path):
    manager, store = make_manager(tmp_path)
    submit_one(store)
    job = manager.acquire(worker=0)
    settled = manager.settle_innocent(job, job.lease_token)
    assert settled.action == "innocent"
    row = store.job("j0")
    assert row.state == "queued" and row.attempts == 0


def test_expiry_sweep_settles_as_timeout(tmp_path):
    clock = FakeClock()
    manager, store = make_manager(tmp_path, clock, retries=0)
    submit_one(store)
    job = manager.acquire(worker=3)
    assert manager.expire() == []  # lease still fresh
    clock.now += 6.0
    settled = manager.expire()
    assert len(settled) == 1
    assert settled[0].classification == "timeout"
    assert "worker slot 3" in store.job(job.key).error
    assert store.job(job.key).state == "failed"  # retries=0 → final
