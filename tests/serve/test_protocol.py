"""The HTTP/1.1 slice: parsing, rendering, and client-side decode."""

import asyncio
import json

import pytest

from repro.serve.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    ServeError,
    json_body,
    read_request,
    render_response,
)


def _parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


def test_parses_a_get_with_query():
    req = _parse(b"GET /v1/jobs/abc?full=1&x=y HTTP/1.1\r\nHost: h\r\n\r\n")
    assert req.method == "GET"
    assert req.path == "/v1/jobs/abc"
    assert req.query == {"full": "1", "x": "y"}
    assert req.headers["host"] == "h"
    assert req.body == b""


def test_parses_a_post_body_by_content_length():
    payload = json.dumps({"jobs": ["table1"]}).encode()
    raw = (
        b"POST /v1/campaigns HTTP/1.1\r\n"
        + f"Content-Length: {len(payload)}\r\n\r\n".encode()
        + payload
    )
    req = _parse(raw)
    assert req.method == "POST"
    assert req.json() == {"jobs": ["table1"]}


def test_clean_eof_is_none():
    assert _parse(b"") is None


def test_malformed_request_line_is_400():
    with pytest.raises(ProtocolError) as err:
        _parse(b"NOT-HTTP\r\n\r\n")
    assert err.value.status == 400


def test_bad_content_length_is_400():
    with pytest.raises(ProtocolError) as err:
        _parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
    assert err.value.status == 400


def test_oversized_body_is_413():
    raw = (
        b"POST / HTTP/1.1\r\n"
        + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
    )
    with pytest.raises(ProtocolError) as err:
        _parse(raw)
    assert err.value.status == 413


def test_truncated_body_is_400():
    with pytest.raises(ProtocolError) as err:
        _parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
    assert err.value.status == 400


def test_non_json_body_raises_on_json():
    req = _parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{")
    with pytest.raises(ProtocolError) as err:
        req.json()
    assert err.value.status == 400


def test_render_json_is_sorted_and_closes():
    raw = render_response(200, {"b": 1, "a": 2})
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"Connection: close" in head
    assert b"Content-Type: application/json" in head
    assert json.loads(body) == {"a": 2, "b": 1}
    assert body.index(b'"a"') < body.index(b'"b"')


def test_render_str_and_bytes_and_headers():
    raw = render_response(200, "hello", headers={"Retry-After": "1"})
    assert b"text/plain" in raw
    assert b"Retry-After: 1" in raw
    assert raw.endswith(b"hello")
    raw = render_response(200, b"\x00\x01", content_type="application/octet-stream")
    assert raw.endswith(b"\x00\x01")


def test_json_body_decodes_and_raises_with_retry_after():
    status, doc, _ = json_body(
        200, {"content-type": "application/json"}, b'{"ok": true}'
    )
    assert status == 200 and doc == {"ok": True}
    with pytest.raises(ServeError) as err:
        json_body(
            429,
            {"content-type": "application/json", "retry-after": "2.5"},
            b'{"error": "backlog full"}',
        )
    assert err.value.status == 429
    assert err.value.retry_after == 2.5
    assert "backlog full" in err.value.message
