"""The ``repro faults`` subcommand and --param plumbing."""

import json

import pytest

from repro.cli import main
from repro.faults.scenarios import fault_scenario_ids, run_fault_scenario


def test_faults_list(capsys):
    assert main(["faults", "--list"]) == 0
    out = capsys.readouterr().out
    for sid in fault_scenario_ids():
        assert sid in out


def test_faults_requires_scenario(capsys):
    assert main(["faults"]) == 2
    assert "scenario id" in capsys.readouterr().err


def test_faults_unknown_scenario_exits_2(capsys):
    assert main(["faults", "nope"]) == 2
    assert "unknown fault scenario" in capsys.readouterr().err


def test_faults_bad_param_exits_2(capsys):
    assert main(["faults", "mtbf", "--param", "seed"]) == 2
    assert "malformed --param" in capsys.readouterr().err


def test_faults_non_numeric_param_exits_2(capsys):
    assert main(["faults", "mtbf", "--param", "seed=abc"]) == 2
    assert "non-numeric" in capsys.readouterr().err


def test_faults_unsupported_param_exits_2(capsys):
    assert main(["faults", "mtbf", "--param", "bogus=1"]) == 2
    assert "does not take parameter" in capsys.readouterr().err


def test_faults_mtbf_scenario_runs(capsys):
    assert main(["faults", "mtbf", "--param", "seed=9"]) == 0
    assert "mtbf plan" in capsys.readouterr().out


def test_faults_link_kill_writes_trace(tmp_path, capsys):
    out = tmp_path / "lk.trace.json"
    metrics = tmp_path / "lk.metrics.json"
    assert main(
        ["faults", "link-kill", "-o", str(out), "--metrics", str(metrics)]
    ) == 0
    stdout = capsys.readouterr().out
    assert "drop(s)" in stdout and "reroute(s)" in stdout
    doc = json.loads(out.read_text())
    assert any(ev.get("cat") == "fault" for ev in doc["traceEvents"])
    json.loads(metrics.read_text())


def test_link_kill_traces_are_byte_identical():
    def trace_bytes():
        from repro.obs import chrome_trace_json

        tracer, _line = run_fault_scenario("link-kill", rounds=4)
        return chrome_trace_json(tracer)

    assert trace_bytes() == trace_bytes()


def test_noretry_scenario_reports_fault_error(capsys):
    assert main(["faults", "link-kill-noretry"]) == 0
    out = capsys.readouterr().out
    assert "FaultError as intended" in out
    assert "failed link" in out


def test_run_experiment_rejects_unknown_param():
    from repro.core.evaluation import run_experiment

    with pytest.raises(KeyError, match="does not take parameter"):
        run_experiment("table1", junk=3)


def test_trace_param_flows_to_scenario(capsys):
    assert main(["trace", "pingpong", "--param", "nbytes=bad"]) == 2
    assert "non-numeric" in capsys.readouterr().err
