"""The deadlock sanitizer names the (missing or active) recovery policy.

A node failure with no recovery armed leaves peers blocked forever; the
sanitizer must say so and point at ``RecoveryPolicy``.  With a runtime
active, the remaining way to hang is a rank that finished (or never
joined) before the failure and so cannot take part in the survivors'
agreement — the note must name the active policy instead.
"""

import pytest

from repro.faults import FaultPlan, NodeFail
from repro.lint import DeadlockError
from repro.machines import BGP
from repro.recovery import RankFailedError, RecoveryPolicy
from repro.simmpi import Cluster

RANKS = 4


def _kill(cluster, rank, time):
    return FaultPlan(
        (NodeFail(time=time, node=cluster.mapping.node_of(rank)),)
    )


def test_node_failure_without_policy_names_missing_policy():
    cluster = Cluster(BGP, ranks=RANKS, mode="SMP")

    def program(comm):
        if comm.rank == 3:
            # Finishes before the kill: never errors, never answers.
            yield from comm.compute(seconds=0.2)
            return "early"
        yield from comm.compute(seconds=1.0)
        yield from comm.recv(src=3, tag=7)
        return "unreachable"

    with pytest.raises(DeadlockError) as info:
        cluster.run(
            program, faults=_kill(cluster, 3, 0.5), sanitize=True
        )
    text = str(info.value)
    assert "no RecoveryPolicy active" in text
    assert "RankFailedError" in text


def test_finished_rank_blocks_agreement_names_active_policy():
    cluster = Cluster(BGP, ranks=RANKS, mode="SMP")
    policy = RecoveryPolicy(mode="shrink")

    def program(comm):
        if comm.rank == 0:
            # Finished before the failure: cannot join the agreement.
            yield from comm.compute(seconds=0.1)
            return "early"
        if comm.rank == 3:
            yield from comm.compute(seconds=5.0)
            return "victim"
        try:
            yield from comm.compute(seconds=0.3)
            yield from comm.recv(src=3, tag=7)
        except RankFailedError:
            yield from comm.agree()
        return "unreachable"

    with pytest.raises(DeadlockError) as info:
        cluster.run(
            program, recovery=policy, faults=_kill(cluster, 3, 0.5),
            sanitize=True,
        )
    text = str(info.value)
    assert "recovery runtime was active" in text
    assert policy.describe() in text
    assert "finished (or never joined) before the failure" in text
