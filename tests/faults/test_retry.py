"""MPI reliability protocol: ack/timeout/retransmit and FaultError."""

import pytest

from repro.faults import FaultError, FaultPlan, LinkDrop
from repro.lint.sanitizer import DeadlockError
from repro.machines import BGP
from repro.simmpi import Cluster, ReliabilityPolicy

LINK = ((0, 0, 0), (1, 0, 0))


def send_once(nbytes):
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes, tag=0)
        elif comm.rank == 1:
            yield from comm.recv(src=0, tag=0)
        return comm.now

    return program


def test_policy_validation():
    with pytest.raises(ValueError):
        ReliabilityPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        ReliabilityPolicy(backoff=0.5)
    with pytest.raises(ValueError):
        ReliabilityPolicy(ack_timeout=-1.0)


def test_eager_drop_is_retransmitted():
    cluster = Cluster(BGP, ranks=8, mode="SMP", reliability=ReliabilityPolicy())
    plan = FaultPlan((LinkDrop(time=0.0, link=LINK, count=1),))
    result = cluster.run(send_once(512), faults=plan)  # eager (<= 1200 B)
    assert result.faults.drops == 1
    assert result.faults.retries == 1
    assert result.faults.fault_kills == 0


def test_rendezvous_drop_is_retransmitted():
    cluster = Cluster(BGP, ranks=8, mode="SMP", reliability=ReliabilityPolicy())
    plan = FaultPlan((LinkDrop(time=0.0, link=LINK, count=1),))
    result = cluster.run(send_once(1 << 16), faults=plan)  # rendezvous
    assert result.faults.drops == 1
    assert result.faults.retries == 1


def test_retries_add_latency():
    clean = Cluster(BGP, ranks=8, mode="SMP", reliability=ReliabilityPolicy())
    base = clean.run(send_once(512)).elapsed
    faulted = Cluster(BGP, ranks=8, mode="SMP", reliability=ReliabilityPolicy())
    plan = FaultPlan((LinkDrop(time=0.0, link=LINK, count=2),))
    slow = faulted.run(send_once(512), faults=plan).elapsed
    assert slow > base


def test_exhausted_retries_raise_fault_error_eager():
    cluster = Cluster(
        BGP, ranks=8, mode="SMP",
        reliability=ReliabilityPolicy(max_retries=1),
    )
    plan = FaultPlan((LinkDrop(time=0.0, link=LINK, count=10),))
    with pytest.raises(FaultError) as exc:
        cluster.run(send_once(512), faults=plan)
    err = exc.value
    assert err.src == 0 and err.dst == 1
    assert err.link == LINK
    assert err.attempts == 1
    assert "lost at failed link" in str(err)


def test_exhausted_retries_raise_fault_error_rendezvous():
    cluster = Cluster(
        BGP, ranks=8, mode="SMP",
        reliability=ReliabilityPolicy(max_retries=0),
    )
    # A link that fails *before* booking just gets routed around, so
    # force the loss with corruption drops instead.
    plan = FaultPlan((LinkDrop(time=0.0, link=LINK, count=10),))
    with pytest.raises(FaultError):
        cluster.run(send_once(1 << 16), faults=plan)


def test_no_reliability_lost_message_hangs_as_fault_kill():
    cluster = Cluster(BGP, ranks=8, mode="SMP")  # no reliability
    plan = FaultPlan((LinkDrop(time=0.0, link=LINK, count=1),))
    with pytest.raises(DeadlockError) as exc:
        cluster.run(send_once(512), faults=plan, sanitize=True)
    # The sanitizer attributes the hang to the fault, not the app.
    assert "fault-kill" in str(exc.value)
    assert exc.value.report.fault_note


def test_intranode_sends_never_drop():
    # VN mode: ranks 0..3 share node (0,0,0); shm transfers skip the net.
    cluster = Cluster(
        BGP, ranks=4, mode="VN", reliability=ReliabilityPolicy()
    )
    plan = FaultPlan((LinkDrop(time=0.0, link=LINK, count=5),))
    result = cluster.run(send_once(512), faults=plan)
    assert result.faults.drops == 0


def test_reliability_without_faults_changes_nothing_fatal():
    cluster = Cluster(BGP, ranks=8, mode="SMP", reliability=ReliabilityPolicy())
    result = cluster.run(send_once(1 << 16))
    assert result.faults is None
    assert result.elapsed > 0
