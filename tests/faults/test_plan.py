"""FaultPlan construction, ordering, validation, MTBF draws."""

import pytest

from repro.faults import (
    FaultPlan,
    LinkDegrade,
    LinkDrop,
    LinkFail,
    NodeFail,
)
from repro.machines import BGP, FaultSpec


A = ((0, 0, 0), (1, 0, 0))
B = ((1, 0, 0), (2, 0, 0))


def test_events_sorted_by_time():
    plan = FaultPlan(
        (
            LinkFail(time=2.0, link=A),
            NodeFail(time=0.5, node=(1, 1, 1)),
            LinkDegrade(time=1.0, link=B, factor=0.5),
        )
    )
    assert [e.time for e in plan] == [0.5, 1.0, 2.0]
    assert len(plan) == 3 and not plan.empty


def test_equal_time_ordering_is_deterministic():
    events = (
        NodeFail(time=1.0, node=(0, 0, 0)),
        LinkFail(time=1.0, link=A),
        LinkDrop(time=1.0, link=B),
        LinkDegrade(time=1.0, link=A, factor=0.5),
    )
    a = tuple(FaultPlan(events))
    b = tuple(FaultPlan(tuple(reversed(events))))
    assert a == b
    # degrade < drop < link-fail < node-fail at equal times
    assert [type(e).__name__ for e in a] == [
        "LinkDegrade", "LinkDrop", "LinkFail", "NodeFail",
    ]


def test_extended_merges_and_resorts():
    plan = FaultPlan((LinkFail(time=5.0, link=A),))
    plan2 = plan.extended([NodeFail(time=1.0, node=(0, 0, 0))])
    assert len(plan) == 1  # original untouched
    assert [e.time for e in plan2] == [1.0, 5.0]


def test_event_validation():
    with pytest.raises(ValueError):
        LinkFail(time=-1.0, link=A)
    with pytest.raises(ValueError):
        LinkDegrade(time=0.0, link=A, factor=0.0)
    with pytest.raises(ValueError):
        LinkDegrade(time=0.0, link=A, factor=1.5)
    with pytest.raises(ValueError):
        LinkDegrade(time=0.0, link=A, factor=0.5, duration=0.0)
    with pytest.raises(ValueError):
        LinkDrop(time=0.0, link=A, count=0)


def test_from_mtbf_is_seed_reproducible():
    kwargs = dict(
        shape=(4, 4, 4),
        duration=100.0,
        node_mtbf_seconds=500.0,
        link_mtbf_seconds=300.0,
    )
    a = FaultPlan.from_mtbf(seed=11, **kwargs)
    b = FaultPlan.from_mtbf(seed=11, **kwargs)
    c = FaultPlan.from_mtbf(seed=12, **kwargs)
    assert tuple(a) == tuple(b)
    assert tuple(a) != tuple(c)
    assert len(a) > 0
    assert all(e.time < 100.0 for e in a)


def test_from_mtbf_zero_rates_empty():
    plan = FaultPlan.from_mtbf((2, 2, 2), duration=10.0, seed=1)
    assert plan.empty


def test_for_machine_uses_fault_spec():
    plan = FaultPlan.for_machine(
        BGP, (4, 4, 4), duration=3600.0, seed=3, acceleration=5.0e5
    )
    assert len(plan) > 0
    with pytest.raises(ValueError):
        FaultPlan.for_machine(BGP, (4, 4, 4), 10.0, acceleration=0.0)


def test_fault_spec_validation_and_system_mtbf():
    spec = FaultSpec(node_mtbf_hours=1000.0)
    assert spec.system_mtbf_seconds(1000) == pytest.approx(3600.0)
    with pytest.raises(ValueError):
        FaultSpec(node_mtbf_hours=0.0)
    with pytest.raises(ValueError):
        spec.system_mtbf_seconds(0)
