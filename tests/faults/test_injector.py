"""FaultInjector mechanics: torus state, drops, stats, determinism."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkDegrade,
    LinkDrop,
    LinkFail,
    NodeFail,
)
from repro.machines import BGP
from repro.simmpi import Cluster, ReliabilityPolicy

LINK = ((0, 0, 0), (1, 0, 0))


def ring_program(repeats=4, nbytes=512):
    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for rep in range(repeats):
            req = comm.irecv(src=left, tag=rep)
            yield from comm.send(right, nbytes, tag=rep)
            yield from comm.wait(req)
        return comm.now

    return program


def test_injector_applies_link_fail_to_torus():
    cluster = Cluster(BGP, ranks=8, mode="SMP")
    plan = FaultPlan((LinkFail(time=0.0, link=LINK),))
    result = cluster.run(ring_program(), faults=plan)
    torus = cluster.torus
    assert LINK in torus.failed_links
    assert (LINK[1], LINK[0]) in torus.failed_links
    assert result.faults.failed_links == 2


def test_injector_node_fail_kills_incident_links():
    def quiet(comm):
        # No traffic: a dead node would sever any route that touches it.
        yield comm.env.timeout(1.0)
        return comm.now

    cluster = Cluster(BGP, ranks=8, mode="SMP")
    plan = FaultPlan((NodeFail(time=0.0, node=(0, 0, 0)),))
    cluster.run(quiet, faults=plan)
    torus = cluster.torus
    assert (0, 0, 0) in torus.failed_nodes
    for nbr in torus.neighbors((0, 0, 0)):
        assert ((0, 0, 0), nbr) in torus.failed_links
        assert (nbr, (0, 0, 0)) in torus.failed_links


def test_degrade_and_restore_bandwidth():
    cluster = Cluster(BGP, ranks=8, mode="SMP")
    healthy = Cluster(BGP, ranks=8, mode="SMP").run(ring_program()).elapsed
    plan = FaultPlan(
        (LinkDegrade(time=0.0, link=LINK, factor=0.1, duration=healthy / 2),)
    )
    result = cluster.run(ring_program(), faults=plan)
    # Derated bandwidth slows the run; the restore event fires mid-run.
    assert result.elapsed > healthy
    spec_bw = cluster.torus.spec.link_bandwidth
    assert cluster.torus.links[cluster.torus.link_key(*LINK)].bandwidth == spec_bw
    assert result.faults.degraded_links == 1


def test_link_drop_consumes_messages():
    cluster = Cluster(
        BGP, ranks=8, mode="SMP", reliability=ReliabilityPolicy()
    )
    # Rank 0 -> rank 1 crosses the +X link out of (0,0,0) first.
    plan = FaultPlan((LinkDrop(time=0.0, link=LINK, count=2),))
    result = cluster.run(ring_program(), faults=plan)
    assert result.faults.drops == 2
    assert result.faults.retries == 2


def test_injector_is_single_use():
    injector = FaultInjector(FaultPlan())
    injector.attach(Cluster(BGP, ranks=8, mode="SMP"))
    with pytest.raises(RuntimeError, match="single-use"):
        injector.attach(Cluster(BGP, ranks=8, mode="SMP"))


def test_faulted_run_is_deterministic():
    def one():
        cluster = Cluster(
            BGP, ranks=64, mode="SMP", reliability=ReliabilityPolicy()
        )
        probe = Cluster(BGP, ranks=64, mode="SMP").run(ring_program()).elapsed

        plan = FaultPlan((LinkFail(time=probe * 0.4, link=LINK),))
        result = cluster.run(ring_program(), faults=plan)
        s = result.faults
        return (result.elapsed, s.drops, s.retries, s.reroutes)

    assert one() == one()


def test_reroutes_counted_on_detour():
    cluster = Cluster(BGP, ranks=64, mode="SMP")
    plan = FaultPlan((LinkFail(time=0.0, link=LINK),))
    result = cluster.run(ring_program(repeats=2), faults=plan)
    # Traffic from (0,0,0) to (1,0,0) must detour around the dead link.
    assert result.faults.reroutes > 0
    assert result.faults.drops == 0  # failed before any booking


def test_cluster_result_faults_none_without_plan():
    result = Cluster(BGP, ranks=8, mode="SMP").run(ring_program(repeats=1))
    assert result.faults is None
