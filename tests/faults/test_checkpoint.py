"""Young/Daly checkpoint model and app-replay integration."""

import math

import pytest

from repro.faults import CheckpointModel
from repro.machines import BGP, XT4_QC


def test_optimal_interval_matches_daly():
    m = CheckpointModel(
        mtbf_seconds=86400.0, checkpoint_seconds=600.0, restart_seconds=900.0
    )
    expected = math.sqrt(2 * 600.0 * 86400.0) - 600.0
    assert m.optimal_interval() == pytest.approx(expected)


def test_degenerate_interval_floors_at_checkpoint_cost():
    m = CheckpointModel(
        mtbf_seconds=10.0, checkpoint_seconds=600.0, restart_seconds=0.0
    )
    assert m.optimal_interval() == pytest.approx(600.0)


def test_expected_runtime_exceeds_work_and_shrinks_with_mtbf():
    frail = CheckpointModel(
        mtbf_seconds=3600.0, checkpoint_seconds=60.0, restart_seconds=120.0
    )
    sturdy = CheckpointModel(
        mtbf_seconds=36000.0, checkpoint_seconds=60.0, restart_seconds=120.0
    )
    work = 24 * 3600.0
    assert frail.expected_runtime(work) > work
    assert sturdy.expected_runtime(work) < frail.expected_runtime(work)
    assert sturdy.inflation(work) > 1.0


def test_optimal_interval_beats_bad_intervals():
    m = CheckpointModel(
        mtbf_seconds=7200.0, checkpoint_seconds=120.0, restart_seconds=300.0
    )
    work = 12 * 3600.0
    best = m.expected_runtime(work)
    assert best <= m.expected_runtime(work, interval=m.optimal_interval() / 8)
    assert best <= m.expected_runtime(work, interval=m.optimal_interval() * 8)


def test_from_machine_bgp_uses_io_forwarding_path():
    m = CheckpointModel.from_machine(BGP, 4096)
    # 4096 nodes * 2 GB * 0.5 through a ~5-10 GB/s path: minutes.
    assert 60.0 < m.checkpoint_seconds < 3600.0
    assert m.mtbf_seconds == pytest.approx(
        BGP.faults.node_mtbf_hours * 3600.0 / 4096
    )
    assert m.restart_seconds > m.checkpoint_seconds


def test_from_machine_xt_uses_filesystem_directly():
    m = CheckpointModel.from_machine(XT4_QC, 4096)
    assert m.checkpoint_seconds > 0
    # XT4/QC: 8 GB/node, lower node MTBF than BG/P -> worse inflation.
    b = CheckpointModel.from_machine(BGP, 4096)
    assert m.inflation(86400.0) > b.inflation(86400.0)


def test_from_machine_validation():
    with pytest.raises(ValueError):
        CheckpointModel.from_machine(BGP, 0)
    with pytest.raises(ValueError):
        CheckpointModel.from_machine(BGP, 64, memory_fraction=0.0)
    with pytest.raises(ValueError):
        CheckpointModel(mtbf_seconds=0.0, checkpoint_seconds=1.0, restart_seconds=0.0)


def test_pop_checkpointed_walltime_two_machines():
    from repro.apps.pop.des_replay import checkpointed_walltime
    from repro.apps.pop.grid import PopGrid

    grid = PopGrid(nx=120, ny=80, levels=8)
    reports = [
        checkpointed_walltime(
            machine, processes=4, grid=grid, simdays=30.0, system_nodes=4096
        )
        for machine in (BGP, XT4_QC)
    ]
    for rep in reports:
        assert rep.expected_seconds > rep.work_seconds
        assert rep.inflation > 1.0
        assert str(rep.system_nodes) in rep.format()
    assert reports[0].machine != reports[1].machine


def test_s3d_checkpointed_walltime():
    from repro.apps.s3d.des_replay import checkpointed_walltime

    expected, inflation = checkpointed_walltime(
        BGP, processes=4, edge=20, campaign_steps=1000, system_nodes=4096
    )
    assert expected > 0
    assert inflation > 1.0
