"""Process backend: one worker per shard, identical to inline/single."""

import pytest

from repro.pdes.runner import run


def test_process_backend_matches_single_engine():
    ref = run("torus-ring", shards=1)
    proc = run("torus-ring", shards=2, backend="process")
    assert proc.backend == "process"
    assert proc.conflicts == []
    assert proc.trace_json == ref.trace_json
    assert proc.metrics_json == ref.metrics_json
    assert proc.events_jsonl == ref.events_jsonl
    assert proc.returns == ref.returns
    assert proc.elapsed == ref.elapsed


def test_process_backend_matches_inline_backend():
    inline = run("torus-ring", shards=4)
    proc = run("torus-ring", shards=4, backend="process")
    assert proc.trace_json == inline.trace_json
    assert proc.stats.rounds == inline.stats.rounds
    assert proc.stats.boundary_events == inline.stats.boundary_events


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown pdes backend"):
        run("torus-ring", shards=2, backend="threads")


def test_unknown_scenario_rejected():
    with pytest.raises(KeyError, match="unknown pdes scenario"):
        run("no-such-scenario")


def test_unknown_param_rejected():
    with pytest.raises(KeyError, match="does not take parameter"):
        run("torus-ring", params={"bogus": 1})
