"""pdes suite configuration: opt-in sanitized runs.

Mirrors ``tests/simmpi/conftest.py``: ``REPRO_SANITIZE=1`` forces the
simulation sanitizer onto every ``Cluster.run`` — the byte-identity
tests still pass because the sanitizer leaves canonical artifacts
untouched, and the reference (single-engine) path is exercised with it
armed.  Tests that assert the ambient sharded path actually *engages*
opt out with ``@pytest.mark.no_sanitize``: an armed sanitizer is a
documented fallback trigger, so under it those runs would (correctly)
fall back to one engine.
"""

import os

import pytest


@pytest.fixture(autouse=True)
def _sanitize_when_requested(request):
    if os.environ.get("REPRO_SANITIZE") and "no_sanitize" not in request.keywords:
        request.getfixturevalue("sanitize_runs")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "no_sanitize: skip the REPRO_SANITIZE autouse sanitizer"
    )
