"""Shard planning: slab decomposition, rank ownership, derived seeds."""

import pytest

from repro.machines import get_machine
from repro.pdes.backend import shard_seed
from repro.pdes.plan import ShardPlan
from repro.simengine import DEFAULT_SEED, derive_seed
from repro.topology import slab_axis, slab_extents, shard_nodes, shard_of_node


def test_slab_axis_longest_dimension_z_most_tie_break():
    assert slab_axis((4, 8, 2)) == 1
    assert slab_axis((8, 8, 8)) == 2  # tie -> highest axis
    assert slab_axis((16, 4, 16)) == 2


def test_slab_extents_cover_and_balance():
    cuts = slab_extents(10, 4)
    assert cuts[0][0] == 0 and cuts[-1][1] == 10
    sizes = [stop - start for start, stop in cuts]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1
    # contiguous, no overlap
    for (_, stop), (start, _) in zip(cuts, cuts[1:]):
        assert stop == start


def test_shard_nodes_partitions_the_torus():
    shape = (4, 4, 4)
    groups = shard_nodes(shape, 4)
    seen = set()
    for shard, nodes in enumerate(groups):
        for node in nodes:
            assert shard_of_node(node, shape, 4) == shard
            seen.add(node)
    assert len(seen) == 64


def test_plan_owns_every_rank_exactly_once():
    plan = ShardPlan.build(get_machine("BGP"), 64, 4)
    owned = [r for s in range(plan.shards) for r in plan.owned_ranks(s)]
    assert sorted(owned) == list(range(64))
    for shard in range(plan.shards):
        for rank in plan.owned_ranks(shard):
            assert plan.shard_of_rank(rank) == shard


def test_plan_lookahead_is_machine_latency():
    machine = get_machine("BGP")
    plan = ShardPlan.build(machine, 16, 2)
    assert plan.lookahead == machine.mpi.latency
    assert plan.lookahead > 0.0


def test_plan_rejects_oversplit():
    with pytest.raises(ValueError, match="slabs"):
        ShardPlan.build(get_machine("BGP"), 16, 64)


def test_plan_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        ShardPlan.build(get_machine("BGP"), 16, 0)


def test_derive_seed_deterministic_and_distinct():
    assert derive_seed(DEFAULT_SEED, "pdes-shard", 0) == shard_seed(0)
    seeds = {shard_seed(s) for s in range(16)}
    assert len(seeds) == 16  # sha256 derivation: no collisions, no order
    assert all(0 <= s < 2 ** 64 for s in seeds)
