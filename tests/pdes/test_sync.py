"""Conservative synchronizer: accounting, progress, deadlock detection."""

import pytest

from repro.machines import get_machine
from repro.pdes.backend import InlineBackend
from repro.pdes.errors import ShardDeadlockError, ShardUnsupportedError
from repro.pdes.plan import ShardPlan
from repro.pdes.shard import ShardCluster, ShardRuntime
from repro.pdes.sync import drive, PdesStats


def _ring(comm, nbytes, repeats):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    for rep in range(repeats):
        req = comm.irecv(src=left, tag=rep)
        yield from comm.send(right, nbytes=nbytes, tag=rep)
        yield from comm.wait(req)
    return comm.now


def _drive(program, args, shards=2, ranks=16):
    plan = ShardPlan.build(get_machine("BGP"), ranks, shards)
    backend = InlineBackend(
        [ShardRuntime(plan, s, program, args) for s in range(shards)]
    )
    stats = drive(backend, plan, PdesStats())
    return plan, backend, stats


def test_null_message_accounting():
    _plan, _backend, stats = _drive(_ring, (4096, 2))
    assert stats.shards == 2
    assert stats.rounds > 0
    # one floor announcement per shard per round, by definition
    assert stats.null_messages == stats.rounds * stats.shards
    assert stats.engine_steps > 0
    assert stats.boundary_events > 0


def test_stats_dict_and_summary_expose_counters():
    _plan, _backend, stats = _drive(_ring, (4096, 2))
    d = stats.as_dict()
    assert d["pdes.null_messages"] == stats.null_messages
    assert d["pdes.stalls"] == stats.stalls
    text = "\n".join(stats.summary_lines())
    assert "pdes.null_messages" in text
    assert "pdes.stalls" in text


def test_deadlocked_workload_raises():
    def stuck(comm):
        if comm.rank == 0:
            # waits for a message nobody sends
            req = comm.irecv(src=1, tag=99)
            yield from comm.wait(req)
        return comm.now

    with pytest.raises(ShardDeadlockError) as err:
        _drive(stuck, ())
    assert "rank(s) waiting" in str(err.value)


def test_hardware_collectives_are_rejected():
    plan = ShardPlan.build(get_machine("BGP"), 16, 2)
    cluster = ShardCluster(plan, 0)
    with pytest.raises(ShardUnsupportedError, match="hardware collective"):
        cluster._next_sync(0, "allreduce")
