"""CLI surface: ``repro pdes list/run`` and ``repro run --shards``."""

import filecmp

import pytest

from repro.cli import main
from repro.pdes.scenarios import scenario_ids


def test_pdes_list(capsys):
    assert main(["pdes", "list"]) == 0
    out = capsys.readouterr().out
    for sid in scenario_ids():
        assert sid in out


def test_pdes_run_prints_sync_counters(capsys):
    assert main(["pdes", "run", "torus-ring", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "pdes.null_messages" in out
    assert "pdes.stalls" in out
    assert "pdes.link_conflicts" in out
    assert "shards=2" in out


def test_pdes_run_writes_cmp_identical_artifacts(tmp_path, capsys):
    outdir = str(tmp_path)
    assert main(["pdes", "run", "torus-ring", "-o", outdir]) == 0
    assert main(["pdes", "run", "torus-ring", "--shards", "2", "-o", outdir]) == 0
    capsys.readouterr()
    for suffix in ("trace.json", "metrics.json", "events.jsonl"):
        ref = tmp_path / f"torus-ring.s1.{suffix}"
        new = tmp_path / f"torus-ring.s2.{suffix}"
        assert ref.exists() and new.exists()
        assert filecmp.cmp(ref, new, shallow=False), suffix


def test_pdes_run_unknown_scenario(capsys):
    assert main(["pdes", "run", "nope"]) == 2
    assert "unknown pdes scenario" in capsys.readouterr().err


def test_pdes_run_bad_param(capsys):
    assert main(["pdes", "run", "torus-ring", "--param", "bogus=1"]) == 2
    assert "does not take parameter" in capsys.readouterr().err


def test_pdes_run_bare_skips_artifacts(tmp_path, capsys):
    assert main(
        ["pdes", "run", "torus-ring", "--shards", "2", "--bare",
         "-o", str(tmp_path)]
    ) == 0
    err = capsys.readouterr().err
    assert "--bare records no artifacts" in err
    assert list(tmp_path.iterdir()) == []


def test_run_shards_flag_reports_policy(capsys):
    assert main(["run", "table3", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "ambient sharding x2" in out


def test_run_shards_flag_validated(capsys):
    assert main(["run", "table3", "--shards", "0"]) == 2
    assert "--shards must be >= 1" in capsys.readouterr().err
