"""Link-conflict validation: wire sharing across the cut is detected.

Nearest-neighbour traffic keeps each directed wire private to one
sender, so replicated booking reproduces the single engine exactly.
Long-distance exchange patterns (recursive doubling) book the same
wires from both sides of the slab cut; each replica then serializes
only its own traffic and the global per-link timeline the merge
rebuilds is inconsistent — the validator must catch that, and the
strict entry points must refuse to certify the run.
"""

import pytest

from repro.machines import get_machine
from repro.pdes.backend import InlineBackend
from repro.pdes.errors import LinkConflictError, PdesError
from repro.pdes.merge import find_link_conflicts
from repro.pdes.plan import ShardPlan
from repro.pdes.shard import ShardRuntime
from repro.pdes.sync import drive, PdesStats


def _rd_exchange(comm, nbytes, steps):
    """Recursive-doubling pairwise exchange: long-distance by design."""
    for step in range(steps):
        peer = comm.rank ^ (1 << step)
        if peer < comm.size:
            req = comm.irecv(src=peer, tag=step)
            yield from comm.send(peer, nbytes=nbytes, tag=step)
            yield from comm.wait(req)
    return comm.now


def _sharded_reports(program, args, shards=2, ranks=16):
    plan = ShardPlan.build(get_machine("BGP"), ranks, shards)
    backend = InlineBackend(
        [ShardRuntime(plan, s, program, args) for s in range(shards)]
    )
    drive(backend, plan, PdesStats())
    return backend.reports()


def test_long_distance_pattern_produces_conflicts():
    reports = _sharded_reports(_rd_exchange, (1 << 16, 4))
    conflicts = find_link_conflicts(reports)
    assert conflicts
    # either flavour proves wire sharing across the cut: a booking that
    # contradicts the rebuilt global horizon, or two shards reserving
    # the same wire at the same sim time (order-ambiguous)
    assert all("link" in c for c in conflicts)
    assert any(
        "inconsistent with global horizon" in c or "order-ambiguous" in c
        for c in conflicts
    )


def test_nearest_neighbour_pattern_is_conflict_free():
    def ring(comm, nbytes, repeats):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for rep in range(repeats):
            req = comm.irecv(src=left, tag=rep)
            yield from comm.send(right, nbytes=nbytes, tag=rep)
            yield from comm.wait(req)
        return comm.now

    assert find_link_conflicts(_sharded_reports(ring, (1 << 16, 4))) == []


def test_link_conflict_error_is_a_pdes_error():
    err = LinkConflictError(["link a->b: whatever"])
    assert isinstance(err, PdesError)
    assert "a->b" in str(err)
