"""Byte identity: sharded runs reproduce the single engine exactly.

The acceptance drill of the sharded engine: canonical Chrome traces,
metrics documents, and per-send event streams written by 2/4/8-shard
runs must be ``cmp``-identical (``filecmp`` with content comparison)
to the genuine single-engine run's — not merely equivalent.
"""

import filecmp

import pytest

from repro.pdes.runner import run

ARTIFACTS = ("trace_json", "metrics_json", "events_jsonl")


def _write_artifacts(tmp_path, result, tag):
    paths = []
    for attr in ARTIFACTS:
        path = tmp_path / f"{tag}.{attr}"
        path.write_text(getattr(result, attr))
        paths.append(path)
    return paths


@pytest.mark.parametrize("scenario", ["torus-ring", "allreduce"])
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_artifacts_cmp_identical(tmp_path, scenario, shards):
    ref = run(scenario, shards=1)
    sharded = run(scenario, shards=shards)
    assert sharded.conflicts == []
    assert sharded.stats.shards == shards
    assert sharded.stats.rounds > 0
    assert sharded.stats.boundary_events > 0
    for ref_path, new_path in zip(
        _write_artifacts(tmp_path, ref, "s1"),
        _write_artifacts(tmp_path, sharded, f"s{shards}"),
    ):
        assert filecmp.cmp(ref_path, new_path, shallow=False), ref_path.name
    assert sharded.returns == ref.returns
    assert sharded.elapsed == ref.elapsed
    assert sharded.messages == ref.messages
    assert sharded.bytes_sent == ref.bytes_sent


def test_eight_shard_halo_identity(tmp_path):
    """8 Z-slabs of a 512-rank (8,8,8) halo: still byte-exact."""
    params = {"ranks": 512}
    ref = run("halo", shards=1, params=params)
    sharded = run("halo", shards=8, params=params)
    assert sharded.conflicts == []
    for ref_path, new_path in zip(
        _write_artifacts(tmp_path, ref, "s1"),
        _write_artifacts(tmp_path, sharded, "s8"),
    ):
        assert filecmp.cmp(ref_path, new_path, shallow=False), ref_path.name


def test_shard_count_invariance():
    """Different shard counts agree with each other, not just with 1."""
    docs = {
        shards: run("torus-ring", shards=shards).trace_json
        for shards in (2, 4)
    }
    assert docs[2] == docs[4]


def test_runs_are_deterministic_across_invocations():
    a = run("allreduce", shards=2)
    b = run("allreduce", shards=2)
    assert a.trace_json == b.trace_json
    assert a.metrics_json == b.metrics_json
    assert a.events_jsonl == b.events_jsonl
    assert a.stats.rounds == b.stats.rounds


def test_bare_mode_skips_artifacts_keeps_timing():
    full = run("torus-ring", shards=2)
    bare = run("torus-ring", shards=2, observe=False)
    assert bare.trace_json == "" and bare.metrics_json == ""
    assert bare.conflicts == []  # uncertified, not "certified clean"
    assert bare.elapsed == full.elapsed
    assert bare.messages == full.messages
