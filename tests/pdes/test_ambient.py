"""Ambient sharding: ``Cluster.run`` interception, fallbacks, campaign.

These tests exercise the ``--shards`` execution-policy path:
experiment code that builds its own :class:`Cluster` runs sharded with
no plumbing when a :func:`repro.pdes.sharding` context is active, and
every configuration the sharded engine cannot reproduce exactly falls
back to the single engine with identical results.
"""

import pytest

from repro.campaign import execute_job
from repro.machines import get_machine
from repro.obs import Tracer
from repro.pdes import active_shards, fallback_count, sharding
from repro.simmpi.comm import Cluster


def _ring(comm, nbytes, repeats):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    for rep in range(repeats):
        req = comm.irecv(src=left, tag=rep)
        yield from comm.send(right, nbytes=nbytes, tag=rep)
        yield from comm.wait(req)
    return comm.now


def _rd_exchange(comm, nbytes, steps):
    for step in range(steps):
        peer = comm.rank ^ (1 << step)
        if peer < comm.size:
            req = comm.irecv(src=peer, tag=step)
            yield from comm.send(peer, nbytes=nbytes, tag=step)
            yield from comm.wait(req)
    return comm.now


def _hw_allreduce(comm, nbytes):
    yield from comm.allreduce(nbytes=nbytes)
    return comm.now


def test_context_installs_and_restores():
    assert active_shards() is None
    with sharding(4):
        assert active_shards() == 4
        with sharding(2):
            assert active_shards() == 2
        assert active_shards() == 4
    assert active_shards() is None


def test_context_rejects_bad_count():
    with pytest.raises(ValueError):
        sharding(0)


@pytest.mark.no_sanitize
def test_intercepted_run_matches_unsharded():
    plain = Cluster(get_machine("BGP"), 16).run(_ring, 1 << 16, 4)
    with sharding(4):
        sharded = Cluster(get_machine("BGP"), 16).run(_ring, 1 << 16, 4)
        assert fallback_count() == 0
    stats = getattr(sharded, "pdes_stats", None)
    assert stats is not None and stats.shards == 4
    assert sharded.elapsed == plain.elapsed
    assert sharded.returns == plain.returns
    assert sharded.messages == plain.messages
    assert sharded.bytes_sent == plain.bytes_sent


@pytest.mark.no_sanitize
def test_attached_tracer_falls_back():
    with sharding(2):
        cluster = Cluster(get_machine("BGP"), 16)
        Tracer().attach(cluster)
        result = cluster.run(_ring, 4096, 1)
        assert fallback_count() == 1
    assert getattr(result, "pdes_stats", None) is None


@pytest.mark.no_sanitize
def test_hardware_collective_falls_back():
    """BG/P tree allreduce synchronizes the whole partition: unsharded."""
    plain = Cluster(get_machine("BGP"), 16).run(_hw_allreduce, 4096)
    with sharding(2):
        result = Cluster(get_machine("BGP"), 16).run(_hw_allreduce, 4096)
        assert fallback_count() == 1
    assert getattr(result, "pdes_stats", None) is None
    assert result.elapsed == plain.elapsed


@pytest.mark.no_sanitize
def test_link_conflicts_fall_back():
    """Long-distance traffic is detected and served by the exact path."""
    plain = Cluster(get_machine("BGP"), 16).run(_rd_exchange, 1 << 16, 4)
    with sharding(2):
        result = Cluster(get_machine("BGP"), 16).run(_rd_exchange, 1 << 16, 4)
        assert fallback_count() == 1
    assert getattr(result, "pdes_stats", None) is None
    assert result.elapsed == plain.elapsed


@pytest.mark.no_sanitize
def test_sanitize_request_falls_back():
    with sharding(2):
        result = Cluster(get_machine("BGP"), 16).run(_ring, 4096, 1, sanitize=True)
        assert fallback_count() == 1
    assert getattr(result, "pdes_stats", None) is None


def test_execute_job_threads_shards_through():
    plain = execute_job("j-plain", "fig3", {}, in_worker=False)
    sharded = execute_job("j-shard", "fig3", {}, in_worker=False, shards=2)
    assert plain.ok and sharded.ok
    assert sharded.text == plain.text  # execution policy, not an input
