"""BENCH_*.json schema, statistics, and IO."""

import json

import pytest

from repro.perf import (
    BenchEntry,
    host_fingerprint,
    load_snapshot,
    SCHEMA,
    Snapshot,
    snapshot_filename,
    SnapshotError,
    validate_snapshot,
)


def _snapshot(**entries):
    return Snapshot(
        entries={
            name: BenchEntry(name=name, samples_s=list(samples))
            for name, samples in entries.items()
        },
        host=Snapshot.capture_host(),
        code_fingerprint="cafe" * 10,
    )


def test_entry_statistics():
    entry = BenchEntry(name="x", samples_s=[3.0, 1.0, 2.0])
    assert entry.repeats == 3
    assert entry.min_s == 1.0
    assert entry.median_s == 2.0
    assert entry.mean_s == pytest.approx(2.0)
    assert entry.stddev_s == pytest.approx(1.0)
    single = BenchEntry(name="y", samples_s=[0.5])
    assert single.stddev_s == 0.0


def test_budget_flagging():
    ok = BenchEntry(name="x", samples_s=[1.0], budget_s=2.0)
    over = BenchEntry(name="y", samples_s=[3.0], budget_s=2.0)
    assert not ok.over_budget
    assert over.over_budget
    snap = _snapshot()
    snap.entries = {"x": ok, "y": over}
    assert [e.name for e in snap.over_budget()] == ["y"]


def test_host_fingerprint_is_stable_and_short():
    fp = host_fingerprint()
    assert fp == host_fingerprint()
    assert len(fp) == 12
    assert snapshot_filename() == f"BENCH_{fp}.json"
    assert snapshot_filename("abc") == "BENCH_abc.json"


def test_round_trip_preserves_everything():
    snap = _snapshot(**{"a.b": (1.0, 2.0), "c.d": (0.25,)})
    snap.entries["a.b"].budget_s = 5.0
    snap.entries["a.b"].threshold = 0.5
    snap.entries["a.b"].meta = {"events": 42}
    doc = json.loads(snap.to_json())
    validate_snapshot(doc)
    back = Snapshot.from_dict(doc)
    assert back.names() == ["a.b", "c.d"]
    assert back.entries["a.b"].samples_s == [1.0, 2.0]
    assert back.entries["a.b"].budget_s == 5.0
    assert back.entries["a.b"].threshold == 0.5
    assert back.entries["a.b"].meta == {"events": 42}
    assert back.code_fingerprint == snap.code_fingerprint


def test_serialization_is_deterministic():
    a = _snapshot(x=(1.0, 2.0))
    b = _snapshot(x=(1.0, 2.0))
    assert a.to_json() == b.to_json()
    assert '"schema": "repro.perf/1"' in a.to_json()
    assert SCHEMA == "repro.perf/1"


def test_write_to_directory_uses_canonical_name(tmp_path):
    snap = _snapshot(x=(1.0,))
    path = snap.write(tmp_path)
    assert path.name == snapshot_filename()
    loaded = load_snapshot(path)
    assert loaded.names() == ["x"]


def test_write_to_explicit_file(tmp_path):
    snap = _snapshot(x=(1.0,))
    target = tmp_path / "baseline.json"
    assert snap.write(target) == target
    assert load_snapshot(target).names() == ["x"]


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda d: d.update(schema="nope"), "schema"),
        (lambda d: d.pop("host"), "host"),
        (lambda d: d.update(code=""), "code"),
        (lambda d: d.update(benchmarks=[]), "benchmarks"),
        (lambda d: d["benchmarks"]["x"].update(samples_s=[]), "samples_s"),
        (lambda d: d["benchmarks"]["x"].update(samples_s=[-1.0]), "non-negative"),
        (lambda d: d["benchmarks"]["x"].update(samples_s=[True]), "number"),
        (lambda d: d["benchmarks"]["x"].pop("median_s"), "median_s"),
        (lambda d: d["benchmarks"]["x"].update(budget_s=0), "budget_s"),
    ],
)
def test_validation_rejects_malformed_documents(mutate, message):
    doc = _snapshot(x=(1.0, 2.0)).to_dict()
    doc = json.loads(json.dumps(doc))  # deep copy
    mutate(doc)
    with pytest.raises(SnapshotError, match=message):
        validate_snapshot(doc)


def test_load_errors_name_the_file(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(SnapshotError, match="nope.json"):
        load_snapshot(missing)
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json")
    with pytest.raises(SnapshotError, match="garbage.json"):
        load_snapshot(garbage)
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"schema": "other/1"}')
    with pytest.raises(SnapshotError, match="wrong.json"):
        load_snapshot(wrong)
