"""The compare/gate engine: pass, regression, missing, schema errors."""

import pytest

from repro.perf import (
    BenchEntry,
    compare_snapshots,
    load_snapshot,
    parse_percent,
    Snapshot,
    SnapshotError,
)


def _snap(host="aaa", **entries):
    built = {}
    for name, spec in entries.items():
        if isinstance(spec, BenchEntry):
            built[name] = spec
        else:
            built[name] = BenchEntry(name=name, samples_s=list(spec))
    return Snapshot(
        entries=built,
        host={"fingerprint": host, "platform": "test", "python": "3", "cpu_count": 1},
        code_fingerprint="feed" * 10,
    )


def test_parse_percent():
    assert parse_percent("15%") == pytest.approx(0.15)
    assert parse_percent("0.15") == pytest.approx(0.15)
    assert parse_percent(" 200% ") == pytest.approx(2.0)
    with pytest.raises(ValueError):
        parse_percent("-5%")
    with pytest.raises(ValueError):
        parse_percent("fast")


def test_self_compare_passes():
    snap = _snap(**{"a": (1.0, 1.0), "b": (2.0, 2.0)})
    cmp = compare_snapshots(snap, snap)
    assert cmp.ok
    assert cmp.exit_code == 0
    assert [d.status for d in cmp.deltas] == ["ok", "ok"]
    assert "GATE: ok" in cmp.render()


def test_within_tolerance_passes():
    base = _snap(a=(1.0, 1.0, 1.0))
    new = _snap(a=(1.1, 1.1, 1.1))  # +10% < 15%
    assert compare_snapshots(base, new).ok


def test_over_threshold_fails():
    base = _snap(a=(1.0, 1.0, 1.0))
    new = _snap(a=(2.0, 2.0, 2.0))  # 2x, zero stddev -> no noise excuse
    cmp = compare_snapshots(base, new, fail_over=0.15)
    assert not cmp.ok
    assert cmp.exit_code == 1
    (delta,) = cmp.regressions
    assert delta.name == "a"
    assert delta.delta == pytest.approx(1.0)
    assert "GATE: 1 failure(s): a" in cmp.render()


def test_noise_slack_excuses_jittery_benchmarks():
    """+20% nominal regression but samples are noisy: 2*(sum stddev)
    covers the gap, so the gate does not fire."""
    base = _snap(a=(1.0, 1.2, 0.8))  # median 1.0, stddev 0.2
    new = _snap(a=(1.2, 1.4, 1.0))  # median 1.2
    assert compare_snapshots(base, new, fail_over=0.15).ok


def test_per_benchmark_threshold_widens_the_gate():
    loose = BenchEntry(name="a", samples_s=[2.0], threshold=1.5)
    base = _snap(a=BenchEntry(name="a", samples_s=[1.0], threshold=1.5))
    new = _snap(a=loose)  # 2x but entry tolerates +150%
    cmp = compare_snapshots(base, new, fail_over=0.15)
    assert cmp.ok
    assert cmp.deltas[0].threshold == pytest.approx(1.5)


def test_missing_benchmark_is_a_failure():
    base = _snap(**{"a": (1.0,), "b": (1.0,)})
    new = _snap(a=(1.0,))
    cmp = compare_snapshots(base, new)
    assert not cmp.ok
    (missing,) = cmp.missing
    assert missing.name == "b"
    assert "missing from new snapshot" in cmp.render()


def test_new_benchmark_is_informational():
    base = _snap(a=(1.0,))
    new = _snap(**{"a": (1.0,), "b": (1.0,)})
    cmp = compare_snapshots(base, new)
    assert cmp.ok
    statuses = {d.name: d.status for d in cmp.deltas}
    assert statuses == {"a": "ok", "b": "new"}


def test_improvement_is_reported_not_failed():
    base = _snap(a=(2.0, 2.0, 2.0))
    new = _snap(a=(1.0, 1.0, 1.0))
    cmp = compare_snapshots(base, new)
    assert cmp.ok
    assert cmp.deltas[0].status == "improved"
    assert "[FAST]" in cmp.render()


def test_cross_host_comparison_is_flagged():
    base = _snap(host="aaa", a=(1.0,))
    new = _snap(host="bbb", a=(1.0,))
    cmp = compare_snapshots(base, new)
    assert cmp.cross_host
    assert "different hosts" in cmp.render()


def test_schema_violation_surfaces_as_snapshot_error(tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text('{"schema": "repro.perf/1", "host": {}, "code": "x", "benchmarks": {}}')
    with pytest.raises(SnapshotError, match="fingerprint"):
        load_snapshot(bad)


def test_negative_fail_over_rejected():
    snap = _snap(a=(1.0,))
    with pytest.raises(ValueError):
        compare_snapshots(snap, snap, fail_over=-0.1)
