"""The benchmark runner: repetitions, warmup, registry, slowdown."""

import pytest

from repro.perf import Benchmark, benchmark_ids, run_benchmarks, SLOWDOWN_ENV
from repro.perf.suite import get_benchmark, temporary_benchmark


class FakeClock:
    """Deterministic clock: each read advances by a scripted step."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


def _counting_bench(name, calls, **kwargs):
    def fn():
        calls.append(name)
        return {"calls_so_far": len(calls)}

    return Benchmark(name=name, fn=fn, **kwargs)


def test_registered_suite_is_nonempty_and_sorted():
    ids = benchmark_ids()
    assert ids == sorted(ids)
    assert "engine.heap_churn" in ids
    assert "lint.full_tree" in ids
    assert get_benchmark("lint.full_tree").budget_s == 5.0


def test_unknown_benchmark_raises_with_known_list():
    with pytest.raises(KeyError, match="engine.heap_churn"):
        get_benchmark("no.such.bench")


def test_repeats_warmup_and_fake_clock():
    calls = []
    with temporary_benchmark(_counting_bench("t.counting", calls)):
        snap = run_benchmarks(
            ["t.counting"], repeats=3, warmup=2, clock=FakeClock(step=0.5)
        )
    entry = snap.entries["t.counting"]
    assert len(calls) == 5  # 2 warmup + 3 timed
    assert entry.warmup == 2
    assert entry.repeats == 3
    # FakeClock advances 0.5 per read; one fn call sits between the two
    # reads of a sample, so every sample is exactly one step.
    assert entry.samples_s == [0.5, 0.5, 0.5]
    assert entry.meta["calls_so_far"] == 5


def test_snapshot_carries_code_and_host_identity():
    with temporary_benchmark(_counting_bench("t.id", [])):
        snap = run_benchmarks(["t.id"], repeats=1, warmup=0, clock=FakeClock())
    assert len(snap.code_fingerprint) == 64
    assert snap.host["fingerprint"]
    assert snap.host["cpu_count"] >= 1


def test_budget_and_threshold_flow_into_the_entry():
    bench = _counting_bench("t.budgeted", [], budget_s=9.0, threshold=0.4)
    with temporary_benchmark(bench):
        snap = run_benchmarks(["t.budgeted"], repeats=1, warmup=0, clock=FakeClock())
    entry = snap.entries["t.budgeted"]
    assert entry.budget_s == 9.0
    assert entry.threshold == 0.4


def test_slowdown_env_multiplies_samples(monkeypatch):
    monkeypatch.setenv(SLOWDOWN_ENV, "2")
    with temporary_benchmark(_counting_bench("t.slow", [])):
        snap = run_benchmarks(["t.slow"], repeats=2, warmup=0, clock=FakeClock(step=1.0))
    entry = snap.entries["t.slow"]
    assert entry.samples_s == [2.0, 2.0]
    assert entry.meta["slowdown_injected"] == 2.0


def test_slowdown_env_rejects_garbage(monkeypatch):
    monkeypatch.setenv(SLOWDOWN_ENV, "fast")
    with temporary_benchmark(_counting_bench("t.bad", [])):
        with pytest.raises(ValueError, match=SLOWDOWN_ENV):
            run_benchmarks(["t.bad"], repeats=1, warmup=0, clock=FakeClock())
    monkeypatch.setenv(SLOWDOWN_ENV, "-1")
    with temporary_benchmark(_counting_bench("t.neg", [])):
        with pytest.raises(ValueError, match="positive"):
            run_benchmarks(["t.neg"], repeats=1, warmup=0, clock=FakeClock())


def test_parameter_validation():
    with pytest.raises(ValueError, match="repeats"):
        run_benchmarks([], repeats=0)
    with pytest.raises(ValueError, match="warmup"):
        run_benchmarks([], warmup=-1)


def test_progress_callback_sees_every_entry():
    seen = []
    names = ["t.p1", "t.p2"]
    with temporary_benchmark(_counting_bench("t.p1", [])), temporary_benchmark(
        _counting_bench("t.p2", [])
    ):
        run_benchmarks(
            names,
            repeats=1,
            warmup=0,
            clock=FakeClock(),
            progress=lambda name, entry: seen.append(name),
        )
    assert seen == names


def test_duplicate_registration_rejected():
    bench = _counting_bench("t.dup", [])
    with temporary_benchmark(bench):
        with pytest.raises(ValueError, match="already registered"):
            with temporary_benchmark(bench):
                pass


def test_micro_suite_metric_keys_are_deterministic():
    """Two runs of the same tree expose the identical key set — what
    lets CI `cmp` the metric-key lists of two fresh snapshots."""
    a = run_benchmarks(["engine.heap_churn"], repeats=1, warmup=0, clock=FakeClock())
    b = run_benchmarks(["engine.heap_churn"], repeats=1, warmup=0, clock=FakeClock())
    assert a.names() == b.names()
    assert a.entries["engine.heap_churn"].meta["events_processed"] == (
        b.entries["engine.heap_churn"].meta["events_processed"]
    )
