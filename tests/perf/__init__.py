"""Tests for repro.perf (host-side performance observability)."""
