"""`repro bench` CLI: list, run, compare, profile."""

import json

from repro.cli import main
from repro.perf import load_snapshot, SLOWDOWN_ENV, snapshot_filename


def test_bench_list_shows_suite_and_scripts(capsys):
    assert main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    assert "engine.heap_churn" in out
    assert "lint.full_tree" in out
    assert "bench_lint.py" in out


def test_bench_run_writes_canonical_snapshot(tmp_path, capsys):
    code = main(
        [
            "bench",
            "run",
            "engine.heap_churn",
            "topology.torus_route",
            "-o",
            str(tmp_path),
            "--repeats",
            "2",
            "--warmup",
            "0",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    path = tmp_path / snapshot_filename()
    assert f"wrote {path}" in out
    snap = load_snapshot(path)
    assert snap.names() == ["engine.heap_churn", "topology.torus_route"]
    assert all(e.repeats == 2 for e in snap.entries.values())


def test_bench_run_unknown_name_exits_2(tmp_path, capsys):
    assert main(["bench", "run", "no.such.bench", "-o", str(tmp_path)]) == 2
    assert "no.such.bench" in capsys.readouterr().err


def test_bench_compare_self_is_clean(tmp_path, capsys):
    out_file = tmp_path / "snap.json"
    assert main(
        ["bench", "run", "engine.heap_churn", "-o", str(out_file), "-r", "2", "--warmup", "0"]
    ) == 0
    code = main(["bench", "compare", str(out_file), str(out_file)])
    assert code == 0
    assert "GATE: ok" in capsys.readouterr().out


def test_bench_compare_trips_on_injected_slowdown(tmp_path, capsys, monkeypatch):
    base = tmp_path / "base.json"
    slow = tmp_path / "slow.json"
    args = ["bench", "run", "engine.heap_churn", "-r", "3", "--warmup", "1"]
    assert main(args + ["-o", str(base)]) == 0
    monkeypatch.setenv(SLOWDOWN_ENV, "2")
    assert main(args + ["-o", str(slow)]) == 0
    monkeypatch.delenv(SLOWDOWN_ENV)
    code = main(["bench", "compare", str(base), str(slow), "--fail-over", "15%"])
    assert code == 1
    assert "GATE: 1 failure(s)" in capsys.readouterr().out


def test_bench_compare_schema_violation_exits_2(tmp_path, capsys):
    good = tmp_path / "good.json"
    assert main(
        ["bench", "run", "engine.heap_churn", "-o", str(good), "-r", "1", "--warmup", "0"]
    ) == 0
    bad = tmp_path / "bad.json"
    doc = json.loads(good.read_text())
    doc["schema"] = "wrong/9"
    bad.write_text(json.dumps(doc))
    assert main(["bench", "compare", str(good), str(bad)]) == 2
    assert "schema" in capsys.readouterr().err


def test_bench_compare_bad_tolerance_exits_2(tmp_path, capsys):
    f = tmp_path / "x.json"
    assert main(
        ["bench", "run", "engine.heap_churn", "-o", str(f), "-r", "1", "--warmup", "0"]
    ) == 0
    assert main(["bench", "compare", str(f), str(f), "--fail-over=-3%"]) == 2


def test_bench_profile_scenario_writes_host_spans(tmp_path, capsys):
    out = tmp_path / "prof.trace.json"
    code = main(["bench", "profile", "allreduce", "-o", str(out), "-n", "5"])
    assert code == 0
    text = capsys.readouterr().out
    assert "host self-profile" in text
    assert "hotspots (cProfile, by cumulative)" in text
    assert "== host-side cost (simulator wall time) ==" in text
    doc = json.loads(out.read_text())
    host = [e for e in doc["traceEvents"] if e.get("pid") == 1000003]
    assert any(e.get("cat") == "host.hotspot" for e in host)
    assert any(e.get("name") == "host:drive" for e in host)


def test_bench_profile_list_and_errors(capsys):
    assert main(["bench", "profile", "--list"]) == 0
    assert "allreduce" in capsys.readouterr().out
    assert main(["bench", "profile"]) == 2
    assert main(["bench", "profile", "nope"]) == 2
