"""The sanctioned host-time source and its lint whitelist."""

import pathlib

from repro.lint import lint_paths
from repro.lint.hygiene_rules import HOST_TIME_MODULES, is_host_time_module
from repro.perf import host_counter, host_counter_ns, HostClock

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_host_counter_is_monotonic():
    a = host_counter()
    b = host_counter()
    assert b >= a


def test_host_counter_ns_is_integer_nanoseconds():
    a = host_counter_ns()
    b = host_counter_ns()
    assert isinstance(a, int) and isinstance(b, int)
    assert b >= a


def test_hostclock_elapsed_grows_and_resets():
    clock = HostClock()
    first = clock.elapsed()
    second = clock.elapsed()
    assert 0.0 <= first <= second
    clock.reset()
    assert clock.elapsed() <= second + 1.0  # fresh anchor, tiny elapsed


def test_whitelist_matches_only_the_sanctioned_module():
    assert is_host_time_module("src/repro/perf/hostclock.py")
    assert is_host_time_module("/abs/path/src/repro/perf/hostclock.py")
    assert not is_host_time_module("src/repro/perf/harness.py")
    assert not is_host_time_module("src/repro/campaign/runner.py")
    # Windows-style separators normalize before matching.
    assert is_host_time_module("src\\repro\\perf\\hostclock.py")
    assert all(m.endswith(".py") for m in HOST_TIME_MODULES)


def test_hostclock_module_lints_clean_without_suppressions():
    """The whitelist, not per-line ignores, is what keeps it clean."""
    path = REPO / "src" / "repro" / "perf" / "hostclock.py"
    assert "simlint: ignore" not in path.read_text(encoding="utf-8")
    result = lint_paths([str(path)])
    assert result.findings == [], "\n".join(f.format() for f in result.findings)


def test_campaign_runner_no_longer_needs_clock_suppressions():
    """The runner reads host time via HostClock only — no raw
    time.perf_counter, hence no simlint ignores left in the file."""
    path = REPO / "src" / "repro" / "campaign" / "runner.py"
    text = path.read_text(encoding="utf-8")
    assert "simlint: ignore" not in text
    assert "time.perf_counter" not in text
    result = lint_paths([str(path)])
    hazards = [f for f in result.findings if "determinism" in f.rule]
    assert hazards == [], "\n".join(f.format() for f in hazards)


def test_other_modules_still_get_flagged(tmp_path):
    """The whitelist must not leak: a stray perf_counter elsewhere in
    the tree is still a determinism hazard."""
    rogue = tmp_path / "rogue.py"
    rogue.write_text(
        "import time\n\n__all__ = []\n\n\ndef f():\n    return time.perf_counter()\n"
    )
    result = lint_paths([str(rogue)])
    assert any(f.rule == "determinism-hazard" for f in result.findings)
