"""The host self-profiler: hooks, phases, trace export, zero cost off."""

import pytest

from repro.machines import BGP
from repro.obs import chrome_trace, summary, tracing, validate_trace_events
from repro.obs.tracer import Tracer
from repro.perf import active_profiler, HOST_PID, HostProfiler, profiling
from repro.simmpi import Cluster


def _program(comm):
    yield from comm.allreduce(4096, dtype="float64")
    return comm.now


def _run(ranks=4, **kwargs):
    cluster = Cluster(BGP, ranks=ranks, mode="SMP")
    return cluster, cluster.run(_program, **kwargs)


# -- zero cost when disabled -------------------------------------------------


def test_unprofiled_run_attaches_nothing():
    cluster, result = _run()
    assert result.profile is None
    assert cluster.env.obs is None
    assert cluster.transport._send_hooks == []
    assert active_profiler() is None


def test_disabled_profiler_methods_never_run(monkeypatch):
    """With profile=False nothing may even touch HostProfiler."""
    monkeypatch.setattr(
        HostProfiler, "attach", lambda *a, **k: pytest.fail("attach called")
    )
    monkeypatch.setattr(
        HostProfiler, "engine_step", lambda *a, **k: pytest.fail("engine_step called")
    )
    _, result = _run()
    assert result.profile is None


# -- enabled behaviour -------------------------------------------------------


def test_profile_true_returns_a_profiler_with_data():
    cluster, result = _run(profile=True)
    prof = result.profile
    assert isinstance(prof, HostProfiler)
    assert prof.steps > 0
    assert prof.engine_seconds >= 0.0
    assert set(prof.phase_totals) == {"spawn", "drive"}
    # detached cleanly: hooks are gone after the run
    assert cluster.env.obs is None
    assert cluster.transport._send_hooks == []


def test_explicit_profiler_instance_is_used_and_returned():
    prof = HostProfiler(stride=8)
    _, result = _run(profile=prof)
    assert result.profile is prof
    assert prof.steps > 0


def test_profiler_chains_over_an_attached_tracer():
    """Tracer spans must keep flowing while the profiler observes."""
    tracer = Tracer()
    with tracing(tracer):
        cluster, result = _run(profile=True)
    assert result.trace is tracer
    # the tracer still saw simulated spans and engine counters
    assert any(not name.startswith("host:") for name in tracer.span_totals)
    # and the profiler contributed host spans to the same trace
    doc = chrome_trace(tracer)
    validate_trace_events(doc)
    host = [e for e in doc["traceEvents"] if e.get("pid") == HOST_PID]
    names = {e["name"] for e in host if e.get("ph") == "X"}
    assert "host:spawn" in names
    assert "host:drive" in names


def test_cprofile_hotspots_land_in_report_and_trace():
    tracer = Tracer()
    prof = HostProfiler(cprofile=True, top=5)
    with tracing(tracer):
        _run(profile=prof)
    rows = prof.hotspots()
    assert 0 < len(rows) <= 5
    where, cumulative, self_s, calls = rows[0]
    assert cumulative >= self_s >= 0.0
    assert calls >= 1
    report = prof.report()
    assert "hotspots (cProfile, by cumulative)" in report
    doc = chrome_trace(tracer)
    hotspot_spans = [
        e
        for e in doc["traceEvents"]
        if e.get("pid") == HOST_PID and e.get("cat") == "host.hotspot"
    ]
    assert len(hotspot_spans) == len(rows)
    validate_trace_events(doc)


def test_report_without_cprofile_mentions_the_opt_in():
    _, result = _run(profile=True)
    report = result.profile.report()
    assert "host self-profile" in report
    assert "cprofile=True" in report


def test_engine_batches_respect_stride():
    tracer = Tracer()
    prof = HostProfiler(stride=4)
    with tracing(tracer):
        _run(profile=prof)
    doc = chrome_trace(tracer)
    batches = [
        e
        for e in doc["traceEvents"]
        if e.get("pid") == HOST_PID and e.get("name") == "host:engine-steps"
    ]
    assert batches
    assert sum(e["args"]["steps"] for e in batches) == prof.steps
    assert all(e["args"]["steps"] <= 4 for e in batches[:-1] or batches)


def test_ambient_profiling_context_spans_multiple_runs():
    prof = HostProfiler()
    with profiling(prof):
        assert active_profiler() is prof
        _, r1 = _run()
        steps_after_first = prof.steps
        _, r2 = _run()
    assert active_profiler() is None
    assert r1.profile is prof and r2.profile is prof
    assert steps_after_first > 0
    assert prof.steps > steps_after_first  # totals accumulate across runs


def test_summary_separates_host_cost_from_sim_attribution():
    tracer = Tracer()
    with tracing(tracer):
        _run(profile=True)
    text = summary(tracer)
    assert "== host-side cost (simulator wall time) ==" in text
    sim_section = text.split("== host-side cost")[0]
    assert "host:" not in sim_section


def test_stride_must_be_positive():
    with pytest.raises(ValueError):
        HostProfiler(stride=0)
