"""HPL: real LU correctness + model calibration against the paper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import block_size_for, hpl_flops, HplModel, run_lu_numpy
from repro.machines import BGP, XT4_QC


# ---------------------------------------------------------------------------
# the real factorization
# ---------------------------------------------------------------------------
def test_lu_residual_tiny():
    """HPL's own pass criterion is a scaled residual < 16."""
    run = run_lu_numpy(n=96, block=32)
    assert run.residual < 16.0


def test_lu_various_block_sizes():
    for block in (1, 7, 32, 200):
        assert run_lu_numpy(n=64, block=block).residual < 16.0


def test_lu_validation():
    with pytest.raises(ValueError):
        run_lu_numpy(n=0)


@settings(max_examples=10, deadline=None)
@given(st.integers(8, 64), st.integers(2, 16))
def test_lu_residual_property(n, block):
    """The factorization is correct for arbitrary sizes/blockings."""
    assert run_lu_numpy(n=n, block=block).residual < 16.0


def test_hpl_flops_formula():
    assert hpl_flops(3) == pytest.approx((2 / 3) * 27 + 1.5 * 9)
    with pytest.raises(ValueError):
        hpl_flops(0)


# ---------------------------------------------------------------------------
# the performance model vs the paper
# ---------------------------------------------------------------------------
def test_block_sizes_from_paper():
    assert block_size_for(BGP) == 144
    assert block_size_for(XT4_QC) == 168


def test_top500_run_matches_paper():
    """Section II.C: 2.140e4 GFlop/s on 8192 cores, N=614399, NB=96."""
    res = HplModel(BGP).top500_run()
    assert res.gflops == pytest.approx(21400, rel=0.03)
    assert res.n == 614399
    assert res.processes == 8192


def test_table3_rmax_bgp():
    """Table 3: BG/P HPL Rmax 21.9 TF on 8192 cores."""
    res = HplModel(BGP).run(8192)
    assert res.gflops / 1e3 == pytest.approx(21.9, rel=0.03)


def test_table3_rmax_xt():
    """Table 3: XT/QC HPL Rmax 205.0 TF on 30976 cores."""
    res = HplModel(XT4_QC).run(30976)
    assert res.gflops / 1e3 == pytest.approx(205.0, rel=0.03)


def test_problem_size_uses_80_percent():
    m = HplModel(BGP)
    n = m.problem_size(4096)
    bytes_needed = 8 * n * n
    total = 4096 * m.mode.memory_per_task
    assert 0.70 * total < bytes_needed <= 0.81 * total


def test_xt_problem_4x_larger():
    """Section II.A: XT nodes have 4x the memory, so ~4x the matrix."""
    nb = HplModel(BGP).problem_size(4096)
    nx = HplModel(XT4_QC).problem_size(4096)
    assert (nx / nb) ** 2 == pytest.approx(4.0, rel=0.1)


def test_both_machines_scale_well():
    """Fig. 1a: 'both systems scaled well'."""
    for machine in (BGP, XT4_QC):
        m = HplModel(machine)
        effs = [m.run(p).efficiency for p in (256, 1024, 4096)]
        assert max(effs) - min(effs) < 0.05


def test_rate_monotone_in_processes():
    m = HplModel(BGP)
    rates = [m.run(p).gflops for p in (256, 512, 1024, 2048)]
    assert rates == sorted(rates)


def test_invalid_processes():
    with pytest.raises(ValueError):
        HplModel(BGP).run(0)
