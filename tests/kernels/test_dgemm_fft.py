"""DGEMM and FFT kernels: real execution + model shape."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    dgemm_flops,
    DgemmModel,
    fft_flops,
    FftModel,
    run_dgemm_numpy,
    run_fft_numpy,
)
from repro.machines import BGP, XT4_QC


# ---------------------------------------------------------------------------
# DGEMM
# ---------------------------------------------------------------------------
def test_dgemm_flops():
    assert dgemm_flops(10) == 2000
    assert dgemm_flops(2, 3, 4) == 48
    with pytest.raises(ValueError):
        dgemm_flops(0)


def test_run_dgemm_correct():
    run = run_dgemm_numpy(n=128)
    assert run.max_error < 1e-9
    assert run.gflops > 0


def test_dgemm_model_rates():
    """Table 2: BG/P ~3 GF/process, XT4/QC ~7.4 (clock-rate story)."""
    b = DgemmModel(BGP).rate_per_process_gflops()
    x = DgemmModel(XT4_QC).rate_per_process_gflops()
    assert b == pytest.approx(3.4 * 0.87, rel=0.02)
    assert x == pytest.approx(8.4 * 0.88, rel=0.02)
    assert b < x


def test_dgemm_compute_bound():
    assert DgemmModel(BGP).single_equals_ep()


# ---------------------------------------------------------------------------
# FFT
# ---------------------------------------------------------------------------
def test_fft_flops():
    assert fft_flops(8) == pytest.approx(5 * 8 * 3)
    with pytest.raises(ValueError):
        fft_flops(12)  # not a power of two


def test_run_fft_matches_numpy():
    assert run_fft_numpy(512) < 1e-9


@settings(max_examples=8, deadline=None)
@given(st.sampled_from([4, 8, 16, 64, 256, 1024]))
def test_fft_correct_all_sizes(n):
    assert run_fft_numpy(n) < 1e-8


def test_fft_model_shape():
    """Fig. 1b: XT above BG/P, both scale with process count."""
    fb, fx = FftModel(BGP), FftModel(XT4_QC)
    assert fb.single_process_gflops() < fx.single_process_gflops()
    for model in (fb, fx):
        totals = [model.mpi_run(p).gflops_total for p in (256, 1024, 4096)]
        assert totals == sorted(totals)
    for p in (256, 1024, 4096):
        assert fb.mpi_run(p).gflops_total < fx.mpi_run(p).gflops_total


def test_fft_local_size_power_of_two():
    n = FftModel(BGP).local_problem_size()
    assert n & (n - 1) == 0
    assert n * 16 < BGP.node.memory.capacity_bytes  # fits a VN task
