"""Ping-pong and random-ring kernels: DES vs analytic, machine shapes."""

import pytest

from repro.kernels import (
    pingpong_analytic,
    random_ring_analytic,
    run_pingpong_des,
    run_random_ring_des,
)
from repro.machines import BGP, XT4_QC


def test_pingpong_latency_ordering():
    """Table 2: BG/P strength is low latency."""
    b = pingpong_analytic(BGP, 8)
    x = pingpong_analytic(XT4_QC, 8)
    assert b.latency_us < x.latency_us


def test_pingpong_bandwidth_ordering():
    """Table 2: XT strength is high bandwidth."""
    b = pingpong_analytic(BGP, 1 << 21)
    x = pingpong_analytic(XT4_QC, 1 << 21)
    assert x.bandwidth_gbs > b.bandwidth_gbs


def test_pingpong_des_close_to_analytic():
    for machine in (BGP, XT4_QC):
        des = run_pingpong_des(machine, nbytes=8, repeats=5)
        ana = pingpong_analytic(machine, 8)
        assert des.latency_us == pytest.approx(ana.latency_us, rel=0.5)


def test_pingpong_repeats_validation():
    with pytest.raises(ValueError):
        run_pingpong_des(BGP, repeats=0)


def test_bgp_latency_microseconds():
    """BG/P MPI ping-pong latency is single-digit microseconds."""
    lat = pingpong_analytic(BGP, 0).latency_us
    assert 2.0 < lat < 8.0


def test_ring_ordering():
    b = random_ring_analytic(BGP, 4096)
    x = random_ring_analytic(XT4_QC, 4096)
    assert b.latency_us < x.latency_us
    assert x.bandwidth_gbs_per_process > b.bandwidth_gbs_per_process


def test_ring_bandwidth_drops_with_scale():
    """More nodes => longer average routes => less per-process BW."""
    small = random_ring_analytic(BGP, 256)
    large = random_ring_analytic(BGP, 16384)
    assert large.bandwidth_gbs_per_process < small.bandwidth_gbs_per_process


def test_ring_des_runs():
    res = run_random_ring_des(BGP, processes=16, nbytes=1 << 14)
    assert res.latency_us > 0
    assert res.bandwidth_gbs_per_process > 0
    with pytest.raises(ValueError):
        run_random_ring_des(BGP, processes=1)
