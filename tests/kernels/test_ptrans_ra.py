"""PTRANS and RandomAccess: real kernels + model behaviour."""

import numpy as np
import pytest

from repro.kernels import PtransModel, RandomAccessModel, run_ptrans_numpy, run_randomaccess_numpy
from repro.machines import BGP, XT4_QC
from repro.simengine import make_rng


# ---------------------------------------------------------------------------
# PTRANS
# ---------------------------------------------------------------------------
def test_ptrans_exact():
    assert run_ptrans_numpy(n=64, grid=(2, 2), block=8) == 0.0


def test_ptrans_rectangular_grid():
    assert run_ptrans_numpy(n=48, grid=(2, 1), block=8) == 0.0


def test_ptrans_shape_validation():
    with pytest.raises(ValueError):
        run_ptrans_numpy(n=30, grid=(2, 2), block=8)


def test_ptrans_rates_similar_scaling():
    """Fig. 1c: 'Both systems exhibited similar absolute performance
    and scaling trends'."""
    rng = make_rng(5)
    for p in (256, 1024):
        b = PtransModel(BGP).run(p, rng=rng).gb_per_s
        x = PtransModel(XT4_QC).run(p, rng=rng).gb_per_s
        assert 0.1 < x / b < 10  # same order of magnitude


def test_ptrans_xt_variability():
    """Fig. 1c: 'a higher degree of variability on the XT'."""
    rng = make_rng(6)

    def spread(machine):
        rates = [machine_model.run(1024, rng=rng).gb_per_s for _ in range(8)]
        return (max(rates) - min(rates)) / np.mean(rates)

    machine_model = PtransModel(BGP)
    bgp_spread = spread(BGP)
    machine_model = PtransModel(XT4_QC)
    xt_spread = spread(XT4_QC)
    assert bgp_spread == 0.0  # isolated partitions are deterministic
    assert xt_spread > 0.0


def test_ptrans_scaling_monotone():
    rng = make_rng(7)
    model = PtransModel(BGP)
    rates = [model.run(p, rng=rng).gb_per_s for p in (256, 1024, 4096)]
    assert rates == sorted(rates)


# ---------------------------------------------------------------------------
# RandomAccess
# ---------------------------------------------------------------------------
def test_randomaccess_self_verifies():
    """The xor-update stream applied twice restores the table."""
    assert run_randomaccess_numpy(log2_table=8)


def test_randomaccess_bigger_table():
    assert run_randomaccess_numpy(log2_table=12, updates_factor=2)


def test_ra_model_variants():
    m = RandomAccessModel(BGP)
    with pytest.raises(ValueError):
        m.run(64, variant="magic")
    stock = m.run(1024, "stock")
    sandia = m.run(1024, "sandia")
    assert sandia.gups_total > stock.gups_total  # aggregation wins


def test_ra_parity_between_machines():
    """Fig. 1d: 'The two systems showed very similar performance and
    scalability trends' (the observed parity that surprised the
    authors)."""
    for p in (1024, 4096):
        b = RandomAccessModel(BGP).run(p).gups_total
        x = RandomAccessModel(XT4_QC).run(p).gups_total
        assert 0.3 < b / x < 3.0


def test_ra_local_rate_reflects_ooo_overlap():
    """The Opteron overlaps misses; the in-order PPC450 cannot."""
    b = RandomAccessModel(BGP).local_update_rate()
    x = RandomAccessModel(XT4_QC).local_update_rate()
    assert x > b


def test_ra_single_process_uses_local_rate():
    m = RandomAccessModel(BGP)
    assert m.run(1).gups_per_process == pytest.approx(
        m.local_update_rate() / 1e9
    )
