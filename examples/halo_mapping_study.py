#!/usr/bin/env python
"""HALO process-mapping study (the paper's Fig. 2c/d experiment).

Evaluates the nearest-neighbour halo exchange on an 8192-core BG/P
partition (128 x 64 virtual process grid, VN mode) under all eight of
the paper's predefined mappings, across halo sizes.  Shows the paper's
finding: "optimizing with respect to process/processor mapping is
likely unimportant when communication is latency dominated, but may be
important when communication is bandwidth limited."

Usage::

    python examples/halo_mapping_study.py
"""

from repro.halo import HaloBenchmark
from repro.core import format_table
from repro.machines import BGP
from repro.topology import PAPER_FIG2_MAPPINGS

GRID = (64, 64)  # 4096 cores in VN mode
WORDS = [8, 128, 2048, 16384, 65536]


def main() -> None:
    print(f"=== HALO on BG/P, {GRID[0] * GRID[1]} cores VN, grid {GRID} ===\n")
    benches = {
        m: HaloBenchmark(BGP, GRID, mode="VN", mapping=m)
        for m in PAPER_FIG2_MAPPINGS
    }
    rows = []
    for mapping, hb in benches.items():
        rows.append(
            [mapping, *[f"{hb.time_analytic(w) * 1e6:.1f}" for w in WORDS]]
        )
    print(
        format_table(
            ["mapping", *[f"{w} words (us)" for w in WORDS]],
            rows,
            title="Exchange time by mapping and halo size",
        )
    )

    print("\nSpread (worst mapping / best mapping) per halo size:")
    for w in WORDS:
        times = [hb.time_analytic(w) for hb in benches.values()]
        tag = "mapping matters!" if max(times) / min(times) > 1.5 else "insensitive"
        print(f"  {w:7d} words: {max(times) / min(times):5.2f}x   ({tag})")

    print("\nProtocol comparison at 2048 words, TXYZ (Fig. 2a):")
    hb = benches["TXYZ"]
    for proto in ("ISEND_IRECV", "IRECV_SEND", "PERSISTENT", "SENDRECV"):
        print(f"  {proto:12s}: {hb.time_analytic(2048, proto) * 1e6:7.1f} us")

    print("\nCross-check against the message-level simulator (small grid):")
    small = HaloBenchmark(BGP, (8, 8), mode="VN", mapping="TXYZ")
    for w in (8, 2048):
        des = small.run_des(w) * 1e6
        ana = small.time_analytic(w) * 1e6
        print(f"  {w:5d} words: DES {des:7.1f} us   analytic {ana:7.1f} us")


if __name__ == "__main__":
    main()
