#!/usr/bin/env python
"""Power-efficiency study (the paper's Section IV / Table 3).

Measures (in simulation) HPL and POP under the power meter on BG/P and
the XT4/QC, reproduces the Green500 metric, and walks through the
paper's argument: the BG/P's 6.6x per-core power advantage shrinks to
~25-35% once you normalize to a fixed scientific throughput.

Usage::

    python examples/power_efficiency.py
"""

from repro.core import run_experiment
from repro.machines import BGP, XT4_QC, hpl_mflops_per_watt
from repro.power import build_table3, measure_hpl, measure_pop


def main() -> None:
    print("=== Wall-plug measurements (simulated meters) ===\n")
    for machine, cores in ((BGP, 8192), (XT4_QC, 30976)):
        hpl = measure_hpl(machine, cores)
        print(
            f"{machine.name:7s} HPL on {cores} cores: "
            f"{hpl.figure_of_merit / 1e3:6.1f} TF at {hpl.average_watts / 1e3:7.1f} kW "
            f"-> {hpl.mflops_per_watt:5.1f} MFlops/W"
        )
    pop = measure_pop(BGP, 8000)
    print(
        f"{'BG/P':7s} POP on 8000 cores: {pop.figure_of_merit:4.2f} SYD at "
        f"{pop.average_watts / 1e3:5.1f} kW"
    )
    print("  energy breakdown available per phase (baroclinic/barotropic/wait)")

    print("\n=== Headline ratios ===")
    wcore = XT4_QC.power.hpl_watts_per_core / BGP.power.hpl_watts_per_core
    green = hpl_mflops_per_watt(BGP, 8192) / hpl_mflops_per_watt(XT4_QC, 30976)
    print(f"Watts/core (HPL):      XT is {wcore:.1f}x hungrier   (paper: 6.6x)")
    print(f"Green500 MFlops/W:     BG/P {green:.2f}x better      (paper: 2.68x)")

    cols = {c.machine: c for c in build_table3([BGP, XT4_QC])}
    agg = cols["XT4/QC"].power_kw_for_12_syd / cols["BG/P"].power_kw_for_12_syd
    print(
        f"Power @ 12 POP SYD:    XT needs {100 * (agg - 1):.0f}% more aggregate kW "
        "(paper: 24%)"
    )
    print(
        "\nConclusion (paper Section IV): BG/P 'performs very well on power\n"
        "metrics across the board; however, its advantages are much less when\n"
        "considering science-driven workloads'."
    )

    print("\n=== Full Table 3 ===")
    print(run_experiment("table3"))


if __name__ == "__main__":
    main()
