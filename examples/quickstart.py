#!/usr/bin/env python
"""Quickstart: simulate MPI programs on BlueGene/P and Cray XT4 models.

Runs a ping-pong and a broadcast at message level on both machines,
prints their latency/bandwidth character (paper Table 2's headline:
BG/P = low latency, XT = high bandwidth; Fig. 3's headline: the BG/P
tree network makes broadcast almost free), then regenerates the paper's
Table 1.

Usage::

    python examples/quickstart.py
"""

from repro.machines import BGP, XT4_QC
from repro.simmpi import Cluster
from repro.core import run_experiment


def pingpong(comm, nbytes):
    """A classic two-rank ping-pong, written like an MPI program."""
    if comm.rank == 0:
        yield from comm.send(1, nbytes=nbytes)
        yield from comm.recv(src=1)
    elif comm.rank == 1:
        yield from comm.recv(src=0)
        yield from comm.send(0, nbytes=nbytes)
    return comm.now


def broadcast(comm, nbytes):
    yield from comm.bcast(nbytes, root=0)
    return comm.now


def main() -> None:
    print("=== Point-to-point character (Table 2) ===")
    for machine in (BGP, XT4_QC):
        small = Cluster(machine, ranks=2, mode="SMP").run(pingpong, 8)
        large = Cluster(machine, ranks=2, mode="SMP").run(pingpong, 1 << 20)
        latency_us = small.elapsed / 2 * 1e6
        bandwidth = (1 << 20) / (large.elapsed / 2) / 1e9
        print(
            f"{machine.name:7s}  latency {latency_us:6.2f} us   "
            f"bandwidth {bandwidth:5.2f} GB/s"
        )

    print("\n=== Broadcast of 32 KB to 256 ranks (Fig. 3c) ===")
    for machine in (BGP, XT4_QC):
        res = Cluster(machine, ranks=256, mode="VN").run(broadcast, 32 * 1024)
        network = "tree network" if machine.tree else "binomial software tree"
        print(f"{machine.name:7s}  {res.elapsed * 1e6:8.1f} us   ({network})")

    print("\n=== Table 1 (regenerated from the machine catalog) ===")
    print(run_experiment("table1"))


if __name__ == "__main__":
    main()
