#!/usr/bin/env python
"""Define a hypothetical machine and evaluate it with the full harness.

The machine models are plain dataclasses, so "what if" studies are a
few lines: here we sketch a "BG/P+" with doubled torus links and a
faster clock, then rerun the paper's POP and collective analyses on it
alongside the real 2008 machines.

Usage::

    python examples/custom_machine.py
"""

from dataclasses import replace

from repro.apps.pop.model import POP_SUSTAINED_GFLOPS, PopModel
from repro.core import format_table
from repro.machines import BGP, XT4_DC
from repro.simmpi import CostModel


def make_bgp_plus():
    """BG/P with 1.2 GHz cores and 850 MB/s torus links."""
    node = replace(
        BGP.node,
        core=replace(BGP.node.core, clock_hz=1200e6),
    )
    torus = replace(BGP.torus, link_bandwidth=850e6)
    return replace(BGP, name="BG/P+", node=node, torus=torus)


def main() -> None:
    bgp_plus = make_bgp_plus()
    print(f"Defined {bgp_plus.name}:")
    print(f"  peak/node: {bgp_plus.node.peak_flops / 1e9:.1f} GF "
          f"(BG/P: {BGP.node.peak_flops / 1e9:.1f})")
    print(f"  torus injection: {bgp_plus.torus.injection_bandwidth / 1e9:.1f} GB/s "
          f"(BG/P: {BGP.torus.injection_bandwidth / 1e9:.1f})")

    # Register a POP calibration for it: scale BG/P's sustained rate by
    # the clock ratio (same microarchitecture).
    POP_SUSTAINED_GFLOPS[bgp_plus.name] = (
        POP_SUSTAINED_GFLOPS["BG/P"] * 1200 / 850
    )

    print("\n=== POP tenth-degree on the three machines ===\n")
    rows = []
    for p in (8000, 22500, 40000):
        row = [p]
        for m in (BGP, bgp_plus, XT4_DC):
            try:
                row.append(round(PopModel(m).run(p).syd, 2))
            except ValueError:
                row.append("-")
        rows.append(row)
    print(format_table(["procs", "BG/P SYD", "BG/P+ SYD", "XT4/DC SYD"], rows))

    print("\n=== Network character at 4096 ranks ===\n")
    rows = []
    for m in (BGP, bgp_plus, XT4_DC):
        c = CostModel(m, "VN", 4096)
        rows.append(
            [
                m.name,
                round(c.p2p_time(8) * 1e6, 2),
                round(c.p2p_bandwidth / 1e9, 3),
                round(c.allreduce_time(32768) * 1e6, 1),
            ]
        )
    print(
        format_table(
            ["machine", "p2p latency (us)", "p2p BW (GB/s)", "allreduce 32KB (us)"],
            rows,
        )
    )

    print(
        "\nDoubling the torus links lifts bandwidth-bound communication but\n"
        "leaves the latency-bound barotropic solver untouched — the tree\n"
        "network already handled that."
    )


if __name__ == "__main__":
    main()
