#!/usr/bin/env python
"""Checkpoint/restart I/O planning on the BG/P I/O subsystem.

The paper's Sections I.A-I.C describe the I/O path the applications
used: compute nodes have *no* direct external connectivity; all traffic
funnels over the collective network to I/O nodes (1 per 64 compute
nodes at ORNL/ANL) and on through 10 GigE to GPFS (8 file servers, 24
DDN-backed LUNs).  The CAM study even hit "a system I/O performance
issue" that had to be fixed before data collection.

This example sizes checkpoint writes for the paper's applications:
how long does an S3D restart dump or a POP history file take, where is
the bottleneck, and why funnelling output through one rank (the classic
porting mistake) is catastrophic.

Usage::

    python examples/checkpoint_io_study.py
"""

from repro.apps.s3d import N_VARS
from repro.core import format_table
from repro.iosys import EUGENE_SCRATCH, IoForwarding
from repro.machines import BGP


def main() -> None:
    print("=== The Eugene I/O path (Sections I.B) ===\n")
    io = IoForwarding(BGP, compute_nodes=2048)  # the ORNL two-rack system
    print(f"I/O nodes: {io.io_nodes} (1 per {io.compute_per_ion} compute nodes)")
    for stage, bw in io.stage_bandwidths().items():
        print(f"  {stage:16s} {bw / 1e9:6.2f} GB/s")
    print(f"GPFS scratch: {EUGENE_SCRATCH.capacity_bytes / 1e12:.0f} TB, "
          f"{EUGENE_SCRATCH.file_servers} servers, {EUGENE_SCRATCH.luns} LUNs")

    print("\n=== Checkpoint sizes for the paper's applications ===\n")
    # S3D: 8192 VN ranks x 50^3 points x all conserved variables.
    s3d_bytes = 8192 * 50**3 * N_VARS * 8
    # POP tenth degree: full 3D state, ~40 prognostic levels x 6 fields.
    pop_bytes = 3600 * 2400 * 40 * 6 * 8
    # CAM FV 0.47x0.63: modest by comparison.
    cam_bytes = 384 * 576 * 26 * 8 * 8

    rows = []
    for name, nbytes, nodes in (
        ("S3D restart (8192 ranks)", s3d_bytes, 2048),
        ("POP history file", pop_bytes, 2000),
        ("CAM FV history", cam_bytes, 512),
    ):
        fwd = IoForwarding(BGP, compute_nodes=nodes)
        parallel = fwd.write(nbytes)
        funneled = fwd.write(nbytes, writers=1)
        rows.append(
            [
                name,
                f"{nbytes / 1e9:.1f}",
                f"{parallel.seconds:.1f}",
                parallel.bottleneck,
                f"{funneled.seconds:.0f}",
            ]
        )
    print(
        format_table(
            ["write", "GB", "parallel (s)", "bottleneck", "1-writer (s)"],
            rows,
        )
    )

    print(
        "\nFunnelled output is many times slower (one writer drives one tree\n"
        "link) — the shape of the 'system I/O performance issue' the CAM\n"
        "port hit (Section III.B), 'eliminated before collecting the data'."
    )

    print("\n=== Partition size vs achievable write bandwidth ===\n")
    rows = []
    for nodes in (64, 256, 1024, 2048, 8192, 40960):
        fwd = IoForwarding(BGP, compute_nodes=nodes)
        est = fwd.write(100e9)
        rows.append(
            [nodes, fwd.io_nodes, f"{est.bandwidth / 1e9:.2f}", est.bottleneck]
        )
    print(format_table(["compute nodes", "IONs", "GB/s", "bottleneck"], rows))
    print("\nSmall partitions are ION-limited; large ones hit the filesystem.")


if __name__ == "__main__":
    main()
