#!/usr/bin/env python
"""Tour of the real numerical kernels behind every application model.

The performance models are only credible because each application's
numerics exist for real at laptop scale.  This example runs them all:
POP's solvers, CAM's transforms, S3D's pressure wave, GYRO's field
solve, and an actual NVE molecular-dynamics integration — printing the
correctness figure each one is tested on.

Usage::

    python examples/mini_apps_tour.py
"""

import numpy as np

from repro.apps.cam import fv_advect_step, spectral_roundtrip_error
from repro.apps.gyro import poisson_solve_fft
from repro.apps.md import (
    lj_forces_bruteforce,
    lj_forces_celllist,
    make_lattice_system,
    velocity_verlet,
)
from repro.apps.pop import cg_solve, chrongear_solve
from repro.apps.s3d import pressure_wave_demo


def main() -> None:
    rng = np.random.default_rng(0)

    print("POP barotropic solvers (2-D implicit system):")
    b = rng.standard_normal((24, 24))
    std = cg_solve(b)
    cg = chrongear_solve(b)
    print(f"  standard CG : {std.iterations} iters, {std.reductions} reductions")
    print(f"  Chrono-Gear : {cg.iterations} iters, {cg.reductions} reductions"
          f"  (half the allreduces — the point of the variant)")
    print(f"  solutions agree to {np.max(np.abs(std.x - cg.x)):.2e}")

    print("\nCAM spectral transform (FFT + Legendre):")
    print(f"  roundtrip error on a band-limited field: {spectral_roundtrip_error():.2e}")

    print("CAM finite-volume advection (flux form):")
    q = rng.random((24, 24))
    q2 = fv_advect_step(q, u=0.4, v=-0.3, dx=1.0, dy=1.0, dt=1.0)
    print(f"  mass conservation error: {abs(q2.sum() - q.sum()):.2e}")

    print("\nS3D pressure-wave test problem (Section III.C):")
    d = pressure_wave_demo()
    print(f"  mass error {d['mass_error']:.2e}; the Gaussian split into two"
          f" waves (peak ratio {d['peak_ratio']:.2f}, center drop"
          f" {d['center_drop']:.4f})")

    print("\nGYRO gyrokinetic field solve (spectral Poisson):")
    rho = rng.standard_normal(96)
    phi = poisson_solve_fft(rho, alpha=2.0)
    k = 2 * np.pi * np.fft.fftfreq(96, d=1 / 96)
    resid = np.real(np.fft.ifft((k**2 + 2.0) * np.fft.fft(phi))) - rho
    print(f"  operator residual: {np.max(np.abs(resid)):.2e}")

    print("\nMolecular dynamics (LJ, cell lists, velocity Verlet):")
    sys_, pos = make_lattice_system(4, 1.3)
    pos = (pos + rng.uniform(-0.1, 0.1, pos.shape)) % np.array(sys_.box)
    f_ref, e_ref = lj_forces_bruteforce(pos, sys_.box, sys_.inner_cutoff)
    f_cl, e_cl = lj_forces_celllist(pos, sys_.box, sys_.inner_cutoff)
    print(f"  cell list vs brute force: max force error {np.max(np.abs(f_ref - f_cl)):.2e}")
    vel = 0.05 * rng.standard_normal(pos.shape)
    _, _, trace = velocity_verlet(pos, vel, sys_.box, sys_.inner_cutoff, 0.002, 40)
    drift = abs(trace[-1] - trace[0]) / abs(trace[0])
    print(f"  NVE energy drift over 40 steps: {100 * drift:.4f}%")


if __name__ == "__main__":
    main()
