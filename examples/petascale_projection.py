#!/usr/bin/env python
"""Project the evaluation to the paper's full 72-rack petascale BG/P.

Paper Section I.A: "A BG/P system with 72 racks (73,728 compute nodes,
or 294,912 cores) would have a peak performance of 1 PFlop/s."  Nobody
had built it yet at evaluation time; the machine models let us finish
the thought: HPL score, Green500 standing, POP throughput ceiling, and
the power bill — all from the same parameters that reproduced the
measured 2-rack and 40-rack systems.

Usage::

    python examples/petascale_projection.py
"""

from repro.apps.pop import MAX_BGP_PROCESSES, PopModel
from repro.core import format_table
from repro.kernels import HplModel
from repro.machines import BGP, XT4_QC, hpl_mflops_per_watt

RACKS = 72
NODES = RACKS * 1024
CORES = NODES * 4


def main() -> None:
    petascale = BGP.with_nodes(NODES)
    print(f"=== BG/P at {RACKS} racks ===\n")
    rows = [
        ["Compute nodes", NODES],
        ["Cores", CORES],
        ["Peak (PFlop/s)", round(petascale.peak_flops_total / 1e15, 4)],
        ["Footprint vs XT4 (racks for same peak)",
         round(petascale.peak_flops_total / (XT4_QC.cores_per_rack * XT4_QC.node.core.peak_flops) )],
    ]
    print(format_table(["quantity", "value"], rows))
    assert CORES == 294_912  # the paper's number

    print("\n=== Projected TOP500/Green500 entry ===\n")
    hpl = HplModel(petascale).run(CORES)
    watts = petascale.power.aggregate(CORES, "hpl")
    rows = [
        ["HPL Rmax (PFlop/s)", round(hpl.gflops / 1e6, 3)],
        ["HPL efficiency", round(hpl.efficiency, 3)],
        ["Power under HPL (MW)", round(watts / 1e6, 2)],
        ["MFlops/W", round(hpl_mflops_per_watt(petascale, CORES), 1)],
    ]
    print(format_table(["quantity", "value"], rows))

    print("\n=== POP tenth degree on the full machine ===\n")
    pop = PopModel(petascale)
    rows = []
    for p in (10000, 20000, MAX_BGP_PROCESSES):
        r = pop.run(p)
        rows.append([p, round(r.syd, 1), round(p * 7.3 / 1e3, 1)])
    print(format_table(["processes", "SYD", "power (kW)"], rows))
    print(
        f"\nThe {MAX_BGP_PROCESSES}-process MPI-datatype memory wall "
        "(Section III.A) binds before the machine does: petascale POP "
        "needs the code fix the authors were still hunting at publication."
    )

    print("\n=== Collectives keep scaling ===\n")
    from repro.simmpi import CostModel

    rows = []
    for cores in (8192, 65536, CORES):
        c = CostModel(petascale, "VN", cores)
        rows.append(
            [
                cores,
                round(c.barrier_time() * 1e6, 2),
                round(c.bcast_time(32 * 1024) * 1e6, 1),
                round(c.allreduce_time(32 * 1024, "float64") * 1e6, 1),
            ]
        )
    print(
        format_table(
            ["cores", "barrier (us)", "bcast 32KB (us)", "allreduce 32KB (us)"],
            rows,
        )
    )
    print("\nTree-depth growth is logarithmic: the collective networks were")
    print("built for exactly this extrapolation.")


if __name__ == "__main__":
    main()
