#!/usr/bin/env python
"""POP tenth-degree scaling study (the paper's Fig. 4 + Table 3 story).

Sweeps the Parallel Ocean Program model from 2,000 to 40,000 processes
on BG/P and the XT4, printing per-phase times, the SYD throughput
metric, the 3.6x/2.5x cross-machine factors, and the science-driven
power normalization that is the paper's headline conclusion.

Usage::

    python examples/pop_scaling_study.py
"""

from repro.apps.pop import PopModel, CG_SIGNATURE, CHRONGEAR_SIGNATURE
from repro.core import format_table
from repro.machines import BGP, XT4_DC


def main() -> None:
    procs = [2000, 4000, 8000, 16000, 22500, 32000, 40000]

    print("=== POP tenth-degree benchmark (3600 x 2400 x 40) ===\n")
    for machine in (BGP, XT4_DC):
        pop = PopModel(machine)
        rows = []
        for r in pop.sweep(procs):
            rows.append(
                [
                    r.processes,
                    round(r.baroclinic_s_per_day, 1),
                    round(r.barotropic_s_per_day, 2),
                    round(r.imbalance_s_per_day, 2),
                    round(r.syd, 2),
                ]
            )
        print(
            format_table(
                ["procs", "baroclinic s/day", "barotropic s/day", "imbalance s/day", "SYD"],
                rows,
                title=f"{machine.name} (VN mode, Chronopoulos-Gear solver)",
            )
        )
        print()

    b, x = PopModel(BGP), PopModel(XT4_DC)
    print("Cross-machine factors (paper: 3.6x at 8000, 2.5x at 22500):")
    for p in (8000, 22500):
        print(f"  {p:6d} processes: XT4 is {x.run(p).syd / b.run(p).syd:.2f}x faster")

    print("\nSolver variants at 8000 processes on BG/P (Fig. 4a):")
    for sig in (CG_SIGNATURE, CHRONGEAR_SIGNATURE):
        r = b.run(8000, solver=sig)
        print(f"  {sig.name:10s}: {r.syd:.2f} SYD")

    print("\nScience-driven power normalization (Table 3):")
    for machine, pop in ((BGP, b), (XT4_DC, x)):
        cores = pop.cores_for_syd(12.0)
        kw = cores * machine.power.normal_watts_per_core / 1e3
        print(f"  {machine.name:7s}: {cores:6d} cores for 12 SYD -> {kw:6.1f} kW")

    print("\nMemory wall (Section III.A):")
    try:
        b.run(48000)
    except MemoryError as exc:
        print(f"  48000 processes: {exc}")


if __name__ == "__main__":
    main()
