#!/usr/bin/env python
"""Collective-network study (the paper's Fig. 3 experiment).

Demonstrates the three collective effects the paper measured:

1. the tree network makes BG/P broadcast latency nearly independent of
   process count (vs the XT's log-growing software tree);
2. the tree ALU makes *double*-precision allreduce fast on BG/P while
   *single*-precision falls back to a slow software path;
3. the dedicated barrier network completes a full-machine barrier in
   microseconds.

Every point can also be cross-checked against the message-level
simulator (done here at small scale).

Usage::

    python examples/collective_networks.py
"""

from repro.core import format_table
from repro.imb import ImbBenchmark
from repro.machines import BGP, XT4_QC
from repro.simmpi import CostModel


def main() -> None:
    print("=== 1. Broadcast latency vs process count (32 KB payload) ===\n")
    rows = []
    for p in (16, 128, 1024, 8192, 30976):
        rows.append(
            [
                p,
                round(CostModel(BGP, "VN", p).bcast_time(32768) * 1e6, 1),
                round(CostModel(XT4_QC, "VN", p).bcast_time(32768) * 1e6, 1),
            ]
        )
    print(format_table(["processes", "BG/P (us)", "XT4/QC (us)"], rows))

    print("\n=== 2. Allreduce precision effect (8192 processes) ===\n")
    rows = []
    for nbytes in (64, 4096, 32768, 1 << 20):
        b = CostModel(BGP, "VN", 8192)
        x = CostModel(XT4_QC, "VN", 8192)
        rows.append(
            [
                nbytes,
                round(b.allreduce_time(nbytes, "float64") * 1e6, 1),
                round(b.allreduce_time(nbytes, "float32") * 1e6, 1),
                round(x.allreduce_time(nbytes, "float64") * 1e6, 1),
                round(x.allreduce_time(nbytes, "float32") * 1e6, 1),
            ]
        )
    print(
        format_table(
            ["bytes", "BG/P f64 (us)", "BG/P f32 (us)", "XT f64 (us)", "XT f32 (us)"],
            rows,
        )
    )
    print(
        "\n-> BG/P: float64 rides the tree ALU; float32 takes the software\n"
        "   path over the torus (the Fig. 3a effect).  The XT is agnostic."
    )

    print("\n=== 3. Barrier cost ===\n")
    for p in (1024, 8192, 30976):  # 30976 = all of Jaguar's cores
        b = CostModel(BGP, "VN", p).barrier_time() * 1e6
        x = CostModel(XT4_QC, "VN", p).barrier_time() * 1e6
        print(f"  {p:6d} ranks: BG/P {b:5.2f} us (barrier network)   XT {x:6.1f} us")

    print("\n=== Cross-check: message-level simulation at 64 ranks ===\n")
    for machine in (BGP, XT4_QC):
        bench = ImbBenchmark(machine)
        des = bench.measure_des("bcast", processes=64, nbytes=32768)
        ana = bench.size_sweep("bcast", processes=64, sizes=[32768])[0]
        print(
            f"  {machine.name:7s} bcast 32KB: DES {des.latency_us:7.1f} us   "
            f"analytic {ana.latency_us:7.1f} us"
        )


if __name__ == "__main__":
    main()
