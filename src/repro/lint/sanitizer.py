"""Runtime simulation sanitizer: deadlock, leak, and lost-send reports.

Static analysis cannot see every mistake — a recv whose matching send
is taken on another branch, a Request abandoned on an error path.  The
sanitizer watches one :class:`~repro.simmpi.comm.Cluster` run and turns
the two silent failure modes of simulated MPI into loud, attributed
errors:

* **Deadlock**: when the event queue runs dry while rank processes are
  still alive, it reconstructs the rank wait-graph from the transport's
  posted-receive queues, pending rendezvous sends, and collective
  rendezvous state, reports who is blocked on whom (with sources and
  tags), and names the cycle when there is one.
* **Leaks at exit**: Requests created by ``isend``/``irecv`` but never
  completed through ``wait``/``waitall``, and messages that were sent
  but never received by anyone.

Enable it per run (``cluster.run(program, sanitize=True)``) or for a
whole pytest test via the ``sanitize_runs`` fixture (see
``tests/conftest.py``), which calls :func:`force_sanitize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..simengine.events import AllOf, AnyOf, Event

__all__ = [
    "SanitizerError",
    "DeadlockError",
    "RequestLeakError",
    "UnmatchedSendError",
    "BlockedRank",
    "SanitizerReport",
    "Sanitizer",
    "force_sanitize",
]


class SanitizerError(RuntimeError):
    """Base class for everything the sanitizer raises.

    The structured :class:`SanitizerReport` is available as ``report``.
    """

    def __init__(self, report: "SanitizerReport") -> None:
        super().__init__(report.format())
        self.report = report


class DeadlockError(SanitizerError):
    """The simulation starved with rank processes still blocked."""


class RequestLeakError(SanitizerError):
    """isend/irecv Requests were abandoned without a wait."""


class UnmatchedSendError(SanitizerError):
    """Messages were sent but nobody ever received them."""


@dataclass(frozen=True)
class BlockedRank:
    """One rank's blocking operation at deadlock time."""

    rank: int
    op: str  # "recv" | "send" | "collective" | "unknown"
    peer: Optional[int] = None
    tag: Optional[int] = None
    detail: str = ""

    def format(self) -> str:
        if self.op == "recv":
            src = "any" if self.peer is None else str(self.peer)
            tag = "any" if self.tag is None else str(self.tag)
            return f"rank {self.rank}: blocked in recv(src={src}, tag={tag})"
        if self.op == "send":
            return (
                f"rank {self.rank}: rendezvous send to rank {self.peer} "
                f"(tag={self.tag}) waiting for a matching recv"
            )
        if self.op == "collective":
            return f"rank {self.rank}: blocked in collective {self.detail}"
        return f"rank {self.rank}: blocked ({self.detail or 'unidentified event'})"


@dataclass
class SanitizerReport:
    """Structured result of a sanitizer check."""

    blocked: List[BlockedRank] = field(default_factory=list)
    cycle: Optional[List[int]] = None
    leaked_requests: List[str] = field(default_factory=list)
    unmatched_sends: List[str] = field(default_factory=list)
    #: non-empty when an attached fault injector dropped messages: the
    #: "deadlock" may really be a fault-kill (lost message, no retry)
    fault_note: str = ""

    def format(self) -> str:
        lines: List[str] = []
        if self.blocked:
            lines.append(
                f"deadlock: event queue ran dry with {len(self.blocked)} "
                "rank(s) still blocked"
            )
            lines.extend(f"  {b.format()}" for b in self.blocked)
            if self.cycle:
                arrow = " -> ".join(str(r) for r in self.cycle)
                lines.append(f"  wait cycle: {arrow}")
            if self.fault_note:
                lines.append(f"  note: {self.fault_note}")
        if self.leaked_requests:
            lines.append(
                f"{len(self.leaked_requests)} request(s) never waited on:"
            )
            lines.extend(f"  {d}" for d in self.leaked_requests)
        if self.unmatched_sends:
            lines.append(
                f"{len(self.unmatched_sends)} send(s) with no matching receive:"
            )
            lines.extend(f"  {d}" for d in self.unmatched_sends)
        return "\n".join(lines) if lines else "sanitizer: clean"


class Sanitizer:
    """Watches one Cluster.run; see the module docstring."""

    def __init__(self, cluster: Any) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self._requests: List[Tuple[int, Any]] = []
        self._procs: Sequence[Any] = ()
        self._prev_hook = None
        self._installed = False

    # -- lifecycle (driven by Cluster.run) --------------------------------
    def attach(self, procs: Sequence[Any]) -> None:
        """Register the rank processes and install the starvation hook."""
        self._procs = list(procs)
        self._prev_hook = self.env.on_empty_schedule
        self.env.on_empty_schedule = self._on_empty_schedule
        self._installed = True

    def detach(self) -> None:
        """Restore the engine's previous starvation hook."""
        if self._installed:
            self.env.on_empty_schedule = self._prev_hook
            self._installed = False

    def track_request(self, rank: int, request: Any) -> None:
        """Record an isend/irecv Request for leak checking."""
        self._requests.append((rank, request))

    def drain(self) -> None:
        """Process leftover events so in-flight messages reach the queues."""
        self.env.run()

    def finish(self) -> None:
        """Post-run leak checks; raises when anything was left behind."""
        recovery = getattr(self.cluster, "recovery", None)
        if recovery is not None and recovery.dead_ranks:
            # Ranks died and the run recovered: orphaned requests and
            # revoked in-flight traffic are *expected* debris of the
            # failure, not application bugs.  Leak checks would only
            # re-report the failure the program already survived.
            return
        report = SanitizerReport()
        for rank, req in self._requests:
            if not req._waited:
                state = "completed" if req.complete else "still pending"
                report.leaked_requests.append(
                    f"rank {rank}: {req.kind} request (peer="
                    f"{'any' if req.peer is None else req.peer}, "
                    f"tag={'any' if req.tag is None else req.tag}) "
                    f"{state} but never waited on"
                )
        transport = self.cluster.transport
        for dst in sorted(transport.queues):
            for envl in transport.queues[dst].unexpected:
                msg = envl.msg
                report.unmatched_sends.append(
                    f"rank {msg.src} -> rank {msg.dst}: {msg.nbytes} B "
                    f"(tag={msg.tag}) delivered but never received"
                )
        if report.leaked_requests:
            raise RequestLeakError(report)
        if report.unmatched_sends:
            raise UnmatchedSendError(report)

    # -- deadlock analysis -------------------------------------------------
    def _on_empty_schedule(self) -> Optional[BaseException]:
        report = self._deadlock_report()
        if report.blocked:
            return DeadlockError(report)
        return None  # fall back to the engine's generic error

    def _deadlock_report(self) -> SanitizerReport:
        index = self._event_index()
        report = SanitizerReport()
        edges: Dict[int, int] = {}
        for rank, proc in enumerate(self._procs):
            if not proc.is_alive:
                continue
            blocked = self._classify(rank, proc._target, index)
            report.blocked.append(blocked)
            if blocked.op in ("recv", "send") and blocked.peer is not None:
                edges[rank] = blocked.peer
        report.cycle = self._find_cycle(edges)
        report.fault_note = self._fault_note()
        return report

    def _fault_note(self) -> str:
        """Attribute a hang to injected faults, naming the (missing)
        mitigation policies so the fix is one import away."""
        injector = getattr(self.cluster, "fault_injector", None)
        if injector is None:
            return ""
        recovery = getattr(self.cluster, "recovery", None)
        notes: List[str] = []
        if injector.stats.drops > 0:
            note = (
                f"a fault injector dropped {injector.stats.drops} "
                "message(s) during this run with no retransmission — "
                "this hang is likely a fault-kill, not an application "
                "deadlock (enable a ReliabilityPolicy to surface it as "
                "a FaultError instead)"
            )
            notes.append(note)
        if injector.stats.failed_nodes > 0:
            if recovery is None:
                notes.append(
                    f"{injector.stats.failed_nodes} node(s) failed with "
                    "no RecoveryPolicy active — peers of the dead ranks "
                    "block forever; run under Cluster.run(recovery="
                    "RecoveryPolicy(...)) to raise RankFailedError and "
                    "shrink, or restart from checkpoints"
                )
            else:
                notes.append(
                    f"{injector.stats.failed_nodes} node(s) failed under "
                    f"{recovery.policy.describe()} — the recovery runtime "
                    "was active, so a rank likely finished (or never "
                    "joined) before the failure and cannot take part in "
                    "the survivors' agreement"
                )
        return "; ".join(notes)

    def _event_index(self) -> Dict[int, BlockedRank]:
        """Map id(event) -> what waiting on that event means."""
        from .. import simmpi  # local import to avoid a hard cycle

        index: Dict[int, BlockedRank] = {}
        transport = self.cluster.transport
        for dst, queue in transport.queues.items():
            for pr in queue.posted:
                index[id(pr.event)] = BlockedRank(
                    rank=dst,
                    op="recv",
                    peer=None if pr.src == simmpi.ANY_SOURCE else pr.src,
                    tag=None if pr.tag == simmpi.ANY_TAG else pr.tag,
                )
            for envl in queue.unexpected:
                done = envl.sender_done
                if done is not None and not done.triggered:
                    index[id(done)] = BlockedRank(
                        rank=envl.msg.src,
                        op="send",
                        peer=envl.msg.dst,
                        tag=envl.msg.tag,
                    )
        for idx, sync in self.cluster._op_syncs.items():
            if sync.remaining > 0 and not sync.event.triggered:
                index[id(sync.event)] = BlockedRank(
                    rank=-1,
                    op="collective",
                    detail=(
                        f"{sync.kind!r} (op #{idx}, waiting for "
                        f"{sync.remaining} more rank(s))"
                    ),
                )
        return index

    def _classify(
        self, rank: int, target: Optional[Event], index: Dict[int, BlockedRank]
    ) -> BlockedRank:
        if target is None:
            return BlockedRank(rank=rank, op="unknown", detail="no awaited event")
        hit = index.get(id(target))
        if hit is not None:
            return BlockedRank(
                rank=rank, op=hit.op, peer=hit.peer, tag=hit.tag, detail=hit.detail
            )
        if isinstance(target, (AllOf, AnyOf)):
            for child in target.events:
                if child.triggered:
                    continue
                hit = index.get(id(child))
                if hit is not None:
                    return BlockedRank(
                        rank=rank,
                        op=hit.op,
                        peer=hit.peer,
                        tag=hit.tag,
                        detail=hit.detail or "inside waitall",
                    )
            return BlockedRank(rank=rank, op="unknown", detail="waitall/any_of")
        return BlockedRank(
            rank=rank, op="unknown", detail=type(target).__name__.lower()
        )

    @staticmethod
    def _find_cycle(edges: Dict[int, int]) -> Optional[List[int]]:
        """First cycle of the (functional) wait graph, or None."""
        done: set = set()
        for start in sorted(edges):
            if start in done:
                continue
            path: List[int] = []
            seen: Dict[int, int] = {}
            node = start
            while node in edges and node not in done:
                if node in seen:
                    return path[seen[node]:] + [node]
                seen[node] = len(path)
                path.append(node)
                node = edges[node]
            done.update(path)
        return None


def force_sanitize(monkeypatch: Any) -> None:
    """Patch ``Cluster.run`` so every run defaults to ``sanitize=True``.

    Designed for pytest's ``monkeypatch`` fixture; existing suites can
    opt whole tests in without touching each ``run`` call.
    """
    from ..simmpi.comm import Cluster

    original = Cluster.run

    def run(self, program, *args, **kwargs):
        kwargs.setdefault("sanitize", True)
        return original(self, program, *args, **kwargs)

    monkeypatch.setattr(Cluster, "run", run)
