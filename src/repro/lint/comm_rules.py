"""Rules guarding the generator-coroutine MPI programming model.

Simulated-MPI operations (``comm.send``, ``comm.recv``, the
collectives, ``comm.compute``) are generator functions: calling one
builds a coroutine but performs **nothing** until it is driven with
``yield from``.  Forgetting the ``yield from`` therefore silently skips
the operation — the single most dangerous mistake in this codebase, and
one Python gives no warning for.  These rules catch the three shapes of
that mistake statically:

* a bare expression-statement call (``comm.send(1, 8)``);
* ``yield comm.send(...)`` — hands the engine a generator object, not
  an :class:`~repro.simengine.events.Event`;
* ``yield from env.timeout(...)`` — the inverse confusion: event
  factories return events to be ``yield``-ed, not iterated.

Matching is name-based (any ``x.send(...)``), which is the right
trade-off here: the repository reserves these method names for
simulated-MPI surfaces, and false positives can be silenced with
``# simlint: ignore[yield-from-comm]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .findings import Finding
from .rules import register, Rule, SourceFile

__all__ = ["YieldFromCommRule", "GENERATOR_METHODS", "EVENT_FACTORIES", "REQUEST_FACTORIES"]

#: Methods that return a generator coroutine and must be ``yield from``-ed.
GENERATOR_METHODS = frozenset(
    {
        "send",
        "recv",
        "sendrecv",
        "wait",
        "waitall",
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "allgather",
        "reduce_scatter",
        "gather",
        "scatter",
        "alltoall",
        "compute",
    }
)

#: Module-level generator functions (the software-collective menu).
GENERATOR_FUNCTIONS = frozenset(
    {
        "dissemination_barrier",
        "binomial_bcast",
        "binomial_reduce",
        "binomial_gather",
        "binomial_scatter",
        "recursive_doubling_allreduce",
        "rabenseifner_allreduce",
        "software_allreduce",
        "recursive_halving_reduce_scatter",
        "ring_allgather",
        "bruck_alltoall",
        "pairwise_alltoall",
        "halo_program",
    }
)

#: Methods that construct and return an Event (to be ``yield``-ed).
EVENT_FACTORIES = frozenset({"timeout", "all_of", "any_of"})

#: Methods returning a Request handle that must be bound and waited on.
REQUEST_FACTORIES = frozenset({"isend", "irecv"})


def _call_name(call: ast.Call) -> Optional[str]:
    """The method/function name of a call, or None for exotic callees."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_method(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Attribute)


@register
class YieldFromCommRule(Rule):
    """Catch simulated-MPI coroutines that are built but never driven."""

    id = "yield-from-comm"
    description = (
        "comm/engine coroutine called but not driven with 'yield from' "
        "(silent no-op), or yielded/iterated with the wrong keyword"
    )

    def check(self, tree: ast.AST, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                yield from self._check_bare_call(src, node.value)
            elif isinstance(node, ast.Yield):
                yield from self._check_yield(src, node)
            elif isinstance(node, ast.YieldFrom):
                yield from self._check_yield_from(src, node)

    # -- the three mistake shapes -----------------------------------------
    def _check_bare_call(self, src: SourceFile, call: ast.Call) -> Iterator[Finding]:
        name = _call_name(call)
        if name is None:
            return
        if name in GENERATOR_METHODS and _is_method(call):
            yield self.finding(
                src,
                call,
                f"result of '{name}(...)' is discarded — a simulated-MPI "
                "coroutine does nothing until driven with 'yield from'",
            )
        elif name in GENERATOR_FUNCTIONS and not _is_method(call):
            yield self.finding(
                src,
                call,
                f"collective generator '{name}(...)' is discarded — drive "
                "it with 'yield from'",
            )
        elif name in REQUEST_FACTORIES and _is_method(call):
            yield self.finding(
                src,
                call,
                f"'{name}(...)' returns a Request that is discarded — bind "
                "it and complete it with 'yield from comm.wait(req)'",
            )
        elif name in EVENT_FACTORIES and _is_method(call):
            yield self.finding(
                src,
                call,
                f"'{name}(...)' builds an Event that is discarded — "
                "'yield' it to wait, or drop the call",
            )

    def _check_yield(self, src: SourceFile, node: ast.Yield) -> Iterator[Finding]:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        name = _call_name(call)
        if name is None:
            return
        if (name in GENERATOR_METHODS and _is_method(call)) or (
            name in GENERATOR_FUNCTIONS and not _is_method(call)
        ):
            yield self.finding(
                src,
                call,
                f"'yield {name}(...)' hands the engine a generator, not an "
                "Event — use 'yield from'",
            )

    def _check_yield_from(self, src: SourceFile, node: ast.YieldFrom) -> Iterator[Finding]:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        name = _call_name(call)
        if name in EVENT_FACTORIES and _is_method(call):
            yield self.finding(
                src,
                call,
                f"'{name}(...)' returns an Event, which is not iterable — "
                "use 'yield', not 'yield from'",
            )
