"""simlint: static analysis + runtime sanitizer for the simulator.

Two layers guard the invariants everything else rests on:

* **Static rules** (stdlib ``ast``, no dependencies) catch the
  mistakes Python never warns about in this codebase's generator-based
  MPI style — a ``comm.send`` without ``yield from`` is a silent no-op,
  a ``time.time()`` breaks the identical-traces determinism promise.
  On top of the syntactic rules, the **flow layer**
  (:mod:`repro.lint.flow`) builds per-function CFGs and a call graph
  and proves program-level properties: rank-guarded collectives
  (static deadlocks), leaked isend/irecv requests, blocking send/recv
  cycles, and host-nondeterminism tainting simulated state.
  Run everything with ``repro lint [paths]`` or :func:`lint_paths`
  (``--no-flow`` / ``flow=False`` skips the dataflow layer).
* **Runtime sanitizer** (``cluster.run(program, sanitize=True)``)
  reconstructs the rank wait-graph at deadlock and reports leaked
  Requests / unreceived messages at exit — the dynamic twin of the
  flow analyses, and the oracle the flow fixtures are validated
  against.

See ``docs/linting.md`` for the rule catalogue and suppression syntax
(``# simlint: ignore[rule-id]``).
"""

from .findings import Finding, Severity, Suppressions
from .flow import analyze_files, FLOW_RULE_IDS, FlowAnalyzer
from .rules import all_rules, register, Rule, rule_ids, SourceFile
from .runner import (
    lint_paths,
    lint_text,
    LintResult,
    render_github,
    render_json,
    render_text,
)
from .sanitizer import (
    BlockedRank,
    DeadlockError,
    force_sanitize,
    RequestLeakError,
    Sanitizer,
    SanitizerError,
    SanitizerReport,
    UnmatchedSendError,
)

__all__ = [
    "Finding",
    "Severity",
    "Suppressions",
    "Rule",
    "SourceFile",
    "all_rules",
    "register",
    "rule_ids",
    "LintResult",
    "lint_paths",
    "lint_text",
    "render_github",
    "render_json",
    "render_text",
    "analyze_files",
    "FlowAnalyzer",
    "FLOW_RULE_IDS",
    "BlockedRank",
    "DeadlockError",
    "RequestLeakError",
    "Sanitizer",
    "SanitizerError",
    "SanitizerReport",
    "UnmatchedSendError",
    "force_sanitize",
]
