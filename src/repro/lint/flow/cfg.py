"""Per-function control-flow graphs for the flow analyses.

The graph is statement-granular: every simple statement is one
:class:`Node`, and ``If``/``While``/``For`` tests become *branch*
nodes with labelled ``true``/``false`` out-edges.  Two virtual nodes
bracket the function: ``entry`` and ``exit`` (normal completion);
``raise`` edges lead to a separate ``exc_exit`` so analyses can
reason about normal paths only (a request abandoned because the whole
simulation aborted is not a leak worth reporting).

Supported control constructs: ``if``/``elif``/``else``, ``while``
(with ``else``), ``for`` (with ``else``), ``break``/``continue``,
``return``, ``raise``, ``try``/``except``/``else``/``finally``,
``with``, and ``match``.  Nested function and class definitions are
opaque single statements — each function gets its own CFG.

Deliberate approximations (documented in ``docs/linting.md``):

* exceptions may fire from any statement, but the graph only routes
  *explicit* ``raise`` statements (and whole ``try`` bodies) to the
  handlers — implicit exception edges would drown every analysis in
  phantom paths;
* ``while`` loops always get an exit edge unless the test is the
  literal ``True`` and the body contains no ``break``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

__all__ = ["Node", "CFG", "build_cfg"]


class Node:
    """One CFG node: a statement, a branch test, or a virtual marker."""

    __slots__ = ("index", "kind", "stmt", "succs", "preds")

    def __init__(self, index: int, kind: str, stmt: Optional[ast.stmt] = None) -> None:
        self.index = index
        self.kind = kind  # "entry" | "exit" | "exc-exit" | "stmt" | "branch"
        self.stmt = stmt
        self.succs: List[Tuple["Node", str]] = []
        self.preds: List[Tuple["Node", str]] = []

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def successors(self, label: Optional[str] = None) -> List["Node"]:
        return [n for n, lab in self.succs if label is None or lab == label]

    def __repr__(self) -> str:  # pragma: no cover
        what = ast.dump(self.stmt)[:40] if self.stmt is not None else ""
        return f"<Node {self.index} {self.kind} {what}>"


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: List[Node] = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.exc_exit = self._new("exc-exit")

    def _new(self, kind: str, stmt: Optional[ast.stmt] = None) -> Node:
        node = Node(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        return node

    def add_edge(self, src: Node, dst: Node, label: str = "") -> None:
        src.succs.append((dst, label))
        dst.preds.append((src, label))

    def reachable_from(
        self, start: Iterable[Node], stop: Optional[Node] = None
    ) -> Set[Node]:
        """Every node reachable from ``start`` (inclusive) along edges.

        ``stop`` is not expanded when reached — analyses use the branch
        node itself as the stop so loop back-edges don't leak one arm's
        region into the other's.
        """
        seen: Set[Node] = set()
        stack = list(start)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node is stop:
                continue
            stack.extend(succ for succ, _ in node.succs)
        return seen

    def statements(self) -> Iterator[Node]:
        """The real (non-virtual) nodes, in creation order."""
        for node in self.nodes:
            if node.kind in ("stmt", "branch"):
                yield node


class _Builder:
    """Recursive-descent CFG construction (see module docstring)."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: (continue_target, break_collector) per enclosing loop
        self.loops: List[Tuple[Node, List[Node]]] = []
        #: current targets of a raise: handler entries, else exc_exit
        self.exc_targets: List[List[Tuple[Node, str]]] = []

    # ``frontier``: (node, label) pairs whose execution falls through to
    # whatever comes next.
    def build(
        self, stmts: List[ast.stmt], frontier: List[Tuple[Node, str]]
    ) -> List[Tuple[Node, str]]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code: stop wiring
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _join(self, frontier: List[Tuple[Node, str]], node: Node) -> None:
        for src, label in frontier:
            self.cfg.add_edge(src, node, label)

    def _simple(self, stmt: ast.stmt, frontier, kind: str = "stmt") -> Node:
        node = self.cfg._new(kind, stmt)
        self._join(frontier, node)
        return node

    def _raise_to(self, node: Node) -> None:
        """Wire an exception edge from ``node`` to the active handlers."""
        if self.exc_targets:
            for target, label in self.exc_targets[-1]:
                self.cfg.add_edge(node, target, label)
        else:
            self.cfg.add_edge(node, self.cfg.exc_exit, "raise")

    def _stmt(self, stmt: ast.stmt, frontier) -> List[Tuple[Node, str]]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._simple(stmt, frontier)
            return self.build(stmt.body, [(node, "")])
        if isinstance(stmt, ast.Return):
            node = self._simple(stmt, frontier)
            self.cfg.add_edge(node, self.cfg.exit, "return")
            return []
        if isinstance(stmt, ast.Raise):
            node = self._simple(stmt, frontier)
            self._raise_to(node)
            return []
        if isinstance(stmt, ast.Break):
            node = self._simple(stmt, frontier)
            if self.loops:
                self.loops[-1][1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._simple(stmt, frontier)
            if self.loops:
                self.cfg.add_edge(node, self.loops[-1][0], "continue")
            return []
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        # Everything else — including nested FunctionDef/ClassDef,
        # which are *definitions*, not control flow — is one plain node.
        node = self._simple(stmt, frontier)
        return [(node, "")]

    def _if(self, stmt: ast.If, frontier) -> List[Tuple[Node, str]]:
        branch = self._simple(stmt, frontier, kind="branch")
        out = self.build(stmt.body, [(branch, "true")])
        if stmt.orelse:
            out += self.build(stmt.orelse, [(branch, "false")])
        else:
            out += [(branch, "false")]
        return out

    def _loop(self, stmt, frontier) -> List[Tuple[Node, str]]:
        branch = self._simple(stmt, frontier, kind="branch")
        breaks: List[Node] = []
        self.loops.append((branch, breaks))
        body_out = self.build(stmt.body, [(branch, "true")])
        self._join(body_out, branch)  # back edge
        self.loops.pop()
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and stmt.test.value is True
        )
        out: List[Tuple[Node, str]] = []
        if not infinite:
            out.append((branch, "false"))
        if stmt.orelse and out:
            out = self.build(stmt.orelse, out)
        out += [(b, "break") for b in breaks]
        return out

    def _try(self, stmt: ast.Try, frontier) -> List[Tuple[Node, str]]:
        head = self._simple(stmt, frontier)
        handler_entries: List[Tuple[Node, str]] = []
        handler_nodes: List[Node] = []
        for handler in stmt.handlers:
            node = self.cfg._new("stmt", handler)
            handler_nodes.append(node)
            handler_entries.append((node, "except"))
            self.cfg.add_edge(head, node, "except")
        if not stmt.handlers:
            handler_entries = [(self.cfg.exc_exit, "raise")]
        self.exc_targets.append(handler_entries)
        body_out = self.build(stmt.body, [(head, "")])
        self.exc_targets.pop()
        if stmt.orelse:
            body_out = self.build(stmt.orelse, body_out)
        out = list(body_out)
        for node in handler_nodes:
            out += self.build(stmt.handlers[handler_nodes.index(node)].body, [(node, "")])
        if stmt.finalbody:
            out = self.build(stmt.finalbody, out)
        return out

    def _match(self, stmt: ast.Match, frontier) -> List[Tuple[Node, str]]:
        branch = self._simple(stmt, frontier, kind="branch")
        out: List[Tuple[Node, str]] = []
        exhaustive = False
        for case in stmt.cases:
            out += self.build(case.body, [(branch, "true")])
            if isinstance(case.pattern, ast.MatchAs) and case.pattern.pattern is None:
                exhaustive = True  # wildcard ``case _:``
        if not exhaustive:
            out.append((branch, "false"))
        return out


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of a ``FunctionDef``/``AsyncFunctionDef`` (or any
    node with a ``body`` list of statements)."""
    cfg = CFG(func)
    builder = _Builder(cfg)
    frontier = builder.build(list(getattr(func, "body", [])), [(cfg.entry, "")])
    for src, label in frontier:
        cfg.add_edge(src, cfg.exit, label or "fall")
    return cfg
