"""Drive the four flow analyses over a batch of parsed files.

The analyzer is deliberately separate from the per-file ``Rule``
registry: flow analyses see the *whole batch at once* (so the call
graph can resolve helpers across modules) and only then emit per-file
findings.  The runner merges these with the syntactic rules' findings
and applies the same ``# simlint: ignore[...]`` suppressions.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from ..findings import Finding
from ..rules import SourceFile
from .callgraph import CallGraph, index_functions
from .cfg import build_cfg
from .collectives import check_collective_matching
from .facts import rank_tainted_names
from .peers import check_blocking_cycles
from .requests import check_request_lifecycle
from .taint import check_determinism_taint

__all__ = ["FlowAnalyzer", "analyze_files", "FLOW_RULE_IDS"]

#: Stable ids of the flow passes (for --list-rules and suppressions).
FLOW_RULE_IDS = (
    "flow-collective-match",
    "flow-request-leak",
    "flow-blocking-cycle",
    "flow-determinism-taint",
)

FLOW_RULE_DESCRIPTIONS = {
    "flow-collective-match": (
        "collective reachable only under a rank-dependent branch "
        "(static deadlock: some ranks never enter it)"
    ),
    "flow-request-leak": (
        "isend/irecv request escapes on some path without wait/waitall "
        "(static twin of the sanitizer's leaked-request report)"
    ),
    "flow-blocking-cycle": (
        "static send/recv peer graph has an unmatched recv or a "
        "symmetric blocking-send cycle"
    ),
    "flow-determinism-taint": (
        "wall-clock/RNG/set-order value flows into simulated state "
        "(timeout, compute, MPI args, state attributes)"
    ),
}


class FlowAnalyzer:
    """CFG + call-graph analyses over ``(SourceFile, ast.Module)`` pairs."""

    def __init__(self, files: Iterable[Tuple[SourceFile, ast.Module]]) -> None:
        self.files = list(files)
        self.functions = index_functions(self.files)
        self.graph = CallGraph(self.functions)
        for fn in self.functions:
            fn.cfg = build_cfg(fn.node)
            fn.rank_names = rank_tainted_names(fn.node)

    def run(self) -> List[Finding]:
        findings: List[Finding] = []
        # Round 1: request lifecycle, summaries only.  A ``return req``
        # upgrades its function's returns-request summary, which round 2
        # needs at every call site regardless of definition order.
        for fn in self.functions:
            for _ in check_request_lifecycle(fn, self.graph):
                pass
        for fn in self.functions:
            findings.extend(check_collective_matching(fn, self.graph))
            findings.extend(check_request_lifecycle(fn, self.graph))
            findings.extend(check_blocking_cycles(fn))
            findings.extend(check_determinism_taint(fn))
        return sorted(findings)


def analyze_files(files: Iterable[Tuple[SourceFile, ast.Module]]) -> List[Finding]:
    """One-shot convenience wrapper around :class:`FlowAnalyzer`."""
    return FlowAnalyzer(files).run()
