"""repro.lint.flow: CFG + dataflow analyses for the simulated-MPI idiom.

Where the syntactic simlint rules ask "does this call *look* wrong?",
the flow layer asks "can this *program* go wrong?": it builds
per-function control-flow graphs and an interprocedural call graph
over the lint batch, then runs four analyses on them —

* **collective matching** — a collective reachable only under a
  rank-dependent branch is a static deadlock;
* **request lifecycle** — an ``isend``/``irecv`` request that escapes
  without ``wait``/``waitall`` on some path;
* **blocking cycles** — guaranteed-unmatched recvs and symmetric
  blocking-send cycles in literal peer/tag programs;
* **determinism taint** — wall-clock / RNG / set-iteration-order
  values flowing into simulated state.

Run via ``repro lint`` (on by default; ``--no-flow`` opts out) or
:func:`repro.lint.lint_paths`.  See ``docs/linting.md`` for what each
pass proves and its blind spots.
"""

from .analyzer import analyze_files, FLOW_RULE_DESCRIPTIONS, FLOW_RULE_IDS, FlowAnalyzer
from .callgraph import CallGraph, index_functions
from .cfg import build_cfg, CFG, Node

__all__ = [
    "analyze_files",
    "FlowAnalyzer",
    "FLOW_RULE_IDS",
    "FLOW_RULE_DESCRIPTIONS",
    "CallGraph",
    "index_functions",
    "build_cfg",
    "CFG",
    "Node",
]
