"""Collective-matching: rank-guarded collectives are static deadlocks.

A collective (``barrier``, ``allreduce``, ``bcast``, …) completes only
when *every* rank of the communicator enters it.  A collective that is
reachable under a rank-dependent branch — ``if comm.rank == 0:`` — but
not on the sibling paths is therefore a guaranteed deadlock: some ranks
arrive, the rest never do.

The check runs on the CFG.  For every branch node whose test is
rank-dependent, the *exclusive region* of each side is computed (nodes
reachable from that successor edge but not from the other), and the
multisets of collective kinds in the two regions are compared; every
unmatched collective call is flagged.  Matched shapes like::

    if comm.rank == 0:
        yield from comm.bcast(n, root=0)
    else:
        yield from comm.bcast(n, root=0)

are clean — both sides perform the same collective sequence kinds —
while an early ``return`` under a rank guard followed by a collective
is caught, because the collective lands in the fall-through side's
exclusive region.

Interprocedural: a call to a helper whose summary performs collectives
(see :class:`~repro.lint.flow.callgraph.CallGraph`) counts as those
collectives at the call site.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, Set, Tuple

from ..findings import Finding, Severity
from .callgraph import CallGraph
from .cfg import Node
from .facts import FuncInfo, is_rank_dependent, node_calls

__all__ = ["check_collective_matching", "RULE_ID"]

RULE_ID = "flow-collective-match"


def _node_collectives(node: Node, graph: CallGraph) -> List[Tuple[str, object]]:
    """(kind, call) pairs for the collectives one CFG node performs."""
    if node.stmt is None:
        return []
    out: List[Tuple[str, object]] = []
    for call in node_calls(node.stmt):
        for kind in sorted(graph.call_collective_kinds(call)):
            out.append((kind, call))
    return out


def check_collective_matching(fn: FuncInfo, graph: CallGraph) -> Iterator[Finding]:
    cfg = fn.cfg
    rank_names = fn.rank_names
    # Cache per-node collective kinds once per function.
    kinds_at: Dict[Node, List[Tuple[str, object]]] = {
        n: _node_collectives(n, graph) for n in cfg.statements()
    }
    if not any(kinds_at.values()):
        return
    for branch in cfg.statements():
        if branch.kind != "branch":
            continue
        test = getattr(branch.stmt, "test", None)
        if test is None:  # for-loops: the iterable decides the trip count
            test = getattr(branch.stmt, "iter", None)
        if test is None or not is_rank_dependent(test, rank_names):
            continue
        true_side = cfg.reachable_from(branch.successors("true"), stop=branch)
        false_side = cfg.reachable_from(branch.successors("false"), stop=branch)
        only_true = true_side - false_side
        only_false = false_side - true_side
        true_counts = Counter(k for n in only_true for k, _ in kinds_at.get(n, ()))
        false_counts = Counter(k for n in only_false for k, _ in kinds_at.get(n, ()))
        for region, counts, other in (
            (only_true, true_counts, false_counts),
            (only_false, false_counts, true_counts),
        ):
            unmatched = counts - other
            if not unmatched:
                continue
            reported: Set[int] = set()
            budget = dict(unmatched)
            for node in sorted(region, key=lambda n: n.index):
                for kind, call in kinds_at.get(node, ()):
                    if budget.get(kind, 0) <= 0 or id(call) in reported:
                        continue
                    budget[kind] -= 1
                    reported.add(id(call))
                    yield Finding(
                        path=fn.src.path,
                        line=getattr(call, "lineno", branch.line),
                        col=getattr(call, "col_offset", 0) + 1,
                        rule=RULE_ID,
                        severity=Severity.ERROR,
                        message=(
                            f"collective '{kind}' is reachable only under the "
                            f"rank-dependent branch at line {branch.line} — "
                            "ranks taking the other path never enter it, so "
                            "every rank that does deadlocks"
                        ),
                    )
