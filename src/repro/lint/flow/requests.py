"""Request lifecycle: every ``isend``/``irecv`` must reach a ``wait``.

A :class:`~repro.simmpi.reqs.Request` that is never driven through
``comm.wait``/``comm.waitall`` silently drops its completion — the
runtime sanitizer reports it as a leak *after* a full simulation; this
pass reports it at lint time.

The analysis is a forward may-leak dataflow over the function CFG.
Each ``.isend(...)``/``.irecv(...)`` call site generates an
*obligation* token; tokens flow through

* assignments and aliases (``r2 = r``),
* containers (``reqs = [comm.irecv(s) for s in ...]``,
  ``reqs.append(comm.isend(d, n))``, ``reqs += [...]``),
* returns (the obligation transfers to the caller via a function
  summary; a caller that binds the result inherits it), and
* arbitrary calls taking the request as an argument (assumed to
  discharge it — a helper that waits on your behalf is idiomatic).

States merge by union, so an obligation alive on *any* path to the
normal exit is reported ("leaked on some path").  Paths that leave the
function through ``raise`` are ignored: when the simulation is being
torn down by an exception, abandoning requests is not the bug.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from ..findings import Finding, Severity
from .callgraph import CallGraph
from .cfg import Node
from .facts import call_method_name, FuncInfo, node_calls, walk_calls

__all__ = ["check_request_lifecycle", "RULE_ID"]

RULE_ID = "flow-request-leak"

_CREATORS = frozenset({"isend", "irecv"})
_WAITERS = frozenset({"wait", "waitall"})
_APPENDERS = frozenset({"append", "extend", "insert", "add"})

#: token -> frozenset of names currently holding it ("" = anonymous)
State = Dict[Tuple[int, int, str], FrozenSet[str]]


def _merge(a: State, b: State) -> State:
    out = dict(a)
    for tok, names in b.items():
        out[tok] = out.get(tok, frozenset()) | names
    return out


def _names_in(expr: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


class _FuncRequests:
    """Per-function transfer functions + fixpoint driver."""

    def __init__(self, fn: FuncInfo, graph: CallGraph) -> None:
        self.fn = fn
        self.graph = graph
        #: tokens whose obligation left via ``return``
        self.returned: Set[Tuple[int, int, str]] = set()

    # -- expression-level helpers ------------------------------------------
    def _creations(self, expr: ast.AST) -> List[Tuple[int, int, str]]:
        """Obligation tokens created inside ``expr``."""
        toks = []
        for call in walk_calls(expr):
            name = call_method_name(call)
            if name in _CREATORS and isinstance(call.func, ast.Attribute):
                toks.append((call.lineno, call.col_offset, name))
            elif self.graph.call_returns_request(call):
                toks.append((call.lineno, call.col_offset, "call"))
        return toks

    def _discharge_names(self, stmt: ast.stmt) -> Tuple[Set[str], Set[str]]:
        """(waited_names, transferred_names) mentioned in call args."""
        waited: Set[str] = set()
        transferred: Set[str] = set()
        for call in node_calls(stmt):
            name = call_method_name(call)
            if name in _CREATORS:
                continue
            args = list(call.args) + [kw.value for kw in call.keywords]
            mentioned: Set[str] = set()
            for a in args:
                mentioned |= _names_in(a)
            if name in _WAITERS and isinstance(call.func, ast.Attribute):
                waited |= mentioned
            elif name in _APPENDERS and isinstance(call.func, ast.Attribute):
                continue  # handled as container growth, not discharge
            else:
                transferred |= mentioned
        return waited, transferred

    # -- statement transfer -------------------------------------------------
    def transfer(self, node: Node, state: State) -> State:
        stmt = node.stmt
        if stmt is None:
            return state
        state = dict(state)

        waited, transferred = self._discharge_names(stmt)
        if waited or transferred:
            for tok, names in list(state.items()):
                if names & waited:
                    del state[tok]
                elif names & transferred:
                    del state[tok]

        # Container growth: reqs.append(comm.isend(...)) / reqs.add(...)
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                call_method_name(call) in _APPENDERS
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
            ):
                holder = call.func.value.id
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    for tok in self._creations(arg):
                        state[tok] = frozenset({holder})
                    for tok, names in list(state.items()):
                        if names & _names_in(arg):
                            state[tok] = names | {holder}
                return state

        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assign(stmt, state)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                escaping = _names_in(stmt.value)
                for tok, names in list(state.items()):
                    if names & escaping:
                        self.returned.add(tok)
                        del state[tok]
                for tok in self._creations(stmt.value):
                    self.returned.add(tok)
        # Any other statement shape: an anonymous factory call is either
        # a bare discarded Expr (already an error under the syntactic
        # yield-from-comm rule) or an argument to a call (assumed to
        # transfer the obligation) — nothing to track either way.
        return state

    def _assign(self, stmt: ast.stmt, state: State) -> None:
        value = stmt.value
        if value is None:
            return
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        else:
            targets = [stmt.target]
        target_names = {
            t.id for t in targets if isinstance(t, ast.Name)
        }
        created = self._creations(value)
        value_names = _names_in(value)
        aliased = {
            tok for tok, names in state.items() if names & value_names
        }
        if not isinstance(stmt, ast.AugAssign):
            # Rebinding: the old tokens lose this holder (an obligation
            # that thereby loses its last name is an orphaned request).
            for tok, names in list(state.items()):
                if names & target_names and tok not in aliased:
                    state[tok] = names - target_names
        for tok in created:
            state[tok] = state.get(tok, frozenset()) | target_names
        for tok in aliased:
            state[tok] = state[tok] | target_names

    # -- fixpoint -----------------------------------------------------------
    def run(self) -> Iterator[Finding]:
        cfg = self.fn.cfg
        in_states: Dict[Node, State] = {cfg.entry: {}}
        worklist: List[Node] = [cfg.entry]
        out_states: Dict[Node, State] = {}
        iterations = 0
        limit = 40 * max(1, len(cfg.nodes))
        while worklist:
            iterations += 1
            if iterations > limit:  # pathological graph: stay silent
                return
            node = worklist.pop(0)
            state = in_states.get(node, {})
            new_out = self.transfer(node, state)
            if out_states.get(node) == new_out:
                continue
            out_states[node] = new_out
            for succ, label in node.succs:
                if succ.kind == "exc-exit" or label == "raise" or label == "except":
                    continue  # exceptional paths don't report leaks
                merged = _merge(in_states.get(succ, {}), new_out)
                if merged != in_states.get(succ):
                    in_states[succ] = merged
                    if succ not in worklist:
                        worklist.append(succ)
        exit_state = in_states.get(cfg.exit, {})
        if self.returned:
            self.graph.mark_returns_request(self.fn)
        for tok in sorted(exit_state):
            line, col, kind = tok
            op = {"isend": "isend", "irecv": "irecv", "call": "request-returning call"}[kind]
            yield Finding(
                path=self.fn.src.path,
                line=line,
                col=col + 1,
                rule=RULE_ID,
                severity=Severity.ERROR,
                message=(
                    f"request from '{op}' may reach the end of "
                    f"'{self.fn.qualname}' without a wait/waitall on some "
                    "path — the operation's completion is silently dropped "
                    "(the runtime twin is the sanitizer's leaked-request "
                    "report)"
                ),
            )


def check_request_lifecycle(fn: FuncInfo, graph: CallGraph) -> Iterator[Finding]:
    # Cheap pre-filter: no request factories (or summarized calls), no work.
    has_factory = any(
        call_method_name(c) in _CREATORS or graph.call_returns_request(c)
        for c in walk_calls(fn.node)
    )
    if not has_factory:
        return
    yield from _FuncRequests(fn, graph).run()
