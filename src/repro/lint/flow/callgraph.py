"""Interprocedural function index and call graph over the lint batch.

Every function definition in the analyzed files is indexed by bare
name; call sites resolve name-based (the same trade-off as the rest of
simlint).  Ambiguous names — several functions sharing one bare name —
resolve to the *union* of candidates, which keeps the collective
summaries sound-ish at the cost of precision.

Two summaries are computed here because several analyses share them:

* ``collective_kinds(fn)`` — the collective operations a function
  (transitively) performs, so a helper containing a ``barrier`` counts
  as a barrier at its rank-guarded call site;
* ``returns_request(fn)`` — whether a function can return an
  ``isend``/``irecv`` request (directly or transitively), so the
  request-lifecycle pass can follow obligations across calls.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from .facts import (
    call_method_name,
    COLLECTIVE_KINDS,
    comm_like,
    FuncInfo,
    FUNCTION_COLLECTIVES,
    walk_calls,
)

__all__ = ["CallGraph", "index_functions"]

#: Calls to methods with these names create Request obligations.
_REQUEST_METHODS = frozenset({"isend", "irecv"})


def index_functions(files: Iterable[tuple]) -> List[FuncInfo]:
    """Collect every function definition (incl. methods and nested
    defs) from ``(SourceFile, ast.Module)`` pairs."""
    out: List[FuncInfo] = []
    for src, tree in files:
        module = src.path
        stack: List[tuple] = [(tree, "")]
        while stack:
            node, prefix = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{child.name}"
                    out.append(FuncInfo(src, child, qual, module))
                    stack.append((child, f"{qual}."))
                elif isinstance(child, ast.ClassDef):
                    stack.append((child, f"{prefix}{child.name}."))
        # deterministic order regardless of stack traversal
    out.sort(key=lambda f: (f.module, f.node.lineno))
    return out


class CallGraph:
    """Name-resolved call edges + fixpoint summaries (module docstring)."""

    def __init__(self, functions: List[FuncInfo]) -> None:
        self.functions = functions
        self.by_name: Dict[str, List[FuncInfo]] = {}
        for fn in functions:
            self.by_name.setdefault(fn.name, []).append(fn)
        self.callees: Dict[FuncInfo, List[FuncInfo]] = {}
        for fn in functions:
            self.callees[fn] = self._resolve_callees(fn)
        self._collectives = self._collective_fixpoint()
        self._returns_request = self._returns_request_fixpoint()

    # -- resolution --------------------------------------------------------
    def resolve(self, call: ast.Call) -> List[FuncInfo]:
        """Candidate definitions of a call, by bare name ([] if unknown)."""
        name = call_method_name(call)
        if name is None:
            return []
        return self.by_name.get(name, [])

    def _resolve_callees(self, fn: FuncInfo) -> List[FuncInfo]:
        seen: Set[FuncInfo] = set()
        out: List[FuncInfo] = []
        for call in walk_calls(fn.node):
            for callee in self.resolve(call):
                if callee not in seen and callee is not fn:
                    seen.add(callee)
                    out.append(callee)
        return out

    # -- collective summary ------------------------------------------------
    def _direct_collectives(self, fn: FuncInfo) -> FrozenSet[str]:
        kinds: Set[str] = set()
        for call in walk_calls(fn.node):
            name = call_method_name(call)
            if name is None:
                continue
            if (
                name in COLLECTIVE_KINDS
                and isinstance(call.func, ast.Attribute)
                and comm_like(call.func.value)
            ):
                kinds.add(name)
            elif name in FUNCTION_COLLECTIVES and isinstance(call.func, ast.Name):
                kinds.add(FUNCTION_COLLECTIVES[name])
        return frozenset(kinds)

    def _collective_fixpoint(self) -> Dict[FuncInfo, FrozenSet[str]]:
        summary = {fn: self._direct_collectives(fn) for fn in self.functions}
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                merged = set(summary[fn])
                for callee in self.callees[fn]:
                    merged |= summary[callee]
                if merged != summary[fn]:
                    summary[fn] = frozenset(merged)
                    changed = True
        return summary

    def collective_kinds(self, fn: FuncInfo) -> FrozenSet[str]:
        """Collective ops ``fn`` transitively performs (may be empty)."""
        return self._collectives.get(fn, frozenset())

    def call_collective_kinds(self, call: ast.Call) -> FrozenSet[str]:
        """Collectives a *call expression* performs: a direct collective
        method, a known collective algorithm, or a summarized callee."""
        name = call_method_name(call)
        if name is None:
            return frozenset()
        if (
            name in COLLECTIVE_KINDS
            and isinstance(call.func, ast.Attribute)
            and comm_like(call.func.value)
        ):
            return frozenset({name})
        if name in FUNCTION_COLLECTIVES and isinstance(call.func, ast.Name):
            return frozenset({FUNCTION_COLLECTIVES[name]})
        kinds: Set[str] = set()
        for callee in self.by_name.get(name, []):
            kinds |= self._collectives.get(callee, frozenset())
        return frozenset(kinds)

    # -- request-return summary --------------------------------------------
    def _returns_request_direct(self, fn: FuncInfo) -> Optional[bool]:
        """True / False when decidable locally, None when it depends on
        callees (returns the result of another indexed function)."""
        pending = False
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            for call in walk_calls(node.value):
                name = call_method_name(call)
                if name in _REQUEST_METHODS and isinstance(call.func, ast.Attribute):
                    return True
                if name in self.by_name:
                    pending = True
            # ``return req`` where req holds a request is handled by the
            # request-lifecycle dataflow itself, not the summary.
        return None if pending else False

    def _returns_request_fixpoint(self) -> Dict[FuncInfo, bool]:
        summary: Dict[FuncInfo, bool] = {}
        pending: List[FuncInfo] = []
        for fn in self.functions:
            direct = self._returns_request_direct(fn)
            summary[fn] = bool(direct)
            if direct is None:
                pending.append(fn)
        changed = True
        while changed:
            changed = False
            for fn in pending:
                if summary[fn]:
                    continue
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Return) or node.value is None:
                        continue
                    for call in walk_calls(node.value):
                        name = call_method_name(call)
                        for callee in self.by_name.get(name or "", []):
                            if summary.get(callee):
                                summary[fn] = True
                                changed = True
        return summary

    def returns_request(self, fn: FuncInfo) -> bool:
        return self._returns_request.get(fn, False)

    def mark_returns_request(self, fn: FuncInfo) -> None:
        """Upgrade a summary after the dataflow saw ``return req``."""
        self._returns_request[fn] = True

    def call_returns_request(self, call: ast.Call) -> bool:
        """Does this call (to an indexed function) yield a Request?"""
        name = call_method_name(call)
        if name is None or name in _REQUEST_METHODS:
            return False
        return any(self._returns_request.get(c, False) for c in self.by_name.get(name, []))
