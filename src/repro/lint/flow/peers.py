"""Blocking-cycle detection over the static send/recv peer+tag graph.

For rank programs whose point-to-point structure is fully literal —
peers and tags are integer constants, guards are ``comm.rank == K``
chains — the per-rank operation sequences can be extracted statically
and matched abstractly.  Two bug shapes are reported:

* **guaranteed deadlock** (error): a blocking ``recv`` that no send in
  the program can ever match (or a recv/recv wait cycle).  This holds
  under *any* MPI progress semantics.
* **rendezvous cycle** (warning): every involved rank issues a
  blocking ``send`` before its ``recv`` (``0 -> 1`` and ``1 -> 0``).
  Eager delivery of small messages hides the bug; once the payload
  crosses the rendezvous threshold, both sends block forever.  The
  classic "it worked until I doubled the message size".

Anything non-literal — computed peers (``(rank + 1) % size``),
non-equality rank guards, nonblocking ops, ``sendrecv`` — makes the
program *unanalyzable* and the pass stays silent rather than guess
(the runtime sanitizer owns those shapes).  Loops are traversed as if
their body ran once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding, Severity
from .facts import call_method_name, comm_like, const_int, FuncInfo, walk_calls

__all__ = ["check_blocking_cycles", "RULE_ID"]

RULE_ID = "flow-blocking-cycle"

#: recv() with no src: matches any sender.
ANY = -1


@dataclass(frozen=True)
class _Op:
    kind: str  # "send" | "recv"
    peer: int  # ANY for wildcard recv
    tag: int  # ANY for wildcard
    node: ast.Call


class _Unanalyzable(Exception):
    """The program's p2p structure is not statically literal."""


def _p2p_call(call: ast.Call) -> Optional[str]:
    name = call_method_name(call)
    if name is None or not isinstance(call.func, ast.Attribute):
        return None
    if not comm_like(call.func.value):
        return None
    return name


def _arg(call: ast.Call, position: int, keyword: str) -> Optional[ast.expr]:
    if len(call.args) > position:
        return call.args[position]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _extract_op(call: ast.Call, name: str) -> _Op:
    if name == "send":
        dst_expr = _arg(call, 0, "dst")
        if dst_expr is None:
            raise _Unanalyzable
        dst = const_int(dst_expr)
        if dst is None:
            raise _Unanalyzable
        tag_expr = _arg(call, 2, "tag")
        tag = 0 if tag_expr is None else const_int(tag_expr)
        if tag is None:
            raise _Unanalyzable
        return _Op("send", dst, tag, call)
    # recv
    src_expr = _arg(call, 0, "src")
    src = ANY if src_expr is None else const_int(src_expr)
    if src is None:
        raise _Unanalyzable
    tag_expr = _arg(call, 1, "tag")
    tag = ANY if tag_expr is None else const_int(tag_expr)
    if tag is None:
        raise _Unanalyzable
    return _Op("recv", src, tag, call)


def _rank_guard_value(test: ast.expr) -> Optional[int]:
    """``comm.rank == K`` (either order) -> K, else None."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return None
    if not isinstance(test.ops[0], ast.Eq):
        return None
    sides = [test.left, test.comparators[0]]
    rank_side = [
        s
        for s in sides
        if isinstance(s, ast.Attribute) and s.attr == "rank" and comm_like(s.value)
    ]
    if len(rank_side) != 1:
        return None
    other = sides[0] if sides[1] is rank_side[0] else sides[1]
    return const_int(other)


@dataclass
class _Guarded:
    """One ``if comm.rank == a: ... elif ...: ... else: ...`` chain."""

    arms: List[Tuple[int, List]]  # (rank, items)
    orelse: List  # items for every unguarded rank


def _extract_items(stmts: List[ast.stmt]) -> List:
    """Item list: _Op | _Guarded, or raise _Unanalyzable."""
    items: List = []
    for stmt in stmts:
        if isinstance(stmt, ast.If):
            guard = _rank_guard_value(stmt.test)
            if guard is not None:
                arms: List[Tuple[int, List]] = [(guard, _extract_items(stmt.body))]
                orelse = stmt.orelse
                while (
                    len(orelse) == 1
                    and isinstance(orelse[0], ast.If)
                    and _rank_guard_value(orelse[0].test) is not None
                ):
                    arms.append(
                        (_rank_guard_value(orelse[0].test), _extract_items(orelse[0].body))
                    )
                    orelse = orelse[0].orelse
                items.append(_Guarded(arms, _extract_items(orelse)))
                continue
            # Non-rank condition: p2p inside would be half-analyzable.
            if _contains_p2p(stmt):
                raise _Unanalyzable
            continue
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            items.extend(_extract_items(stmt.body))  # body "runs once"
            items.extend(_extract_items(stmt.orelse))
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith, ast.Try)):
            items.extend(_extract_items(stmt.body))
            if isinstance(stmt, ast.Try) and (
                any(_contains_p2p(h) for h in stmt.handlers)
                or any(_contains_p2p(s) for s in stmt.orelse + stmt.finalbody)
            ):
                raise _Unanalyzable
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # separate scope
        for call in walk_calls(stmt):
            name = _p2p_call(call)
            if name in ("send", "recv"):
                items.append(_extract_op(call, name))
            elif name in ("sendrecv", "isend", "irecv", "wait", "waitall"):
                raise _Unanalyzable
    return items


def _contains_p2p(node: ast.AST) -> bool:
    return any(
        _p2p_call(c) in ("send", "recv", "sendrecv", "isend", "irecv")
        for c in walk_calls(node)
    )


def _sequences(items: List) -> Optional[Dict[int, List[_Op]]]:
    """Per-rank op sequences over the literal rank universe."""
    universe: Set[int] = set()

    def collect(its: List) -> None:
        for it in its:
            if isinstance(it, _Op):
                if it.peer != ANY:
                    universe.add(it.peer)
            else:
                for rank, arm in it.arms:
                    universe.add(rank)
                    collect(arm)
                collect(it.orelse)

    collect(items)
    if not universe:
        return None

    # A guard chain whose ``else`` performs p2p represents "every other
    # rank".  If all literal ranks are claimed by arms, give the else a
    # synthetic representative so its sends/recvs aren't lost (without
    # it, ``if rank == 0: recv() else: send(0)`` over universe {0}
    # would be a false deadlock).
    def needs_residual(its: List) -> bool:
        for it in its:
            if isinstance(it, _Guarded):
                arm_ranks = {rank for rank, _ in it.arms}
                if it.orelse and _has_ops(it.orelse) and universe <= arm_ranks:
                    return True
                if any(needs_residual(arm) for _, arm in it.arms):
                    return True
                if needs_residual(it.orelse):
                    return True
        return False

    def _has_ops(its: List) -> bool:
        return any(
            isinstance(it, _Op) or (_has_ops(it.orelse) or any(_has_ops(a) for _, a in it.arms))
            for it in its
        )

    if needs_residual(items):
        universe.add(max(universe) + 1)

    def expand(its: List, rank: int) -> List[_Op]:
        ops: List[_Op] = []
        for it in its:
            if isinstance(it, _Op):
                ops.append(it)
            else:
                matched = False
                for arm_rank, arm in it.arms:
                    if arm_rank == rank:
                        ops.extend(expand(arm, rank))
                        matched = True
                        break
                if not matched:
                    ops.extend(expand(it.orelse, rank))
        return ops

    return {rank: expand(items, rank) for rank in sorted(universe)}


def _matches(send: _Op, sender: int, recv: _Op, receiver: int) -> bool:
    if send.peer != receiver:
        return False
    if recv.peer not in (ANY, sender):
        return False
    return recv.tag in (ANY, send.tag)


def _simulate_eager(seqs: Dict[int, List[_Op]]):
    """Sends complete immediately; recvs block.  Returns (stuck_heads,
    leftover_mailbox) at fixpoint."""
    heads = {r: 0 for r in seqs}
    mailbox: List[Tuple[int, _Op]] = []  # (sender, send op), FIFO
    progress = True
    while progress:
        progress = False
        for rank in sorted(seqs):
            while heads[rank] < len(seqs[rank]):
                op = seqs[rank][heads[rank]]
                if op.kind == "send":
                    mailbox.append((rank, op))
                    heads[rank] += 1
                    progress = True
                    continue
                hit = next(
                    (
                        i
                        for i, (sender, s) in enumerate(mailbox)
                        if _matches(s, sender, op, rank)
                    ),
                    None,
                )
                if hit is None:
                    break
                mailbox.pop(hit)
                heads[rank] += 1
                progress = True
    stuck = {
        r: seqs[r][heads[r]] for r in seqs if heads[r] < len(seqs[r])
    }
    return stuck, mailbox


def _simulate_rendezvous(seqs: Dict[int, List[_Op]]):
    """Sends block until the matching recv is at its receiver's head."""
    heads = {r: 0 for r in seqs}
    progress = True
    while progress:
        progress = False
        for rank in sorted(seqs):
            if heads[rank] >= len(seqs[rank]):
                continue
            op = seqs[rank][heads[rank]]
            if op.kind != "send":
                continue
            dst = op.peer
            if dst not in seqs or heads[dst] >= len(seqs[dst]):
                continue
            peer_op = seqs[dst][heads[dst]]
            if peer_op.kind == "recv" and _matches(op, rank, peer_op, dst):
                heads[rank] += 1
                heads[dst] += 1
                progress = True
    return {r: seqs[r][heads[r]] for r in seqs if heads[r] < len(seqs[r])}


def check_blocking_cycles(fn: FuncInfo) -> Iterator[Finding]:
    first = fn.first_param()
    if first is None or "comm" not in first.lower():
        return
    try:
        items = _extract_items(fn.node.body)
    except _Unanalyzable:
        return
    seqs = _sequences(items)
    if seqs is None:
        return

    def finding(op: _Op, message: str, severity: Severity) -> Finding:
        return Finding(
            path=fn.src.path,
            line=op.node.lineno,
            col=op.node.col_offset + 1,
            rule=RULE_ID,
            severity=severity,
            message=message,
        )

    stuck, leftover = _simulate_eager(seqs)
    if stuck:
        # Guaranteed under any progress semantics: even with free eager
        # sends these ranks starve.
        for rank in sorted(stuck):
            op = stuck[rank]
            if op.kind == "recv":
                src = "any rank" if op.peer == ANY else f"rank {op.peer}"
                tag = "any" if op.tag == ANY else str(op.tag)
                yield finding(
                    op,
                    f"rank {rank} blocks forever in recv(src={src}, "
                    f"tag={tag}) — no send in this program ever matches it "
                    "(guaranteed deadlock)",
                    Severity.ERROR,
                )
            else:
                yield finding(
                    op,
                    f"rank {rank} blocks forever in send to rank {op.peer} "
                    "— its receiver never reaches a matching recv "
                    "(guaranteed deadlock)",
                    Severity.ERROR,
                )
        return
    for sender, op in leftover:
        yield finding(
            op,
            f"send from rank {sender} to rank {op.peer} (tag={op.tag}) is "
            "never received — the message is silently dropped at exit "
            "(the sanitizer's unmatched-send report, statically)",
            Severity.WARNING,
        )
    stuck_rv = _simulate_rendezvous(seqs)
    senders = {r: op for r, op in stuck_rv.items() if op.kind == "send"}
    if senders and all(op.kind == "send" for op in stuck_rv.values()):
        cycle = " -> ".join(
            f"{r}->{op.peer}" for r, op in sorted(senders.items())
        )
        first_rank = min(senders)
        yield finding(
            senders[first_rank],
            "symmetric blocking-send cycle: every rank sends before it "
            f"receives ({cycle}) — completes only while messages stay "
            "under the eager threshold, deadlocks at rendezvous sizes; "
            "reorder one side or use isend/irecv",
            Severity.WARNING,
        )
