"""Determinism taint: host nondeterminism must not reach simulated state.

The syntactic ``determinism-hazard`` rule flags the *call sites* of
wall-clock reads and unseeded RNGs.  Genuine host measurements get a
per-line suppression — and that suppression then hides the real
mistake: the measured value flowing into something the simulation's
identical-traces promise covers.  This pass tracks the *values*:

* **sources** — ``time.time``/``perf_counter``/… (every clock and
  entropy call the syntactic rule knows), the global stdlib ``random``
  module, legacy ``np.random`` calls, seedless ``default_rng()``, and
  iteration over a ``set`` (whose order depends on the interpreter's
  hash seed for str/bytes elements);
* **propagation** — assignments, arithmetic, f-strings, method calls on
  tainted values; ``sorted()``/``min()``/``max()``/``sum()``/``len()``
  launder set-*order* taint (they are order-insensitive) but not
  clock taint;
* **sinks** — attribute stores onto comm/cluster/engine/self state,
  ``env.timeout(...)`` delays, ``comm.compute(...)`` durations, and
  any simulated-MPI operation argument (payload, nbytes, tag).

A finding means: a host-nondeterministic value reaches simulation
state on some path, so two runs of the "deterministic" simulator can
diverge.  Suppress with ``# simlint: ignore[flow-determinism-taint]``
on the *sink* line when the flow is intended (e.g. host-measurement
reporting that never feeds back into the simulation).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..comm_rules import GENERATOR_METHODS
from ..findings import Finding, Severity
from ..hygiene_rules import _CLOCK_CALLS, _NP_RANDOM_MARKERS, _NP_RANDOM_OK
from .cfg import Node
from .facts import (
    call_method_name,
    comm_like,
    FuncInfo,
    node_calls,
    receiver_base,
    walk_calls,
)

__all__ = ["check_determinism_taint", "RULE_ID"]

RULE_ID = "flow-determinism-taint"

#: Receiver bases whose attribute stores are simulation state.
_STATE_BASES = frozenset({"self", "comm", "cluster", "env", "engine", "sub", "subcomm"})

#: Order-insensitive reductions: consume a set, emit a clean value.
_ORDER_SANITIZERS = frozenset(
    {"sorted", "len", "min", "max", "sum", "frozenset", "set", "any", "all"}
)

#: name -> (source description, line); taint state of one program point.
State = Dict[str, Tuple[str, int]]


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _source_call(call: ast.Call) -> Optional[str]:
    """Description of the nondeterminism a call introduces, or None."""
    name = _dotted(call.func)
    if name is None:
        return None
    suffix2 = ".".join(name.split(".")[-2:])
    leaf = name.rpartition(".")[2]
    if suffix2 in _CLOCK_CALLS:
        return f"wall-clock/entropy read '{name}()'"
    head = name.partition(".")[0]
    if head == "random" and name.count(".") == 1:
        return f"global stdlib RNG '{name}()'"
    for marker in _NP_RANDOM_MARKERS:
        if name.startswith(marker):
            if leaf == "default_rng" and not call.args and not call.keywords:
                return "entropy-seeded 'default_rng()'"
            if leaf not in _NP_RANDOM_OK:
                return f"numpy global RNG '{name}()'"
    return None


class _FuncTaint:
    def __init__(self, fn: FuncInfo) -> None:
        self.fn = fn
        self.set_names = self._set_typed_names()
        self.findings: Dict[Tuple[int, int, str], Finding] = {}

    def _set_typed_names(self) -> Set[str]:
        """Names assigned a ``set`` somewhere in the function."""
        out: Set[str] = set()
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value):
                out.update(t.id for t in node.targets if isinstance(t, ast.Name))
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and isinstance(node.target, ast.Name)
                and self._is_set_expr(node.value)
            ):
                out.add(node.target.id)
        return out

    @staticmethod
    def _is_set_expr(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id == "set"
        return False

    # -- expression taint ---------------------------------------------------
    def _expr_taint(self, expr: ast.expr, state: State) -> Optional[Tuple[str, int]]:
        """Why ``expr`` is tainted (description, source line), or None."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                # Order-insensitive reductions stop set-order taint.
                fname = call_method_name(node)
                src = _source_call(node)
                if src is not None:
                    return (src, node.lineno)
                if fname in _ORDER_SANITIZERS:
                    continue
                if fname in ("list", "tuple", "iter"):
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id in self.set_names:
                            return (
                                f"iteration order of set '{arg.id}'",
                                node.lineno,
                            )
            elif isinstance(node, ast.Name) and node.id in state:
                return state[node.id]
        return None

    def _sanitized(self, expr: ast.expr) -> bool:
        """Top-level call that launders set-order taint."""
        return (
            isinstance(expr, ast.Call)
            and call_method_name(expr) in _ORDER_SANITIZERS
        )

    # -- transfer -----------------------------------------------------------
    def transfer(self, node: Node, state: State) -> State:
        stmt = node.stmt
        if stmt is None:
            return state
        state = dict(state)
        self._check_sinks(stmt, state)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            if value is None:
                return state
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            taint = None if self._sanitized(value) else self._expr_taint(value, state)
            for name in names:
                if taint is not None:
                    state[name] = taint
                else:
                    state.pop(name, None)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                taint = self._expr_taint(stmt.value, state)
                if taint is not None:
                    state[stmt.target.id] = taint
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._expr_taint(stmt.iter, state)
            if taint is None and isinstance(stmt.iter, ast.Name):
                if stmt.iter.id in self.set_names:
                    taint = (
                        f"iteration order of set '{stmt.iter.id}'",
                        stmt.lineno,
                    )
            if isinstance(stmt.target, ast.Name):
                if taint is not None:
                    state[stmt.target.id] = taint
                else:
                    state.pop(stmt.target.id, None)
            elif isinstance(stmt.target, ast.Tuple) and taint is not None:
                for elt in stmt.target.elts:
                    if isinstance(elt, ast.Name):
                        state[elt.id] = taint
        return state

    # -- sinks --------------------------------------------------------------
    def _sink_finding(self, node: ast.AST, what: str, taint: Tuple[str, int]) -> None:
        desc, src_line = taint
        key = (node.lineno, node.col_offset, what)
        if key in self.findings:
            return
        self.findings[key] = Finding(
            path=self.fn.src.path,
            line=node.lineno,
            col=node.col_offset + 1,
            rule=RULE_ID,
            severity=Severity.ERROR,
            message=(
                f"{desc} (line {src_line}) flows into {what} — host "
                "nondeterminism in simulated state breaks the "
                "identical-traces-across-runs guarantee"
            ),
        )

    def _check_sinks(self, stmt: ast.stmt, state: State) -> None:
        # 1. attribute/subscript stores onto simulation state
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            value = stmt.value
            if value is not None:
                taint = None if self._sanitized(value) else self._expr_taint(value, state)
                if taint is not None:
                    targets = (
                        stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                    )
                    for target in targets:
                        if isinstance(target, (ast.Attribute, ast.Subscript)):
                            base = receiver_base(target)
                            if base in _STATE_BASES or (
                                base is not None and "comm" in base.lower()
                            ):
                                self._sink_finding(
                                    target,
                                    f"state attribute '{ast.unparse(target)}'"
                                    if hasattr(ast, "unparse")
                                    else "a state attribute",
                                    taint,
                                )
        # 2. simulated-time and simulated-MPI call arguments
        for call in node_calls(stmt):
            name = call_method_name(call)
            if name is None or not isinstance(call.func, ast.Attribute):
                continue
            is_timeout = name == "timeout"
            is_mpi = name in GENERATOR_METHODS and comm_like(call.func.value)
            if not (is_timeout or is_mpi):
                continue
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                taint = None if self._sanitized(arg) else self._expr_taint(arg, state)
                if taint is not None:
                    what = (
                        f"simulated delay '{name}(...)'"
                        if is_timeout
                        else f"simulated-MPI operation '{name}(...)'"
                    )
                    self._sink_finding(arg, what, taint)

    # -- fixpoint -----------------------------------------------------------
    def run(self) -> Iterator[Finding]:
        cfg = self.fn.cfg
        in_states: Dict[Node, State] = {cfg.entry: {}}
        out_states: Dict[Node, State] = {}
        worklist: List[Node] = [cfg.entry]
        iterations = 0
        limit = 40 * max(1, len(cfg.nodes))
        while worklist:
            iterations += 1
            if iterations > limit:
                break
            node = worklist.pop(0)
            new_out = self.transfer(node, in_states.get(node, {}))
            if out_states.get(node) == new_out:
                continue
            out_states[node] = new_out
            for succ, _label in node.succs:
                merged = dict(in_states.get(succ, {}))
                for name, taint in new_out.items():
                    if name not in merged or taint < merged[name]:
                        merged[name] = taint
                if merged != in_states.get(succ):
                    in_states[succ] = merged
                    if succ not in worklist:
                        worklist.append(succ)
        for key in sorted(self.findings):
            yield self.findings[key]


def check_determinism_taint(fn: FuncInfo) -> Iterator[Finding]:
    # The sanctioned host-time modules (repro.perf.hostclock) *exist*
    # to hold clock reads; analyzing them would flag their own purpose.
    from ..hygiene_rules import is_host_time_module

    if is_host_time_module(fn.src.path):
        return
    # Cheap pre-filter: no sources anywhere, no analysis.
    has_source = any(_source_call(c) for c in walk_calls(fn.node))
    if not has_source and not _FuncTaint(fn).set_names:
        return
    yield from _FuncTaint(fn).run()
