"""Shared semantic facts about the codebase's MPI idiom.

Everything the four flow analyses need to agree on lives here: what a
communicator looks like, which calls are collectives / point-to-point /
request factories, which expressions depend on the calling rank, and a
tiny constant evaluator for peers and tags.

Matching is name-based, like the rest of simlint: the repository
reserves ``comm``-ish names and the simulated-MPI method names for the
simulation surfaces, and every analysis anchors its findings so a
``# simlint: ignore[...]`` can silence a false positive.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..comm_rules import GENERATOR_FUNCTIONS

__all__ = [
    "COLLECTIVE_KINDS",
    "FUNCTION_COLLECTIVES",
    "P2P_METHODS",
    "call_method_name",
    "comm_like",
    "receiver_base",
    "const_int",
    "rank_tainted_names",
    "is_rank_dependent",
    "walk_calls",
    "node_exprs",
    "node_calls",
    "FuncInfo",
]

#: Collective operations every rank of a communicator must enter
#: together (subset of ``GENERATOR_METHODS``; p2p and wait ops excluded).
COLLECTIVE_KINDS = frozenset(
    {
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "allgather",
        "reduce_scatter",
        "gather",
        "scatter",
        "alltoall",
    }
)

#: Module-level collective algorithms -> the collective kind they run.
FUNCTION_COLLECTIVES = {
    name: (
        "barrier"
        if "barrier" in name
        else "bcast"
        if "bcast" in name
        else "reduce_scatter"
        if "reduce_scatter" in name
        else "allreduce"
        if "allreduce" in name
        else "reduce"
        if "reduce" in name
        else "gather"
        if "gather" in name
        else "scatter"
        if "scatter" in name
        else "alltoall"
        if "alltoall" in name
        else None
    )
    for name in GENERATOR_FUNCTIONS
    if name != "halo_program"
}
FUNCTION_COLLECTIVES = {k: v for k, v in FUNCTION_COLLECTIVES.items() if v}

#: Blocking point-to-point methods (the blocking-cycle alphabet).
P2P_METHODS = frozenset({"send", "recv", "sendrecv"})

#: Names that denote a communicator when used as a call receiver.
_COMM_NAME_PARTS = ("comm",)
_COMM_EXACT = frozenset({"self", "sub", "comm", "subcomm"})


def call_method_name(call: ast.Call) -> Optional[str]:
    """``x.m(...)`` -> ``"m"``; ``f(...)`` -> ``"f"``; else ``None``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def receiver_base(node: ast.AST) -> Optional[str]:
    """Leftmost name of an attribute/subscript chain, else ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def comm_like(node: ast.AST) -> bool:
    """Heuristic: does this expression denote a communicator?"""
    base = receiver_base(node)
    if base is None:
        return False
    low = base.lower()
    return base in _COMM_EXACT or any(part in low for part in _COMM_NAME_PARTS)


def const_int(node: ast.expr) -> Optional[int]:
    """Evaluate a literal int expression (supports unary minus)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(
        node.value, bool
    ):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = const_int(node.operand)
        return None if inner is None else -inner
    return None


def walk_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Every ``ast.Call`` in ``node``, skipping nested function defs."""
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)) and cur is not node:
            continue
        if isinstance(cur, ast.Call):
            yield cur
        stack.extend(ast.iter_child_nodes(cur))


def node_exprs(stmt: Optional[ast.stmt]) -> List[ast.AST]:
    """The expressions *evaluated at* one CFG node.

    Compound statements (``if``/``while``/``for``/``with``/``try``/
    ``match``) carry their whole subtree in ``node.stmt``, but their
    bodies are separate CFG nodes — a dataflow transfer that walked the
    full subtree would see body effects at the head.  Only the head
    expression (test, iterable, context managers, subject) executes at
    the node itself.
    """
    if stmt is None:
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Try):
        return []  # the try head evaluates nothing itself
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []  # a definition, not an execution
    return [stmt]


def node_calls(stmt: Optional[ast.stmt]) -> Iterator[ast.Call]:
    """Every call executed *at* this CFG node (see :func:`node_exprs`)."""
    for expr in node_exprs(stmt):
        yield from walk_calls(expr)


#: Attributes of a communicator whose value differs per rank.
_RANK_ATTRS = frozenset({"rank", "node_coords"})


def rank_tainted_names(func: ast.AST) -> Set[str]:
    """Names in ``func`` assigned (transitively) from ``comm.rank``.

    Flow-insensitive on purpose: a name is rank-dependent if *any*
    assignment in the function makes it so.  Iterates to a fixpoint so
    ``r = comm.rank; left = r - 1`` taints ``left`` too.
    """
    tainted: Set[str] = set()
    assigns: List[tuple] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            assigns.append((targets, node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                assigns.append(([node.target.id], node.value))
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            assigns.append(([node.target.id], node.value))
    changed = True
    while changed:
        changed = False
        for targets, value in assigns:
            if _mentions_rank(value, tainted):
                for t in targets:
                    if t not in tainted:
                        tainted.add(t)
                        changed = True
    return tainted


def _mentions_rank(expr: ast.AST, tainted: Set[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr in _RANK_ATTRS:
            if comm_like(node.value):
                return True
        elif isinstance(node, ast.Name) and node.id in tainted:
            return True
    return False


def is_rank_dependent(test: ast.expr, tainted: Set[str]) -> bool:
    """Does this branch condition depend on the calling rank?"""
    return _mentions_rank(test, tainted)


class FuncInfo:
    """One function under analysis, shared by every flow pass."""

    __slots__ = ("src", "node", "qualname", "module", "cfg", "rank_names")

    def __init__(self, src, node, qualname: str, module: str) -> None:
        self.src = src
        self.node = node
        self.qualname = qualname
        self.module = module
        self.cfg = None  # built lazily by the analyzer
        self.rank_names: Optional[Set[str]] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> List[str]:
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args]

    def first_param(self) -> Optional[str]:
        params = self.params
        if params and params[0] == "self":
            params = params[1:]
        return params[0] if params else None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FuncInfo {self.module}:{self.qualname}>"
