"""Rules guarding determinism, unit hygiene, and the public API surface.

The engine promises identical traces across runs (see
``repro.simengine.engine``); a single wall-clock read or unseeded RNG
anywhere in ``src/repro`` silently voids that promise.  The rules here
are deliberately narrow-and-certain: each flags a construct that is
essentially never right in simulator code, so a finding is actionable
and a clean run means something.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from .findings import Finding, Severity
from .rules import register, Rule, SourceFile

__all__ = [
    "DeterminismHazardRule",
    "UnitHygieneRule",
    "MissingAllRule",
    "MutableDefaultRule",
    "HOST_TIME_MODULES",
    "is_host_time_module",
]

#: Path suffixes of the *sanctioned host-time modules*: the only places
#: allowed to read the host clock.  Everything else must either use the
#: engine clock (``env.now``) or go through ``repro.perf.hostclock`` —
#: which keeps every host-clock read greppable in one spot and lets the
#: determinism analyses skip the sanctioned source itself.
HOST_TIME_MODULES: Tuple[str, ...] = ("repro/perf/hostclock.py",)


def is_host_time_module(path: str) -> bool:
    """True when ``path`` is a sanctioned host-time module."""
    normalized = path.replace("\\", "/")
    return normalized.endswith(HOST_TIME_MODULES)


def _dotted(node: ast.AST) -> Optional[str]:
    """Reconstruct a dotted name from Attribute/Name chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# determinism-hazard
# ---------------------------------------------------------------------------

#: Exact dotted suffixes that read the wall clock or host entropy.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Functions of the stdlib ``random`` module (module-level calls).
_RANDOM_HEAD = "random"

#: numpy legacy global-state RNG entry points (always hazards).
_NP_RANDOM_MARKERS = ("np.random.", "numpy.random.")

#: numpy.random members that are fine (explicit generator machinery).
_NP_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937", "SFC64"}
)


@register
class DeterminismHazardRule(Rule):
    """Flag wall-clock reads and unseeded / global-state randomness."""

    id = "determinism-hazard"
    description = (
        "time.time()/datetime.now()/random.*/np.random legacy calls break "
        "the engine's identical-traces-across-runs guarantee"
    )

    def check(self, tree: ast.AST, src: SourceFile) -> Iterator[Finding]:
        if is_host_time_module(src.path):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            message = self._hazard(name, node)
            if message is not None:
                yield self.finding(src, node, message)

    def _hazard(self, name: str, call: ast.Call) -> Optional[str]:
        head, _, _tail = name.partition(".")
        leaf = name.rpartition(".")[2]
        suffix2 = ".".join(name.split(".")[-2:])
        if suffix2 in _CLOCK_CALLS:
            return (
                f"'{name}()' reads the wall clock / host entropy — simulation "
                "time must come from the engine (env.now); suppress only for "
                "genuine host measurements"
            )
        if head == _RANDOM_HEAD and name.count(".") == 1:
            return (
                f"'{name}()' uses the global stdlib RNG — draw from a seeded "
                "numpy Generator via repro.simengine.rng instead"
            )
        for marker in _NP_RANDOM_MARKERS:
            if marker and name.startswith(marker):
                if leaf == "default_rng" and not call.args and not call.keywords:
                    return (
                        "'default_rng()' without a seed is entropy-seeded — "
                        "pass a seed (see repro.simengine.rng.make_rng)"
                    )
                if leaf not in _NP_RANDOM_OK:
                    return (
                        f"'{name}()' uses numpy's global legacy RNG — use a "
                        "seeded np.random.Generator instead"
                    )
        return None


# ---------------------------------------------------------------------------
# unit-hygiene
# ---------------------------------------------------------------------------

#: Keyword arguments that carry a duration in seconds.
_TIME_KEYWORDS = frozenset(
    {
        "latency",
        "hop_latency",
        "delay",
        "send_overhead",
        "recv_overhead",
        "rendezvous_overhead",
        "overhead",
    }
)

#: Plain decimal literals below this threshold smell of hand-converted
#: sub-millisecond durations ("0.000003" instead of "3 * US").
_MAGIC_BELOW = 1e-2


@register
class UnitHygieneRule(Rule):
    """Flag opaque sub-millisecond literals in time-valued arguments."""

    id = "unit-hygiene"
    severity = Severity.WARNING
    description = (
        "magic decimal literal passed to a latency/timeout parameter — "
        "write `3 * US` (repro.simengine) or exponent notation `3.0e-6`"
    )

    def check(self, tree: ast.AST, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for where, value in self._time_arguments(node):
                if self._is_magic(value, src):
                    yield self.finding(
                        src,
                        value,
                        f"magic time literal {value.value!r} for {where} — "
                        "express it as a multiple of US/MS/NS from "
                        "repro.simengine (or exponent notation)",
                    )

    def _time_arguments(self, call: ast.Call) -> Iterator[Tuple[str, ast.expr]]:
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "timeout"
            and call.args
        ):
            yield "timeout()", call.args[0]
        for kw in call.keywords:
            if kw.arg in _TIME_KEYWORDS:
                yield f"'{kw.arg}='", kw.value


    def _is_magic(self, node: ast.expr, src: SourceFile) -> bool:
        if not isinstance(node, ast.Constant):
            return False
        v = node.value
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            return False
        if not 0 < abs(v) < _MAGIC_BELOW:
            return False
        # Exponent notation ("3.0e-6") is self-documenting; only plain
        # decimals ("0.000003") are opaque.
        text = src.segment(node)
        return "e" not in text.lower()


# ---------------------------------------------------------------------------
# api-hygiene
# ---------------------------------------------------------------------------


def _is_main_guard(test: ast.expr) -> bool:
    """True for the ``__name__ == "__main__"`` comparison (either order)."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return False
    if not isinstance(test.ops[0], ast.Eq):
        return False
    sides = [test.left, test.comparators[0]]
    has_name = any(isinstance(s, ast.Name) and s.id == "__name__" for s in sides)
    has_main = any(isinstance(s, ast.Constant) and s.value == "__main__" for s in sides)
    return has_name and has_main


@register
class MissingAllRule(Rule):
    """Public modules must declare their export surface via ``__all__``."""

    id = "api-missing-all"
    severity = Severity.WARNING
    description = "public module lacks an __all__ export list"

    def check(self, tree: ast.AST, src: SourceFile) -> Iterator[Finding]:
        basename = src.path.rsplit("/", 1)[-1]
        stem = basename[:-3] if basename.endswith(".py") else basename
        if stem.startswith("_") and stem != "__init__":
            return
        # Test and pytest-plugin modules are imported by path, never
        # ``from``-imported: an export list would be dead weight.
        if stem.startswith(("test_", "bench_")) or stem == "conftest":
            return
        if "tests" in src.path.split("/"):
            return
        if not isinstance(tree, ast.Module):
            return
        # A module guarded by ``if __name__ == "__main__"`` is a script,
        # not an importable API: no export list needed.
        for node in tree.body:
            if isinstance(node, ast.If) and _is_main_guard(node.test):
                return
        for node in tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.target is not None:
                targets = [node.target]
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for t in targets:
                if isinstance(t, ast.Name) and t.id == "__all__":
                    return
        yield self.finding(
            src, tree, f"module '{stem}' defines no __all__ — declare its public surface"
        )


_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "Counter", "deque"})


@register
class MutableDefaultRule(Rule):
    """Mutable default arguments are shared across calls — a latent bug."""

    id = "api-mutable-default"
    description = "function parameter defaults to a shared mutable object"

    def check(self, tree: ast.AST, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for arg, default in self._defaults(node):
                if default is not None and self._is_mutable(default):
                    yield self.finding(
                        src,
                        default,
                        f"parameter '{arg}' of '{node.name}' defaults to a "
                        "mutable object shared across calls — default to "
                        "None and construct inside",
                    )

    def _defaults(self, fn) -> Iterator[Tuple[str, Optional[ast.expr]]]:
        positional = fn.args.posonlyargs + fn.args.args
        for arg, default in zip(positional[::-1], fn.args.defaults[::-1]):
            yield arg.arg, default
        for arg, default in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
            yield arg.arg, default

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            return name is not None and name.rpartition(".")[2] in _MUTABLE_CALLS
        return False
