"""Drive the simlint rules over files and render the results.

Public entry points:

* :func:`lint_text` — lint one in-memory source string (what the unit
  tests use);
* :func:`lint_paths` — walk files/directories, lint every ``.py`` file;
* :func:`render_text` / :func:`render_json` — the two CLI output modes.

Findings are reported in deterministic order (path, line, col, rule).
A file that fails to parse produces a single ``parse-error`` finding
instead of crashing the run.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

# Importing the rule modules populates the registry.
from . import comm_rules as _comm_rules  # noqa: F401
from . import hygiene_rules as _hygiene_rules  # noqa: F401
from .findings import Finding, Severity, Suppressions
from .rules import Rule, SourceFile, all_rules

__all__ = ["LintResult", "lint_text", "lint_paths", "render_text", "render_json"]

#: Directories never descended into when walking a tree.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", "build", "dist"}


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def exit_code(self) -> int:
        """Non-zero whenever anything was found (findings gate CI)."""
        return 1 if self.findings else 0


def lint_text(
    text: str, path: str = "<string>", rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint one source string; returns suppression-filtered findings."""
    src = SourceFile(path=path, text=text)
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule="parse-error",
                severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = Suppressions.parse(text)
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(tree, src):
            if not suppressions.is_suppressed(finding):
                findings.append(finding)
    return sorted(findings)


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f
                for f in p.rglob("*.py")
                if not _SKIP_DIRS.intersection(part for part in f.parts)
            )
        elif p.suffix == ".py":
            out.append(p)
    return sorted(set(out))


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> LintResult:
    """Lint every Python file reachable from ``paths``."""
    result = LintResult()
    for path in iter_python_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            result.findings.append(
                Finding(
                    path=str(path),
                    line=1,
                    col=1,
                    rule="io-error",
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        result.files_checked += 1
        result.findings.extend(lint_text(text, path=str(path), rules=rules))
    result.findings.sort()
    return result


def render_text(result: LintResult) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [f.format() for f in result.findings]
    lines.append(
        f"simlint: {len(result.errors)} error(s), {len(result.warnings)} "
        f"warning(s) in {result.files_checked} file(s)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-oriented report (stable key order, one JSON document)."""
    doc = {
        "files_checked": result.files_checked,
        "errors": len(result.errors),
        "warnings": len(result.warnings),
        "findings": [f.to_json() for f in result.findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
