"""Drive the simlint rules over files and render the results.

Public entry points:

* :func:`lint_text` — lint one in-memory source string (what the unit
  tests use);
* :func:`lint_paths` — walk files/directories, lint every ``.py`` file;
* :func:`render_text` / :func:`render_json` / :func:`render_github` —
  the CLI output modes (``github`` emits workflow-command annotations
  that GitHub Actions turns into inline PR comments).

Both entry points run the syntactic rules *and* the flow analyses
(:mod:`repro.lint.flow`) by default; pass ``flow=False`` to skip the
dataflow layer.  Findings are reported in deterministic order (path,
line, col, rule).  A file that fails to parse produces a single
``parse-error`` finding instead of crashing the run.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

# Importing the rule modules populates the registry.
from . import comm_rules as _comm_rules  # noqa: F401
from . import hygiene_rules as _hygiene_rules  # noqa: F401
from .findings import Finding, Severity, Suppressions
from .rules import Rule, SourceFile, all_rules

__all__ = [
    "LintResult",
    "lint_text",
    "lint_paths",
    "render_text",
    "render_json",
    "render_github",
]

#: Directories never descended into when walking a tree.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", "build", "dist"}


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def exit_code(self) -> int:
        """Non-zero whenever anything was found (findings gate CI)."""
        return 1 if self.findings else 0


def _parse(text: str, path: str):
    """(SourceFile, tree, suppressions) or a parse-error Finding."""
    src = SourceFile(path=path, text=text)
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            rule="parse-error",
            severity=Severity.ERROR,
            message=f"file does not parse: {exc.msg}",
        )
    return src, tree, Suppressions.parse(text)


def _check_rules(
    src: SourceFile,
    tree: ast.AST,
    suppressions: Suppressions,
    rules: Optional[Sequence[Rule]],
) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(tree, src):
            if not suppressions.is_suppressed(finding):
                findings.append(finding)
    return findings


def _flow_findings(
    parsed: List[Tuple[SourceFile, ast.AST, Suppressions]]
) -> List[Finding]:
    """Run the flow analyses over the whole parsed batch."""
    from .flow import analyze_files  # deferred: keeps plain rule runs light

    by_path = {src.path: sup for src, _tree, sup in parsed}
    return [
        f
        for f in analyze_files([(src, tree) for src, tree, _sup in parsed])
        if not by_path[f.path].is_suppressed(f)
    ]


def lint_text(
    text: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    flow: bool = True,
) -> List[Finding]:
    """Lint one source string; returns suppression-filtered findings."""
    parsed = _parse(text, path)
    if isinstance(parsed, Finding):
        return [parsed]
    src, tree, suppressions = parsed
    findings = _check_rules(src, tree, suppressions, rules)
    if flow:
        findings.extend(_flow_findings([(src, tree, suppressions)]))
    return sorted(findings)


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f
                for f in p.rglob("*.py")
                if not _SKIP_DIRS.intersection(part for part in f.parts)
            )
        elif p.suffix == ".py":
            out.append(p)
    return sorted(set(out))


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    flow: bool = True,
) -> LintResult:
    """Lint every Python file reachable from ``paths``.

    The flow analyses see the whole batch at once, so helpers defined
    in one file resolve at call sites in another.
    """
    result = LintResult()
    parsed: List[Tuple[SourceFile, ast.AST, Suppressions]] = []
    for path in iter_python_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            result.findings.append(
                Finding(
                    path=str(path),
                    line=1,
                    col=1,
                    rule="io-error",
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        result.files_checked += 1
        unit = _parse(text, str(path))
        if isinstance(unit, Finding):
            result.findings.append(unit)
            continue
        parsed.append(unit)
        result.findings.extend(_check_rules(unit[0], unit[1], unit[2], rules))
    if flow and parsed:
        result.findings.extend(_flow_findings(parsed))
    result.findings.sort()
    return result


def render_text(result: LintResult) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [f.format() for f in result.findings]
    lines.append(
        f"simlint: {len(result.errors)} error(s), {len(result.warnings)} "
        f"warning(s) in {result.files_checked} file(s)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-oriented report (stable key order, one JSON document)."""
    doc = {
        "files_checked": result.files_checked,
        "errors": len(result.errors),
        "warnings": len(result.warnings),
        "findings": [f.to_json() for f in result.findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_github(result: LintResult) -> str:
    """GitHub Actions workflow commands: one ``::error``/``::warning``
    annotation per finding, so findings appear inline on PR diffs.

    Newlines and the characters GitHub treats specially in workflow
    commands are percent-escaped per the Actions documentation.
    """

    def esc(msg: str) -> str:
        return (
            msg.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        )

    lines = []
    for f in result.findings:
        level = "error" if f.severity is Severity.ERROR else "warning"
        lines.append(
            f"::{level} file={f.path},line={f.line},col={f.col},"
            f"title=simlint [{f.rule}]::{esc(f.message)}"
        )
    lines.append(
        f"simlint: {len(result.errors)} error(s), {len(result.warnings)} "
        f"warning(s) in {result.files_checked} file(s)"
    )
    return "\n".join(lines)
