"""Finding and suppression primitives shared by every simlint rule.

A :class:`Finding` is one diagnostic anchored to a file position.
Suppressions are written in source comments::

    # simlint: ignore[yield-from-comm]        (standalone line: whole file)
    x = time.time()  # simlint: ignore[determinism-hazard]   (this line only)
    # simlint: ignore                          (all rules, whole file)

A standalone comment (nothing but the comment on its line) suppresses
the named rules for the entire file; a trailing comment suppresses them
for its own line.
"""

from __future__ import annotations

import enum
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

__all__ = ["Severity", "Finding", "Suppressions"]

#: Matches ``simlint: ignore`` / ``simlint: ignore[rule-a, rule-b]``.
_IGNORE_RE = re.compile(r"simlint:\s*ignore(?:\[([A-Za-z0-9_,\- ]+)\])?")

#: Wildcard entry meaning "every rule".
_ALL = "*"


class Severity(enum.IntEnum):
    """How bad a finding is; errors gate the exit code harder than warnings."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violation at a position in a file."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def format(self) -> str:
        """Render in the conventional ``path:line:col: severity [rule] msg`` shape."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.rule}] {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        """Plain-dict form for the JSON output mode."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Parsed ``# simlint: ignore`` comments of one source file."""

    #: rule ids suppressed for the whole file (may contain ``"*"``)
    file_rules: Set[str] = field(default_factory=set)
    #: line number -> rule ids suppressed on that line
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, text: str) -> "Suppressions":
        """Extract suppression comments from ``text`` (best effort)."""
        sup = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return sup
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _IGNORE_RE.search(tok.string)
            if m is None:
                continue
            rules = (
                {r.strip() for r in m.group(1).split(",") if r.strip()}
                if m.group(1)
                else {_ALL}
            )
            standalone = tok.line.lstrip().startswith("#")
            if standalone:
                sup.file_rules |= rules
            else:
                sup.line_rules.setdefault(tok.start[0], set()).update(rules)
        return sup

    def is_suppressed(self, finding: Finding) -> bool:
        """True when ``finding`` is silenced by a comment in its file."""
        if _ALL in self.file_rules or finding.rule in self.file_rules:
            return True
        on_line = self.line_rules.get(finding.line)
        return on_line is not None and (_ALL in on_line or finding.rule in on_line)
