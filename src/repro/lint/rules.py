"""The simlint rule framework: base class, registry, source handle.

A rule is a class with a stable kebab-case ``id``, a default
``severity`` and a ``check(tree, src)`` generator yielding
:class:`~repro.lint.findings.Finding` objects.  Rules register
themselves with the :func:`register` decorator; :func:`all_rules`
instantiates the whole registry in deterministic (id-sorted) order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Type

from .findings import Finding, Severity

__all__ = ["SourceFile", "Rule", "register", "all_rules", "rule_ids", "RULES"]


@dataclass(frozen=True)
class SourceFile:
    """One file (or source string) under analysis."""

    path: str
    text: str

    @property
    def lines(self) -> Tuple[str, ...]:
        return tuple(self.text.splitlines())

    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` (empty string when unavailable)."""
        return ast.get_source_segment(self.text, node) or ""


class Rule:
    """Base class for one static-analysis rule."""

    #: stable kebab-case identifier, used in output and suppressions
    id: str = ""
    #: default severity of this rule's findings
    severity: Severity = Severity.ERROR
    #: one-line human description (shown by ``repro lint --list-rules``)
    description: str = ""

    def check(self, tree: ast.AST, src: SourceFile) -> Iterator[Finding]:
        """Yield findings for ``tree``; override in subclasses."""
        raise NotImplementedError
        yield  # pragma: no cover

    def finding(
        self,
        src: SourceFile,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=src.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity if severity is None else severity,
            message=message,
        )


#: id -> rule class, in registration order.
RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the rule registry."""
    if not cls.id:
        raise ValueError(f"{cls.__name__} lacks a rule id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULES[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, sorted by id."""
    return [RULES[rid]() for rid in sorted(RULES)]


def rule_ids() -> List[str]:
    """The sorted ids of every registered rule."""
    return sorted(RULES)
