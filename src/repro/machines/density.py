"""Physical density and footprint analysis (paper Section I.A).

"The design is intended to provide a highly scalable, physically dense
system with relatively low power requirements per flop ... packaged
densely at 4096 cores per rack without the need for exotic cooling
technologies (e.g., liquid cooling).  In fact, other architectures have
dramatically fewer cores per rack: the dual core Cray XT3 has 192 cores
per rack; the quad core Cray XT4 has 384 cores per rack."

This module turns those numbers into the procurement-style questions a
center asks: racks, floor space, and power to field a given capability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .specs import MachineSpec

__all__ = ["Footprint", "footprint_for_peak", "footprint_for_cores", "density_ratio"]

#: Floor area per rack, m^2 (rack + service clearance).
_RACK_AREA_M2 = 1.8


@dataclass(frozen=True)
class Footprint:
    """The physical cost of fielding a configuration."""

    machine: str
    cores: int
    racks: int
    floor_area_m2: float
    peak_tflops: float
    power_kw: float

    @property
    def tflops_per_rack(self) -> float:
        return self.peak_tflops / self.racks if self.racks else 0.0

    @property
    def tflops_per_m2(self) -> float:
        return self.peak_tflops / self.floor_area_m2 if self.floor_area_m2 else 0.0


def footprint_for_cores(machine: MachineSpec, cores: int) -> Footprint:
    """Racks/area/power to field ``cores`` cores."""
    if cores < 1:
        raise ValueError("cores must be >= 1")
    racks = math.ceil(cores / machine.cores_per_rack)
    peak = cores * machine.node.core.peak_flops / 1e12
    return Footprint(
        machine=machine.name,
        cores=cores,
        racks=racks,
        floor_area_m2=racks * _RACK_AREA_M2,
        peak_tflops=peak,
        power_kw=machine.power.aggregate(cores, "normal") / 1e3,
    )


def footprint_for_peak(machine: MachineSpec, tflops: float) -> Footprint:
    """Racks/area/power to field ``tflops`` of peak."""
    if tflops <= 0:
        raise ValueError("tflops must be positive")
    cores = math.ceil(tflops * 1e12 / machine.node.core.peak_flops)
    return footprint_for_cores(machine, cores)


def density_ratio(a: MachineSpec, b: MachineSpec) -> float:
    """Cores-per-rack ratio a/b (Section I.A: BG/P vs XT3 is ~21x)."""
    return a.cores_per_rack / b.cores_per_rack
