"""Power accounting (paper Section IV, Table 3).

The paper measured wall-plug power while running TOP500 HPL and
"normal" science workloads, then derived:

* watts per core (HPL and normal),
* HPL MFlops/s per watt (the Green500 metric),
* aggregate power to reach a fixed science throughput (POP
  'Simulation Years per Day').

This module reproduces those derivations from the per-core power rates
in :class:`~repro.machines.specs.PowerSpec`.  The simulated "power
meter" integrates power over a run's timeline, supporting phase-level
attribution (e.g. an application that alternates compute-heavy and
communication-heavy phases draws slightly different power).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .specs import MachineSpec

__all__ = ["PowerMeter", "PowerSample", "hpl_mflops_per_watt", "aggregate_power_kw"]


@dataclass(frozen=True)
class PowerSample:
    """One interval of a power trace."""

    start: float  # seconds
    end: float  # seconds
    watts: float
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def joules(self) -> float:
        return self.watts * self.duration


@dataclass
class PowerMeter:
    """Integrates a machine's power draw over a simulated run.

    Use :meth:`record` to log intervals, then read :attr:`total_joules`,
    :meth:`average_watts`, and per-label breakdowns.  The per-core rate
    is chosen by workload kind per the paper's measurement method:
    ``"hpl"`` while running HPL, ``"normal"`` for science codes,
    ``"idle"`` otherwise.
    """

    machine: MachineSpec
    cores: int
    samples: List[PowerSample] = field(default_factory=list)

    def watts_for(self, kind: str) -> float:
        """Instantaneous draw of the allocated cores for workload ``kind``."""
        return self.machine.power.aggregate(self.cores, kind)

    def record(
        self, start: float, end: float, kind: str = "normal", label: str = ""
    ) -> PowerSample:
        """Log one interval at the draw rate of workload ``kind``."""
        if end < start:
            raise ValueError(f"interval ends before it starts: [{start}, {end}]")
        sample = PowerSample(start, end, self.watts_for(kind), label or kind)
        self.samples.append(sample)
        return sample

    @property
    def total_joules(self) -> float:
        return sum(s.joules for s in self.samples)

    @property
    def elapsed(self) -> float:
        if not self.samples:
            return 0.0
        return max(s.end for s in self.samples) - min(s.start for s in self.samples)

    def average_watts(self) -> float:
        """Energy-weighted mean power over the recorded span."""
        t = self.elapsed
        return self.total_joules / t if t > 0 else 0.0

    def breakdown(self) -> Dict[str, float]:
        """Joules per label."""
        out: Dict[str, float] = {}
        for s in self.samples:
            out[s.label] = out.get(s.label, 0.0) + s.joules
        return out


def hpl_mflops_per_watt(machine: MachineSpec, cores: Optional[int] = None) -> float:
    """The Green500 metric: sustained HPL MFlop/s per watt.

    Table 3 reports 347.6 for BG/P and 129.7 for the XT4/QC; Section
    II.C reports 310.93 for the ORNL BG/P's specific TOP500 run (which
    sustained a slightly lower fraction of peak than the Table 3 run).
    """
    n = machine.total_cores if cores is None else cores
    rmax_flops = n * machine.node.core.peak_flops * machine.hpl_efficiency
    watts = machine.power.aggregate(n, "hpl")
    return (rmax_flops / 1e6) / watts


def aggregate_power_kw(machine: MachineSpec, cores: int, kind: str = "normal") -> float:
    """Aggregate kilowatts drawn by ``cores`` cores under ``kind`` load."""
    return machine.power.aggregate(cores, kind) / 1e3
