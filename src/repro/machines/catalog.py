"""The machine catalog: the five systems of the paper's Table 1.

Every constant below encodes a value stated in the paper (Table 1,
Table 3, or Section text) or, where the paper is silent, a documented
contemporary measurement.  Comments cite the source of each number.

Machines are exposed both as module-level constants (``BGP``, ``XT4_QC``
...) and through :func:`get_machine` / :func:`all_machines` lookups.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .specs import (
    CacheLevel,
    CoherenceKind,
    CoreSpec,
    FaultSpec,
    GB,
    KB,
    MachineSpec,
    MB,
    MemorySpec,
    MpiSpec,
    NodeSpec,
    PowerSpec,
    TorusSpec,
    TreeSpec,
)

__all__ = [
    "BGP",
    "BGL",
    "XT3",
    "XT4_DC",
    "XT4_QC",
    "get_machine",
    "all_machines",
    "MACHINE_NAMES",
    "ORNL_BGP_NODES",
    "ANL_BGP_NODES",
]

#: ORNL "Eugene": two racks x 1024 nodes (Section I.B).
ORNL_BGP_NODES = 2048
#: ANL "Intrepid": 40 racks x 1024 nodes (Section I.C).
ANL_BGP_NODES = 40960

# ---------------------------------------------------------------------------
# IBM BlueGene/P
# ---------------------------------------------------------------------------
BGP = MachineSpec(
    name="BG/P",
    node=NodeSpec(
        cores=4,  # Table 1: four PPC450 cores per node
        core=CoreSpec(
            clock_hz=850e6,  # Table 1: 850 MHz
            flops_per_cycle=4,  # Double Hummer: 2 FMA/cycle -> 3.4 GF/s/core
            dgemm_efficiency=0.87,  # ESSL DGEMM sustains ~87% of peak
        ),
        l1=CacheLevel(size_bytes=32 * KB, shared=False, line_bytes=32),
        # "L2" on BG/P is a 14-deep stream prefetch engine, not a real
        # cache; modeled as a small per-core buffer feeding L3.
        l2=CacheLevel(size_bytes=2 * KB, shared=False, line_bytes=128),
        l3=CacheLevel(size_bytes=8 * MB, shared=True, line_bytes=128),
        memory=MemorySpec(
            capacity_bytes=2 * GB,  # Table 1: 2 GB per node
            peak_bandwidth=13.6e9,  # Table 1: 13.6 GB/s
            single_core_stream=4.3e9,  # deep prefetch lets one core stream well
            node_stream=10.2e9,  # ~75% of peak with all four cores
        ),
        coherence=CoherenceKind.HARDWARE,  # Table 1 (new vs BG/L)
    ),
    torus=TorusSpec(
        link_bandwidth=425e6,  # Section I.A: 425 MB/s per direction per link
        links_per_node=6,  # 3-D torus: six nearest-neighbour links
        hop_latency=100e-9,  # embedded router, ~0.1 us per hop
        single_stream_links=1,  # deterministic dimension-order routing
    ),
    tree=TreeSpec(
        link_bandwidth=850e6,  # Section I.A: 850 MB/s per direction
        links_per_node=3,  # three tree links per node
        hop_latency=250e-9,  # per tree level
        hardware_reduce_dtypes=("int32", "int64", "float64"),
    ),
    mpi=MpiSpec(
        latency=3.0e-6,  # BG/P MPI ping-pong ~3 us ("strength is low latency")
        send_overhead=0.9e-6,  # slow 850 MHz core pays real per-message cost
        recv_overhead=0.9e-6,
        eager_threshold=1200,  # BG/P MPI default eager limit
        rendezvous_overhead=6.0e-6,  # RTS/CTS round trip on the torus
    ),
    power=PowerSpec(
        hpl_watts_per_core=7.7,  # Table 3: 63 kW / 8192 cores
        normal_watts_per_core=7.3,  # Table 3: 60 kW / 8192 cores
    ),
    cores_per_rack=4096,  # Section I.A
    total_nodes=ANL_BGP_NODES,  # default to the larger (Intrepid) system
    hpl_efficiency=0.785,  # Table 3: 21.9 / 27.9
    contiguous_allocation=True,  # BG partitions are electrically isolated
    # SoC integration + low clock: Intrepid-class availability reports put
    # the full 40960-node system's MTBF at roughly a day, i.e. ~1M node-hours.
    faults=FaultSpec(node_mtbf_hours=1.0e6, link_mtbf_hours=8.0e6),
)

# ---------------------------------------------------------------------------
# IBM BlueGene/L (predecessor; appears in Fig. 7c and Fig. 8)
# ---------------------------------------------------------------------------
BGL = MachineSpec(
    name="BG/L",
    node=NodeSpec(
        cores=2,  # Table 1
        core=CoreSpec(
            clock_hz=700e6,  # Table 1: 700 MHz
            flops_per_cycle=4,  # double hummer -> 2.8 GF/s/core
            dgemm_efficiency=0.85,
        ),
        l1=CacheLevel(size_bytes=32 * KB, shared=False, line_bytes=32),
        l2=CacheLevel(size_bytes=2 * KB, shared=False, line_bytes=128),
        l3=CacheLevel(size_bytes=4 * MB, shared=True, line_bytes=128),
        memory=MemorySpec(
            capacity_bytes=512 * MB,  # Table 1: 0.5 - 1 GB
            peak_bandwidth=5.6e9,  # Table 1
            single_core_stream=2.4e9,
            node_stream=4.2e9,
        ),
        coherence=CoherenceKind.SOFTWARE,  # Table 1: software L1 coherence
    ),
    torus=TorusSpec(
        link_bandwidth=175e6,  # 2.1 GB/s injection / 6 links / 2 dirs
        links_per_node=6,
        hop_latency=100e-9,
    ),
    tree=TreeSpec(
        link_bandwidth=350e6,  # Table 1 tree bandwidth 700 MB/s bidirectional
        links_per_node=3,
        hop_latency=250e-9,
    ),
    mpi=MpiSpec(
        latency=2.8e-6,
        send_overhead=1.1e-6,  # slower core, earlier software stack
        recv_overhead=1.1e-6,
        eager_threshold=1024,
        rendezvous_overhead=5.6e-6,
    ),
    power=PowerSpec(hpl_watts_per_core=11.0, normal_watts_per_core=10.4),
    cores_per_rack=2048,
    total_nodes=4096,
    hpl_efficiency=0.76,
    contiguous_allocation=True,
    # Same design philosophy as BG/P; earlier silicon, slightly lower MTBF.
    faults=FaultSpec(node_mtbf_hours=8.0e5, link_mtbf_hours=6.0e6),
)

# ---------------------------------------------------------------------------
# Cray XT3 (dual-core Opteron, SeaStar)
# ---------------------------------------------------------------------------
XT3 = MachineSpec(
    name="XT3",
    node=NodeSpec(
        cores=2,  # Table 1
        core=CoreSpec(
            clock_hz=2600e6,  # Table 1: 2.6 GHz
            flops_per_cycle=2,  # K8 Opteron: one add + one mul per cycle
            dgemm_efficiency=0.90,  # ACML
        ),
        l1=CacheLevel(size_bytes=64 * KB, shared=False, line_bytes=64),
        l2=CacheLevel(size_bytes=1 * MB, shared=False, line_bytes=64),
        l3=None,  # Table 1: n/a
        memory=MemorySpec(
            capacity_bytes=4 * GB,
            peak_bandwidth=6.4e9,  # Table 1
            single_core_stream=3.4e9,
            node_stream=4.8e9,
        ),
        coherence=CoherenceKind.HARDWARE,
    ),
    torus=TorusSpec(
        link_bandwidth=1.1e9,  # SeaStar sustained MPI per-stream bandwidth
        links_per_node=6,
        hop_latency=250e-9,  # SeaStar router
        single_stream_links=1,
        injection_cap=6.4e9,  # Table 1: HyperTransport-capped injection
    ),
    tree=None,  # no collective-offload network on the XTs
    mpi=MpiSpec(
        latency=6.0e-6,  # SeaStar + Catamount ping-pong ~6 us
        send_overhead=0.4e-6,  # fast Opteron core: low per-message CPU cost
        recv_overhead=0.4e-6,
        eager_threshold=16 * KB,
        rendezvous_overhead=12.0e-6,
    ),
    power=PowerSpec(hpl_watts_per_core=50.0, normal_watts_per_core=47.0),
    cores_per_rack=192,  # Section I.A
    total_nodes=5212,
    hpl_efficiency=0.80,
    contiguous_allocation=False,  # XT allocator fragments (Fig. 1c discussion)
    # Commodity Opteron boards: contemporary Jaguar logs showed system
    # interrupts every few tens of hours at ~10k nodes (~2e5 node-hours).
    faults=FaultSpec(node_mtbf_hours=2.0e5, link_mtbf_hours=4.0e6),
)

# ---------------------------------------------------------------------------
# Cray XT4 dual-core (2.6 GHz, SeaStar2)
# ---------------------------------------------------------------------------
XT4_DC = MachineSpec(
    name="XT4/DC",
    node=NodeSpec(
        cores=2,
        core=CoreSpec(
            clock_hz=2600e6,  # Table 1
            flops_per_cycle=2,
            dgemm_efficiency=0.90,
        ),
        l1=CacheLevel(size_bytes=64 * KB, shared=False, line_bytes=64),
        l2=CacheLevel(size_bytes=1 * MB, shared=False, line_bytes=64),
        l3=None,
        memory=MemorySpec(
            capacity_bytes=4 * GB,
            peak_bandwidth=10.6e9,  # Table 1: DDR2-667
            single_core_stream=4.0e9,
            node_stream=7.4e9,
        ),
        coherence=CoherenceKind.HARDWARE,
    ),
    torus=TorusSpec(
        link_bandwidth=2.0e9,  # SeaStar2 sustained per-stream bandwidth
        links_per_node=6,
        hop_latency=200e-9,
        single_stream_links=1,
        injection_cap=6.4e9,  # Table 1
    ),
    tree=None,
    mpi=MpiSpec(
        latency=6.5e-6,
        send_overhead=0.4e-6,
        recv_overhead=0.4e-6,
        eager_threshold=16 * KB,
        rendezvous_overhead=13.0e-6,
    ),
    power=PowerSpec(hpl_watts_per_core=52.0, normal_watts_per_core=49.0),
    cores_per_rack=192,
    total_nodes=11508,
    hpl_efficiency=0.80,
    contiguous_allocation=False,
    faults=FaultSpec(node_mtbf_hours=2.0e5, link_mtbf_hours=4.0e6),
)

# ---------------------------------------------------------------------------
# Cray XT4 quad-core (2.1 GHz Barcelona, SeaStar2) — the paper's main
# comparison system ("Jaguar" as of March 2008, 30976 cores, Table 3)
# ---------------------------------------------------------------------------
XT4_QC = MachineSpec(
    name="XT4/QC",
    node=NodeSpec(
        cores=4,  # Table 1
        core=CoreSpec(
            clock_hz=2100e6,  # Table 1: 2.1 GHz
            # Barcelona issues 4 DP flops/cycle (SSE128): 8.4 GF/s/core.
            # Cross-check: Table 3 peak 260.2 TF / 30976 cores = 8.4 GF/s.
            flops_per_cycle=4,
            dgemm_efficiency=0.88,
        ),
        l1=CacheLevel(size_bytes=64 * KB, shared=False, line_bytes=64),
        l2=CacheLevel(size_bytes=512 * KB, shared=False, line_bytes=64),
        l3=CacheLevel(size_bytes=2 * MB, shared=True, line_bytes=64),
        memory=MemorySpec(
            capacity_bytes=8 * GB,  # Section II.A: 4x the BG/P's 2 GB
            peak_bandwidth=12.8e9,  # Table 1: 12.8/10.6 (800 MHz partition)
            single_core_stream=4.0e9,
            node_stream=6.8e9,  # Barcelona DDR2: ~53% of peak sustained
        ),
        coherence=CoherenceKind.HARDWARE,
    ),
    torus=TorusSpec(
        link_bandwidth=2.0e9,
        links_per_node=6,
        hop_latency=200e-9,
        single_stream_links=1,
        injection_cap=6.4e9,
    ),
    tree=None,
    mpi=MpiSpec(
        latency=7.0e-6,  # CNL + SeaStar2
        send_overhead=0.4e-6,
        recv_overhead=0.4e-6,
        eager_threshold=16 * KB,
        rendezvous_overhead=14.0e-6,
    ),
    power=PowerSpec(
        hpl_watts_per_core=51.0,  # Table 3: 1580 kW / 30976 cores
        normal_watts_per_core=48.4,  # Table 3: 1500 kW / 30976 cores
    ),
    cores_per_rack=384,  # Section I.A
    total_nodes=7744,  # 30976 cores / 4
    hpl_efficiency=0.788,  # Table 3: 205.0 / 260.2
    contiguous_allocation=False,
    faults=FaultSpec(node_mtbf_hours=2.5e5, link_mtbf_hours=4.0e6),
)

# ---------------------------------------------------------------------------
# Lookup helpers
# ---------------------------------------------------------------------------
_CATALOG: Dict[str, MachineSpec] = {
    m.name: m for m in (BGP, BGL, XT3, XT4_DC, XT4_QC)
}
#: Canonical machine names, in Table 1 column order.
MACHINE_NAMES: Tuple[str, ...] = ("BG/L", "BG/P", "XT3", "XT4/DC", "XT4/QC")

_ALIASES = {
    "bgp": "BG/P",
    "bg/p": "BG/P",
    "bluegene/p": "BG/P",
    "intrepid": "BG/P",
    "eugene": "BG/P",
    "bgl": "BG/L",
    "bg/l": "BG/L",
    "bluegene/l": "BG/L",
    "xt3": "XT3",
    "xt4dc": "XT4/DC",
    "xt4/dc": "XT4/DC",
    "xt4": "XT4/QC",
    "xt4qc": "XT4/QC",
    "xt4/qc": "XT4/QC",
    "jaguar": "XT4/QC",
}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine by name or common alias (case-insensitive)."""
    key = _ALIASES.get(name.lower(), name)
    try:
        return _CATALOG[key]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; known: {sorted(_CATALOG)}"
        ) from None


def all_machines() -> Dict[str, MachineSpec]:
    """All catalogued machines keyed by canonical name."""
    return dict(_CATALOG)
