"""Execution modes: how MPI tasks and threads occupy a compute node.

The paper (Section I.A) describes three BG/P modes:

* **SMP**  — one MPI task per node, up to 4 threads (the default);
* **DUAL** — two MPI tasks per node, up to 2 threads each (new in BG/P);
* **VN**   — four MPI tasks per node, one thread each ("virtual node").

The Cray XTs have analogous modes (Section I.D): **SN** (one task per
node, like SMP) and **VN** (one task per core).

A mode determines how node resources — memory capacity, memory
bandwidth, and network injection bandwidth — are divided among the MPI
tasks on the node, which drives every per-process performance number in
the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from .specs import MachineSpec

__all__ = ["Mode", "ModeConfig", "resolve_mode", "available_modes"]


class Mode(str, Enum):
    """Named execution modes from the paper."""

    SMP = "SMP"  # BG: 1 task/node (<=4 threads); also maps to XT 'SN'
    DUAL = "DUAL"  # BG/P only: 2 tasks/node
    VN = "VN"  # 1 task per core
    SN = "SN"  # XT name for one-task-per-node

    @property
    def canonical(self) -> "Mode":
        """SN is the XT spelling of SMP (Section I.D)."""
        return Mode.SMP if self is Mode.SN else self


@dataclass(frozen=True)
class ModeConfig:
    """A mode resolved against a concrete machine."""

    mode: Mode
    machine: MachineSpec
    tasks_per_node: int
    threads_per_task: int

    @property
    def memory_per_task(self) -> float:
        """Bytes of RAM available to each MPI task."""
        return self.machine.node.memory.capacity_bytes / self.tasks_per_node

    @property
    def stream_bw_per_task(self) -> float:
        """Sustained memory bandwidth available per task, bytes/s."""
        return self.machine.node.memory.stream_per_process(self.tasks_per_node)

    @property
    def injection_bw_per_task(self) -> float:
        """Network injection bandwidth share per task, bytes/s.

        Section I.A: 'This bandwidth is shared among the node's four
        cores.'
        """
        return self.machine.torus.injection_bandwidth / self.tasks_per_node

    @property
    def peak_flops_per_task(self) -> float:
        """Peak flop/s a task can reach (its cores, incl. threads)."""
        cores_per_task = self.machine.node.cores // self.tasks_per_node
        return cores_per_task * self.machine.node.core.peak_flops

    def ranks_for_nodes(self, nodes: int) -> int:
        """MPI ranks launched on ``nodes`` nodes."""
        return nodes * self.tasks_per_node

    def nodes_for_ranks(self, ranks: int) -> int:
        """Nodes needed to host ``ranks`` MPI ranks (ceiling division)."""
        return -(-ranks // self.tasks_per_node)


def available_modes(machine: MachineSpec) -> Tuple[Mode, ...]:
    """Modes a machine supports.

    DUAL exists only on BG/P (Section I.A: 'a new mode in the BG/P
    system'); the XTs use SN/VN naming.
    """
    if machine.name == "BG/P":
        return (Mode.SMP, Mode.DUAL, Mode.VN)
    if machine.name == "BG/L":
        # BG/L supported coprocessor (one task) and virtual-node modes.
        return (Mode.SMP, Mode.VN)
    return (Mode.SN, Mode.VN)


def resolve_mode(machine: MachineSpec, mode: Mode | str) -> ModeConfig:
    """Resolve ``mode`` against ``machine``, validating support."""
    if isinstance(mode, str):
        mode = Mode(mode.upper())
    allowed = available_modes(machine)
    # Accept the cross-family synonym (SMP <-> SN) transparently.
    if mode not in allowed and mode.canonical not in {m.canonical for m in allowed}:
        raise ValueError(
            f"mode {mode.value} is not available on {machine.name}; "
            f"choose from {[m.value for m in allowed]}"
        )
    cores = machine.node.cores
    canonical = mode.canonical
    if canonical is Mode.SMP:
        tasks = 1
    elif canonical is Mode.DUAL:
        tasks = 2
    else:  # VN
        tasks = cores
    if tasks > cores:
        raise ValueError(
            f"{mode.value} needs {tasks} cores/node but {machine.name} has {cores}"
        )
    threads = cores // tasks
    return ModeConfig(
        mode=mode, machine=machine, tasks_per_node=tasks, threads_per_task=threads
    )
