"""Dataclass descriptions of the machines under evaluation.

These encode exactly the quantities the paper's Table 1 records (plus
the power figures of Table 3 and the latency/bandwidth characteristics
discussed in Section II), so that every derived result is a function of
documented hardware parameters rather than magic constants scattered
through benchmark code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Optional, Tuple

__all__ = [
    "CacheLevel",
    "MemorySpec",
    "CoreSpec",
    "NodeSpec",
    "TorusSpec",
    "TreeSpec",
    "MpiSpec",
    "PowerSpec",
    "FaultSpec",
    "MachineSpec",
    "CoherenceKind",
    "GB",
    "MB",
    "KB",
    "GFLOP",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
GFLOP = 1e9


class CoherenceKind(str, Enum):
    """How L1 coherence is maintained (Table 1, 'Cache Coherence')."""

    SOFTWARE = "software"  # BG/L
    HARDWARE = "hardware"  # BG/P, all XTs


@dataclass(frozen=True)
class CacheLevel:
    """One level of the on-node cache hierarchy."""

    size_bytes: int
    shared: bool  # shared by all cores on the node?
    line_bytes: int = 64
    #: effective bandwidth to the level below it, bytes/s (0 = unmodeled)
    bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("cache line size must be a positive power of two")


@dataclass(frozen=True)
class MemorySpec:
    """Main-memory configuration of a node.

    Two sustained-bandwidth calibration points accompany the peak:
    what one core can stream alone, and what all cores streaming
    together achieve.  These reproduce the paper's Table 2 STREAM
    observation (BG/P: higher absolute bandwidth per process and a
    smaller single->embarrassingly-parallel decline than the XT).
    """

    capacity_bytes: int
    #: peak main-memory bandwidth, bytes/s (Table 1 'Main Memory Bandwidth')
    peak_bandwidth: float
    #: STREAM triad bandwidth one core achieves alone, bytes/s
    single_core_stream: float = 0.0
    #: STREAM triad bandwidth all cores achieve together, bytes/s
    node_stream: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.peak_bandwidth <= 0:
            raise ValueError("memory capacity and bandwidth must be positive")
        if self.single_core_stream == 0.0:
            object.__setattr__(self, "single_core_stream", 0.35 * self.peak_bandwidth)
        if self.node_stream == 0.0:
            object.__setattr__(self, "node_stream", 0.70 * self.peak_bandwidth)
        if self.node_stream > self.peak_bandwidth + 1e-9:
            raise ValueError("sustained node STREAM cannot exceed peak bandwidth")

    @property
    def stream_bandwidth(self) -> float:
        """Achievable whole-node STREAM bandwidth in bytes/s."""
        return self.node_stream

    def stream_per_process(self, processes_per_node: int) -> float:
        """Per-process STREAM bandwidth with ``processes_per_node`` streaming.

        One process gets :attr:`single_core_stream`; at full node
        occupancy each gets an equal share of :attr:`node_stream`;
        intermediate counts interpolate via the min of the two regimes.
        """
        if processes_per_node < 1:
            raise ValueError("processes_per_node must be >= 1")
        return min(self.single_core_stream, self.node_stream / processes_per_node)


@dataclass(frozen=True)
class CoreSpec:
    """A single processor core."""

    clock_hz: float
    flops_per_cycle: int  # double-precision results per cycle
    #: sustained fraction of peak for tuned dense kernels (DGEMM/HPL)
    dgemm_efficiency: float = 0.90

    @property
    def peak_flops(self) -> float:
        """Peak double-precision flop/s of one core."""
        return self.clock_hz * self.flops_per_cycle


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: cores, caches, memory."""

    cores: int
    core: CoreSpec
    l1: CacheLevel
    l2: Optional[CacheLevel]
    l3: Optional[CacheLevel]
    memory: MemorySpec
    coherence: CoherenceKind

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("a node needs at least one core")

    @property
    def peak_flops(self) -> float:
        """Peak node flop/s (Table 1 'Peak Performance per node')."""
        return self.cores * self.core.peak_flops


@dataclass(frozen=True)
class TorusSpec:
    """The 3-D torus (BG) or 3-D mesh/torus (XT SeaStar) network."""

    #: per-link, per-direction bandwidth in bytes/s
    link_bandwidth: float
    #: links per node (6 for a 3-D torus)
    links_per_node: int
    #: per-hop router latency in seconds
    hop_latency: float
    #: can a single message stripe across multiple links? (XT SeaStar
    #: effectively yes via its single fat pipe; BG/P torus no — one
    #: deterministic route per message unless adaptive routing is used)
    single_stream_links: int = 1
    #: per-node injection cap in bytes/s bidirectional (0 = no cap beyond
    #: the aggregate link bandwidth).  On the XTs the HyperTransport link
    #: between Opteron and SeaStar caps injection at 6.4 GB/s even though
    #: the SeaStar's own links are faster (Table 1).
    injection_cap: float = 0.0

    @property
    def injection_bandwidth(self) -> float:
        """Aggregate per-node bidirectional injection bandwidth, bytes/s.

        Table 1 'Torus Injection Bandwidth': 5.1 GB/s for BG/P
        (6 links x 425 MB/s x 2 directions), 6.4 GB/s for the XTs
        (HyperTransport-capped).
        """
        aggregate = self.link_bandwidth * self.links_per_node * 2
        return min(aggregate, self.injection_cap) if self.injection_cap else aggregate

    @property
    def single_stream_bandwidth(self) -> float:
        """Best-case bandwidth for one point-to-point message, bytes/s."""
        return self.link_bandwidth * self.single_stream_links


@dataclass(frozen=True)
class TreeSpec:
    """The BG global collective (tree) network.  ``None`` on the XTs."""

    #: per-link, per-direction bandwidth in bytes/s (850 MB/s on BG/P)
    link_bandwidth: float
    #: links per node (3 on BG/P)
    links_per_node: int
    #: per-tree-level latency in seconds
    hop_latency: float
    #: the tree ALU reduces these dtypes at wire speed
    hardware_reduce_dtypes: Tuple[str, ...] = ("int32", "int64", "float64")

    def supports_reduce(self, dtype: str) -> bool:
        """Whether the tree can combine ``dtype`` in hardware.

        Section II.B.2 of the paper observed a *substantial* benefit for
        double- over single-precision Allreduce on BG/P: the tree ALU
        handles doubles natively while single precision takes a software
        path.  Encoded here.
        """
        return dtype in self.hardware_reduce_dtypes


@dataclass(frozen=True)
class MpiSpec:
    """MPI-software characteristics measured at the application level."""

    #: zero-byte one-way latency in seconds (ping-pong / 2)
    latency: float
    #: per-message CPU send overhead in seconds (LogGP 'o_s')
    send_overhead: float
    #: per-message CPU receive overhead in seconds (LogGP 'o_r')
    recv_overhead: float
    #: eager-to-rendezvous protocol switch point in bytes
    eager_threshold: int
    #: extra round-trip cost a rendezvous handshake incurs, seconds
    rendezvous_overhead: float

    def __post_init__(self) -> None:
        for name in ("latency", "send_overhead", "recv_overhead"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class PowerSpec:
    """Wall-plug power characteristics (paper Table 3).

    Power is attributed per core and includes the pro-rated share of
    memory, interconnect, storage and peripherals, exactly as the
    paper's 'Measured Aggregate Power' does.
    """

    #: watts per core while running HPL (stress)
    hpl_watts_per_core: float
    #: watts per core under normal scientific workloads
    normal_watts_per_core: float
    #: watts per core while idle (not in the paper; estimated fraction)
    idle_fraction: float = 0.6

    @property
    def idle_watts_per_core(self) -> float:
        return self.normal_watts_per_core * self.idle_fraction

    def aggregate(self, cores: int, kind: str = "normal") -> float:
        """Total watts for ``cores`` cores under the given workload kind."""
        per = {
            "hpl": self.hpl_watts_per_core,
            "normal": self.normal_watts_per_core,
            "idle": self.idle_watts_per_core,
        }[kind]
        return per * cores


@dataclass(frozen=True)
class FaultSpec:
    """Reliability characteristics feeding the fault-injection layer.

    The paper's central trade (Section I): BlueGene exchanges clock
    speed for *density and reliability* — fewer, cooler, simpler parts
    per flop.  These MTBFs are per-component, so the system-level rate
    scales with partition size (``mtbf_system = mtbf_node / nodes``),
    which is exactly why checkpoint/restart economics differ across the
    Table 1 machines at 8k-40k cores.
    """

    #: mean time between failures of one compute node, hours
    node_mtbf_hours: float = 1.0e6
    #: mean time between failures of one torus link (cable+SerDes), hours
    link_mtbf_hours: float = 5.0e6
    #: time to restart a failed job from its last checkpoint, beyond
    #: re-reading the checkpoint itself (scheduler + boot), seconds
    restart_overhead_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.node_mtbf_hours <= 0 or self.link_mtbf_hours <= 0:
            raise ValueError("MTBFs must be positive")
        if self.restart_overhead_seconds < 0:
            raise ValueError("restart overhead must be non-negative")

    def system_mtbf_seconds(self, nodes: int) -> float:
        """MTBF of an ``nodes``-node partition (node failures only)."""
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        return self.node_mtbf_hours * 3600.0 / nodes


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine: node + networks + power + scale."""

    name: str
    node: NodeSpec
    torus: TorusSpec
    tree: Optional[TreeSpec]
    mpi: MpiSpec
    power: PowerSpec
    #: cores per rack (density comparison in Section I.A)
    cores_per_rack: int
    #: total nodes in the installation being modeled
    total_nodes: int
    #: fraction of peak flops HPL sustains (Table 3: Rmax / Rpeak)
    hpl_efficiency: float = 0.785
    #: does the allocator hand out contiguous partitions? (BG yes, XT no —
    #: source of the PTRANS variability in Fig. 1c)
    contiguous_allocation: bool = True
    #: reliability parameters for fault injection and checkpoint modeling
    faults: FaultSpec = FaultSpec()

    def __post_init__(self) -> None:
        if not (0 < self.hpl_efficiency <= 1):
            raise ValueError("hpl_efficiency must be in (0, 1]")

    # -- derived quantities used throughout the benches ------------------
    @property
    def total_cores(self) -> int:
        return self.total_nodes * self.node.cores

    @property
    def peak_flops_per_core(self) -> float:
        return self.node.core.peak_flops

    @property
    def peak_flops_total(self) -> float:
        return self.total_nodes * self.node.peak_flops

    @property
    def watts_per_gflop_peak(self) -> float:
        """Peak W/GFlop/s (Section I.A quotes 1.8 for the BG/P SoC+system)."""
        return (
            self.power.hpl_watts_per_core
            / (self.node.core.peak_flops / 1e9)
        )

    def with_nodes(self, total_nodes: int) -> "MachineSpec":
        """A copy of this machine scaled to a different installation size."""
        return replace(self, total_nodes=total_nodes)

    def torus_shape(self, nodes: int) -> Tuple[int, int, int]:
        """A plausible 3-D torus shape for a partition of ``nodes`` nodes.

        BG partitions come in torus shapes whose product is the node
        count; we factor into the most-cubic shape with power-of-two-ish
        dimensions, matching how BG/P midplanes compose (8x8x8 per
        midplane, doubled along axes).
        """
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        best = (nodes, 1, 1)
        best_score = float("inf")
        x = 1
        while x * x * x <= nodes * 4:  # allow slightly non-cubic search
            if nodes % x == 0:
                rem = nodes // x
                y = 1
                while y * y <= rem * 2:
                    if rem % y == 0:
                        z = rem // y
                        dims = tuple(sorted((x, y, z), reverse=True))
                        score = max(dims) / max(1, min(dims))
                        if score < best_score:
                            best_score = score
                            best = dims
                    y += 1
            x += 1
        return best  # type: ignore[return-value]
