"""I/O subsystem: collective-network forwarding to I/O nodes and GPFS
(paper Sections I.A-I.C)."""

from .forwarding import IoEstimate, IoForwarding
from .gpfs import EUGENE_HOME, EUGENE_SCRATCH, GpfsConfig

__all__ = [
    "GpfsConfig",
    "EUGENE_SCRATCH",
    "EUGENE_HOME",
    "IoForwarding",
    "IoEstimate",
]
