"""I/O subsystem: collective-network forwarding to I/O nodes and GPFS
(paper Sections I.A-I.C)."""

from .gpfs import GpfsConfig, EUGENE_SCRATCH, EUGENE_HOME
from .forwarding import IoForwarding, IoEstimate

__all__ = [
    "GpfsConfig",
    "EUGENE_SCRATCH",
    "EUGENE_HOME",
    "IoForwarding",
    "IoEstimate",
]
