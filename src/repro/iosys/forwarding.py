"""I/O forwarding: compute nodes -> collective network -> I/O nodes -> 10 GigE.

Paper Section I.A: "The Compute Nodes are not directly connected to
this [10 Gigabit Ethernet] network.  All I/O traffic is passed from the
Compute Nodes, over the global collective network, to the I/O Nodes,
and then, onto the 10 Gigabit Ethernet network."

Section I.B/C: ORNL runs 16 I/O nodes per rack (one ION per 64 compute
nodes); ANL runs a 64-to-1 ratio as well.

The model: an application write is limited by the narrowest stage of
compute-side tree links -> ION 10 GigE NICs -> the external switch ->
the filesystem.  This is what turned up the "system I/O performance
issue" the CAM study hit (and had fixed) on BG/P.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..machines.specs import MachineSpec
from .gpfs import EUGENE_SCRATCH, GpfsConfig

__all__ = ["IoForwarding", "IoEstimate"]


@dataclass(frozen=True)
class IoEstimate:
    """Predicted performance of one parallel-I/O operation."""

    nbytes: float
    seconds: float
    bottleneck: str

    @property
    def bandwidth(self) -> float:
        return self.nbytes / self.seconds if self.seconds > 0 else 0.0


@dataclass(frozen=True)
class IoForwarding:
    """The I/O path of a BG partition."""

    machine: MachineSpec
    compute_nodes: int
    #: compute nodes served by one I/O node (Sections I.B/C: 64)
    compute_per_ion: int = 64
    #: one ION's 10 GigE NIC, sustained bytes/s
    ion_nic_bandwidth: float = 1.1e9
    #: the external switch fabric ceiling (ORNL: 256-port Myricom)
    switch_bandwidth: float = 30e9
    filesystem: GpfsConfig = EUGENE_SCRATCH

    def __post_init__(self) -> None:
        if self.compute_nodes < 1 or self.compute_per_ion < 1:
            raise ValueError("node counts must be >= 1")
        if self.machine.tree is None:
            raise ValueError(
                f"{self.machine.name} has no collective network; its I/O "
                "goes over the torus (not modeled here)"
            )

    @property
    def io_nodes(self) -> int:
        return max(1, math.ceil(self.compute_nodes / self.compute_per_ion))

    def stage_bandwidths(self) -> Dict[str, float]:
        """Sustained bytes/s of each stage of the forwarding path."""
        tree = self.machine.tree
        # Each ION drains its compute group over the tree: the group's
        # aggregate uplink is one tree link's worth into the ION.
        tree_bw = self.io_nodes * tree.link_bandwidth
        return {
            "collective-tree": tree_bw,
            "ion-nics": self.io_nodes * self.ion_nic_bandwidth,
            "switch": self.switch_bandwidth,
            "filesystem": self.filesystem.aggregate_bandwidth,
        }

    def write(self, nbytes: float, writers: int | None = None) -> IoEstimate:
        """Model a collective write of ``nbytes`` from the partition.

        ``writers`` caps the participating ranks (an application that
        funnels I/O through few ranks cannot saturate the path).
        """
        if nbytes < 0:
            raise ValueError("negative write size")
        stages = self.stage_bandwidths()
        if writers is not None:
            if writers < 1:
                raise ValueError("writers must be >= 1")
            # A single writer drives at most one tree link / one ION.
            stages["writer-fanout"] = writers * min(
                self.machine.tree.link_bandwidth, self.ion_nic_bandwidth
            )
        name, bw = min(stages.items(), key=lambda kv: kv[1])
        # Metadata: one create/open round per writer group.
        t_meta = (writers or self.io_nodes) / self.filesystem.metadata_ops_per_second
        return IoEstimate(
            nbytes=nbytes,
            seconds=nbytes / bw + t_meta,
            bottleneck=name,
        )

    def read(self, nbytes: float, readers: int | None = None) -> IoEstimate:
        """Reads share the same forwarding path."""
        return self.write(nbytes, writers=readers)
