"""The GPFS storage subsystem of the ORNL BG/P (paper Section I.B).

"The system uses two GPFS filesystems, one for scratch space (~70 TB)
and a second for longer term code storage (~18 TB).  The GPFS system
includes 8 file servers and 2 metadata servers.  Data is stored in 24
LUNs, each of which is approximately 3.6 TB in size.  Individual LUNs
are an 8+2 array of DDN disks, which communicate through dual DDN
SA29500s using Infiniband."

The model: aggregate filesystem bandwidth limited by the narrowest of
file servers, LUN arrays, and controller links; metadata operations
rate-limited by the metadata servers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpfsConfig", "EUGENE_SCRATCH", "EUGENE_HOME"]

TB = 1e12


@dataclass(frozen=True)
class GpfsConfig:
    """One GPFS filesystem."""

    name: str
    capacity_bytes: float
    file_servers: int
    metadata_servers: int
    luns: int
    lun_capacity_bytes: float
    #: sustained streaming bandwidth of one LUN's 8+2 DDN array, bytes/s
    lun_bandwidth: float = 400e6
    #: bandwidth one file server can push (10 GigE NIC-limited), bytes/s
    server_bandwidth: float = 1.1e9
    #: controller (dual DDN SA29500, InfiniBand) ceiling, bytes/s
    controller_bandwidth: float = 5.0e9
    #: metadata ops/s one metadata server sustains
    mds_ops_per_server: float = 8000.0

    def __post_init__(self) -> None:
        if min(self.file_servers, self.metadata_servers, self.luns) < 1:
            raise ValueError("servers and LUN counts must be >= 1")
        if self.capacity_bytes <= 0 or self.lun_capacity_bytes <= 0:
            raise ValueError("capacities must be positive")

    @property
    def aggregate_bandwidth(self) -> float:
        """Sustained streaming bandwidth of the filesystem, bytes/s."""
        return min(
            self.luns * self.lun_bandwidth,
            self.file_servers * self.server_bandwidth,
            self.controller_bandwidth,
        )

    @property
    def metadata_ops_per_second(self) -> float:
        return self.metadata_servers * self.mds_ops_per_server

    def usable_fraction_check(self) -> float:
        """LUN capacity vs advertised capacity (sanity diagnostic)."""
        return self.luns * self.lun_capacity_bytes / self.capacity_bytes


#: Eugene's scratch filesystem (Section I.B).
EUGENE_SCRATCH = GpfsConfig(
    name="scratch",
    capacity_bytes=70 * TB,
    file_servers=8,
    metadata_servers=2,
    luns=24,
    lun_capacity_bytes=3.6 * TB,
)

#: Eugene's longer-term code-storage filesystem.
EUGENE_HOME = GpfsConfig(
    name="home",
    capacity_bytes=18 * TB,
    file_servers=8,
    metadata_servers=2,
    luns=24,
    lun_capacity_bytes=3.6 * TB,
    lun_bandwidth=200e6,  # shared with scratch traffic
)
