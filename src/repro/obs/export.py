"""Exporters for the observability layer.

Three output formats, all deterministic (two identical runs produce
byte-identical files):

* **Chrome trace** (``trace_events`` JSON) — open in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  One pid per
  rank, span tracks for the rank program and the transport, counter
  tracks for the engine queue depth and every torus link.
* **Metrics JSON** — the flat counter/gauge/histogram registry plus
  the per-link telemetry table.
* **ASCII summary** — the top-N attribution table an analyst reads
  first (the HPC-Toolkit-style splits of the paper).

``validate_trace_events`` is the schema check the tests and CI run
against every exported trace.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from .tracer import Tracer

__all__ = [
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "metrics_dict",
    "metrics_json",
    "write_metrics",
    "summary",
    "validate_trace_events",
]

#: Chrome trace event phases the exporter emits.
_KNOWN_PHASES = {"X", "i", "C", "M"}


def chrome_trace(tracer: Tracer) -> dict:
    """Assemble the full ``trace_events`` document."""
    return {
        "traceEvents": tracer.metadata_events() + list(tracer.events),
        "displayTimeUnit": "ms",
    }


def chrome_trace_json(tracer: Tracer) -> str:
    """Serialize deterministically (sorted keys, compact separators)."""
    return json.dumps(chrome_trace(tracer), sort_keys=True, separators=(",", ":"))


def write_chrome_trace(tracer: Tracer, path: Union[str, pathlib.Path]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(chrome_trace_json(tracer) + "\n")
    return path


def metrics_dict(tracer: Tracer) -> dict:
    """Metric registry + per-link telemetry, JSON-ready."""
    out = tracer.metrics.to_dict()
    out["links"] = tracer.link_table()
    out["spans"] = {
        name: {"count": int(c), "total_seconds": t}
        for name, (c, t) in sorted(tracer.span_totals.items())
    }
    return out


def metrics_json(tracer: Tracer) -> str:
    return json.dumps(metrics_dict(tracer), sort_keys=True, indent=2)


def write_metrics(tracer: Tracer, path: Union[str, pathlib.Path]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(metrics_json(tracer) + "\n")
    return path


def summary(tracer: Tracer, n: int = 10) -> str:
    """Top-N attribution digest: spans by total time, links by bytes.

    Host-side spans recorded by :class:`repro.perf.HostProfiler`
    (``host:`` name prefix) measure wall-clock of the simulator
    itself, not simulated time — they are kept out of the simulated
    attribution and reported in their own section.
    """
    sim_totals = {
        name: ct
        for name, ct in tracer.span_totals.items()
        if not name.startswith("host:")
    }
    host_totals = {
        name: ct
        for name, ct in tracer.span_totals.items()
        if name.startswith("host:")
    }
    lines = ["== span attribution (by total time) =="]
    spans = sorted(sim_totals.items(), key=lambda kv: (-kv[1][1], kv[0]))[:n]
    if not spans:
        lines.append("  (no spans recorded)")
    for name, (count, total) in spans:
        lines.append(f"  {name:<16} {int(count):>7} x  {total:.6f} s")
    if host_totals:
        lines.append("== host-side cost (simulator wall time) ==")
        for name, (count, total) in sorted(
            host_totals.items(), key=lambda kv: (-kv[1][1], kv[0])
        )[:n]:
            lines.append(f"  {name:<32} {int(count):>7} x  {total:.6f} s")

    lines.append("== hottest links (by bytes) ==")
    links = sorted(
        tracer.link_table().items(), key=lambda kv: (-kv[1]["bytes"], kv[0])
    )[:n]
    if not links:
        lines.append("  (no link traffic recorded)")
    for label, row in links:
        lines.append(
            f"  {label:<24} {int(row['bytes']):>10} B  "
            f"{int(row['transfers'])} xfers  {int(row['stalls'])} stalls "
            f"({row['stall_seconds']:.6f} s stalled)"
        )

    counters = tracer.metrics.to_dict()["counters"]
    if counters:
        lines.append("== counters ==")
        for name, value in counters.items():
            shown = f"{value:.6f}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<24} {shown}")
    return "\n".join(lines)


def validate_trace_events(doc: dict) -> None:
    """Validate a Chrome ``trace_events`` document; raise ``ValueError``.

    Checks the object form (``traceEvents`` list), the per-phase
    required fields, and that timestamps/durations are non-negative
    numbers — the contract Perfetto's importer relies on.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace must be an object with a 'traceEvents' list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        for field in ("name", "pid"):
            if field not in ev:
                raise ValueError(f"event {i} ({ph}) missing {field!r}")
        if ph == "M":
            if "args" not in ev or "name" not in ev["args"]:
                raise ValueError(f"metadata event {i} missing args.name")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {i} has bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"span event {i} has bad dur {dur!r}")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            raise ValueError(f"counter event {i} missing args values")
