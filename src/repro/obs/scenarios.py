"""Traceable discrete-event scenarios for ``repro trace``.

Each scenario runs a small message-level simulation with a
:class:`~repro.obs.tracer.Tracer` attached and returns the tracer plus
a one-line result description.  They cover one microbenchmark kernel
per network path (torus p2p, software collectives) and one application
model (POP with named baroclinic/barotropic phases), mirroring the
paper's instrumented-measurement methodology at laptop scale.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Tuple

from .tracer import Tracer, tracing

__all__ = ["SCENARIOS", "run_scenario", "scenario_ids"]


def _pingpong(nbytes: int = 4096, repeats: int = 5) -> Tuple[Tracer, str]:
    """Two-node eager/rendezvous ping-pong (kernel: pingpong)."""
    from ..kernels.pingpong import run_pingpong_des
    from ..machines import BGP

    tracer = Tracer()
    with tracing(tracer):
        r = run_pingpong_des(BGP, nbytes=nbytes, repeats=repeats, mode="SMP")
    return tracer, f"pingpong {nbytes}B on {r.machine}: {r.latency_us:.2f} us one-way"


def _ring(processes: int = 32, nbytes: int = 1 << 15) -> Tuple[Tracer, str]:
    """Random-ring exchange over an 8-node torus (kernel: ring)."""
    from ..kernels.ring import run_random_ring_des
    from ..machines import BGP

    tracer = Tracer()
    with tracing(tracer):
        r = run_random_ring_des(BGP, processes=processes, nbytes=nbytes, mode="VN")
    return tracer, (
        f"random ring x{r.processes} on {r.machine}: "
        f"{r.bandwidth_gbs_per_process:.3f} GB/s per process"
    )


def _torus_ring(nbytes: int = 1 << 16, repeats: int = 4) -> Tuple[Tracer, str]:
    """Nearest-rank ring shift on a 2x2x2 torus, one rank per node."""
    from ..machines import BGP
    from ..simmpi import Cluster

    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for rep in range(repeats):
            req = comm.irecv(src=left, tag=rep)
            yield from comm.send(right, nbytes=nbytes, tag=rep)
            yield from comm.wait(req)
        return comm.now

    cluster = Cluster(BGP, ranks=8, mode="SMP")
    result = cluster.run(program, trace=True)
    return result.trace, (
        f"ring shift x8 on {cluster.partition.torus_shape} torus: "
        f"{result.elapsed * 1e6:.2f} us, {result.messages} messages"
    )


def _allreduce() -> Tuple[Tracer, str]:
    """Software allreduce sweep (recursive doubling + Rabenseifner)."""
    from ..machines import XT4_QC
    from ..simmpi import Cluster

    sizes = [8, 512, 8192, 65536]

    def program(comm):
        for nbytes in sizes:
            yield from comm.allreduce(nbytes, dtype="float64")
        return comm.now

    cluster = Cluster(XT4_QC, ranks=8, mode="SMP")
    result = cluster.run(program, trace=True)
    return result.trace, (
        f"allreduce sweep {sizes} x8 on {cluster.machine.name}: "
        f"{result.elapsed * 1e6:.2f} us"
    )


def _pop(processes: int = 8, steps: int = 1, solver_iterations: int = 5) -> Tuple[Tracer, str]:
    """One POP timestep at message level with named phases (app: POP)."""
    from ..apps.pop.des_replay import replay_steps
    from ..apps.pop.grid import PopGrid
    from ..machines import BGP

    grid = PopGrid(nx=360, ny=240, levels=20)
    tracer = Tracer(engine_stride=16)
    with tracing(tracer):
        r = replay_steps(
            BGP, processes=processes, grid=grid, steps=steps,
            solver_iterations=solver_iterations,
        )
    return tracer, (
        f"POP replay x{r.processes} on {r.machine}: "
        f"{r.seconds_per_step:.4f} s/step, {r.messages} messages"
    )


SCENARIOS: Dict[str, Callable[..., Tuple[Tracer, str]]] = {
    "pingpong": _pingpong,
    "ring": _ring,
    "torus-ring": _torus_ring,
    "allreduce": _allreduce,
    "pop": _pop,
}


def scenario_ids() -> List[str]:
    return list(SCENARIOS)


def run_scenario(scenario_id: str, **params: Any) -> Tuple[Tracer, str]:
    """Run one traceable scenario; returns (tracer, result line).

    ``params`` must match keyword arguments of the scenario function
    (e.g. ``nbytes`` for pingpong); unsupported names raise
    :class:`KeyError` naming what is accepted.
    """
    try:
        fn = SCENARIOS[scenario_id]
    except KeyError:
        raise KeyError(
            f"unknown trace scenario {scenario_id!r}; known: {scenario_ids()}"
        ) from None
    if params:
        accepted = set(inspect.signature(fn).parameters)
        unknown = sorted(set(params) - accepted)
        if unknown:
            raise KeyError(
                f"scenario {scenario_id!r} does not take parameter(s) "
                f"{unknown}; supported: {sorted(accepted)}"
            )
    return fn(**params)
