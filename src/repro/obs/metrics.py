"""Metric instruments for the observability layer.

Three instrument kinds cover what the simulator needs to report:

* :class:`Counter` — a monotonically increasing total (messages sent,
  bytes carried, contention stalls).
* :class:`Gauge` — a last-value-wins sample that also remembers its
  maximum (event-queue depth, in-flight requests).
* :class:`Histogram` — power-of-two bucketed counts (message sizes),
  the same bucketing :class:`~repro.simmpi.stats.CommStats` uses.

All instruments live in a :class:`MetricsRegistry`, are created on
first use, and serialize to a flat, deterministic dict for the metrics
JSON exporter.  Everything is simulation-state only — no wall clock,
no host entropy — so repeated runs produce identical metric dumps.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A sampled value; remembers the latest and the maximum sample."""

    __slots__ = ("name", "value", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0
        self.max: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value
        if value > self.max:
            self.max = value


class Histogram:
    """Power-of-two bucketed counts (bucket = floor(log2(v)), -1 for 0)."""

    __slots__ = ("name", "buckets", "count", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total: Union[int, float] = 0

    def observe(self, value: Union[int, float]) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r} got negative value")
        bucket = -1 if value == 0 else int(math.log2(value))
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value

    def items(self) -> List[Tuple[int, int]]:
        """(bucket, count) pairs in ascending bucket order."""
        return sorted(self.buckets.items())


class MetricsRegistry:
    """Create-on-first-use home of every instrument in one run."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def to_dict(self) -> dict:
        """A deterministic, JSON-ready snapshot of every instrument."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "max": g.max}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "buckets": {str(b): n for b, n in h.items()},
                }
                for name, h in sorted(self._histograms.items())
            },
        }
