"""The unified tracer: spans, instants, counters, and metric hooks.

One :class:`Tracer` observes a whole simulated run.  It is *attached*
to a :class:`~repro.simmpi.comm.Cluster` (``Tracer().attach(cluster)``
or simply ``cluster.run(program, trace=True)``), which wires the
supported hook points:

* the engine's per-step hook (event-loop stats, queue-depth track),
* process spawn/finish accounting,
* the transport's send hook (per-rank injection spans, message-size
  histogram),
* every torus link's observer (per-link bytes, contention stalls,
  busy time, keyed by link coordinates),
* the communicator itself (collective/compute/recv spans and named
  application phases) via ``cluster.tracer``.

Zero cost when disabled: every hook site guards on ``tracer is None``
(or an empty hook list) before touching any tracer state, so an
untraced run records nothing and constructs no span attributes.

All timestamps are **simulation time** (seconds internally,
microseconds in the exported Chrome trace) — never the wall clock — so
repeated runs of the same workload emit byte-identical traces.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = ["Tracer", "active_tracer", "tracing", "ENGINE_PID", "NETWORK_PID"]

#: Synthetic Chrome-trace pid hosting engine-level counter tracks.
ENGINE_PID = 1000000
#: Synthetic Chrome-trace pid hosting per-link network counter tracks.
NETWORK_PID = 1000001

#: Thread ids within a rank's pid: the rank program vs. the transport's
#: injection-side activity (isend generators run concurrently).
TID_PROGRAM = 0
TID_TRANSPORT = 1


class Tracer:
    """Records spans, instants, and counter samples for one run.

    Parameters
    ----------
    engine_stride:
        Emit an engine queue-depth counter sample every N engine steps
        (1 = every step).  Larger strides bound trace size on long
        runs; sampling is by deterministic step count, never time.
    """

    def __init__(self, engine_stride: int = 1) -> None:
        if engine_stride < 1:
            raise ValueError("engine_stride must be >= 1")
        self.engine_stride = engine_stride
        #: Chrome-trace event dicts, in deterministic recording order.
        self.events: List[dict] = []
        self.metrics = MetricsRegistry()
        #: per-link telemetry keyed by ``((x,y,z), (x,y,z))`` link key
        self.links: Dict[Any, Dict[str, float]] = {}
        #: aggregated span stats: name -> [count, total_seconds]
        self.span_totals: Dict[str, List[float]] = {}
        self._process_names: Dict[int, str] = {}
        self._thread_names: Dict[Tuple[int, int], str] = {}
        self._engine_steps = 0

    # -- core recording APIs ----------------------------------------------
    def complete(
        self,
        pid: int,
        name: str,
        start: float,
        end: float,
        cat: str = "",
        args: Optional[dict] = None,
        tid: int = TID_PROGRAM,
    ) -> None:
        """Record a complete span (Chrome ``ph="X"``); times in sim seconds."""
        event = {
            "name": name,
            "cat": cat or "span",
            "ph": "X",
            "ts": start * 1e6,
            "dur": (end - start) * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)
        tot = self.span_totals.get(name)
        if tot is None:
            tot = self.span_totals[name] = [0, 0.0]
        tot[0] += 1
        tot[1] += end - start

    def instant(
        self,
        pid: int,
        name: str,
        when: float,
        cat: str = "",
        args: Optional[dict] = None,
        tid: int = TID_PROGRAM,
    ) -> None:
        """Record an instant event (Chrome ``ph="i"``, thread scope)."""
        event = {
            "name": name,
            "cat": cat or "instant",
            "ph": "i",
            "s": "t",
            "ts": when * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, pid: int, name: str, when: float, values: dict) -> None:
        """Record a counter sample (Chrome ``ph="C"``, one track per name)."""
        self.events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": when * 1e6,
                "pid": pid,
                "tid": 0,
                "args": values,
            }
        )

    def set_process_name(self, pid: int, name: str) -> None:
        self._process_names[pid] = name

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        self._thread_names[(pid, tid)] = name

    def metadata_events(self) -> List[dict]:
        """Chrome ``ph="M"`` name events for every known pid/tid."""
        out: List[dict] = []
        for pid in sorted(self._process_names):
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": self._process_names[pid]},
                }
            )
        for (pid, tid) in sorted(self._thread_names):
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": self._thread_names[(pid, tid)]},
                }
            )
        return out

    # -- attachment ----------------------------------------------------------
    def attach(self, cluster) -> "Tracer":
        """Wire this tracer into a cluster's supported hook points.

        Idempotent per cluster: re-attaching the same tracer is a
        no-op.  Several clusters may share one tracer (their rank pids
        then share tracks — fine for sequential experiment sweeps).
        """
        if getattr(cluster, "tracer", None) is self:
            return self
        cluster.tracer = self
        cluster.env.obs = self
        cluster.transport.add_send_hook(self._on_send)
        for key, link in cluster.torus.links.items():
            link.observer = self._make_link_observer(key)
        for rank in range(cluster.ranks):
            self.set_process_name(rank, f"rank {rank}")
            self.set_thread_name(rank, TID_PROGRAM, "program")
            self.set_thread_name(rank, TID_TRANSPORT, "transport")
        self.set_process_name(ENGINE_PID, "sim-engine")
        self.set_process_name(NETWORK_PID, "torus-network")
        return self

    # -- hook targets ---------------------------------------------------------
    def _on_send(
        self, src: int, dst: int, nbytes: int, tag: int, start: float, end: float
    ) -> None:
        """Transport send hook: one injection span per message."""
        m = self.metrics
        m.counter("mpi.messages").inc()
        m.counter("mpi.bytes").inc(nbytes)
        m.histogram("mpi.message_bytes").observe(nbytes)
        self.complete(
            src,
            "send",
            start,
            end,
            cat="p2p",
            args={"dst": dst, "nbytes": nbytes, "tag": tag},
            tid=TID_TRANSPORT,
        )

    def _make_link_observer(self, key) -> Callable[[float, float, float, float], None]:
        (ax, ay, az), (bx, by, bz) = key
        label = f"link ({ax},{ay},{az})->({bx},{by},{bz})"
        stats = self.links[key] = {
            "bytes": 0.0,
            "transfers": 0.0,
            "stalls": 0.0,
            "stall_seconds": 0.0,
            "busy_seconds": 0.0,
        }
        totals = self.metrics

        def observe(nbytes: float, start: float, wait: float, duration: float) -> None:
            stats["bytes"] += nbytes
            stats["transfers"] += 1
            stats["busy_seconds"] += duration
            totals.counter("net.link_bytes").inc(nbytes)
            totals.counter("net.link_transfers").inc()
            if wait > 0:
                stats["stalls"] += 1
                stats["stall_seconds"] += wait
                totals.counter("net.link_stalls").inc()
                totals.counter("net.link_stall_seconds").inc(wait)
            self.counter(
                NETWORK_PID,
                label,
                start,
                {"bytes": stats["bytes"], "stalls": stats["stalls"]},
            )

        return observe

    # -- engine hooks (called from Engine with a `is not None` guard) ----------
    def engine_step(self, now: float, queue_depth: int) -> None:
        self._engine_steps += 1
        self.metrics.counter("engine.events").inc()
        self.metrics.gauge("engine.queue_depth").set(queue_depth)
        if self._engine_steps % self.engine_stride == 0:
            self.counter(ENGINE_PID, "queue_depth", now, {"events": queue_depth})

    def process_spawned(self, env, proc) -> None:
        self.metrics.counter("engine.processes_spawned").inc()
        live = self.metrics.gauge("engine.processes_live")
        live.set(live.value + 1)

        def _finished(_event) -> None:
            self.metrics.counter("engine.processes_finished").inc()
            live.set(live.value - 1)

        if proc.callbacks is not None:
            proc.callbacks.append(_finished)

    # -- link telemetry accessors -----------------------------------------------
    def link_table(self) -> Dict[str, Dict[str, float]]:
        """Per-link telemetry keyed by the printable link label."""
        out = {}
        for key in sorted(self.links):
            (ax, ay, az), (bx, by, bz) = key
            out[f"({ax},{ay},{az})->({bx},{by},{bz})"] = dict(self.links[key])
        return out


# ---------------------------------------------------------------------------
# Ambient tracer (used by `repro run --trace` so experiment code that
# constructs its own Clusters is traced without plumbing changes).
# ---------------------------------------------------------------------------
_ACTIVE: List[Tracer] = []


def active_tracer() -> Optional[Tracer]:
    """The innermost ambient tracer, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


class tracing:
    """Context manager installing an ambient tracer.

    Every :meth:`Cluster.run` entered inside the context attaches the
    tracer automatically::

        tracer = Tracer()
        with tracing(tracer):
            run_experiment("fig3")
        write_chrome_trace(tracer, "fig3.trace.json")
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def __enter__(self) -> Tracer:
        _ACTIVE.append(self.tracer)
        return self.tracer

    def __exit__(self, *_exc) -> None:
        _ACTIVE.pop()
