"""repro.obs: unified tracing & metrics for the simulator.

The observability layer the paper's methodology presumes (its authors
attributed every result with the IBM HPC Toolkit): a zero-cost-when-
disabled :class:`Tracer` with span/instant/counter APIs, a metrics
registry, Chrome-trace/Perfetto and metrics-JSON exporters, and
per-link network telemetry — threaded through the engine, the MPI
layer, the torus, and the app models via supported hook points.

Quick start::

    from repro.machines import BGP
    from repro.obs import summary, write_chrome_trace
    from repro.simmpi import Cluster

    result = Cluster(BGP, ranks=8, mode="SMP").run(program, trace=True)
    write_chrome_trace(result.trace, "run.trace.json")   # open in Perfetto
    print(summary(result.trace))

See ``docs/observability.md`` for the full tour.
"""

from .export import (
    chrome_trace,
    chrome_trace_json,
    metrics_dict,
    metrics_json,
    summary,
    validate_trace_events,
    write_chrome_trace,
    write_metrics,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .scenarios import run_scenario, scenario_ids, SCENARIOS
from .tracer import active_tracer, ENGINE_PID, NETWORK_PID, Tracer, tracing

__all__ = [
    "Tracer",
    "tracing",
    "active_tracer",
    "ENGINE_PID",
    "NETWORK_PID",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "metrics_dict",
    "metrics_json",
    "write_metrics",
    "summary",
    "validate_trace_events",
    "SCENARIOS",
    "run_scenario",
    "scenario_ids",
]
