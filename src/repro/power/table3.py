"""The paper's Table 3: the power comparison, fully derived.

Reproduces every row of Table 3 from the machine models:

* measured aggregate power under HPL and normal load (kW, W/core),
* peak and HPL-sustained flops,
* the Green500 metric (HPL MFlop/s per watt),
* POP SYD at 8192 cores with its aggregate power,
* cores (and aggregate power) needed to reach 12 SYD — the paper's
  science-driven normalization, where the BG/P's 6.6x per-core power
  advantage shrinks to a 24% aggregate-power difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..apps.pop.model import PopModel
from ..machines.power import hpl_mflops_per_watt
from ..machines.specs import MachineSpec

__all__ = ["PowerColumn", "build_table3", "TABLE3_CORES"]

#: The core counts Table 3 normalizes to, per machine.
TABLE3_CORES: Dict[str, int] = {
    "BG/P": 8192,  # the ORNL two-rack system
    "XT4/QC": 30976,  # Jaguar as of March 2008
}

#: The science-driven throughput target of Table 3's bottom block.
TARGET_SYD = 12.0
#: POP SYD is quoted "normalizing to 8192 cores".
SYD_CORES = 8192


@dataclass(frozen=True)
class PowerColumn:
    """One machine's column of Table 3."""

    machine: str
    cores: int
    hpl_power_kw: float
    hpl_watts_per_core: float
    normal_power_kw: float
    normal_watts_per_core: float
    peak_tflops: float
    hpl_rmax_tflops: float
    mflops_per_watt: float
    pop_syd_at_8192: float
    pop_power_kw_at_8192: float
    cores_for_12_syd: Optional[int]
    power_kw_for_12_syd: Optional[float]


def build_column(machine: MachineSpec, cores: Optional[int] = None) -> PowerColumn:
    """Compute one Table 3 column from the machine + POP models."""
    n = TABLE3_CORES.get(machine.name, machine.total_cores) if cores is None else cores
    power = machine.power
    hpl_kw = power.aggregate(n, "hpl") / 1e3
    normal_kw = power.aggregate(n, "normal") / 1e3
    peak_tf = n * machine.node.core.peak_flops / 1e12
    rmax_tf = peak_tf * machine.hpl_efficiency

    pop = PopModel(machine)
    syd = pop.run(SYD_CORES).syd
    pop_kw = power.aggregate(SYD_CORES, "normal") / 1e3

    try:
        cores12 = pop.cores_for_syd(TARGET_SYD)
        kw12 = power.aggregate(cores12, "normal") / 1e3
    except (ValueError, KeyError):
        cores12 = None
        kw12 = None

    return PowerColumn(
        machine=machine.name,
        cores=n,
        hpl_power_kw=hpl_kw,
        hpl_watts_per_core=power.hpl_watts_per_core,
        normal_power_kw=normal_kw,
        normal_watts_per_core=power.normal_watts_per_core,
        peak_tflops=peak_tf,
        hpl_rmax_tflops=rmax_tf,
        mflops_per_watt=hpl_mflops_per_watt(machine, n),
        pop_syd_at_8192=syd,
        pop_power_kw_at_8192=pop_kw,
        cores_for_12_syd=cores12,
        power_kw_for_12_syd=kw12,
    )


def build_table3(machines: List[MachineSpec]) -> List[PowerColumn]:
    """All columns of Table 3 (paper order: BG/P then XT/QC)."""
    return [build_column(m) for m in machines]
