"""TOP500 / Green500 context (paper Section I and II.C).

The paper situates its machines on the June-2008 lists:

* "In early 2008, BG/L systems lead the TOP500 list, holding 21 slots,
  with BG/P holding five slots.  Ten of the top 50 systems ... were
  from the BlueGene family."
* "BG/P and BG/L own the top 26 spots on the Green500 list."
* The ORNL BG/P's TOP500 run "ranked it as number 74 on the June 2008
  TOP500 list" and its 310.93 MFLOPS/watt "ranks this system fifth
  overall on the Green500 List".

This module encodes the published anchor points of those lists so a
modeled configuration can be placed on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..kernels.hpl import HplModel
from ..machines.power import hpl_mflops_per_watt
from ..machines.specs import MachineSpec

__all__ = [
    "top500_rank",
    "green500_rank",
    "ListPlacement",
    "place_configuration",
    "TOP500_JUNE_2008_ANCHORS",
    "GREEN500_JUNE_2008_ANCHORS",
]

#: (rank, Rmax GFlop/s) anchor points of the June-2008 TOP500.
TOP500_JUNE_2008_ANCHORS: List[Tuple[int, float]] = [
    (1, 1_026_000.0),  # Roadrunner: first petaflop Linpack
    (2, 478_200.0),  # BG/L at LLNL
    (5, 205_000.0),  # Jaguar XT4 (the paper's Table 3 machine)
    (10, 106_100.0),
    (25, 53_390.0),
    (50, 35_170.0),
    (74, 21_400.0),  # Eugene, the ORNL BG/P (Section II.C)
    (100, 16_670.0),
    (250, 11_080.0),
    (500, 9_000.0),  # list entry floor
]

#: (rank, MFlops/W) anchor points of the June-2008 Green500.
GREEN500_JUNE_2008_ANCHORS: List[Tuple[int, float]] = [
    (1, 488.1),  # Roadrunner Cell blades
    (5, 310.9),  # the ORNL BG/P run (Section II.C)
    (26, 205.0),  # bottom of the BlueGene block ("top 26 spots")
    (50, 100.0),
    (100, 58.0),
    (250, 30.0),
    (500, 12.0),
]


def _rank_from_anchors(value: float, anchors: List[Tuple[int, float]]) -> int:
    """Interpolate a list rank from (rank, metric) anchors.

    Metrics decrease with rank; log-linear interpolation between the
    bracketing anchors; beyond the floor returns rank 501 ("off list").
    """
    import math

    if value >= anchors[0][1]:
        return anchors[0][0]
    if value < anchors[-1][1]:
        return anchors[-1][0] + 1
    for (r_hi, v_hi), (r_lo, v_lo) in zip(anchors, anchors[1:]):
        if v_lo <= value <= v_hi:
            # interpolate in log(value) between the anchors
            f = (math.log(v_hi) - math.log(value)) / (
                math.log(v_hi) - math.log(v_lo)
            )
            return round(r_hi + f * (r_lo - r_hi))
    return anchors[-1][0] + 1  # pragma: no cover


def top500_rank(rmax_gflops: float) -> int:
    """June-2008 TOP500 rank for a sustained HPL score."""
    if rmax_gflops <= 0:
        raise ValueError("Rmax must be positive")
    return _rank_from_anchors(rmax_gflops, TOP500_JUNE_2008_ANCHORS)


def green500_rank(mflops_per_watt: float) -> int:
    """June-2008 Green500 rank for a power-efficiency score."""
    if mflops_per_watt <= 0:
        raise ValueError("MFlops/W must be positive")
    return _rank_from_anchors(mflops_per_watt, GREEN500_JUNE_2008_ANCHORS)


@dataclass(frozen=True)
class ListPlacement:
    """A configuration's standing on both June-2008 lists."""

    machine: str
    cores: int
    rmax_gflops: float
    mflops_per_watt: float
    top500_rank: int
    green500_rank: int


def place_configuration(machine: MachineSpec, cores: int, mode: str = "VN") -> ListPlacement:
    """Model HPL on ``cores`` cores and place the result on the lists."""
    hpl = HplModel(machine, mode).run(cores)
    mfw = hpl_mflops_per_watt(machine, cores)
    return ListPlacement(
        machine=machine.name,
        cores=cores,
        rmax_gflops=hpl.gflops,
        mflops_per_watt=mfw,
        top500_rank=top500_rank(hpl.gflops),
        green500_rank=green500_rank(mfw),
    )
