"""Simulated power measurement of benchmark/application runs.

The paper measured wall-plug energy while each workload ran (Section
IV: "We have measured the energy consumed by each supercomputer while
it was running TOP500 HPL, and other scientific applications").  Here
the equivalent: drive a modeled run, integrate power over its phases
with a :class:`~repro.machines.power.PowerMeter`, and derive the
energy/efficiency figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.pop.model import PopModel
from ..kernels.hpl import HplModel
from ..machines.power import PowerMeter
from ..machines.specs import MachineSpec

__all__ = ["MeasuredRun", "measure_hpl", "measure_pop"]


@dataclass(frozen=True)
class MeasuredRun:
    """A workload run with integrated energy."""

    machine: str
    workload: str
    cores: int
    seconds: float
    average_watts: float
    joules: float
    #: workload-specific goodness (HPL GFlop/s; POP SYD)
    figure_of_merit: float

    @property
    def mflops_per_watt(self) -> float:
        """Only meaningful for flop-rated workloads (HPL)."""
        return self.figure_of_merit * 1e3 / self.average_watts


def measure_hpl(machine: MachineSpec, processes: int, mode: str = "VN") -> MeasuredRun:
    """Run the HPL model under the power meter."""
    hpl = HplModel(machine, mode).run(processes)
    meter = PowerMeter(machine, cores=processes)
    meter.record(0.0, hpl.seconds, kind="hpl", label="hpl")
    return MeasuredRun(
        machine=machine.name,
        workload="HPL",
        cores=processes,
        seconds=hpl.seconds,
        average_watts=meter.average_watts(),
        joules=meter.total_joules,
        figure_of_merit=hpl.gflops,
    )


def measure_pop(
    machine: MachineSpec, processes: int, simulated_days: float = 1.0
) -> MeasuredRun:
    """Run the POP model for ``simulated_days`` under the power meter.

    Phases are metered separately so the breakdown is available
    (baroclinic and barotropic both run at 'normal' draw; an idle
    imbalance tail draws idle power on the waiting cores — a small
    correction the paper's aggregate numbers fold in).
    """
    res = PopModel(machine).run(processes)
    meter = PowerMeter(machine, cores=processes)
    t = 0.0
    for _ in range(int(simulated_days)):
        meter.record(t, t + res.baroclinic_s_per_day, "normal", "baroclinic")
        t += res.baroclinic_s_per_day
        meter.record(t, t + res.barotropic_s_per_day, "normal", "barotropic")
        t += res.barotropic_s_per_day
        meter.record(t, t + res.imbalance_s_per_day, "idle", "imbalance-wait")
        t += res.imbalance_s_per_day
    return MeasuredRun(
        machine=machine.name,
        workload="POP",
        cores=processes,
        seconds=t,
        average_watts=meter.average_watts(),
        joules=meter.total_joules,
        figure_of_merit=res.syd,
    )
