"""Power analysis (paper Section IV, Table 3)."""

from .lists import (
    GREEN500_JUNE_2008_ANCHORS,
    green500_rank,
    ListPlacement,
    place_configuration,
    TOP500_JUNE_2008_ANCHORS,
    top500_rank,
)
from .measure import measure_hpl, measure_pop, MeasuredRun
from .table3 import build_column, build_table3, PowerColumn, TABLE3_CORES, TARGET_SYD

__all__ = [
    "PowerColumn",
    "build_table3",
    "build_column",
    "TABLE3_CORES",
    "TARGET_SYD",
    "MeasuredRun",
    "measure_hpl",
    "measure_pop",
    "ListPlacement",
    "place_configuration",
    "top500_rank",
    "green500_rank",
    "TOP500_JUNE_2008_ANCHORS",
    "GREEN500_JUNE_2008_ANCHORS",
]
