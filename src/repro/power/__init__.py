"""Power analysis (paper Section IV, Table 3)."""

from .table3 import PowerColumn, build_table3, build_column, TABLE3_CORES, TARGET_SYD
from .measure import MeasuredRun, measure_hpl, measure_pop
from .lists import (
    ListPlacement,
    place_configuration,
    top500_rank,
    green500_rank,
    TOP500_JUNE_2008_ANCHORS,
    GREEN500_JUNE_2008_ANCHORS,
)

__all__ = [
    "PowerColumn",
    "build_table3",
    "build_column",
    "TABLE3_CORES",
    "TARGET_SYD",
    "MeasuredRun",
    "measure_hpl",
    "measure_pop",
    "ListPlacement",
    "place_configuration",
    "top500_rank",
    "green500_rank",
    "TOP500_JUNE_2008_ANCHORS",
    "GREEN500_JUNE_2008_ANCHORS",
]
