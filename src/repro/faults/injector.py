"""The fault injector: turns a :class:`~repro.faults.plan.FaultPlan`
into DES events against one running cluster.

The injector is the bridge between the *schedule* (the plan) and the
*mechanics* (torus fault state, transport drop decisions, tracer
telemetry):

* at attach time it schedules one engine event per planned fault; when
  the event fires the fault is applied to the torus (links fail, nodes
  fall off, bandwidth derates) and recorded as a tracer instant and
  metrics counter if the run is traced;
* the transport consults :meth:`FaultInjector.lost_on` while booking a
  route: a message whose tail would cross a link *after* that link's
  failure instant is lost, as are messages consumed by transient
  :class:`~repro.faults.plan.LinkDrop` corruption windows.  Because the
  plan is known up front, this "future knowledge" is exact and keeps
  the simulation single-pass and deterministic;
* drop/retry/reroute counters accumulate in :class:`FaultStats` (and,
  when traced, in the run's metrics registry as ``faults.*`` counters).

Everything is deterministic: fault times come from the plan, retry
backoffs are fixed formulas, and route detours use deterministic BFS —
two runs with the same seed produce byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..simengine import Engine, Event
from .plan import FaultPlan, LinkDegrade, LinkDrop, LinkFail, NodeFail

__all__ = ["FaultInjector", "FaultStats"]

Coord = Tuple[int, int, int]
LinkRef = Tuple[Coord, Coord]

#: Chrome-trace pid hosting fault instants/counters (next to the
#: network pid defined in repro.obs.tracer).
FAULTS_PID = 1000002


@dataclass
class FaultStats:
    """Counters accumulated over one fault-injected run."""

    #: messages lost to failed links or corruption windows
    drops: int = 0
    #: retransmissions attempted by the MPI reliability protocol
    retries: int = 0
    #: messages that detoured around failed links (torus BFS fallback)
    reroutes: int = 0
    #: directed links taken out of service
    failed_links: int = 0
    #: nodes taken out of service
    failed_nodes: int = 0
    #: links currently or previously running derated
    degraded_links: int = 0
    #: senders that gave up (FaultError surfaced to the program)
    fault_kills: int = 0

    def summary(self) -> str:
        return (
            f"faults: {self.failed_links} link(s) down, "
            f"{self.failed_nodes} node(s) down, "
            f"{self.degraded_links} link(s) degraded | "
            f"{self.drops} drop(s), {self.retries} retransmission(s), "
            f"{self.reroutes} reroute(s), {self.fault_kills} fault-kill(s)"
        )


@dataclass
class _DropWindow:
    """Mutable state of one LinkDrop event (messages left to corrupt)."""

    time: float
    remaining: int


class FaultInjector:
    """Applies one plan to one cluster run (single use)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self.cluster: Optional[Any] = None
        #: earliest permanent-failure instant per directed link
        self._fail_time: Dict[LinkRef, float] = {}
        #: transient corruption windows per directed link
        self._drop_windows: Dict[LinkRef, List[_DropWindow]] = {}
        self._attached = False

    # -- wiring ------------------------------------------------------------
    def attach(self, cluster: Any) -> "FaultInjector":
        """Wire this injector into a cluster (once, before running)."""
        if self._attached:
            raise RuntimeError("a FaultInjector is single-use; make a new one")
        self._attached = True
        self.cluster = cluster
        cluster.transport.fault_injector = self
        torus = cluster.torus
        env: Engine = cluster.env
        for ev in self.plan:
            if isinstance(ev, (LinkFail, NodeFail)):
                self._index_failure(torus, ev)
            elif isinstance(ev, LinkDrop):
                a, b = ev.link
                self._drop_windows.setdefault((a, b), []).append(
                    _DropWindow(time=ev.time, remaining=ev.count)
                )
            self._at(env, ev.time, ev)
        return self

    def _index_failure(self, torus: Any, ev: Any) -> None:
        """Record the failure instant of every link the event kills."""
        if isinstance(ev, LinkFail):
            a, b = torus.link_key(*ev.link)
            keys = [(a, b), (b, a)] if ev.both_directions else [(a, b)]
        else:  # NodeFail
            keys = []
            for nbr in torus.neighbors(ev.node):
                keys.append((ev.node, nbr))
                keys.append((nbr, ev.node))
        for key in keys:
            t = self._fail_time.get(key)
            if t is None or ev.time < t:
                self._fail_time[key] = ev.time

    def _at(self, env: Engine, time: float, fault: Any) -> None:
        """Schedule ``fault`` to be applied at absolute sim time ``time``."""
        ev = Event(env)
        ev._ok = True
        ev._value = None
        env.schedule(ev, delay=max(0.0, time - env.now))
        ev.callbacks.append(lambda _e, f=fault: self._apply(f))

    # -- applying faults ---------------------------------------------------
    def _apply(self, fault: Any) -> None:
        torus = self.cluster.torus
        if isinstance(fault, LinkFail):
            torus.fail_link(fault.link, both_directions=fault.both_directions)
            self.stats.failed_links += 2 if fault.both_directions else 1
            self._note("link-fail", {"link": _label(fault.link)})
        elif isinstance(fault, NodeFail):
            torus.fail_node(fault.node)
            self.stats.failed_nodes += 1
            self.stats.failed_links += 2 * len(torus.neighbors(fault.node))
            self._note("node-fail", {"node": str(fault.node)})
            recovery = getattr(self.cluster, "recovery", None)
            if recovery is not None:
                # ULFM semantics: kill the node's ranks and revoke the
                # communicator (see repro.recovery.runtime).
                recovery.on_node_failed(fault.node)
        elif isinstance(fault, LinkDegrade):
            torus.degrade_link(fault.link, fault.factor)
            self.stats.degraded_links += 1
            self._note(
                "link-degrade",
                {"link": _label(fault.link), "factor": fault.factor},
            )
            if fault.duration is not None:
                env = self.cluster.env
                ev = Event(env)
                ev._ok = True
                ev._value = None
                env.schedule(ev, delay=fault.duration)
                ev.callbacks.append(
                    lambda _e, link=fault.link: self._restore(link)
                )
        elif isinstance(fault, LinkDrop):
            self._note(
                "link-drop-window",
                {"link": _label(fault.link), "count": fault.count},
            )

    def _restore(self, link: LinkRef) -> None:
        self.cluster.torus.restore_link(link)
        self._note("link-restore", {"link": _label(link)})

    # -- transport queries -------------------------------------------------
    def lost_on(self, key: LinkRef, tail_time: float) -> Optional[str]:
        """Why a message whose tail clears ``key`` at ``tail_time`` dies.

        Returns ``"link-failure"`` when the link's permanent failure
        lands before the tail clears it, ``"corruption"`` when a
        transient drop window consumes the message, else ``None``.
        Consulted at booking time; exact because the plan is known.
        """
        t = self._fail_time.get(key)
        if t is not None and tail_time > t:
            return "link-failure"
        windows = self._drop_windows.get(key)
        if windows:
            for w in windows:
                if tail_time >= w.time and w.remaining > 0:
                    w.remaining -= 1
                    return "corruption"
        return None

    # -- accounting --------------------------------------------------------
    def record_drop(self, key: Optional[LinkRef], reason: str) -> None:
        self.stats.drops += 1
        args = {"reason": reason}
        if key is not None:
            args["link"] = _label(key)
        self._note("message-drop", args, counter="faults.drops")

    def record_retry(self) -> None:
        self.stats.retries += 1
        self._count("faults.retries")

    def record_kill(self) -> None:
        self.stats.fault_kills += 1
        self._count("faults.kills")

    def finalize(self) -> FaultStats:
        """Fold in end-of-run statistics (torus detour count) and return."""
        if self.cluster is not None:
            self.stats.reroutes = self.cluster.torus.detours
        return self.stats

    # -- telemetry ---------------------------------------------------------
    def _tracer(self) -> Optional[Any]:
        return getattr(self.cluster, "tracer", None) if self.cluster else None

    def _note(self, name: str, args: Dict[str, Any], counter: str = "") -> None:
        tracer = self._tracer()
        if tracer is None:
            return
        tracer.instant(FAULTS_PID, name, self.cluster.env.now, cat="fault", args=args)
        tracer.metrics.counter(counter or f"faults.{name}").inc()
        tracer.set_process_name(FAULTS_PID, "fault-injector")

    def _count(self, name: str) -> None:
        tracer = self._tracer()
        if tracer is not None:
            tracer.metrics.counter(name).inc()


def _label(key: LinkRef) -> str:
    (ax, ay, az), (bx, by, bz) = key
    return f"({ax},{ay},{az})->({bx},{by},{bz})"
