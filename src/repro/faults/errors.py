"""Errors surfaced by the fault-injection and resilience layer."""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["FaultError"]

Coord = Tuple[int, int, int]


class FaultError(RuntimeError):
    """A message was killed by an injected fault.

    Raised in the *sender's* rank program when the reliability protocol
    exhausts its retries (or retries are disabled), or when no
    fault-free route to the destination exists at all.  Carries enough
    attribution for diagnostics to name the failed component, which is
    how a fault-kill is told apart from an application deadlock.

    Like every error of the resilience layer it exposes the structured
    triple (``entity``, ``sim_time``, ``attempt``) and survives a
    ``pickle`` round trip with all fields intact (multiprocess sweep
    workers propagate these errors verbatim).
    """

    def __init__(
        self,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        link: Optional[Tuple[Coord, Coord]] = None,
        attempts: int = 0,
        time: float = 0.0,
        reason: str = "",
    ) -> None:
        where = f" at failed link {link[0]}->{link[1]}" if link else ""
        why = f" ({reason})" if reason else ""
        super().__init__(
            f"send {src}->{dst} (tag={tag}, {nbytes} B) lost{where} "
            f"after {attempts} retransmission(s) at t={time:.6g}s{why}"
        )
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        #: the directed link key whose failure killed the message, if known
        self.link = link
        self.attempts = attempts
        self.time = time
        self.reason = reason

    # -- structured-field protocol (shared with the recovery errors) -------
    @property
    def entity(self) -> str:
        """The failed component this error attributes itself to."""
        if self.link is not None:
            return f"link {self.link[0]}->{self.link[1]}"
        return f"route {self.src}->{self.dst}"

    @property
    def sim_time(self) -> float:
        """Simulation time the fault surfaced, seconds."""
        return self.time

    @property
    def attempt(self) -> int:
        """Retransmissions attempted before giving up."""
        return self.attempts

    def __reduce__(self):
        return (
            type(self),
            (
                self.src,
                self.dst,
                self.tag,
                self.nbytes,
                self.link,
                self.attempts,
                self.time,
                self.reason,
            ),
        )
