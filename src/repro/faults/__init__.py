"""Deterministic fault injection and resilience modeling.

The paper's Table 1 machines are big enough that component failure is a
first-class design constraint; this package lets every layer of the
simulator feel it:

* :mod:`repro.faults.plan` — immutable, seed-reproducible schedules of
  link/node failures, bandwidth deratings and message-drop windows;
* :mod:`repro.faults.injector` — applies a plan to a running cluster as
  DES events, answers the transport's "did this message survive?"
  queries, and counts drops/retries/reroutes;
* :mod:`repro.faults.errors` — :class:`FaultError`, raised in a sender
  when the MPI reliability protocol gives up (distinguishable from an
  application deadlock by the sanitizer);
* :mod:`repro.faults.checkpoint` — Young/Daly checkpoint/restart
  economics built on the machine MTBFs and the I/O subsystem model.

Ready-made demonstration scenarios live in
:mod:`repro.faults.scenarios` (imported lazily by the CLI: that module
pulls in :mod:`repro.simmpi`, which itself imports this package, so it
must stay out of this namespace to avoid an import cycle).
"""

from .checkpoint import CheckpointModel
from .errors import FaultError
from .injector import FaultInjector, FaultStats
from .plan import (
    FaultEvent,
    FaultPlan,
    LinkDegrade,
    LinkDrop,
    LinkFail,
    NodeFail,
)

__all__ = [
    "CheckpointModel",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LinkDegrade",
    "LinkDrop",
    "LinkFail",
    "NodeFail",
]
