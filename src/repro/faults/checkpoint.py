"""Checkpoint/restart cost modeling (Young/Daly).

At BG/P scale resilience is an I/O problem: a partition of ``N`` nodes
with per-node MTBF ``M_node`` fails every ``M = M_node / N`` seconds,
and the application must periodically flush its state through the I/O
forwarding path (:mod:`repro.iosys`) to survive.  The classic results:

* **Young's approximation** for the optimal checkpoint interval,
  refined by **Daly**::

      tau_opt = sqrt(2 * delta * M) - delta

  where ``delta`` is the time to write one checkpoint and ``M`` the
  system MTBF.

* The **expected wall-clock inflation** of a run with ``T_s`` seconds
  of useful work, checkpoint interval ``tau``, write cost ``delta``
  and restart cost ``R`` (exponential failures, first-order model)::

      T = M * exp(R / M) * (exp((tau + delta) / M) - 1) * T_s / tau

  With no failures (``M -> inf``) this degenerates to the pure
  checkpoint overhead ``T_s * (1 + delta / tau)``.

:class:`CheckpointModel` packages these with the machine catalog: the
checkpoint write cost comes from the real I/O path (collective tree ->
I/O nodes -> GPFS on the BGs; Lustre-class aggregate bandwidth on the
XTs), the MTBF from each machine's :class:`~repro.machines.specs.FaultSpec`.
This is what the POP/S3D replays use to report checkpoint-adjusted
wall-clock numbers per Table 1 machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..iosys.forwarding import IoForwarding
from ..iosys.gpfs import EUGENE_SCRATCH, GpfsConfig
from ..machines.specs import MachineSpec

__all__ = ["CheckpointModel"]


@dataclass(frozen=True)
class CheckpointModel:
    """Young/Daly checkpoint economics for one partition."""

    #: system (partition-level) mean time between failures, seconds
    mtbf_seconds: float
    #: time to write one checkpoint, seconds
    checkpoint_seconds: float
    #: time to restart after a failure (reboot + read checkpoint), seconds
    restart_seconds: float

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise ValueError("system MTBF must be positive")
        if self.checkpoint_seconds <= 0:
            raise ValueError("checkpoint write time must be positive")
        if self.restart_seconds < 0:
            raise ValueError("restart time must be non-negative")

    # -- construction ------------------------------------------------------
    @classmethod
    def from_machine(
        cls,
        machine: MachineSpec,
        nodes: int,
        memory_fraction: float = 0.5,
        filesystem: Optional[GpfsConfig] = None,
    ) -> "CheckpointModel":
        """Model a partition of ``nodes`` nodes of ``machine``.

        The checkpoint is ``memory_fraction`` of each node's memory,
        written through the machine's I/O path: the forwarding model
        (tree -> IONs -> GPFS) on machines with a collective network,
        or the filesystem's aggregate bandwidth directly on the XTs
        (whose I/O goes over the torus to Lustre).
        """
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if not 0.0 < memory_fraction <= 1.0:
            raise ValueError("memory_fraction must be in (0, 1]")
        nbytes = nodes * machine.node.memory.capacity_bytes * memory_fraction
        if machine.tree is not None:
            io = IoForwarding(
                machine, nodes, filesystem=filesystem or EUGENE_SCRATCH
            )
            delta = io.write(nbytes).seconds
        else:
            fs = filesystem or EUGENE_SCRATCH
            delta = nbytes / fs.aggregate_bandwidth
        mtbf = machine.faults.system_mtbf_seconds(nodes)
        restart = machine.faults.restart_overhead_seconds + delta
        return cls(
            mtbf_seconds=mtbf,
            checkpoint_seconds=delta,
            restart_seconds=restart,
        )

    # -- the math ----------------------------------------------------------
    def optimal_interval(self) -> float:
        """Daly's refinement of Young's optimal checkpoint interval."""
        tau = math.sqrt(2.0 * self.checkpoint_seconds * self.mtbf_seconds)
        tau -= self.checkpoint_seconds
        # Degenerate regime: writing a checkpoint costs more than the
        # MTBF buys back; checkpoint continuously.
        return max(tau, self.checkpoint_seconds)

    def expected_runtime(
        self, work_seconds: float, interval: Optional[float] = None
    ) -> float:
        """Expected wall-clock for ``work_seconds`` of useful compute."""
        if work_seconds < 0:
            raise ValueError("work must be non-negative")
        if work_seconds == 0:
            return 0.0
        tau = self.optimal_interval() if interval is None else interval
        if tau <= 0:
            raise ValueError("checkpoint interval must be positive")
        M = self.mtbf_seconds
        d = self.checkpoint_seconds
        R = self.restart_seconds
        return (
            M
            * math.exp(R / M)
            * (math.exp((tau + d) / M) - 1.0)
            * work_seconds
            / tau
        )

    def inflation(self, work_seconds: float, interval: Optional[float] = None) -> float:
        """Wall-clock / useful-work ratio (1.0 = free resilience)."""
        if work_seconds <= 0:
            raise ValueError("work must be positive")
        return self.expected_runtime(work_seconds, interval) / work_seconds

    def describe(self, work_seconds: float) -> str:
        tau = self.optimal_interval()
        infl = self.inflation(work_seconds)
        return (
            f"MTBF {self.mtbf_seconds / 3600.0:.2f} h, "
            f"checkpoint {self.checkpoint_seconds:.1f} s, "
            f"tau_opt {tau / 60.0:.1f} min, "
            f"inflation {infl:.3f}x"
        )
