"""Fault plans: what breaks, when, and how.

A :class:`FaultPlan` is an ordered, immutable schedule of fault events
against one simulated partition.  Plans are either written explicitly
(regression scenarios: "kill link X at t=2 ms") or drawn from
per-machine MTBF parameters through the seeded RNG utilities of
:mod:`repro.simengine.rng`, so a given seed always produces the same
failure history — the determinism contract the whole simulator keeps.

Event vocabulary (all times are absolute simulation seconds):

* :class:`LinkFail` — a torus link dies permanently (both directions by
  default).  Traffic already committed to cross it after the failure
  instant is lost; later traffic routes around it.
* :class:`NodeFail` — a node drops off the network: every incident link
  fails with it.  Ranks hosted there become unreachable.
* :class:`LinkDegrade` — transient bandwidth derating (for ``duration``
  seconds, or permanently), modeling a link that retrains at a lower
  rate or shares capacity after a partial fault.
* :class:`LinkDrop` — the next ``count`` messages crossing a link after
  the event time are dropped (CRC-failed corruption: the torus discards
  a corrupted packet, which at message level is a drop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

from ..simengine.rng import make_rng, spawn

__all__ = [
    "LinkFail",
    "NodeFail",
    "LinkDegrade",
    "LinkDrop",
    "FaultEvent",
    "FaultPlan",
]

Coord = Tuple[int, int, int]
LinkRef = Tuple[Coord, Coord]


def _check_time(time: float) -> None:
    if time < 0:
        raise ValueError(f"fault time must be non-negative, got {time}")


@dataclass(frozen=True)
class LinkFail:
    """Permanent failure of a torus link at ``time``."""

    time: float
    link: LinkRef
    both_directions: bool = True

    def __post_init__(self) -> None:
        _check_time(self.time)


@dataclass(frozen=True)
class NodeFail:
    """Permanent failure of a node (and all its links) at ``time``."""

    time: float
    node: Coord

    def __post_init__(self) -> None:
        _check_time(self.time)


@dataclass(frozen=True)
class LinkDegrade:
    """Derate a link to ``factor`` of spec bandwidth at ``time``.

    ``duration`` restores full bandwidth after that many seconds;
    ``None`` keeps the derating for the rest of the run.
    """

    time: float
    link: LinkRef
    factor: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        _check_time(self.time)
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"derating factor must be in (0, 1], got {self.factor}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("degradation duration must be positive")


@dataclass(frozen=True)
class LinkDrop:
    """Drop (corrupt) the next ``count`` messages crossing ``link``."""

    time: float
    link: LinkRef
    count: int = 1

    def __post_init__(self) -> None:
        _check_time(self.time)
        if self.count < 1:
            raise ValueError("drop count must be >= 1")


FaultEvent = Union[LinkFail, NodeFail, LinkDegrade, LinkDrop]

#: Deterministic ordering rank per event type (ties at equal times).
_KIND_ORDER = {LinkDegrade: 0, LinkDrop: 1, LinkFail: 2, NodeFail: 3}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted schedule of fault events."""

    events: Tuple[FaultEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.events,
                key=lambda e: (e.time, _KIND_ORDER[type(e)], repr(e)),
            )
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def empty(self) -> bool:
        return not self.events

    def extended(self, more: Iterable[FaultEvent]) -> "FaultPlan":
        """A new plan with ``more`` events merged in (re-sorted)."""
        return FaultPlan(self.events + tuple(more))

    # -- stochastic construction ------------------------------------------
    @classmethod
    def from_mtbf(
        cls,
        shape: Coord,
        duration: float,
        node_mtbf_seconds: float = 0.0,
        link_mtbf_seconds: float = 0.0,
        seed: Optional[int] = None,
    ) -> "FaultPlan":
        """Draw node/link failures over ``duration`` seconds of sim time.

        Failures are exponential arrivals with the given per-component
        MTBFs (0 disables that class).  Each node and each link draws
        from its own :func:`repro.simengine.rng.spawn` child stream,
        derived from the root seed in a fixed component order — one
        seed, one failure history, byte-identical runs.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        X, Y, Z = shape
        if min(X, Y, Z) < 1:
            raise ValueError(f"bad torus shape {shape}")
        root = make_rng(seed)
        events: List[FaultEvent] = []
        nodes = [
            (x, y, z) for z in range(Z) for y in range(Y) for x in range(X)
        ]
        if node_mtbf_seconds > 0:
            for node in nodes:
                rng = spawn(root, f"node-fail{node}")
                t = float(rng.exponential(node_mtbf_seconds))
                if t < duration:
                    events.append(NodeFail(time=t, node=node))
        if link_mtbf_seconds > 0:
            seen = set()
            for node in nodes:
                for dim in range(3):
                    ext = shape[dim]
                    if ext == 1:
                        continue
                    nbr = list(node)
                    nbr[dim] = (nbr[dim] + 1) % ext
                    pair: LinkRef = (node, tuple(nbr))  # type: ignore[assignment]
                    if pair[1] == node or pair in seen:
                        continue
                    seen.add(pair)
                    rng = spawn(root, f"link-fail{pair}")
                    t = float(rng.exponential(link_mtbf_seconds))
                    if t < duration:
                        events.append(LinkFail(time=t, link=pair))
        return cls(tuple(events))

    @classmethod
    def for_machine(
        cls,
        machine,
        shape: Coord,
        duration: float,
        seed: Optional[int] = None,
        acceleration: float = 1.0,
    ) -> "FaultPlan":
        """MTBF-derived plan from a machine's reliability parameters.

        ``acceleration`` compresses the MTBFs (divide by this factor) so
        short simulated windows can still exercise failures — real node
        MTBFs are measured in years.
        """
        if acceleration <= 0:
            raise ValueError("acceleration must be positive")
        spec = machine.faults
        return cls.from_mtbf(
            shape,
            duration,
            node_mtbf_seconds=spec.node_mtbf_hours * 3600.0 / acceleration,
            link_mtbf_seconds=spec.link_mtbf_hours * 3600.0 / acceleration,
            seed=seed,
        )
