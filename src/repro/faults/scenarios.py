"""Runnable fault/resilience scenarios for ``repro faults``.

Each scenario exercises one slice of the resilience stack on a small
partition and returns ``(tracer, result line)`` like the trace
scenarios in :mod:`repro.obs.scenarios`.  All of them are seeded and
deterministic: the same seed produces byte-identical traces run to run,
which the CI ``faults`` job checks with a literal ``cmp``.

This module imports :mod:`repro.simmpi` and therefore must NOT be
imported from ``repro.faults.__init__`` (the transport imports
``repro.faults.errors``); the CLI imports it directly.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Tuple

from ..obs.tracer import Tracer, tracing
from .checkpoint import CheckpointModel
from .errors import FaultError
from .plan import FaultPlan, LinkDegrade, LinkFail

__all__ = ["FAULT_SCENARIOS", "run_fault_scenario", "fault_scenario_ids"]

#: The allreduce payload is float32 on purpose: the BG/P tree ALU has
#: no single-precision support (paper Fig. 3), so the collective runs
#: in software over the torus — where links can fail.
_ALLREDUCE_DTYPE = "float32"


def _allreduce_program(rounds: int, nbytes: int):
    def program(comm):
        for _ in range(rounds):
            yield from comm.allreduce(nbytes, dtype=_ALLREDUCE_DTYPE)
        return comm.now

    return program


def _probe_elapsed(rounds: int, nbytes: int) -> float:
    """Healthy-run duration of the allreduce workload (untraced)."""
    from ..machines import BGP
    from ..simmpi import Cluster

    cluster = Cluster(BGP, ranks=64, mode="SMP")
    return cluster.run(_allreduce_program(rounds, nbytes)).elapsed


def _link_kill(
    rounds: int = 8, nbytes: int = 16384, kill_fraction: float = 0.4
) -> Tuple[Tracer, str]:
    """Kill one torus link mid-run; reroute + retransmit to completion.

    A 4x4x4 BG/P partition runs an allreduce-heavy workload; at
    ``kill_fraction`` of the healthy runtime one +X link dies — while a
    transfer is crossing it, so the loss is real.  With the reliability
    protocol on, in-flight losses are retransmitted and later traffic
    detours around the dead link: the job finishes, slower.
    """
    from ..machines import BGP
    from ..simmpi import Cluster, ReliabilityPolicy

    healthy = _probe_elapsed(rounds, nbytes)
    plan = FaultPlan(
        (LinkFail(time=kill_fraction * healthy, link=((0, 0, 0), (1, 0, 0))),)
    )
    tracer = Tracer()
    with tracing(tracer):
        cluster = Cluster(
            BGP, ranks=64, mode="SMP", reliability=ReliabilityPolicy()
        )
        result = cluster.run(_allreduce_program(rounds, nbytes), faults=plan)
    stats = result.faults
    return tracer, (
        f"link-kill on 4x4x4 BG/P ({rounds}x allreduce {nbytes}B fp32): "
        f"healthy {healthy * 1e6:.1f} us -> faulted {result.elapsed * 1e6:.1f} us "
        f"({result.elapsed / healthy:.2f}x); {stats.summary()}"
    )


def _link_kill_noretry(
    rounds: int = 8, nbytes: int = 16384, kill_fraction: float = 0.4
) -> Tuple[Tracer, str]:
    """The same link kill with retransmission disabled: a FaultError.

    With ``max_retries=0`` the first lost message kills its sender —
    the run aborts with an error naming the failed link, which is how
    the sanitizer (and a user) tells a fault-kill from a deadlock.
    """
    from ..machines import BGP
    from ..simmpi import Cluster, ReliabilityPolicy

    healthy = _probe_elapsed(rounds, nbytes)
    plan = FaultPlan(
        (LinkFail(time=kill_fraction * healthy, link=((0, 0, 0), (1, 0, 0))),)
    )
    tracer = Tracer()
    line: str
    with tracing(tracer):
        cluster = Cluster(
            BGP, ranks=64, mode="SMP",
            reliability=ReliabilityPolicy(max_retries=0),
        )
        try:
            cluster.run(_allreduce_program(rounds, nbytes), faults=plan)
            line = "link-kill-noretry: UNEXPECTEDLY COMPLETED"
        except FaultError as err:
            stats = cluster.fault_injector.finalize()
            line = (
                f"link-kill-noretry on 4x4x4 BG/P: FaultError as intended "
                f"[{err}]; {stats.summary()}"
            )
    return tracer, line


def _degrade(rounds: int = 8, nbytes: int = 16384, factor: float = 0.25) -> Tuple[Tracer, str]:
    """Transient bandwidth derating: the job slows down, nothing dies."""
    from ..machines import BGP
    from ..simmpi import Cluster

    healthy = _probe_elapsed(rounds, nbytes)
    plan = FaultPlan(
        (
            LinkDegrade(
                time=0.2 * healthy,
                link=((0, 0, 0), (1, 0, 0)),
                factor=factor,
                duration=0.5 * healthy,
            ),
        )
    )
    tracer = Tracer()
    with tracing(tracer):
        cluster = Cluster(BGP, ranks=64, mode="SMP")
        result = cluster.run(_allreduce_program(rounds, nbytes), faults=plan)
    return tracer, (
        f"degrade to {factor:.0%} on 4x4x4 BG/P: healthy {healthy * 1e6:.1f} us "
        f"-> derated {result.elapsed * 1e6:.1f} us "
        f"({result.elapsed / healthy:.2f}x); {result.faults.summary()}"
    )


def _checkpoint(
    simdays: float = 30.0, system_nodes: int = 4096, simulate: bool = False
) -> Tuple[Tracer, str]:
    """Young/Daly checkpoint-adjusted POP wall-clock, two Table 1 machines.

    With ``simulate`` (``repro faults checkpoint --simulate``) the
    *executed* checkpoint/restart protocol of :mod:`repro.recovery` is
    also run in the DES on each machine, and the simulated-vs-analytic
    runtime delta is appended — the cross-validation that the live
    protocol reproduces the model it was derived from.
    """
    from ..apps.pop.des_replay import checkpointed_walltime
    from ..apps.pop.grid import PopGrid
    from ..machines import BGP, XT4_QC

    grid = PopGrid(nx=360, ny=240, levels=20)
    tracer = Tracer(engine_stride=64)
    lines: List[str] = []
    with tracing(tracer):
        for machine in (BGP, XT4_QC):
            rep = checkpointed_walltime(
                machine, processes=8, grid=grid,
                simdays=simdays, system_nodes=system_nodes,
            )
            lines.append(rep.format())
    if simulate:
        # Deliberately outside the tracing context: the comparison runs
        # hundreds of restart-driver steps that would swamp the trace.
        from ..recovery.scenarios import simulate_checkpointing

        for machine in (BGP, XT4_QC):
            cmp_ = simulate_checkpointing(machine, steps=300)
            lines.append(f"executed vs analytic: {cmp_.format()}")
    return tracer, "\n".join(lines)


def _mtbf(
    duration_hours: float = 24.0, seed: int = 7, acceleration: float = 2000.0
) -> Tuple[Tracer, str]:
    """Seeded MTBF-drawn failure history for a 4x4x4 BG/P partition."""
    from ..machines import BGP

    duration = duration_hours * 3600.0
    plan = FaultPlan.for_machine(
        BGP, (4, 4, 4), duration, seed=seed, acceleration=acceleration
    )
    model = CheckpointModel.from_machine(BGP, 64)
    kinds: Dict[str, int] = {}
    for ev in plan:
        kinds[type(ev).__name__] = kinds.get(type(ev).__name__, 0) + 1
    return Tracer(), (
        f"mtbf plan for 4x4x4 BG/P over {duration_hours:g} h "
        f"(seed={seed}, acceleration={acceleration:g}x): "
        f"{len(plan)} event(s) {kinds or '{}'}; "
        f"partition model: {model.describe(duration)}"
    )


FAULT_SCENARIOS: Dict[str, Callable[..., Tuple[Tracer, str]]] = {
    "link-kill": _link_kill,
    "link-kill-noretry": _link_kill_noretry,
    "degrade": _degrade,
    "checkpoint": _checkpoint,
    "mtbf": _mtbf,
}


def fault_scenario_ids() -> List[str]:
    return list(FAULT_SCENARIOS)


def run_fault_scenario(scenario_id: str, **params: Any) -> Tuple[Tracer, str]:
    """Run one fault scenario; returns (tracer, result line).

    ``params`` must match keyword arguments of the scenario function;
    anything else raises :class:`KeyError` naming what is supported.
    """
    try:
        fn = FAULT_SCENARIOS[scenario_id]
    except KeyError:
        raise KeyError(
            f"unknown fault scenario {scenario_id!r}; known: {fault_scenario_ids()}"
        ) from None
    if params:
        accepted = set(inspect.signature(fn).parameters)
        unknown = sorted(set(params) - accepted)
        if unknown:
            raise KeyError(
                f"scenario {scenario_id!r} does not take parameter(s) "
                f"{unknown}; supported: {sorted(accepted)}"
            )
    return fn(**params)
