"""Seeded exponential backoff for campaign retries.

The old runner retried transient failures *immediately*, which is the
worst possible response to the failures retries exist for: a worker
pool that just lost a process, a filesystem that just returned EIO, a
machine under memory pressure.  Backoff spaces the attempts out;
*seeded jitter* decorrelates sibling jobs without sacrificing the
repo's determinism bar — the delay before retrying attempt ``k`` of a
job is a pure function of ``(job id, k, seed)``, so the sequence is
byte-identical across ``--jobs 1`` and ``--jobs N`` and across runs,
and lands verbatim in the manifest (``backoff_s``) where tests can
pin it.
"""

from __future__ import annotations

import hashlib
from typing import List

__all__ = ["MAX_BACKOFF_EXPONENT", "backoff_delay", "backoff_sequence"]

#: Clamp on the exponential term: ``2.0 ** (attempt - 1)`` overflows a
#: float past attempt ~1025, and a lease-based dispatcher that requeues
#: a poison job for days can legitimately reach huge attempt counts.
#: ``2**60 * base`` already dwarfs any sane cap, so clamping here never
#: changes a real delay — it only keeps the arithmetic finite.
MAX_BACKOFF_EXPONENT = 60


def backoff_delay(
    job_id: str,
    attempt: int,
    base: float = 0.05,
    cap: float = 2.0,
    seed: int = 0,
) -> float:
    """Host seconds to wait after failed execution ``attempt`` (1-based).

    Exponential in the attempt number (``base * 2**(attempt-1)``, the
    exponent clamped at :data:`MAX_BACKOFF_EXPONENT` so huge attempt
    counts can neither overflow nor produce absurd delays) with
    deterministic jitter in ``[0.5, 1.5)`` drawn from
    ``sha256(seed | job_id | attempt)``, clamped to ``cap``.
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based")
    if base < 0 or cap < 0:
        raise ValueError("base and cap must be >= 0")
    raw = int.from_bytes(
        hashlib.sha256(f"{seed}|backoff|{job_id}|{attempt}".encode()).digest()[:8],
        "big",
    )
    jitter = 0.5 + raw / 2.0**64  # [0.5, 1.5)
    exponent = min(attempt - 1, MAX_BACKOFF_EXPONENT)
    return min(cap, base * (2.0**exponent) * jitter)


def backoff_sequence(
    job_id: str,
    attempts: int,
    base: float = 0.05,
    cap: float = 2.0,
    seed: int = 0,
) -> List[float]:
    """The full delay sequence for ``attempts`` failed executions."""
    return [
        backoff_delay(job_id, k, base=base, cap=cap, seed=seed)
        for k in range(1, attempts + 1)
    ]
