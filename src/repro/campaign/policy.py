"""The shared failure policy: one retry brain for batch and service.

:class:`~repro.campaign.runner.CampaignRunner` (batch mode) and
:class:`repro.serve.server.CampaignServer` (service mode) face the same
question after every failed execution attempt: retry with backoff,
quarantine as poison, degrade to fallback params, or record the failure
as final.  The answer must not depend on *which* dispatcher asked — a
job that would be quarantined by ``repro campaign run`` must be
quarantined by the campaign server too, or the chaos drills prove two
different systems.  :class:`FailurePolicy` is that single answer: a
frozen, picklable value object whose :meth:`decide` is a pure function
of the failure classification and the job's bookkeeping, and whose
:meth:`delay` is the seeded backoff both dispatchers record.
"""

from __future__ import annotations

from dataclasses import dataclass

from .retry import backoff_delay
from .worker import RETRYABLE

__all__ = ["ACTIONS", "FailurePolicy"]

#: Everything :meth:`FailurePolicy.decide` can return.
ACTIONS = ("retry", "quarantine", "degrade", "final")


@dataclass(frozen=True)
class FailurePolicy:
    """How many chances a job gets, and how long it waits between them.

    Parameters mirror the historical :class:`CampaignRunner` knobs:
    ``retries`` extra attempts for retryable classifications,
    ``backoff_base``/``backoff_cap`` for the seeded exponential delay,
    ``quarantine_after`` worker kills before a job is poison, and
    ``seed`` for the deterministic jitter.
    """

    retries: int = 1
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    quarantine_after: int = 2
    seed: int = 0

    def validate(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")

    def decide(
        self,
        classification: str,
        attempts: int,
        kills: int = 0,
        has_fallback: bool = False,
    ) -> str:
        """The action for one failed execution, one of :data:`ACTIONS`.

        ``attempts`` counts *completed* executions including the one
        that just failed; ``kills`` counts workers this job has taken
        down.  Quarantine outranks retry (a poison job must stop
        consuming workers no matter how many attempts remain); degrade
        applies only to budget/timeout failures of jobs that carry
        fallback params; everything else retryable gets ``retries``
        extra attempts.
        """
        cls = classification or "transient"
        if kills >= self.quarantine_after:
            return "quarantine"
        if cls in RETRYABLE and attempts <= self.retries:
            return "retry"
        if cls in ("budget", "timeout") and has_fallback:
            return "degrade"
        return "final"

    def delay(self, job_id: str, attempt: int) -> float:
        """Seeded backoff (host seconds) before retrying ``attempt``."""
        return backoff_delay(
            job_id,
            attempt,
            base=self.backoff_base,
            cap=self.backoff_cap,
            seed=self.seed,
        )
