"""Campaign bookkeeping on disk: campaign file, journal, manifest.

Three files, three roles:

* ``campaign.json`` — the expanded plan: spec + deterministic job
  list.  Written once at campaign start; a resume checks the stored
  plan still matches the requested spec.
* ``journal.jsonl`` — append-only, one JSON record per finished job
  attempt, flushed as it happens.  This is what survives an interrupt:
  a resumed campaign reads the journal to know which jobs already
  completed.  The last record per job wins.
* ``manifest.json`` — the run index rewritten after every campaign
  pass: ids, params, artifact paths, content digests, status.  This is
  the file CI diffs between runs (and what ``repro run all -o out/``
  emits), so it contains no wall-clock times — it is a pure function
  of the results.

Crash consistency: the campaign file and manifest are written via
temp-file + ``os.replace`` (a kill mid-rewrite leaves the previous
version, never a torn one); journal appends self-heal a torn tail
(a record that died mid-write is newline-terminated before the next
append, so exactly the torn record is lost and nothing else); and a
manifest that *is* torn — hard kill, filesystem tear, injected chaos —
is recoverable by rebuilding from the journal
(:func:`rebuild_manifest_doc`) instead of dying on ``JSONDecodeError``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from .spec import CampaignSpec, Job

__all__ = [
    "JobRecord",
    "append_journal",
    "read_journal",
    "write_campaign_file",
    "load_campaign_file",
    "manifest_doc",
    "write_manifest",
    "load_manifest",
    "rebuild_manifest_doc",
    "load_or_rebuild_manifest",
    "CAMPAIGN_FILE",
    "JOURNAL_FILE",
    "MANIFEST_FILE",
    "STATUSES",
]

CAMPAIGN_FILE = "campaign.json"
JOURNAL_FILE = "journal.jsonl"
MANIFEST_FILE = "manifest.json"

#: Every status a job record can carry.  ``done`` and ``degraded``
#: produced an artifact (``degraded`` via the job's analytic fallback);
#: ``quarantined`` is a poison job skipped after killing too many
#: workers; ``pending`` never ran this pass.  The last three are live
#: states only the campaign *service* snapshots (``repro serve``):
#: ``queued`` waits for a lease, ``leased`` is owned but not dispatched,
#: ``running`` is executing — ``repro campaign status`` on a serve
#: directory reports a campaign mid-flight.
STATUSES = (
    "done",
    "degraded",
    "failed",
    "quarantined",
    "pending",
    "queued",
    "leased",
    "running",
)


@dataclass
class JobRecord:
    """The durable outcome of one job attempt."""

    job_id: str
    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: one of :data:`STATUSES`
    status: str = "done"
    #: where the result came from: ``"cache"``, ``"computed"``, or
    #: ``"journal"`` (carried forward, e.g. a quarantined poison job)
    source: str = "computed"
    #: sha256 of the artifact text ("" for failures)
    digest: str = ""
    #: artifact path relative to the campaign directory ("" for failures)
    artifact: str = ""
    attempts: int = 1
    error: str = ""
    error_type: str = ""
    #: failure classification: ``"budget"``/``"fault"``/``"config"``/
    #: ``"transient"``/``"timeout"``/``"crash"``/``"interrupt"``/``"poison"``
    classification: str = ""
    #: seeded backoff delays (host seconds) applied before each retry —
    #: a pure function of (job id, attempt, seed), so identical across
    #: ``--jobs 1`` and ``--jobs N`` and safe to keep in the manifest
    backoff_s: List[float] = field(default_factory=list)
    #: the params the analytic fallback ran with (``degraded`` only)
    degraded_params: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the job produced an artifact (possibly degraded)."""
        return self.status in ("done", "degraded")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobRecord":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in names})


def _atomic_write_text(path: pathlib.Path, text: str) -> pathlib.Path:
    """temp + ``os.replace``: readers see the old file or the new one,
    never a torn hybrid (modulo filesystem-level tearing, which the
    torn-tolerant readers and the journal rebuild cover)."""
    tmp = path.with_suffix(f"{path.suffix}.tmp.{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)
    return path


# ---------------------------------------------------------------------------
# journal.jsonl
# ---------------------------------------------------------------------------
def _heal_torn_tail(fh) -> None:
    """Newline-terminate a torn final record so this append starts a
    fresh line.  Without this, a record appended after a mid-write
    crash would fuse with the torn tail and *both* would be lost;
    with it, exactly the record that never completed is dropped.
    (``fh`` must be readable — ``a+b``, not ``ab``.)"""
    fh.seek(0, os.SEEK_END)
    if fh.tell() == 0:
        return
    fh.seek(-1, os.SEEK_END)
    if fh.read(1) != b"\n":
        fh.write(b"\n")


def append_journal(path: Union[str, pathlib.Path], record: JobRecord) -> None:
    """Append one record and flush it to disk immediately."""
    line = json.dumps(record.to_dict(), sort_keys=True)
    with open(path, "a+b") as fh:
        _heal_torn_tail(fh)
        fh.write((line + "\n").encode("utf-8"))
        fh.flush()
        os.fsync(fh.fileno())


def read_journal(path: Union[str, pathlib.Path]) -> Dict[str, JobRecord]:
    """Latest record per job id; tolerates a torn trailing line."""
    out: Dict[str, JobRecord] = {}
    path = pathlib.Path(path)
    if not path.is_file():
        return out
    for line in path.read_text(encoding="utf-8", errors="replace").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
            record = JobRecord.from_dict(doc)
        except (json.JSONDecodeError, TypeError):
            continue  # torn write from an interrupt: ignore the tail
        if record.job_id:
            out[record.job_id] = record
    return out


# ---------------------------------------------------------------------------
# campaign.json
# ---------------------------------------------------------------------------
def write_campaign_file(
    path: Union[str, pathlib.Path], spec: CampaignSpec, jobs: List[Job]
) -> None:
    doc = {
        "spec": spec.to_dict(),
        "jobs": [
            {
                "id": j.job_id,
                "experiment": j.experiment,
                "params": j.params,
                **({"fallback": j.fallback} if j.fallback is not None else {}),
            }
            for j in jobs
        ],
    }
    _atomic_write_text(
        pathlib.Path(path), json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )


def load_campaign_file(path: Union[str, pathlib.Path]) -> Optional[Dict[str, Any]]:
    path = pathlib.Path(path)
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8", errors="replace"))
    except json.JSONDecodeError:
        return None


# ---------------------------------------------------------------------------
# manifest.json
# ---------------------------------------------------------------------------
def manifest_doc(
    records: List[JobRecord],
    name: str = "campaign",
    code_fingerprint: str = "",
) -> Dict[str, Any]:
    """The manifest document (shared by the writer and the chaos
    torn-write injection, which must tear exactly these bytes)."""
    return {
        "name": name,
        "code_fingerprint": code_fingerprint,
        "jobs": [r.to_dict() for r in records],
    }


def write_manifest(
    path: Union[str, pathlib.Path],
    records: List[JobRecord],
    name: str = "campaign",
    code_fingerprint: str = "",
) -> pathlib.Path:
    """Write the deterministic run index (shared with ``repro run all``)."""
    doc = manifest_doc(records, name=name, code_fingerprint=code_fingerprint)
    return _atomic_write_text(
        pathlib.Path(path), json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )


def load_manifest(path: Union[str, pathlib.Path]) -> Optional[Dict[str, Any]]:
    path = pathlib.Path(path)
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8", errors="replace"))
    except json.JSONDecodeError:
        return None


def rebuild_manifest_doc(
    directory: Union[str, pathlib.Path],
) -> Optional[Dict[str, Any]]:
    """Reconstruct a manifest from the torn-tolerant journal.

    Used when ``manifest.json`` is missing or torn: the journal holds
    one fsync'd record per finished job, so everything except jobs
    still in flight at the crash comes back.  Plan order is restored
    from ``campaign.json`` when that file is readable; jobs planned
    but never journaled surface as ``pending``.
    """
    directory = pathlib.Path(directory)
    journal = read_journal(directory / JOURNAL_FILE)
    plan = load_campaign_file(directory / CAMPAIGN_FILE)
    if not journal and plan is None:
        return None
    records: List[JobRecord] = []
    seen: set = set()
    if plan is not None:
        for job in plan.get("jobs", []):
            job_id = job.get("id", "")
            if not job_id:
                continue
            seen.add(job_id)
            record = journal.get(job_id)
            if record is None:
                record = JobRecord(
                    job_id=job_id,
                    experiment=job.get("experiment", ""),
                    params=job.get("params", {}) or {},
                    status="pending",
                    source="",
                    attempts=0,
                )
            records.append(record)
    for job_id in sorted(set(journal) - seen):
        records.append(journal[job_id])
    name = "campaign"
    if plan is not None:
        name = str((plan.get("spec") or {}).get("name", name))
    doc = manifest_doc(records, name=name)
    doc["rebuilt_from_journal"] = True
    return doc


def load_or_rebuild_manifest(
    directory: Union[str, pathlib.Path],
) -> Optional[Dict[str, Any]]:
    """The manifest if readable, else the journal rebuild, else None."""
    directory = pathlib.Path(directory)
    doc = load_manifest(directory / MANIFEST_FILE)
    if doc is not None:
        return doc
    return rebuild_manifest_doc(directory)
