"""Campaign bookkeeping on disk: campaign file, journal, manifest.

Three files, three roles:

* ``campaign.json`` — the expanded plan: spec + deterministic job
  list.  Written once at campaign start; a resume checks the stored
  plan still matches the requested spec.
* ``journal.jsonl`` — append-only, one JSON record per finished job
  attempt, flushed as it happens.  This is what survives an interrupt:
  a resumed campaign reads the journal to know which jobs already
  completed.  The last record per job wins.
* ``manifest.json`` — the run index rewritten after every campaign
  pass: ids, params, artifact paths, content digests, status.  This is
  the file CI diffs between runs (and what ``repro run all -o out/``
  emits), so it contains no wall-clock times — it is a pure function
  of the results.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from .spec import CampaignSpec, Job

__all__ = [
    "JobRecord",
    "append_journal",
    "read_journal",
    "write_campaign_file",
    "load_campaign_file",
    "write_manifest",
    "load_manifest",
    "CAMPAIGN_FILE",
    "JOURNAL_FILE",
    "MANIFEST_FILE",
]

CAMPAIGN_FILE = "campaign.json"
JOURNAL_FILE = "journal.jsonl"
MANIFEST_FILE = "manifest.json"


@dataclass
class JobRecord:
    """The durable outcome of one job attempt."""

    job_id: str
    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: ``"done"`` or ``"failed"``
    status: str = "done"
    #: where the result came from: ``"cache"`` or ``"computed"``
    source: str = "computed"
    #: sha256 of the artifact text ("" for failures)
    digest: str = ""
    #: artifact path relative to the campaign directory ("" for failures)
    artifact: str = ""
    attempts: int = 1
    error: str = ""
    error_type: str = ""
    #: failure classification: ``"budget"``/``"fault"``/``"config"``/``"transient"``
    classification: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "done"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobRecord":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in names})


# ---------------------------------------------------------------------------
# journal.jsonl
# ---------------------------------------------------------------------------
def append_journal(path: Union[str, pathlib.Path], record: JobRecord) -> None:
    """Append one record and flush it to disk immediately."""
    line = json.dumps(record.to_dict(), sort_keys=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def read_journal(path: Union[str, pathlib.Path]) -> Dict[str, JobRecord]:
    """Latest record per job id; tolerates a torn trailing line."""
    out: Dict[str, JobRecord] = {}
    path = pathlib.Path(path)
    if not path.is_file():
        return out
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
            record = JobRecord.from_dict(doc)
        except (json.JSONDecodeError, TypeError):
            continue  # torn write from an interrupt: ignore the tail
        if record.job_id:
            out[record.job_id] = record
    return out


# ---------------------------------------------------------------------------
# campaign.json
# ---------------------------------------------------------------------------
def write_campaign_file(
    path: Union[str, pathlib.Path], spec: CampaignSpec, jobs: List[Job]
) -> None:
    doc = {
        "spec": spec.to_dict(),
        "jobs": [
            {"id": j.job_id, "experiment": j.experiment, "params": j.params}
            for j in jobs
        ],
    }
    pathlib.Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_campaign_file(path: Union[str, pathlib.Path]) -> Optional[Dict[str, Any]]:
    path = pathlib.Path(path)
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return None


# ---------------------------------------------------------------------------
# manifest.json
# ---------------------------------------------------------------------------
def write_manifest(
    path: Union[str, pathlib.Path],
    records: List[JobRecord],
    name: str = "campaign",
    code_fingerprint: str = "",
) -> pathlib.Path:
    """Write the deterministic run index (shared with ``repro run all``)."""
    doc = {
        "name": name,
        "code_fingerprint": code_fingerprint,
        "jobs": [r.to_dict() for r in records],
    }
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_manifest(path: Union[str, pathlib.Path]) -> Optional[Dict[str, Any]]:
    path = pathlib.Path(path)
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return None
