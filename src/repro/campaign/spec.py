"""Declarative campaign specs and their deterministic job expansion.

A :class:`CampaignSpec` names *what* to (re)generate — experiments,
optional per-entry params, and optional sweep ``axes`` whose cartesian
product fans one entry out into many jobs.  :meth:`CampaignSpec.expand`
turns it into the flat, ordered, duplicate-free :class:`Job` list that
the runner, the cache, and the manifest all key off.  Expansion is a
pure function of the spec: same spec ⇒ same job ids in the same order,
on every machine, every run.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Dict, List, Optional, Sequence, Union

from ..core.evaluation import experiment_ids, validate_experiment_params
from ..core.params import parse_params

__all__ = ["CampaignSpec", "Job", "SpecError", "canonical_params", "params_digest"]


class SpecError(ValueError):
    """A campaign spec that cannot be expanded into jobs."""


def canonical_params(params: Dict[str, Any]) -> str:
    """The canonical JSON form of a param dict: sorted keys, compact
    separators — insertion order never leaks into ids or cache keys."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def params_digest(params: Dict[str, Any], n: int = 8) -> str:
    """Short stable digest of a param dict (id suffix for swept jobs)."""
    return hashlib.sha256(canonical_params(params).encode()).hexdigest()[:n]


@dataclass(frozen=True)
class Job:
    """One addressable unit of campaign work: an experiment + params.

    ``job_id`` is the experiment id for parameter-free jobs and
    ``<experiment>-<digest8>`` otherwise, so default artifacts keep the
    classic ``repro run all`` names (``fig3.txt``) while swept variants
    get collision-free ones (``fig3-1a2b3c4d.txt``).
    """

    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: cheaper params to fall back to when the real job keeps failing
    #: on budget/timeout (graceful degradation); merged over ``params``,
    #: never part of the job id — the degraded artifact is still cached
    #: under its *own* content address.
    fallback: Optional[Dict[str, Any]] = None

    @property
    def job_id(self) -> str:
        if not self.params:
            return self.experiment
        return f"{self.experiment}-{params_digest(self.params)}"

    @property
    def fallback_params(self) -> Optional[Dict[str, Any]]:
        """The full param dict a degraded run uses, or ``None``."""
        if self.fallback is None:
            return None
        return {**self.params, **self.fallback}

    @property
    def artifact_name(self) -> str:
        return f"{self.job_id}.txt"

    def describe(self) -> str:
        if not self.params:
            return self.experiment
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.experiment}({inner})"


def _coerce_params(raw: Any, where: str) -> Dict[str, Any]:
    """Accept params as a JSON object or as CLI-style key=value strings."""
    if raw is None:
        return {}
    if isinstance(raw, dict):
        return dict(raw)
    if isinstance(raw, (list, tuple)) and all(isinstance(p, str) for p in raw):
        try:
            return parse_params(list(raw))
        except ValueError as exc:
            raise SpecError(f"{where}: {exc}") from None
    raise SpecError(
        f"{where}: 'params' must be an object or a list of key=value strings"
    )


@dataclass
class CampaignSpec:
    """A named list of campaign entries.

    Each entry is either a bare experiment id or a mapping::

        {"experiment": "fig6",
         "params": {"edge": 40},              # or ["edge=40"]
         "axes": {"edge": [30, 40, 50]}}      # cartesian fan-out

    ``axes`` values merge over ``params`` (an axis wins on name
    clashes), one job per point of the cartesian product, axis order as
    written, last axis fastest — identical to :class:`repro.core.Sweep`.
    """

    name: str = "campaign"
    entries: List[Dict[str, Any]] = field(default_factory=list)

    # -- construction -------------------------------------------------------
    @classmethod
    def from_ids(
        cls,
        ids: Sequence[str],
        params: Optional[Dict[str, Any]] = None,
        name: str = "campaign",
    ) -> "CampaignSpec":
        """Spec over explicit experiment ids (``"all"`` ⇒ every one),
        with one shared param dict — the ``repro campaign run fig2
        fig3 --param k=v`` form."""
        expanded: List[str] = []
        for eid in ids:
            if eid == "all":
                expanded.extend(experiment_ids())
            else:
                expanded.append(eid)
        entries = [
            {"experiment": eid, **({"params": dict(params)} if params else {})}
            for eid in expanded
        ]
        return cls(name=name, entries=entries)

    @classmethod
    def from_file(cls, path: Union[str, pathlib.Path]) -> "CampaignSpec":
        """Load a JSON spec file (see ``docs/campaigns.md`` for the format)."""
        path = pathlib.Path(path)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path}: not valid JSON ({exc})") from None
        return cls.from_dict(doc, name=path.stem)

    @classmethod
    def from_dict(cls, doc: Any, name: str = "campaign") -> "CampaignSpec":
        if isinstance(doc, list):
            doc = {"jobs": doc}
        if not isinstance(doc, dict):
            raise SpecError("campaign spec must be a JSON object or array")
        jobs = doc.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            raise SpecError("campaign spec needs a non-empty 'jobs' array")
        entries: List[Dict[str, Any]] = []
        for i, entry in enumerate(jobs):
            if isinstance(entry, str):
                entry = {"experiment": entry}
            if not isinstance(entry, dict) or "experiment" not in entry:
                raise SpecError(
                    f"jobs[{i}]: each entry is an experiment id or an object "
                    "with an 'experiment' key"
                )
            unknown = sorted(set(entry) - {"experiment", "params", "axes", "fallback"})
            if unknown:
                raise SpecError(f"jobs[{i}]: unknown key(s) {unknown}")
            entries.append(dict(entry))
        return cls(name=str(doc.get("name", name)), entries=entries)

    # -- expansion ----------------------------------------------------------
    def expand(self) -> List[Job]:
        """The deterministic job list: entry order, axes last-fastest.

        Every job is validated against the experiment registry (id and
        param names), and duplicate job ids are a :class:`SpecError` —
        jobs must be addressable, two identical jobs would race on one
        artifact.
        """
        if not self.entries:
            raise SpecError("campaign spec has no jobs")
        out: List[Job] = []
        seen: Dict[str, int] = {}
        for i, entry in enumerate(self.entries):
            where = f"jobs[{i}]"
            eid = entry.get("experiment")
            if not isinstance(eid, str) or not eid:
                raise SpecError(f"{where}: 'experiment' must be an id string")
            base = _coerce_params(entry.get("params"), where)
            fallback: Optional[Dict[str, Any]] = None
            if entry.get("fallback") is not None:
                fallback = _coerce_params(entry.get("fallback"), f"{where}.fallback")
            axes = entry.get("axes") or {}
            if not isinstance(axes, dict):
                raise SpecError(f"{where}: 'axes' must map names to value lists")
            for axis, values in axes.items():
                if not isinstance(values, (list, tuple)) or not values:
                    raise SpecError(
                        f"{where}: axis {axis!r} needs a non-empty value list"
                    )
            names = list(axes)
            combos = (
                [dict(zip(names, c)) for c in product(*(list(axes[n]) for n in names))]
                if names
                else [{}]
            )
            for combo in combos:
                params = {**base, **combo}
                try:
                    validate_experiment_params(eid, params)
                    if fallback is not None:
                        validate_experiment_params(eid, {**params, **fallback})
                except KeyError as exc:
                    raise SpecError(f"{where}: {exc.args[0]}") from None
                job = Job(experiment=eid, params=params, fallback=fallback)
                dup = seen.get(job.job_id)
                if dup is not None:
                    raise SpecError(
                        f"{where}: duplicate job {job.job_id!r} "
                        f"(first defined by jobs[{dup}])"
                    )
                seen[job.job_id] = i
                out.append(job)
        return out

    # -- round-trip ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "jobs": [dict(e) for e in self.entries]}
