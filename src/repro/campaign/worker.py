"""What runs inside a pool worker, and how its failures are classified.

Everything here is module-level and picklable: a
:class:`~concurrent.futures.ProcessPoolExecutor` ships ``execute_job``
plus plain data to the worker, and gets a plain :class:`JobOutcome`
dict-of-builtins back — no live simulator objects ever cross the
process boundary.  A compiled :class:`~repro.chaos.ChaosPlan` may ride
along: the worker consults it before running the experiment and either
dies (kill injection), sleeps (hang injection), or cooperatively
reports a deadline timeout — every decision a pure function of
``(job id, attempt)``, never of schedule.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "JobOutcome",
    "JobTimeoutError",
    "WorkerKilledError",
    "classify_failure",
    "execute_job",
    "job_seed",
    "RETRYABLE",
    "DETERMINISTIC",
    "NEVER_RETRY",
]

#: Classifications whose failures are *deterministic*: the simulation
#: itself decided to stop (budget), to kill a message (fault), or the
#: request was malformed (config).  Retrying replays the exact same
#: decision, so the retry policy never retries these.
DETERMINISTIC = ("budget", "fault", "config")
#: Host-side failures that plausibly pass on a second try: presumed
#: transient errors (worker OOM, filesystem hiccough), watchdog
#: timeouts, and worker crashes (up to the poison-quarantine limit).
RETRYABLE = ("transient", "timeout", "crash")
#: Never retried, never treated as transient: deterministic failures
#: plus operator interrupts (Ctrl-C / sys.exit inside a worker must
#: stop the job, not respawn it) and quarantined poison jobs.
NEVER_RETRY = DETERMINISTIC + ("interrupt", "poison")


class JobTimeoutError(RuntimeError):
    """A job exceeded its watchdog deadline and was cancelled."""


class WorkerKilledError(RuntimeError):
    """A worker process died (was killed) while executing a job."""


def classify_failure(exc: BaseException) -> str:
    """Map an exception to a retry class by *type*, not message.

    Uses class names rather than imports so the classification also
    works on errors that crossed a process boundary via ``__reduce__``
    (the resilience-layer errors all pickle round-trip) and never
    drags the whole simulator into the parent just to label a failure.

    ``KeyboardInterrupt`` / ``SystemExit`` (and any other
    non-``Exception`` ``BaseException``) classify as ``"interrupt"`` —
    an operator stopping a worker is a command, not a flaky
    environment, and must never be retried.
    """
    names = {t.__name__ for t in type(exc).__mro__}
    if not isinstance(exc, Exception) or names & {"KeyboardInterrupt", "SystemExit"}:
        return "interrupt"
    if "BudgetExceeded" in names:
        return "budget"
    if names & {"FaultError", "RankFailedError", "RestartsExhaustedError"}:
        return "fault"
    if "JobTimeoutError" in names:
        return "timeout"
    if names & {"WorkerKilledError", "BrokenProcessPool", "BrokenExecutor"}:
        return "crash"
    if names & {"KeyError", "ValueError", "TypeError", "SpecError"}:
        return "config"
    return "transient"


def job_seed(job_id: str) -> int:
    """Deterministic per-job seed derived from the job id alone."""
    return int.from_bytes(hashlib.sha256(job_id.encode()).digest()[:8], "big")


@dataclass
class JobOutcome:
    """Result of one in-worker job execution (always returned, never
    raised — exceptions are folded in so the parent can journal them)."""

    job_id: str
    ok: bool
    text: str = ""
    error: str = ""
    error_type: str = ""
    classification: str = ""
    #: chaos event keys this execution fired (worker -> parent report)
    chaos: List[str] = field(default_factory=list)


def _apply_chaos(
    job_id: str,
    attempt: int,
    chaos: Any,
    deadline_s: Optional[float],
    in_worker: bool,
    fired: List[str],
) -> Optional[JobOutcome]:
    """Consult the chaos plan before running; an outcome ends the job."""
    from ..perf.hostclock import host_sleep

    event = chaos.kill_event(job_id, attempt)
    if event is not None:
        fired.append(event.key())
        if in_worker:
            # A real mid-job worker death: the parent sees the pool
            # break (BrokenProcessPool) and must rebuild + requeue.
            os.kill(os.getpid(), signal.SIGKILL)
        # Inline (jobs=1) there is no worker process to kill without
        # killing the campaign itself, so the crash is simulated as the
        # outcome the parent would reconstruct from a broken pool.
        return JobOutcome(
            job_id=job_id,
            ok=False,
            error="chaos: worker killed mid-job (inline simulation)",
            error_type="WorkerKilledError",
            classification="crash",
            chaos=fired,
        )
    event = chaos.hang_event(job_id, attempt)
    if event is not None:
        fired.append(event.key())
        if deadline_s is not None and not event.hard and event.seconds > deadline_s:
            # Cooperative hang: the job blocks until its deadline, then
            # reports the timeout itself — deterministic across pool
            # sizes, and the parent requeues it like any timeout.
            host_sleep(min(event.seconds, deadline_s))
            return JobOutcome(
                job_id=job_id,
                ok=False,
                error=(
                    f"chaos: job hung {event.seconds:g}s, past its "
                    f"{deadline_s:g}s deadline"
                ),
                error_type="JobTimeoutError",
                classification="timeout",
                chaos=fired,
            )
        # A hard hang never cooperates (the parent watchdog must kill
        # the worker); a hang below the deadline is just a slow job.
        host_sleep(event.seconds)
    return None


def execute_job(
    job_id: str,
    experiment: str,
    params: Dict[str, Any],
    chaos: Any = None,
    attempt: int = 1,
    deadline_s: Optional[float] = None,
    in_worker: bool = True,
    shards: Optional[int] = None,
) -> JobOutcome:
    """Run one experiment to rendered text, isolated and seeded.

    The global :mod:`random` state is seeded from the job id before the
    experiment runs, so any backend that *does* reach for ambient
    randomness gets the same stream regardless of which worker slot or
    how many sibling jobs ran first — job results can never depend on
    schedule.  (The models themselves already use explicit
    ``make_rng(seed)`` streams; this is the belt to that braces.)

    ``chaos`` is an optional compiled :class:`~repro.chaos.ChaosPlan`;
    ``in_worker`` tells a kill injection whether a real process death
    is possible (pool worker) or must be simulated (inline runner).

    ``shards`` > 1 runs the experiment inside an ambient
    :func:`repro.pdes.sharding` context: eligible DES runs go through
    the sharded engine, everything else falls back to one engine.
    Sharded results are byte-identical by construction, so cache keys
    deliberately exclude the shard count — it is execution policy, not
    an input.
    """
    from ..core.evaluation import run_experiment

    fired: List[str] = []
    if chaos is not None:
        outcome = _apply_chaos(job_id, attempt, chaos, deadline_s, in_worker, fired)
        if outcome is not None:
            return outcome

    random.seed(job_seed(job_id))  # simlint: ignore[determinism-hazard]
    try:
        if shards is not None and shards > 1:
            from ..pdes.ambient import sharding

            with sharding(shards):
                text = run_experiment(experiment, **params)
        else:
            text = run_experiment(experiment, **params)
    except KeyboardInterrupt:
        # A real Ctrl-C must keep interrupting: inline it unwinds the
        # campaign pass; in a pool worker the executor ships it back
        # and the parent classifies it "interrupt" (never retried).
        raise
    except BaseException as exc:  # noqa: BLE001 - job isolation
        return JobOutcome(
            job_id=job_id,
            ok=False,
            error=str(exc),
            error_type=type(exc).__name__,
            classification=classify_failure(exc),
            chaos=fired,
        )
    return JobOutcome(job_id=job_id, ok=True, text=text, chaos=fired)
