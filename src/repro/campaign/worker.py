"""What runs inside a pool worker, and how its failures are classified.

Everything here is module-level and picklable: a
:class:`~concurrent.futures.ProcessPoolExecutor` ships ``execute_job``
plus plain data to the worker, and gets a plain :class:`JobOutcome`
dict-of-builtins back — no live simulator objects ever cross the
process boundary.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Dict

__all__ = [
    "JobOutcome",
    "classify_failure",
    "execute_job",
    "job_seed",
    "RETRYABLE",
    "DETERMINISTIC",
]

#: Classifications whose failures are *deterministic*: the simulation
#: itself decided to stop (budget), to kill a message (fault), or the
#: request was malformed (config).  Retrying replays the exact same
#: decision, so the retry policy never retries these.
DETERMINISTIC = ("budget", "fault", "config")
#: Everything else is presumed transient (worker OOM, broken pool,
#: filesystem hiccough) and is retried up to the policy's limit.
RETRYABLE = ("transient",)


def classify_failure(exc: BaseException) -> str:
    """Map an exception to a retry class by *type*, not message.

    Uses class names rather than imports so the classification also
    works on errors that crossed a process boundary via ``__reduce__``
    (the resilience-layer errors all pickle round-trip) and never
    drags the whole simulator into the parent just to label a failure.
    """
    names = {t.__name__ for t in type(exc).__mro__}
    if "BudgetExceeded" in names:
        return "budget"
    if names & {"FaultError", "RankFailedError", "RestartsExhaustedError"}:
        return "fault"
    if names & {"KeyError", "ValueError", "TypeError", "SpecError"}:
        return "config"
    return "transient"


def job_seed(job_id: str) -> int:
    """Deterministic per-job seed derived from the job id alone."""
    return int.from_bytes(hashlib.sha256(job_id.encode()).digest()[:8], "big")


@dataclass
class JobOutcome:
    """Result of one in-worker job execution (always returned, never
    raised — exceptions are folded in so the parent can journal them)."""

    job_id: str
    ok: bool
    text: str = ""
    error: str = ""
    error_type: str = ""
    classification: str = ""


def execute_job(job_id: str, experiment: str, params: Dict[str, Any]) -> JobOutcome:
    """Run one experiment to rendered text, isolated and seeded.

    The global :mod:`random` state is seeded from the job id before the
    experiment runs, so any backend that *does* reach for ambient
    randomness gets the same stream regardless of which worker slot or
    how many sibling jobs ran first — job results can never depend on
    schedule.  (The models themselves already use explicit
    ``make_rng(seed)`` streams; this is the belt to that braces.)
    """
    from ..core.evaluation import run_experiment

    random.seed(job_seed(job_id))  # simlint: ignore[determinism-hazard]
    try:
        text = run_experiment(experiment, **params)
    except Exception as exc:  # noqa: BLE001 - job isolation
        return JobOutcome(
            job_id=job_id,
            ok=False,
            error=str(exc),
            error_type=type(exc).__name__,
            classification=classify_failure(exc),
        )
    return JobOutcome(job_id=job_id, ok=True, text=text)
