"""Content-addressed on-disk cache of experiment results.

The key binds *everything* the rendered text depends on:

* the experiment id,
* the canonicalized params (sorted-key JSON — insertion order never
  changes the key),
* a fingerprint of the ``repro`` source tree (any ``.py`` edit under
  ``src/repro`` invalidates every key — models are code, so code *is*
  the input).

A hit returns the exact bytes that were stored, so a cached job's
artifact is guaranteed byte-identical to a recomputed one as long as
the code fingerprint matches.  Entries are JSON files written via
``os.replace`` so an interrupted run never leaves a torn entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from functools import lru_cache
from typing import Any, Dict, Optional, Union

from .spec import canonical_params

__all__ = ["ResultCache", "cache_key", "code_fingerprint", "text_digest"]


def text_digest(text: str) -> str:
    """sha256 of the artifact text (digest of what lands on disk)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@lru_cache(maxsize=None)
def code_fingerprint() -> str:
    """Fingerprint of the installed ``repro`` package sources.

    sha256 over the sorted ``(relative path, file sha256)`` pairs of
    every ``.py`` file in the package — stable across processes and
    machines for the same tree, different the moment any model code
    changes.  Cached per process (one walk of ~100 small files).
    """
    import repro

    root = pathlib.Path(repro.__file__).resolve().parent
    acc = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        acc.update(path.relative_to(root).as_posix().encode())
        acc.update(b"\0")
        acc.update(hashlib.sha256(path.read_bytes()).digest())
        acc.update(b"\0")
    return acc.hexdigest()


def cache_key(
    experiment: str,
    params: Dict[str, Any],
    fingerprint: Optional[str] = None,
) -> str:
    """The content address of one job's result."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    payload = json.dumps(
        {
            "experiment": experiment,
            "params": canonical_params(params),
            "code": fingerprint,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """A directory of ``<key[:2]>/<key>.json`` result entries."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def entry_path(self, key: str) -> pathlib.Path:
        """Where the entry for ``key`` lives (it may not exist yet).

        Public so tooling that needs to manipulate the file itself —
        the chaos injector tearing a write, tests asserting on-disk
        layout — doesn't reach for the private ``_path``.
        """
        return self._path(key)

    def get(self, key: str) -> Optional[str]:
        """The cached artifact text, or ``None`` on a miss.

        A corrupt entry (torn write from a hard kill, stray file) is
        treated as a miss — the job recomputes and overwrites it.
        """
        path = self._path(key)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            text = doc["text"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            return None
        if not isinstance(text, str) or doc.get("digest") != text_digest(text):
            return None
        return text

    def put(self, key: str, text: str, meta: Optional[Dict[str, Any]] = None) -> None:
        """Store atomically (tmp file + ``os.replace``)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = dict(meta or {})
        doc["digest"] = text_digest(text)
        doc["text"] = text
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("??/*.json"):
            path.unlink()
            removed += 1
        for sub in self.root.glob("??"):
            try:
                sub.rmdir()
            except OSError:
                pass
        return removed

    def prune_orphans(self, fingerprint: Optional[str] = None) -> int:
        """Delete entries the current code can never hit again.

        Every entry's filename *is* its content address, and the stored
        ``experiment``/``params`` meta lets that address be recomputed
        under the current code fingerprint.  An entry whose recomputed
        key no longer matches its filename was written by an older tree
        (or has torn/stray meta) — nothing will ever look it up, so it
        only accumulates.  Returns how many entries were removed.
        """
        if fingerprint is None:
            fingerprint = code_fingerprint()
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in sorted(self.root.glob("??/*.json")):
            key = path.stem
            keep = False
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                experiment = doc["experiment"]
                params = doc["params"]
                text = doc["text"]
                keep = (
                    isinstance(experiment, str)
                    and isinstance(params, dict)
                    and isinstance(text, str)
                    and doc.get("digest") == text_digest(text)
                    and cache_key(experiment, params, fingerprint) == key
                )
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                keep = False
            if not keep:
                path.unlink(missing_ok=True)
                removed += 1
        for sub in self.root.glob("??"):
            try:
                sub.rmdir()
            except OSError:
                pass
        return removed
