"""Worker-pool lifecycle helpers shared by the batch and service dispatchers.

A :class:`~concurrent.futures.ProcessPoolExecutor` that lost a worker
to SIGKILL (or holds a hard-hung one) cannot be shut down politely:
``shutdown(wait=False)`` leaves the surviving siblings — and the stuck
worker — running forever.  Both campaign dispatch loops (the batch
:class:`~repro.campaign.runner.CampaignRunner` and the
:class:`repro.serve.server.CampaignServer` service) need the same
hard-teardown-and-rebuild dance, so it lives here once.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

__all__ = ["BROKEN_POOL_NAMES", "is_broken_pool", "teardown_pool", "fresh_pool"]

#: Exception class names that mean the *executor* died, not the job.
#: Matched by name so errors that crossed a process boundary (or come
#: from a future stdlib rename) still classify.
BROKEN_POOL_NAMES = frozenset({"BrokenProcessPool", "BrokenExecutor"})


def is_broken_pool(exc: BaseException) -> bool:
    """True when ``exc`` signals executor death rather than job failure."""
    return bool({t.__name__ for t in type(exc).__mro__} & BROKEN_POOL_NAMES)


def teardown_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly broken, possibly stuck) pool down, hard.

    Any process the executor still tracks is terminated explicitly.
    (``_processes`` is private API; the getattr keeps this a no-op if a
    future stdlib drops it — shutdown still does the base cleanup.)
    """
    pool.shutdown(wait=False, cancel_futures=True)
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass


def fresh_pool(pool: ProcessPoolExecutor, max_workers: int) -> ProcessPoolExecutor:
    """Replace ``pool`` with a brand-new executor of the same width."""
    teardown_pool(pool)
    return ProcessPoolExecutor(max_workers=max_workers)
