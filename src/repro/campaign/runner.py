"""The campaign orchestrator: cache pass, worker pool, journal, manifest.

A campaign pass has two phases:

1. **Cache pass** (parent process, cheap): every job's content address
   is looked up; hits restore the artifact from the cached bytes —
   *without touching the file if it already matches* — so an immediate
   rerun is 100% cache hits and leaves every artifact untouched.
2. **Compute pass**: the misses are farmed out — inline for
   ``jobs == 1`` (keeps monkeypatched registries and ambient tracers
   visible, which the tests rely on), or to a
   :class:`~concurrent.futures.ProcessPoolExecutor` for ``jobs > 1``.
   Each finished job is journaled and its artifact + cache entry
   written *as it completes*, so an interrupt loses at most the jobs
   in flight; the next pass cache-hits everything already done and
   computes only the remainder.

Failures are classified (:func:`~repro.campaign.worker.classify_failure`)
and only ``"transient"`` ones are retried — a deterministic simulator
replays :class:`BudgetExceeded` or a :class:`FaultError` identically,
so burning retries on those would just triple the wall-clock of a
known outcome.
"""

from __future__ import annotations

import os
import pathlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..perf.hostclock import HostClock
from .cache import ResultCache, cache_key, code_fingerprint, text_digest
from .manifest import (
    CAMPAIGN_FILE,
    JOURNAL_FILE,
    MANIFEST_FILE,
    JobRecord,
    append_journal,
    write_campaign_file,
    write_manifest,
)
from .spec import CampaignSpec, Job
from .worker import JobOutcome, classify_failure, execute_job

__all__ = ["CampaignResult", "CampaignRunner", "CAMPAIGN_PID", "pool_map"]

#: Synthetic Chrome-trace pid hosting the campaign track (one tid per
#: worker slot), alongside repro.obs's engine/network pids.
CAMPAIGN_PID = 1000002


@dataclass
class CampaignResult:
    """Outcome of one campaign pass."""

    records: List[JobRecord] = field(default_factory=list)
    #: job ids actually *computed* this pass (cache misses that ran)
    executed: List[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    #: artifacts (re)written this pass — a pure-cache-hit rerun writes none
    artifacts_written: int = 0
    interrupted: bool = False

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def done(self) -> int:
        return sum(1 for r in self.records if r.status == "done")

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r.status == "failed")

    @property
    def pending(self) -> int:
        return sum(1 for r in self.records if r.status == "pending")

    def summary_line(self) -> str:
        looked_up = self.cache_hits + self.cache_misses
        pct = 100.0 * self.cache_hits / looked_up if looked_up else 0.0
        parts = [
            f"{self.total} job(s): {self.done} done, {self.failed} failed",
            f"cache hits: {self.cache_hits}/{looked_up} ({pct:.0f}%)",
            f"computed: {len(self.executed)}",
            f"artifacts written: {self.artifacts_written}",
        ]
        if self.retries:
            parts.append(f"retries: {self.retries}")
        if self.interrupted:
            parts.append(f"interrupted ({self.pending} pending)")
        return "; ".join(parts)


def _artifact_bytes(text: str) -> str:
    """Artifacts keep the classic ``repro run -o`` shape: text + newline."""
    return text if text.endswith("\n") else text + "\n"


class CampaignRunner:
    """Run a :class:`CampaignSpec` against a campaign directory.

    Parameters
    ----------
    spec:
        What to run; expanded deterministically at :meth:`run` time.
    directory:
        Campaign home: artifacts (``<job>.txt``), ``campaign.json``,
        ``journal.jsonl``, ``manifest.json``, and (by default) the
        result cache under ``.cache/``.
    jobs:
        Worker processes; ``1`` runs inline in this process.
    retries:
        Extra attempts for *transient* job failures (deterministic
        budget/fault/config failures are never retried).
    cache_dir:
        Override the cache location (share one cache across campaigns).
    tracer:
        Optional :class:`repro.obs.Tracer`: job spans on the campaign
        track, cache hit/miss instants, a running-jobs counter, and
        ``campaign.*`` metrics.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        directory: Union[str, pathlib.Path],
        jobs: int = 1,
        retries: int = 1,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.spec = spec
        self.directory = pathlib.Path(directory)
        self.jobs = jobs
        self.retries = retries
        self.cache = ResultCache(cache_dir or self.directory / ".cache")
        self.tracer = tracer
        self._clock: Optional[HostClock] = None
        self._running = 0

    # -- obs hooks (all no-ops when untraced) -------------------------------
    def _now(self) -> float:
        return self._clock.elapsed() if self._clock is not None else 0.0

    def _trace_setup(self) -> None:
        if self.tracer is None:
            return
        # Host-side trace anchor, never simulated state: campaign traces
        # are wall-clock observability of the harness itself, read
        # through the sanctioned repro.perf.hostclock source.
        self._clock = HostClock()
        self.tracer.set_process_name(CAMPAIGN_PID, f"campaign {self.spec.name}")
        for slot in range(self.jobs):
            self.tracer.set_thread_name(CAMPAIGN_PID, slot, f"worker {slot}")

    def _count(self, name: str, n: int = 1) -> None:
        if self.tracer is not None:
            self.tracer.metrics.counter(f"campaign.{name}").inc(n)

    def _mark_running(self, delta: int) -> None:
        if self.tracer is None:
            return
        self._running += delta
        self.tracer.counter(
            CAMPAIGN_PID, "running_jobs", self._now(), {"jobs": self._running}
        )

    def _trace_cache(self, job: Job, hit: bool) -> None:
        if self.tracer is None:
            return
        self.tracer.instant(
            CAMPAIGN_PID,
            "cache-hit" if hit else "cache-miss",
            self._now(),
            cat="campaign.cache",
            args={"job": job.job_id},
        )

    def _trace_job(
        self, job: Job, slot: int, start: float, outcome: JobOutcome, attempts: int
    ) -> None:
        if self.tracer is None:
            return
        self.tracer.complete(
            CAMPAIGN_PID,
            job.job_id,
            start,
            self._now(),
            cat="campaign.job",
            args={
                "experiment": job.experiment,
                "params": job.params,
                "ok": outcome.ok,
                "attempts": attempts,
                **(
                    {"classification": outcome.classification}
                    if not outcome.ok
                    else {}
                ),
            },
            tid=slot,
        )

    # -- artifacts ----------------------------------------------------------
    def _artifact_path(self, job: Job) -> pathlib.Path:
        return self.directory / job.artifact_name

    def _ensure_artifact(self, job: Job, text: str) -> Tuple[str, bool]:
        """Write the artifact unless it already holds these exact bytes.

        Returns ``(digest, wrote)``; the no-touch path is what makes an
        all-hits rerun leave every file (content *and* mtime) alone.
        """
        payload = _artifact_bytes(text)
        digest = text_digest(payload)
        path = self._artifact_path(job)
        try:
            if path.read_text(encoding="utf-8") == payload:
                return digest, False
        except (OSError, UnicodeDecodeError):
            pass
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        return digest, True

    # -- bookkeeping --------------------------------------------------------
    def _record(
        self,
        result: CampaignResult,
        records: Dict[str, JobRecord],
        job: Job,
        outcome: JobOutcome,
        source: str,
        attempts: int,
    ) -> JobRecord:
        """Journal one finished job and (on success) persist its artifact."""
        if outcome.ok:
            digest, wrote = self._ensure_artifact(job, outcome.text)
            if wrote:
                result.artifacts_written += 1
            record = JobRecord(
                job_id=job.job_id,
                experiment=job.experiment,
                params=job.params,
                status="done",
                source=source,
                digest=digest,
                artifact=job.artifact_name,
                attempts=attempts,
            )
        else:
            record = JobRecord(
                job_id=job.job_id,
                experiment=job.experiment,
                params=job.params,
                status="failed",
                source=source,
                attempts=attempts,
                error=outcome.error,
                error_type=outcome.error_type,
                classification=outcome.classification,
            )
            self._count("failures")
        records[job.job_id] = record
        append_journal(self.directory / JOURNAL_FILE, record)
        return record

    # -- the pass -----------------------------------------------------------
    def run(
        self, max_jobs: Optional[int] = None, fresh: bool = False
    ) -> CampaignResult:
        """One campaign pass: cache pass, then compute the misses.

        ``max_jobs`` caps how many jobs are *computed* this pass (the
        CLI's ``--max-jobs``, also how the tests interrupt a campaign
        deterministically); the remainder stays ``pending`` in the
        manifest and ``interrupted`` is set.  ``fresh`` truncates the
        journal first (artifacts and cache are left to ``clean``).
        """
        jobs = self.spec.expand()
        self.directory.mkdir(parents=True, exist_ok=True)
        if fresh:
            (self.directory / JOURNAL_FILE).unlink(missing_ok=True)
        write_campaign_file(self.directory / CAMPAIGN_FILE, self.spec, jobs)
        self._trace_setup()

        fingerprint = code_fingerprint()
        result = CampaignResult()
        records: Dict[str, JobRecord] = {}
        keys: Dict[str, str] = {}
        pending: List[Job] = []

        # Phase 1: cache pass, in deterministic job order.
        for job in jobs:
            key = keys[job.job_id] = cache_key(job.experiment, job.params, fingerprint)
            text = self.cache.get(key)
            self._trace_cache(job, hit=text is not None)
            if text is not None:
                result.cache_hits += 1
                self._count("cache_hits")
                self._record(result, records, job, JobOutcome(job.job_id, True, text),
                             source="cache", attempts=0)
            else:
                result.cache_misses += 1
                self._count("cache_misses")
                pending.append(job)
        self._count("jobs_total", len(jobs))

        # Phase 2: compute the misses.
        to_run = pending if max_jobs is None else pending[: max(0, max_jobs)]
        skipped = pending[len(to_run):]
        try:
            if self.jobs == 1:
                self._compute_inline(result, records, keys, to_run)
            else:
                self._compute_pool(result, records, keys, to_run)
        except KeyboardInterrupt:
            result.interrupted = True
        if skipped:
            result.interrupted = True

        # Manifest: every planned job, finished or not, in plan order.
        ordered: List[JobRecord] = []
        for job in jobs:
            record = records.get(job.job_id)
            if record is None:
                record = JobRecord(
                    job_id=job.job_id,
                    experiment=job.experiment,
                    params=job.params,
                    status="pending",
                    source="",
                    attempts=0,
                )
            ordered.append(record)
        result.records = ordered
        write_manifest(
            self.directory / MANIFEST_FILE,
            ordered,
            name=self.spec.name,
            code_fingerprint=fingerprint,
        )
        return result

    # -- compute backends ---------------------------------------------------
    def _attempts_for(self, outcome: JobOutcome) -> bool:
        """Whether this failed outcome may be retried at all."""
        return outcome.classification == "transient"

    def _finish_computed(
        self,
        result: CampaignResult,
        records: Dict[str, JobRecord],
        keys: Dict[str, str],
        job: Job,
        outcome: JobOutcome,
        attempts: int,
    ) -> None:
        if outcome.ok:
            self.cache.put(
                keys[job.job_id],
                outcome.text,
                meta={"experiment": job.experiment, "params": job.params},
            )
        result.executed.append(job.job_id)
        self._count("executed")
        self._record(result, records, job, outcome, source="computed", attempts=attempts)

    def _compute_inline(
        self,
        result: CampaignResult,
        records: Dict[str, JobRecord],
        keys: Dict[str, str],
        to_run: List[Job],
    ) -> None:
        for job in to_run:
            start = self._now()
            self._mark_running(+1)
            attempts = 0
            while True:
                attempts += 1
                outcome = execute_job(job.job_id, job.experiment, job.params)
                if outcome.ok or not self._attempts_for(outcome) or attempts > self.retries:
                    break
                result.retries += 1
                self._count("retries")
            self._finish_computed(result, records, keys, job, outcome, attempts)
            self._trace_job(job, 0, start, outcome, attempts)
            self._mark_running(-1)

    def _compute_pool(
        self,
        result: CampaignResult,
        records: Dict[str, JobRecord],
        keys: Dict[str, str],
        to_run: List[Job],
    ) -> None:
        if not to_run:
            return
        slots = list(range(self.jobs))
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            in_flight: Dict[Any, Tuple[Job, int, int, float]] = {}

            def submit(job: Job, attempts: int) -> None:
                slot = slots.pop(0) if slots else 0
                start = self._now()
                self._mark_running(+1)
                fut = pool.submit(execute_job, job.job_id, job.experiment, job.params)
                in_flight[fut] = (job, attempts, slot, start)

            for job in to_run:
                submit(job, attempts=1)
            while in_flight:
                finished, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for fut in finished:
                    job, attempts, slot, start = in_flight.pop(fut)
                    try:
                        outcome = fut.result()
                    except Exception as exc:  # worker/pool died mid-job
                        outcome = JobOutcome(
                            job_id=job.job_id,
                            ok=False,
                            error=str(exc),
                            error_type=type(exc).__name__,
                            classification=classify_failure(exc),
                        )
                    self._trace_job(job, slot, start, outcome, attempts)
                    self._mark_running(-1)
                    slots.insert(0, slot)
                    if (
                        not outcome.ok
                        and self._attempts_for(outcome)
                        and attempts <= self.retries
                    ):
                        result.retries += 1
                        self._count("retries")
                        try:
                            submit(job, attempts + 1)
                            continue
                        except Exception as exc:  # pool unusable: record as-is
                            outcome.error = f"{outcome.error}; resubmit failed: {exc}"
                    self._finish_computed(result, records, keys, job, outcome, attempts)


@contextmanager
def pool_map(
    jobs: int,
) -> Iterator[Callable[[Callable[[Any], Any], Iterable[Any]], Iterable[Any]]]:
    """A ``map``-shaped executor over the campaign worker pool.

    The hook :meth:`repro.core.Sweep.run` takes::

        from repro.campaign import pool_map
        with pool_map(jobs=4) as ex:
            points = Sweep(axes).run(model_fn, executor=ex)

    ``jobs <= 1`` degrades to plain ``map`` (no processes, monkeypatch-
    friendly); results always come back in input order.
    """
    if jobs <= 1:
        yield map
        return
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        yield pool.map
