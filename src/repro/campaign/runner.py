"""The campaign orchestrator: cache pass, worker pool, journal, manifest.

A campaign pass has two phases:

1. **Cache pass** (parent process, cheap): every job's content address
   is looked up; hits restore the artifact from the cached bytes —
   *without touching the file if it already matches* — so an immediate
   rerun is 100% cache hits and leaves every artifact untouched.
2. **Compute pass**: the misses are farmed out — inline for
   ``jobs == 1`` (keeps monkeypatched registries and ambient tracers
   visible, which the tests rely on), or to a
   :class:`~concurrent.futures.ProcessPoolExecutor` for ``jobs > 1``.
   Each finished job is journaled and its artifact + cache entry
   written *as it completes*, so an interrupt loses at most the jobs
   in flight; the next pass cache-hits everything already done and
   computes only the remainder.

The compute pass is hardened against the host failing under it:

* **Watchdog deadlines** — a job that outlives ``deadline_s`` (plus a
  grace period in pool mode) is cancelled, classified ``"timeout"``,
  and requeued with backoff; the stuck worker is killed and the pool
  rebuilt.
* **Seeded backoff** — retries wait ``backoff_delay(job, attempt,
  seed)`` host seconds: exponential with deterministic jitter, so the
  delay sequence is byte-identical across ``--jobs 1`` and ``--jobs N``
  and lands in the manifest (``backoff_s``).
* **Pool rebuild** — a worker death breaks every in-flight future
  (:class:`BrokenProcessPool`); the runner attributes the kill, tears
  the broken pool down, builds a fresh one, requeues the victim with
  backoff, and resubmits the innocent bystanders without consuming
  their attempts.
* **Quarantine** — a job that kills ``quarantine_after`` workers is
  poison: recorded ``"quarantined"`` in the manifest and skipped on
  resume (a later cache hit, e.g. after a fix, wins over quarantine).
* **Graceful degradation** — a job whose spec carries ``fallback``
  params runs them after its budget/timeout failures exhaust retries,
  and is recorded ``"degraded"`` rather than failed.

Failure classification (:func:`~repro.campaign.worker.classify_failure`)
decides retry policy: ``transient``/``timeout``/``crash`` retry with
backoff, deterministic ``budget``/``fault``/``config`` never do (the
simulator replays them identically), and ``interrupt`` never does (an
operator stop is a command, not a flaky environment).

Chaos: pass a :class:`~repro.chaos.ChaosSpec` (or compiled plan) and
the runner injects the scheduled host faults into itself — worker
kills, hangs, torn/ioerr writes — while counting every firing
(``chaos.*`` metrics, :meth:`CampaignRunner.chaos_report`).
"""

from __future__ import annotations

import heapq
import json
import os
import pathlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from ..chaos import (
    ChaosInjector,
    ChaosPlan,
    ChaosSpec,
    torn_cache_put,
    torn_journal_append,
    torn_text_write,
)
from ..perf.hostclock import HostClock, host_sleep
from .cache import ResultCache, cache_key, code_fingerprint, text_digest
from .policy import FailurePolicy
from .pool import fresh_pool, is_broken_pool, teardown_pool
from .manifest import (
    CAMPAIGN_FILE,
    JOURNAL_FILE,
    MANIFEST_FILE,
    JobRecord,
    append_journal,
    manifest_doc,
    read_journal,
    write_campaign_file,
    write_manifest,
)
from .spec import CampaignSpec, Job
from .worker import JobOutcome, classify_failure, execute_job

__all__ = ["CampaignResult", "CampaignRunner", "CAMPAIGN_PID", "pool_map"]

#: Synthetic Chrome-trace pid hosting the campaign track (one tid per
#: worker slot), alongside repro.obs's engine/network pids.
CAMPAIGN_PID = 1000002

#: Pool-mode poll interval (host seconds): the wait() timeout when a
#: deadline or a delayed retry means the parent must wake up on its own.
_POLL_S = 0.05


@dataclass
class CampaignResult:
    """Outcome of one campaign pass."""

    records: List[JobRecord] = field(default_factory=list)
    #: job ids actually *computed* this pass (cache misses that ran)
    executed: List[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    #: artifacts (re)written this pass — a pure-cache-hit rerun writes none
    artifacts_written: int = 0
    interrupted: bool = False
    #: watchdog deadline expiries observed this pass
    timeouts: int = 0
    #: worker-death crashes observed this pass
    crashes: int = 0
    #: times the worker pool was torn down and rebuilt
    pool_rebuilds: int = 0
    #: sorted chaos event keys that fired (empty when chaos is off)
    chaos_fired: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def done(self) -> int:
        return sum(1 for r in self.records if r.status == "done")

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r.status == "failed")

    @property
    def pending(self) -> int:
        return sum(1 for r in self.records if r.status == "pending")

    @property
    def degraded(self) -> int:
        return sum(1 for r in self.records if r.status == "degraded")

    @property
    def quarantined(self) -> int:
        return sum(1 for r in self.records if r.status == "quarantined")

    def summary_line(self) -> str:
        looked_up = self.cache_hits + self.cache_misses
        pct = 100.0 * self.cache_hits / looked_up if looked_up else 0.0
        parts = [
            f"{self.total} job(s): {self.done} done, {self.failed} failed",
            f"cache hits: {self.cache_hits}/{looked_up} ({pct:.0f}%)",
            f"computed: {len(self.executed)}",
            f"artifacts written: {self.artifacts_written}",
        ]
        if self.degraded:
            parts.append(f"degraded: {self.degraded}")
        if self.quarantined:
            parts.append(f"quarantined: {self.quarantined}")
        if self.retries:
            parts.append(f"retries: {self.retries}")
        if self.timeouts:
            parts.append(f"timeouts: {self.timeouts}")
        if self.crashes:
            parts.append(f"crashes: {self.crashes}")
        if self.pool_rebuilds:
            parts.append(f"pool rebuilds: {self.pool_rebuilds}")
        if self.chaos_fired:
            parts.append(f"chaos fired: {len(self.chaos_fired)}")
        if self.interrupted:
            parts.append(f"interrupted ({self.pending} pending)")
        return "; ".join(parts)


def _artifact_bytes(text: str) -> str:
    """Artifacts keep the classic ``repro run -o`` shape: text + newline."""
    return text if text.endswith("\n") else text + "\n"


@dataclass
class _JobState:
    """Mutable per-job retry bookkeeping for one compute pass."""

    attempts: int = 0  # completed executions (the next one is attempts+1)
    kills: int = 0  # workers this job has taken down
    backoff: List[float] = field(default_factory=list)


@dataclass
class _Flight:
    """One in-flight pool submission."""

    job: Job
    state: _JobState
    slot: int
    start: float


class CampaignRunner:
    """Run a :class:`CampaignSpec` against a campaign directory.

    Parameters
    ----------
    spec:
        What to run; expanded deterministically at :meth:`run` time.
    directory:
        Campaign home: artifacts (``<job>.txt``), ``campaign.json``,
        ``journal.jsonl``, ``manifest.json``, and (by default) the
        result cache under ``.cache/``.
    jobs:
        Worker processes; ``1`` runs inline in this process.
    retries:
        Extra attempts for *retryable* job failures (transient errors,
        watchdog timeouts, worker crashes).  Deterministic
        budget/fault/config failures and operator interrupts are never
        retried.
    cache_dir:
        Override the cache location (share one cache across campaigns).
    tracer:
        Optional :class:`repro.obs.Tracer`: job spans on the campaign
        track, cache hit/miss instants, a running-jobs counter, and
        ``campaign.*`` / ``chaos.*`` metrics.
    deadline_s:
        Per-job watchdog deadline (host seconds).  ``None`` disables
        the watchdog.  In pool mode a job may run ``deadline_grace``
        seconds past it before the stuck worker is killed.
    deadline_grace:
        Pool-mode slack on top of ``deadline_s`` before the watchdog
        tears the worker down (cooperative timeouts report themselves
        at the deadline; the grace only matters for truly stuck jobs).
    backoff_base / backoff_cap:
        Seeded exponential backoff parameters (host seconds); see
        :func:`~repro.campaign.retry.backoff_delay`.
    quarantine_after:
        Workers a single job may kill before it is quarantined as
        poison instead of retried.
    chaos:
        Optional :class:`~repro.chaos.ChaosSpec` (compiled against the
        job list at run time) or pre-compiled
        :class:`~repro.chaos.ChaosPlan` of host faults to inject.
    retry_seed:
        Seed for the backoff jitter (deterministic; recorded delays are
        a pure function of job id, attempt, and this seed).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        directory: Union[str, pathlib.Path],
        jobs: int = 1,
        retries: int = 1,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        tracer: Optional[Any] = None,
        deadline_s: Optional[float] = None,
        deadline_grace: float = 2.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        quarantine_after: int = 2,
        chaos: Optional[Union[ChaosSpec, ChaosPlan]] = None,
        retry_seed: int = 0,
        shards: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1 (or None to disable)")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 (or None to disable)")
        if deadline_grace < 0:
            raise ValueError("deadline_grace must be >= 0")
        self.policy = FailurePolicy(
            retries=retries,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            quarantine_after=quarantine_after,
            seed=retry_seed,
        )
        self.policy.validate()
        self.spec = spec
        self.directory = pathlib.Path(directory)
        self.jobs = jobs
        self.retries = retries
        self.cache = ResultCache(cache_dir or self.directory / ".cache")
        self.tracer = tracer
        self.deadline_s = deadline_s
        self.deadline_grace = deadline_grace
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.quarantine_after = quarantine_after
        self.chaos = chaos
        self.retry_seed = retry_seed
        self.shards = shards
        self._clock: Optional[HostClock] = None
        self._running = 0
        self._plan: Optional[ChaosPlan] = None
        self._injector: Optional[ChaosInjector] = None
        self._fingerprint = ""

    # -- obs hooks (all no-ops when untraced) -------------------------------
    def _now(self) -> float:
        return self._clock.elapsed() if self._clock is not None else 0.0

    def _trace_setup(self) -> None:
        # Host-side clock anchor, never simulated state: the scheduler
        # (deadlines, delayed retries) and the traces both read host
        # time through the sanctioned repro.perf.hostclock source.
        self._clock = HostClock()
        if self.tracer is None:
            return
        self.tracer.set_process_name(CAMPAIGN_PID, f"campaign {self.spec.name}")
        for slot in range(self.jobs):
            self.tracer.set_thread_name(CAMPAIGN_PID, slot, f"worker {slot}")

    def _count(self, name: str, n: int = 1) -> None:
        if self.tracer is not None:
            self.tracer.metrics.counter(f"campaign.{name}").inc(n)

    def _mark_running(self, delta: int) -> None:
        if self.tracer is None:
            return
        self._running += delta
        self.tracer.counter(
            CAMPAIGN_PID, "running_jobs", self._now(), {"jobs": self._running}
        )

    def _trace_cache(self, job: Job, hit: bool) -> None:
        if self.tracer is None:
            return
        self.tracer.instant(
            CAMPAIGN_PID,
            "cache-hit" if hit else "cache-miss",
            self._now(),
            cat="campaign.cache",
            args={"job": job.job_id},
        )

    def _trace_job(
        self, job: Job, slot: int, start: float, outcome: JobOutcome, attempts: int
    ) -> None:
        if self.tracer is None:
            return
        self.tracer.complete(
            CAMPAIGN_PID,
            job.job_id,
            start,
            self._now(),
            cat="campaign.job",
            args={
                "experiment": job.experiment,
                "params": job.params,
                "ok": outcome.ok,
                "attempts": attempts,
                **(
                    {"classification": outcome.classification}
                    if not outcome.ok
                    else {}
                ),
            },
            tid=slot,
        )

    # -- chaos hooks --------------------------------------------------------
    def _note_chaos_event(self, event: Any) -> None:
        """Count and trace one fired injection (firing is already done)."""
        if self.tracer is None:
            return
        self.tracer.metrics.counter(f"chaos.{event.kind}").inc(1)
        self.tracer.instant(
            CAMPAIGN_PID,
            f"chaos-{event.kind}",
            self._now(),
            cat="chaos",
            args={"event": event.key()},
        )

    def _note_chaos_keys(self, keys: List[str]) -> None:
        """Absorb worker-reported firings into the parent's fired set."""
        if self._injector is None or not keys:
            return
        for event in self._injector.note_fired(keys):
            self._note_chaos_event(event)

    def chaos_report(self) -> str:
        """Deterministic summary of the injections that fired last run."""
        if self._injector is None:
            return "chaos: disabled"
        return self._injector.report()

    # -- artifacts ----------------------------------------------------------
    def _artifact_path(self, job: Job) -> pathlib.Path:
        return self.directory / job.artifact_name

    def _ensure_artifact(self, job: Job, text: str) -> Tuple[str, bool]:
        """Write the artifact unless it already holds these exact bytes.

        Returns ``(digest, wrote)``; the no-touch path is what makes an
        all-hits rerun leave every file (content *and* mtime) alone.
        """
        payload = _artifact_bytes(text)
        digest = text_digest(payload)
        path = self._artifact_path(job)
        try:
            if path.read_text(encoding="utf-8") == payload:
                return digest, False
        except (OSError, UnicodeDecodeError):
            pass
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        return digest, True

    # -- guarded durable writes ---------------------------------------------
    # All three absorb OSError: a campaign must survive its own disk
    # hiccoughs.  Journal/cache losses are recoverable by design (the
    # manifest still records the job; a lost cache entry recomputes),
    # and the chaos injector exercises exactly these paths.
    def _cache_put(self, job: Job, key: str, text: str) -> None:
        meta = {"experiment": job.experiment, "params": job.params}
        event = (
            self._injector.write_fault("cache", job.job_id)
            if self._injector is not None
            else None
        )
        try:
            if event is not None:
                self._note_chaos_event(event)
                if event.kind == "torn":
                    torn_cache_put(self.cache, key, text, meta=meta)
                    return
                raise OSError(5, "chaos: injected cache I/O error")
            self.cache.put(key, text, meta=meta)
        except OSError:
            self._count("write_errors")

    def _journal_append(self, record: JobRecord) -> None:
        path = self.directory / JOURNAL_FILE
        event = (
            self._injector.write_fault("journal", record.job_id)
            if self._injector is not None
            else None
        )
        try:
            if event is not None:
                self._note_chaos_event(event)
                if event.kind == "torn":
                    torn_journal_append(path, record)
                    return
                raise OSError(5, "chaos: injected journal I/O error")
            append_journal(path, record)
        except OSError:
            self._count("write_errors")

    def _write_manifest(self, ordered: List[JobRecord]) -> None:
        path = self.directory / MANIFEST_FILE
        event = (
            self._injector.write_fault("manifest", "")
            if self._injector is not None
            else None
        )
        if event is not None:
            self._note_chaos_event(event)
            if event.kind == "torn":
                doc = manifest_doc(
                    ordered, name=self.spec.name, code_fingerprint=self._fingerprint
                )
                torn_text_write(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")
                return
            self._count("write_errors")
            return
        try:
            write_manifest(
                path, ordered, name=self.spec.name, code_fingerprint=self._fingerprint
            )
        except OSError:
            self._count("write_errors")

    # -- bookkeeping --------------------------------------------------------
    def _record(
        self,
        result: CampaignResult,
        records: Dict[str, JobRecord],
        job: Job,
        outcome: JobOutcome,
        source: str,
        attempts: int,
        status: Optional[str] = None,
        backoff: Optional[List[float]] = None,
        degraded_params: Optional[Dict[str, Any]] = None,
    ) -> JobRecord:
        """Journal one finished job and (on success) persist its artifact."""
        if status is None:
            status = "done" if outcome.ok else "failed"
        backoff = list(backoff or [])
        if status in ("done", "degraded"):
            digest, wrote = self._ensure_artifact(job, outcome.text)
            if wrote:
                result.artifacts_written += 1
            record = JobRecord(
                job_id=job.job_id,
                experiment=job.experiment,
                params=job.params,
                status=status,
                source=source,
                digest=digest,
                artifact=job.artifact_name,
                attempts=attempts,
                backoff_s=backoff,
                degraded_params=dict(degraded_params or {}),
            )
        else:
            record = JobRecord(
                job_id=job.job_id,
                experiment=job.experiment,
                params=job.params,
                status=status,
                source=source,
                attempts=attempts,
                error=outcome.error,
                error_type=outcome.error_type,
                classification=(
                    "poison" if status == "quarantined" else outcome.classification
                ),
                backoff_s=backoff,
            )
            if status == "failed":
                self._count("failures")
        records[job.job_id] = record
        self._journal_append(record)
        return record

    # -- the pass -----------------------------------------------------------
    def run(
        self, max_jobs: Optional[int] = None, fresh: bool = False
    ) -> CampaignResult:
        """One campaign pass: cache pass, then compute the misses.

        ``max_jobs`` caps how many jobs are *computed* this pass (the
        CLI's ``--max-jobs``, also how the tests interrupt a campaign
        deterministically); the remainder stays ``pending`` in the
        manifest and ``interrupted`` is set.  ``fresh`` truncates the
        journal first (artifacts and cache are left to ``clean``) and
        thereby also lifts quarantines.
        """
        jobs = self.spec.expand()
        self.directory.mkdir(parents=True, exist_ok=True)
        if fresh:
            (self.directory / JOURNAL_FILE).unlink(missing_ok=True)
        prior = read_journal(self.directory / JOURNAL_FILE)
        write_campaign_file(self.directory / CAMPAIGN_FILE, self.spec, jobs)
        self._trace_setup()

        if self.chaos is None:
            self._plan, self._injector = None, None
        else:
            plan = self.chaos
            if not isinstance(plan, ChaosPlan):
                plan = plan.compile([j.job_id for j in jobs])
            self._plan = plan
            self._injector = ChaosInjector(plan)

        fingerprint = self._fingerprint = code_fingerprint()
        result = CampaignResult()
        records: Dict[str, JobRecord] = {}
        keys: Dict[str, str] = {}
        pending: List[Job] = []

        # Phase 1: cache pass, in deterministic job order.  A cache hit
        # beats everything, including an old quarantine (the entry can
        # only exist if the job completed somewhere — it is not poison).
        for job in jobs:
            key = keys[job.job_id] = cache_key(job.experiment, job.params, fingerprint)
            text = self.cache.get(key)
            self._trace_cache(job, hit=text is not None)
            if text is not None:
                result.cache_hits += 1
                self._count("cache_hits")
                self._record(result, records, job, JobOutcome(job.job_id, True, text),
                             source="cache", attempts=0)
                continue
            result.cache_misses += 1
            self._count("cache_misses")
            previous = prior.get(job.job_id)
            if previous is not None and previous.status == "quarantined":
                # Poison carried forward from an earlier pass: skip it
                # rather than feed it more workers.
                previous.source = "journal"
                records[job.job_id] = previous
                self._count("quarantined_skips")
                continue
            pending.append(job)
        self._count("jobs_total", len(jobs))

        # Phase 2: compute the misses.
        to_run = pending if max_jobs is None else pending[: max(0, max_jobs)]
        skipped = pending[len(to_run):]
        try:
            if self.jobs == 1:
                self._compute_inline(result, records, keys, to_run)
            else:
                self._compute_pool(result, records, keys, to_run)
        except KeyboardInterrupt:
            result.interrupted = True
        if skipped:
            result.interrupted = True

        # Manifest: every planned job, finished or not, in plan order.
        ordered: List[JobRecord] = []
        for job in jobs:
            record = records.get(job.job_id)
            if record is None:
                record = JobRecord(
                    job_id=job.job_id,
                    experiment=job.experiment,
                    params=job.params,
                    status="pending",
                    source="",
                    attempts=0,
                )
            ordered.append(record)
        result.records = ordered
        self._write_manifest(ordered)
        if self._injector is not None:
            result.chaos_fired = self._injector.fired_keys()
        return result

    # -- failure policy -----------------------------------------------------
    def _resolve_failure(self, job: Job, state: _JobState, outcome: JobOutcome) -> str:
        """What to do with a failed execution: retry / quarantine /
        degrade / final.  Pure decision (shared with the campaign
        service via :class:`FailurePolicy`) — the backends enact it."""
        return self.policy.decide(
            outcome.classification,
            state.attempts,
            kills=state.kills,
            has_fallback=job.fallback is not None,
        )

    def _settle(
        self,
        result: CampaignResult,
        records: Dict[str, JobRecord],
        keys: Dict[str, str],
        job: Job,
        state: _JobState,
        outcome: JobOutcome,
        retry_cb: Callable[[Job, _JobState, float], None],
    ) -> None:
        """Consume one finished execution attempt and act on it."""
        state.attempts += 1
        if outcome.ok:
            self._finish_computed(result, records, keys, job, outcome, state)
            return
        cls = outcome.classification or "transient"
        if cls == "timeout":
            result.timeouts += 1
            self._count("timeouts")
        elif cls == "crash":
            result.crashes += 1
            self._count("crashes")
            state.kills += 1
        action = self._resolve_failure(job, state, outcome)
        if action == "retry":
            delay_s = self.policy.delay(job.job_id, state.attempts)
            state.backoff.append(delay_s)
            result.retries += 1
            self._count("retries")
            retry_cb(job, state, delay_s)
            return
        result.executed.append(job.job_id)
        self._count("executed")
        if action == "quarantine":
            self._count("quarantined")
            self._record(
                result, records, job, outcome, source="computed",
                attempts=state.attempts, status="quarantined",
                backoff=state.backoff,
            )
            return
        if action == "degrade":
            self._degrade(result, records, job, state, outcome)
            return
        self._record(
            result, records, job, outcome, source="computed",
            attempts=state.attempts, backoff=state.backoff,
        )

    def _degrade(
        self,
        result: CampaignResult,
        records: Dict[str, JobRecord],
        job: Job,
        state: _JobState,
        failure: JobOutcome,
    ) -> None:
        """Run the job's analytic fallback params instead of failing.

        The degraded artifact is cached under the fallback's *own*
        content address, so a later pass degrades from cache without
        re-running anything — and never masquerades as the real result.
        """
        fallback = job.fallback_params or {}
        key = cache_key(job.experiment, fallback, self._fingerprint)
        text = self.cache.get(key)
        if text is None:
            outcome = execute_job(
                job.job_id, job.experiment, fallback, in_worker=False,
                shards=self.shards,
            )
            if not outcome.ok:
                # Fallback failed too: record the original failure.
                self._record(
                    result, records, job, failure, source="computed",
                    attempts=state.attempts, backoff=state.backoff,
                )
                return
            text = outcome.text
            self._cache_put(job, key, text)
        self._count("degraded")
        self._record(
            result, records, job, JobOutcome(job.job_id, True, text),
            source="computed", attempts=state.attempts, status="degraded",
            backoff=state.backoff, degraded_params=fallback,
        )

    def _finish_computed(
        self,
        result: CampaignResult,
        records: Dict[str, JobRecord],
        keys: Dict[str, str],
        job: Job,
        outcome: JobOutcome,
        state: _JobState,
    ) -> None:
        self._cache_put(job, keys[job.job_id], outcome.text)
        result.executed.append(job.job_id)
        self._count("executed")
        self._record(
            result, records, job, outcome, source="computed",
            attempts=state.attempts, backoff=state.backoff,
        )

    # -- compute backends ---------------------------------------------------
    def _compute_inline(
        self,
        result: CampaignResult,
        records: Dict[str, JobRecord],
        keys: Dict[str, str],
        to_run: List[Job],
    ) -> None:
        for job in to_run:
            state = _JobState()
            while True:
                start = self._now()
                self._mark_running(+1)
                outcome = execute_job(
                    job.job_id,
                    job.experiment,
                    job.params,
                    chaos=self._plan,
                    attempt=state.attempts + 1,
                    deadline_s=self.deadline_s,
                    in_worker=False,
                    shards=self.shards,
                )
                self._note_chaos_keys(outcome.chaos)
                self._trace_job(job, 0, start, outcome, state.attempts + 1)
                self._mark_running(-1)
                queued: List[float] = []
                self._settle(
                    result, records, keys, job, state, outcome,
                    lambda _j, _s, delay_s: queued.append(delay_s),
                )
                if not queued:
                    break
                host_sleep(queued[0])

    def _fresh_pool(self, pool: ProcessPoolExecutor) -> ProcessPoolExecutor:
        """Hard teardown + rebuild (see :mod:`repro.campaign.pool`)."""
        return fresh_pool(pool, self.jobs)

    def _compute_pool(
        self,
        result: CampaignResult,
        records: Dict[str, JobRecord],
        keys: Dict[str, str],
        to_run: List[Job],
    ) -> None:
        if not to_run:
            return
        ready: "deque[Tuple[Job, _JobState]]" = deque(
            (job, _JobState()) for job in to_run
        )
        delayed: List[Tuple[float, int, Job, _JobState]] = []  # (due, seq, ...)
        seq = 0
        slots = list(range(self.jobs))
        in_flight: Dict[Any, _Flight] = {}
        pool = ProcessPoolExecutor(max_workers=self.jobs)

        def schedule_retry(job: Job, state: _JobState, delay_s: float) -> None:
            nonlocal seq
            seq += 1
            heapq.heappush(delayed, (self._now() + delay_s, seq, job, state))

        def rebuild(casualties: List[_Flight], reason: str) -> None:
            """Casualty triage + fresh pool.  ``casualties`` no longer
            appear in ``in_flight``; victims consume their attempt and
            go through the normal failure policy, innocents requeue
            untouched."""
            nonlocal pool, slots
            result.pool_rebuilds += 1
            self._count("pool_rebuilds")
            victims: List[_Flight] = []
            innocents: List[_Flight] = []
            if reason == "broken" and self._injector is not None:
                # Attribute the death: an unfired kill injection aimed
                # at an in-flight (job, attempt) is the killer.
                for flight in casualties:
                    event = self._injector.kill_event(
                        flight.job.job_id, flight.state.attempts + 1
                    )
                    if event is not None:
                        self._injector.fire(event)
                        self._note_chaos_event(event)
                        victims.append(flight)
                    else:
                        innocents.append(flight)
            if not victims:
                # No chaos to blame (or chaos off): every in-flight job
                # is a suspect — each wears the crash on its record.
                victims, innocents = casualties, []
            for flight in victims:
                if reason == "stuck":
                    deadline = self.deadline_s or 0.0
                    outcome = JobOutcome(
                        job_id=flight.job.job_id,
                        ok=False,
                        error=(
                            f"job exceeded its {deadline:g}s deadline "
                            f"(+{self.deadline_grace:g}s grace); worker killed"
                        ),
                        error_type="JobTimeoutError",
                        classification="timeout",
                    )
                else:
                    outcome = JobOutcome(
                        job_id=flight.job.job_id,
                        ok=False,
                        error="worker process died mid-job (pool broken)",
                        error_type="WorkerKilledError",
                        classification="crash",
                    )
                self._trace_job(
                    flight.job, flight.slot, flight.start, outcome,
                    flight.state.attempts + 1,
                )
                self._settle(
                    result, records, keys, flight.job, flight.state, outcome,
                    schedule_retry,
                )
            for flight in innocents:
                # The pool death wasn't theirs: resubmit without
                # consuming an attempt or charging a kill.
                ready.append((flight.job, flight.state))
            pool = self._fresh_pool(pool)
            slots = list(range(self.jobs))

        try:
            while ready or delayed or in_flight:
                now = self._now()
                while delayed and delayed[0][0] <= now:
                    _, _, job, state = heapq.heappop(delayed)
                    ready.append((job, state))
                while ready and len(in_flight) < self.jobs:
                    job, state = ready.popleft()
                    slot = slots.pop(0) if slots else 0
                    start = self._now()
                    self._mark_running(+1)
                    try:
                        fut = pool.submit(
                            execute_job,
                            job.job_id,
                            job.experiment,
                            job.params,
                            self._plan,
                            state.attempts + 1,
                            self.deadline_s,
                            True,
                            self.shards,
                        )
                    except Exception:  # pool died between batches
                        self._mark_running(-1)
                        ready.appendleft((job, state))
                        casualties = [in_flight.pop(f) for f in list(in_flight)]
                        for flight in casualties:
                            self._mark_running(-1)
                        rebuild(casualties, reason="broken")
                        break
                    in_flight[fut] = _Flight(job, state, slot, start)
                if not in_flight:
                    if delayed:
                        host_sleep(
                            min(_POLL_S, max(0.0, delayed[0][0] - self._now()))
                        )
                        continue
                    if ready:
                        continue
                    break
                # Block until something finishes — but wake on a poll
                # interval whenever a deadline could expire or a delayed
                # retry could come due.
                block = self.deadline_s is None and not delayed
                finished, _ = wait(
                    list(in_flight),
                    timeout=None if block else _POLL_S,
                    return_when=FIRST_COMPLETED,
                )
                broken: List[_Flight] = []
                for fut in finished:
                    flight = in_flight.pop(fut)
                    self._mark_running(-1)
                    slots.insert(0, flight.slot)
                    try:
                        outcome = fut.result()
                    except KeyboardInterrupt:
                        raise
                    except BaseException as exc:  # noqa: BLE001
                        if is_broken_pool(exc):
                            broken.append(flight)
                            continue
                        outcome = JobOutcome(
                            job_id=flight.job.job_id,
                            ok=False,
                            error=str(exc),
                            error_type=type(exc).__name__,
                            classification=classify_failure(exc),
                        )
                    self._note_chaos_keys(outcome.chaos)
                    self._trace_job(
                        flight.job, flight.slot, flight.start, outcome,
                        flight.state.attempts + 1,
                    )
                    self._settle(
                        result, records, keys, flight.job, flight.state, outcome,
                        schedule_retry,
                    )
                if broken:
                    # A broken executor poisons every remaining future.
                    for fut in list(in_flight):
                        broken.append(in_flight.pop(fut))
                        self._mark_running(-1)
                    rebuild(broken, reason="broken")
                    continue
                # Watchdog: kill workers stuck past deadline + grace.
                if self.deadline_s is not None and in_flight:
                    limit = self.deadline_s + self.deadline_grace
                    now = self._now()
                    stuck = [
                        fut
                        for fut, flight in in_flight.items()
                        if now - flight.start > limit
                    ]
                    if stuck:
                        casualties = [in_flight.pop(fut) for fut in stuck]
                        for flight in casualties:
                            self._mark_running(-1)
                            if self._injector is not None:
                                event = self._injector.hang_event(
                                    flight.job.job_id, flight.state.attempts + 1
                                )
                                if event is not None:
                                    self._injector.fire(event)
                                    self._note_chaos_event(event)
                        survivors = [in_flight.pop(fut) for fut in list(in_flight)]
                        for flight in survivors:
                            self._mark_running(-1)
                            ready.append((flight.job, flight.state))
                        rebuild(casualties, reason="stuck")
        finally:
            teardown_pool(pool)


@contextmanager
def pool_map(
    jobs: int,
) -> Iterator[Callable[[Callable[[Any], Any], Iterable[Any]], Iterable[Any]]]:
    """A ``map``-shaped executor over the campaign worker pool.

    The hook :meth:`repro.core.Sweep.run` takes::

        from repro.campaign import pool_map
        with pool_map(jobs=4) as ex:
            points = Sweep(axes).run(model_fn, executor=ex)

    ``jobs <= 1`` degrades to plain ``map`` (no processes, monkeypatch-
    friendly); results always come back in input order.
    """
    if jobs <= 1:
        yield map
        return
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        yield pool.map
