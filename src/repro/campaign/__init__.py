"""repro.campaign: parallel, cached, resumable experiment campaigns.

Every paper artifact and sweep point becomes an *addressable job*: a
declarative :class:`CampaignSpec` expands into a deterministic job
list; a :class:`CampaignRunner` farms the jobs over a process pool
(``jobs=N``), reuses results through a content-addressed
:class:`ResultCache` (key = experiment + canonical params + code
fingerprint, hit ⇒ byte-identical artifact without recompute), and
journals every outcome so an interrupted campaign resumes where it
stopped.  The ``repro campaign run|status|clean`` CLI verbs and
``repro run all --jobs N`` sit on top.

Quick start::

    from repro.campaign import CampaignSpec, CampaignRunner

    spec = CampaignSpec.from_ids(["fig2", "fig3", "table3"])
    result = CampaignRunner(spec, "out/campaign", jobs=4).run()
    print(result.summary_line())

The runner is hardened against host-level failure — per-job watchdog
deadlines, seeded exponential backoff, automatic pool rebuild after a
worker death, poison-job quarantine, crash-consistent recovery of torn
cache/journal/manifest writes, and graceful degradation to analytic
fallback params — and all of it is testable under deterministic fault
injection via :mod:`repro.chaos`.

See ``docs/campaigns.md`` for the spec format, cache-key semantics,
the resume/retry model, and failure handling.
"""

from .cache import ResultCache, cache_key, code_fingerprint, text_digest
from .manifest import (
    CAMPAIGN_FILE,
    JOURNAL_FILE,
    MANIFEST_FILE,
    STATUSES,
    JobRecord,
    load_campaign_file,
    load_manifest,
    load_or_rebuild_manifest,
    read_journal,
    rebuild_manifest_doc,
    write_manifest,
)
from .policy import ACTIONS, FailurePolicy
from .pool import BROKEN_POOL_NAMES, fresh_pool, is_broken_pool, teardown_pool
from .retry import MAX_BACKOFF_EXPONENT, backoff_delay, backoff_sequence
from .runner import CAMPAIGN_PID, CampaignResult, CampaignRunner, pool_map
from .spec import CampaignSpec, Job, SpecError, canonical_params, params_digest
from .worker import (
    DETERMINISTIC,
    NEVER_RETRY,
    RETRYABLE,
    JobOutcome,
    JobTimeoutError,
    WorkerKilledError,
    classify_failure,
    execute_job,
    job_seed,
)

__all__ = [
    "ACTIONS",
    "BROKEN_POOL_NAMES",
    "CAMPAIGN_FILE",
    "CAMPAIGN_PID",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "DETERMINISTIC",
    "FailurePolicy",
    "Job",
    "JobOutcome",
    "JobRecord",
    "JobTimeoutError",
    "JOURNAL_FILE",
    "MANIFEST_FILE",
    "MAX_BACKOFF_EXPONENT",
    "NEVER_RETRY",
    "RETRYABLE",
    "ResultCache",
    "STATUSES",
    "SpecError",
    "WorkerKilledError",
    "backoff_delay",
    "backoff_sequence",
    "cache_key",
    "canonical_params",
    "classify_failure",
    "code_fingerprint",
    "execute_job",
    "fresh_pool",
    "is_broken_pool",
    "job_seed",
    "load_campaign_file",
    "load_manifest",
    "load_or_rebuild_manifest",
    "params_digest",
    "pool_map",
    "read_journal",
    "rebuild_manifest_doc",
    "teardown_pool",
    "text_digest",
    "write_manifest",
]
