"""repro.campaign: parallel, cached, resumable experiment campaigns.

Every paper artifact and sweep point becomes an *addressable job*: a
declarative :class:`CampaignSpec` expands into a deterministic job
list; a :class:`CampaignRunner` farms the jobs over a process pool
(``jobs=N``), reuses results through a content-addressed
:class:`ResultCache` (key = experiment + canonical params + code
fingerprint, hit ⇒ byte-identical artifact without recompute), and
journals every outcome so an interrupted campaign resumes where it
stopped.  The ``repro campaign run|status|clean`` CLI verbs and
``repro run all --jobs N`` sit on top.

Quick start::

    from repro.campaign import CampaignSpec, CampaignRunner

    spec = CampaignSpec.from_ids(["fig2", "fig3", "table3"])
    result = CampaignRunner(spec, "out/campaign", jobs=4).run()
    print(result.summary_line())

See ``docs/campaigns.md`` for the spec format, cache-key semantics,
and the resume/retry model.
"""

from .cache import ResultCache, cache_key, code_fingerprint, text_digest
from .manifest import (
    CAMPAIGN_FILE,
    JOURNAL_FILE,
    MANIFEST_FILE,
    JobRecord,
    load_campaign_file,
    load_manifest,
    read_journal,
    write_manifest,
)
from .runner import CAMPAIGN_PID, CampaignResult, CampaignRunner, pool_map
from .spec import CampaignSpec, Job, SpecError, canonical_params, params_digest
from .worker import JobOutcome, classify_failure, execute_job, job_seed

__all__ = [
    "CAMPAIGN_FILE",
    "CAMPAIGN_PID",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "Job",
    "JobOutcome",
    "JobRecord",
    "JOURNAL_FILE",
    "MANIFEST_FILE",
    "ResultCache",
    "SpecError",
    "cache_key",
    "canonical_params",
    "classify_failure",
    "code_fingerprint",
    "execute_job",
    "job_seed",
    "load_campaign_file",
    "load_manifest",
    "params_digest",
    "pool_map",
    "read_journal",
    "text_digest",
    "write_manifest",
]
