"""Simulated fault tolerance: ULFM-style recovery + checkpoint/restart.

PR 3 (:mod:`repro.faults`) made components *fail*; this package makes
runs *survive*.  Three cooperating pieces:

* :mod:`repro.recovery.policy` — the frozen configuration:
  :class:`RecoveryPolicy` (shrink-and-continue vs
  restart-from-checkpoint) and :class:`CheckpointSchedule` (executable
  checkpoint intervals derived from PR 3's analytic Young/Daly
  :class:`~repro.faults.checkpoint.CheckpointModel`);
* :mod:`repro.recovery.runtime` — :class:`RecoveryRuntime`, the live
  ULFM semantics: node failures kill rank processes and revoke the
  world communicator (every blocked or subsequent operation raises
  :class:`RankFailedError`); survivors ``agree``/``shrink`` onto a
  deterministic live-rank sub-communicator; checkpoints execute as
  real DES events; the timeline is tiled into clean/lost/rework/
  overhead :class:`Segment` s that sum to the walltime exactly;
* :mod:`repro.recovery.driver` — :func:`run_recovered`, the restart
  loop (fresh cluster per attempt, resumed clock, rewind to the last
  completed checkpoint, bounded by ``max_restarts``).

Runnable demonstration scenarios live in
:mod:`repro.recovery.scenarios` (imported lazily by the CLI: that
module pulls in :mod:`repro.apps`, which imports :mod:`repro.simmpi`,
which imports this package — keeping it out of this namespace avoids
the cycle, mirroring :mod:`repro.faults.scenarios`).
"""

from .driver import RecoveryOutcome, run_recovered, run_with_recovery
from .errors import RankFailedError, RestartsExhaustedError
from .policy import CheckpointSchedule, RecoveryPolicy
from .runtime import (
    RANK_FAILED,
    RecoveryRuntime,
    RecoveryTimes,
    Segment,
)

__all__ = [
    "CheckpointSchedule",
    "RANK_FAILED",
    "RankFailedError",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "RecoveryRuntime",
    "RecoveryTimes",
    "RestartsExhaustedError",
    "Segment",
    "run_recovered",
    "run_with_recovery",
]
