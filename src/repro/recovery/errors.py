"""Errors raised by the simulated fault-tolerance (ULFM-style) layer.

These are deliberately free of any :mod:`repro.simmpi` imports so the
transport and communicator can raise them without an import cycle
(mirroring :mod:`repro.faults.errors`).  All of them carry structured
fields and are picklable via ``__reduce__``, so multiprocess sweep
workers can propagate them across process boundaries intact.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

__all__ = ["RankFailedError", "RestartsExhaustedError"]

Coord = Tuple[int, int, int]


class RankFailedError(RuntimeError):
    """A communication partner's rank (or its node) has failed.

    The simulated analogue of ULFM's ``MPI_ERR_PROC_FAILED``: raised in
    a *surviving* rank's program when it tries to communicate with (or
    collectively synchronise across) a failed rank, or when it was
    already blocked on one at failure time.  A recovery-aware program
    catches it and calls ``comm.agree()`` / ``comm.shrink()``; under a
    restart policy the error propagates out of ``Cluster.run`` and the
    recovery driver rewinds to the last checkpoint.
    """

    def __init__(
        self,
        failed_ranks: Iterable[int],
        node: Optional[Coord] = None,
        sim_time: float = 0.0,
        op: str = "",
        rank: Optional[int] = None,
        peer: Optional[int] = None,
    ) -> None:
        ranks: FrozenSet[int] = frozenset(failed_ranks)
        where = f" (node {node})" if node is not None else ""
        who = f"rank {rank}: " if rank is not None else ""
        what = f" during {op}" if op else ""
        at = f" at t={sim_time:.6g}s" if sim_time else ""
        super().__init__(
            f"{who}rank(s) {sorted(ranks)}{where} failed{at}{what} — "
            "communicator is revoked; call comm.agree()/comm.shrink() to "
            "continue on the survivors, or run under "
            "RecoveryPolicy(mode='restart') to rewind to a checkpoint"
        )
        #: world ranks known dead when the error was raised
        self.failed_ranks = ranks
        #: torus coordinates of the failed node, when attributable
        self.node = node
        self.sim_time = sim_time
        #: the operation that observed the failure (``recv``, ``send``, …)
        self.op = op
        #: the rank that observed the failure, if known
        self.rank = rank
        #: the specific dead peer of a point-to-point op, if any
        self.peer = peer

    @property
    def entity(self) -> str:
        """The failed component, as a diagnostic label."""
        if self.node is not None:
            return f"node {self.node}"
        return f"rank(s) {sorted(self.failed_ranks)}"

    @property
    def attempt(self) -> int:
        """Recovery attempt ordinal (a raw failure is always attempt 0)."""
        return 0

    def __reduce__(self):
        return (
            type(self),
            (
                tuple(sorted(self.failed_ranks)),
                self.node,
                self.sim_time,
                self.op,
                self.rank,
                self.peer,
            ),
        )


class RestartsExhaustedError(RuntimeError):
    """The recovery driver gave up restarting a repeatedly-failing run."""

    def __init__(
        self,
        attempts: int,
        max_restarts: int,
        sim_time: float = 0.0,
        last_error: str = "",
    ) -> None:
        tail = f": {last_error}" if last_error else ""
        super().__init__(
            f"run failed {attempts} time(s), exceeding "
            f"max_restarts={max_restarts} at t={sim_time:.6g}s{tail}"
        )
        self.attempts = attempts
        self.max_restarts = max_restarts
        self.sim_time = sim_time
        self.last_error = last_error

    @property
    def entity(self) -> str:
        return "recovery-driver"

    @property
    def attempt(self) -> int:
        return self.attempts

    def __reduce__(self):
        return (
            type(self),
            (self.attempts, self.max_restarts, self.sim_time, self.last_error),
        )
