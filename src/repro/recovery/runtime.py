"""The recovery runtime: ULFM-style failure semantics for one cluster.

:class:`RecoveryRuntime` is the live half of a
:class:`~repro.recovery.policy.RecoveryPolicy`.  Attached to a
:class:`~repro.simmpi.comm.Cluster` (``Cluster.run(recovery=...)``), it

* turns a :class:`~repro.faults.plan.NodeFail` injected by the fault
  injector into *process death*: the ranks on the failed node stop
  executing immediately (their generators are closed so ``finally``
  blocks run), and the world communicator is **revoked** — every
  blocked operation fails with
  :class:`~repro.recovery.errors.RankFailedError` and every later
  world-communicator operation raises it on entry, exactly as ULFM's
  ``MPI_ERR_PROC_FAILED`` + ``MPI_Comm_revoke`` combination behaves;
* provides the recovery collectives — :meth:`RankComm.agree
  <repro.simmpi.comm.RankComm.agree>` / :meth:`RankComm.shrink
  <repro.simmpi.comm.RankComm.shrink>` are implemented here — which
  rendezvous the survivors, agree on the failed-rank set (and, for
  :meth:`recover`, on the earliest aborted step so desynchronised
  survivors re-converge), and build a deterministic live-rank
  :class:`~repro.simmpi.subcomm.SubComm`;
* *executes* the checkpoint/restart protocol of the policy's
  :class:`~repro.recovery.policy.CheckpointSchedule`:
  :meth:`maybe_checkpoint` synchronises the ranks and pays the
  checkpoint-write time inside the DES, and the restart driver
  (:mod:`repro.recovery.driver`) rewinds to the last *completed*
  checkpoint on a fatal failure;
* keeps an exact time accounting: the run's timeline is tiled into
  :class:`Segment` s (clean work, re-executed work, lost work,
  checkpoint/shrink/restart overhead) whose durations sum to the
  wall-clock time *by construction* — the invariant the property tests
  in ``tests/recovery`` check.

Everything here is deterministic: failure times come from the fault
plan, agreement order from the engine's deterministic scheduling, so
two identical runs produce byte-identical traces even while recovering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..simengine import Engine, Event
from .errors import RankFailedError
from .policy import RecoveryPolicy

__all__ = [
    "RANK_FAILED",
    "RECOVERY_PID",
    "RecoveryRuntime",
    "RecoveryTimes",
    "Segment",
]

#: Chrome-trace pid hosting recovery instants/spans (next to the
#: fault-injector pid in repro.faults.injector).
RECOVERY_PID = 1000003

#: Group-id base for shrink-generation sub-communicators; generation g
#: uses group id ``_SHRINK_GROUP_BASE + g`` so every generation gets a
#: private tag band that cannot collide with split_by() groups or with
#: traffic orphaned by an earlier generation.
_SHRINK_GROUP_BASE = 1 << 10

#: Simulated payload of the agree/shrink vote (one 64-bit word).
_AGREE_BYTES = 8


class _RankFailedSentinel:
    """Return value of a rank whose process was killed by a node fault."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "RANK_FAILED"


#: Sentinel found in ``ClusterResult.returns`` for killed ranks.
RANK_FAILED = _RankFailedSentinel()


@dataclass(frozen=True)
class Segment:
    """One tile of the recovery time accounting.

    ``kind`` is one of ``clean`` (first execution of a step), ``rework``
    (re-execution of work lost to a failure), ``lost`` (work that was
    executed and then discarded), ``ckpt`` (checkpoint barrier + write),
    ``shrink`` (failure notification + agreement + rebuild), and
    ``restart`` (rebooting the partition and reading the checkpoint
    back).  Segments tile ``[0, walltime]`` without gaps or overlaps.
    """

    kind: str
    start: float
    end: float
    step: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class RecoveryTimes:
    """Where a recovered run's wall-clock time went.

    The four buckets partition the run: ``clean + lost + rework +
    checkpoint_overhead == walltime`` exactly (each bucket is a sum of
    non-overlapping :class:`Segment` durations tiling the timeline).
    ``checkpoint_overhead`` aggregates every resilience cost: checkpoint
    writes, shrink agreements, and restart delays.
    """

    clean: float
    lost: float
    rework: float
    checkpoint_overhead: float

    @property
    def walltime(self) -> float:
        return self.clean + self.lost + self.rework + self.checkpoint_overhead

    @classmethod
    def from_segments(cls, segments: List[Segment]) -> "RecoveryTimes":
        clean = lost = rework = overhead = 0.0
        for seg in segments:
            if seg.kind == "clean":
                clean += seg.duration
            elif seg.kind == "lost":
                lost += seg.duration
            elif seg.kind == "rework":
                rework += seg.duration
            else:  # ckpt | shrink | restart
                overhead += seg.duration
        return cls(clean, lost, rework, overhead)

    def summary(self) -> str:
        return (
            f"walltime {self.walltime:.6g}s = clean {self.clean:.6g}s "
            f"+ lost {self.lost:.6g}s + rework {self.rework:.6g}s "
            f"+ overhead {self.checkpoint_overhead:.6g}s"
        )


@dataclass
class _Agreement:
    """Rendezvous of the survivors of one shrink generation."""

    event: Event
    remaining: int
    steps: List[int] = field(default_factory=list)


class RecoveryRuntime:
    """Applies one :class:`RecoveryPolicy` to one cluster run.

    Single use, like :class:`~repro.faults.injector.FaultInjector`: the
    restart driver builds a fresh runtime per attempt (sharing the
    ``executed_steps`` memory so re-executed work is classified as
    rework across attempts).
    """

    def __init__(
        self,
        policy: RecoveryPolicy,
        start_step: int = 0,
        executed_steps: Optional[Set[int]] = None,
        attempt: int = 0,
    ) -> None:
        self.policy = policy
        #: first application step this attempt executes (restart mode)
        self.start_step = start_step
        #: steps whose work has been paid at least once (shared across
        #: restart attempts so re-execution shows up as rework)
        self.executed_steps: Set[int] = (
            executed_steps if executed_steps is not None else set()
        )
        #: restart-attempt ordinal of this runtime (0 = first try)
        self.attempt = attempt
        self.cluster: Optional[Any] = None
        #: world ranks known dead
        self.dead_ranks: Set[int] = set()
        #: bumped once per node failure; SubComms remember the
        #: generation they were built in and raise when it moves on
        self.generation = 0
        #: ``(sim_time, node, ranks)`` per applied node failure
        self.failures: List[Tuple[float, Tuple[int, int, int], Tuple[int, ...]]] = []
        #: timeline tiling (see :class:`Segment`)
        self.segments: List[Segment] = []
        #: last step durably checkpointed (-1 = none; restart attempts
        #: inherit the previous attempt's durable progress)
        self.durable_step = start_step - 1
        self.checkpoints_written = 0
        self._procs: List[Any] = []
        self._last_cut = 0.0
        self._last_ckpt_end = 0.0
        self._ckpt_decisions: Dict[Tuple[int, int], bool] = {}
        self._ckpt_done: Set[int] = set()
        self._steps_recorded: Set[Tuple[int, int]] = set()
        self._agreements: Dict[int, _Agreement] = {}
        self._abort_recorded: Set[int] = set()
        self._finalized = False
        self._attached = False

    # -- wiring ------------------------------------------------------------
    @property
    def env(self) -> Engine:
        assert self.cluster is not None, "runtime is not attached"
        return self.cluster.env

    def attach(self, cluster: Any) -> "RecoveryRuntime":
        """Wire this runtime into a cluster (once, before running)."""
        if self._attached:
            raise RuntimeError("a RecoveryRuntime is single-use; make a new one")
        self._attached = True
        self.cluster = cluster
        cluster.recovery = self
        cluster.transport.recovery = self
        self._last_cut = cluster.env.now
        self._last_ckpt_end = cluster.env.now
        return self

    def begin_run(self, procs: List[Any]) -> None:
        """Called by ``Cluster.run`` once the rank processes exist."""
        self._procs = list(procs)
        if self.attempt > 0:
            self._note(
                "restart",
                {"attempt": self.attempt, "start_step": self.start_step},
                counter="recovery.restarts",
            )

    def live_ranks(self) -> List[int]:
        """World ranks still alive, ascending."""
        assert self.cluster is not None
        return [r for r in range(self.cluster.ranks) if r not in self.dead_ranks]

    # -- failure application (called by the fault injector) ----------------
    def on_node_failed(self, node: Tuple[int, int, int]) -> None:
        """A NodeFail fired: kill its ranks and revoke the communicator.

        ULFM semantics, compressed into one deterministic instant:

        * the ranks mapped to ``node`` stop executing (generators are
          closed so ``finally`` blocks run) and their process events
          resolve to :data:`RANK_FAILED`;
        * every *pending* blocking operation anywhere — posted
          receives, rendezvous senders, hardware-collective
          rendezvous, in-flight agreements — fails with
          :class:`RankFailedError` (the revoke: peers blocked on a
          live rank that will now abort must not hang);
        * the shrink generation advances, so every subsequent operation
          on a communicator from an older generation raises on entry.
        """
        cluster = self.cluster
        assert cluster is not None
        now = cluster.env.now
        mapping = cluster.mapping
        newly = [
            r
            for r in range(cluster.ranks)
            if r not in self.dead_ranks and mapping.node_of(r) == node
        ]
        if not newly:
            return
        self.dead_ranks.update(newly)
        self.generation += 1
        self.failures.append((now, node, tuple(newly)))

        def err(op: str, rank: Optional[int] = None, peer: Optional[int] = None):
            return RankFailedError(
                newly, node=node, sim_time=now, op=op, rank=rank, peer=peer
            )

        # 1. Kill the rank processes hosted on the dead node.
        for r in newly:
            if r < len(self._procs):
                self._kill(self._procs[r])

        # 2. Revoke: fail every pending point-to-point operation.  The
        # orphaned traffic of survivors is discarded too — a peer
        # blocked on a rank that is alive but about to abort must raise,
        # not hang (ULFM's revoke does exactly this).
        transport = cluster.transport
        from ..simmpi.p2p import ANY_SOURCE  # local import: avoids a cycle

        revoked = 0
        for dst, queue in list(transport.queues.items()):
            for pr in queue.posted:
                if not pr.event.triggered:
                    peer = None if pr.src == ANY_SOURCE else pr.src
                    pr.event.fail(err("recv", rank=dst, peer=peer))
                    pr.event.defuse()
                    revoked += 1
            queue.posted.clear()
            for envl in queue.unexpected:
                done = envl.sender_done
                if done is not None and not done.triggered:
                    done.fail(err("send", rank=envl.msg.src, peer=envl.msg.dst))
                    done.defuse()
                    revoked += 1
            queue.unexpected.clear()

        # 3. Fail pending hardware-collective rendezvous: a collective
        # over the world communicator can never complete again.
        for sync in cluster._op_syncs.values():
            if sync.remaining > 0 and not sync.event.triggered:
                sync.event.fail(err(f"collective {sync.kind}"))
                sync.event.defuse()
                revoked += 1

        # 4. Fail in-flight agreements of older generations, so their
        # participants re-agree against the new failure set.
        for agreement in self._agreements.values():
            if not agreement.event.triggered:
                agreement.event.fail(err("agree"))
                agreement.event.defuse()
                revoked += 1

        self._note(
            "node-failure",
            {
                "node": str(node),
                "ranks": str(sorted(newly)),
                "generation": self.generation,
                "revoked_ops": revoked,
            },
            counter="recovery.node_failures",
        )
        self._count("recovery.rank_kills", len(newly))

    def _kill(self, proc: Any) -> None:
        """Stop one rank process dead, without crashing the engine."""
        if proc is None or not proc.is_alive:
            return
        target = proc._target
        if target is not None:
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(proc._resume)
                except ValueError:
                    pass
            # The dead rank's waitall/AnyOf may still fail later via its
            # children; nobody is listening anymore, so disarm it.
            target.defuse()
        proc._target = None
        proc._generator.close()
        proc.succeed(RANK_FAILED)

    # -- agreement / shrink (backing RankComm.agree / .shrink) -------------
    def agreement(self, comm: Any, step: Optional[int] = None):
        """Rendezvous the survivors; agree on the failure set.

        Generator.  Every live rank must call this (survivors reach it
        by catching :class:`RankFailedError`); the returned value is
        ``(failed_ranks, resume_step)`` where ``resume_step`` is the
        minimum ``step`` passed by any participant (``None`` when no
        participant passed one) — desynchronised survivors use it to
        re-converge on a common step.
        """
        gen = self.generation
        agreement = self._agreements.get(gen)
        if agreement is None:
            agreement = self._agreements[gen] = _Agreement(
                Event(self.env), len(self.live_ranks())
            )
        if step is not None:
            agreement.steps.append(step)
        agreement.remaining -= 1
        if agreement.remaining == 0 and not agreement.event.triggered:
            resume = min(agreement.steps) if agreement.steps else None
            self._count("recovery.agreements")
            agreement.event.succeed((frozenset(self.dead_ranks), resume))
        result = yield agreement.event
        return result

    def shrink(self, comm: Any, step: Optional[int] = None):
        """Agree, then build the surviving sub-communicator.

        Generator returning ``(subcomm, resume_step)``.  ``comm`` must
        be the *world* :class:`~repro.simmpi.comm.RankComm`.  The
        agreement cost is modelled as one small software allreduce over
        the survivors (ULFM's agree is a fault-tolerant allreduce).
        """
        from ..simmpi.subcomm import SubComm  # local import: avoids a cycle

        dead, resume = yield from self.agreement(comm, step)
        live = self.live_ranks()
        if len(live) < self.policy.min_ranks:
            raise RankFailedError(
                dead,
                sim_time=self.env.now,
                op=(
                    f"shrink below min_ranks={self.policy.min_ranks} "
                    f"({len(live)} survivor(s) left)"
                ),
                rank=comm.rank,
            )
        gen = self.generation
        sub = SubComm(comm, live, group_id=_SHRINK_GROUP_BASE + gen)
        yield from sub.allreduce(_AGREE_BYTES)
        if sub.rank == 0:
            start = self._last_cut
            self._add_segment("shrink", self.env.now)
            self._note(
                "shrink",
                {
                    "generation": gen,
                    "survivors": len(live),
                    "resume_step": -1 if resume is None else resume,
                },
                counter="recovery.shrinks",
            )
            self._span("shrink", start, self.env.now)
        return sub, resume

    def recover(self, comm: Any, step: int):
        """Full shrink-mode recovery for step-loop programs.

        Generator: records the aborted work as lost, shrinks, and
        returns ``(subcomm, resume_step)`` — the program continues its
        step loop from ``resume_step`` on ``subcomm``.
        """
        self.record_abort(comm, step)
        sub, resume = yield from self.shrink(comm, step)
        return sub, resume if resume is not None else step

    # -- executed checkpointing --------------------------------------------
    def maybe_checkpoint(self, comm: Any, step: int):
        """Checkpoint after ``step`` if the schedule says one is due.

        Generator; every rank of ``comm`` calls it at the same point of
        the step loop.  The due-decision is memoised per (generation,
        step) so all ranks decide identically; a due checkpoint is a
        barrier plus the schedule's write time, after which steps
        ``<= step`` are durable.
        """
        schedule = self.policy.schedule
        if schedule is None:
            return
        key = (self.generation, step)
        due = self._ckpt_decisions.get(key)
        if due is None:
            due = schedule.due(self._last_ckpt_end, self.env.now)
            self._ckpt_decisions[key] = due
        if not due:
            return
        yield from comm.barrier()
        yield self.env.timeout(schedule.write_seconds)
        self._end_checkpoint(step)

    def _end_checkpoint(self, step: int) -> None:
        """First completing rank records the finished checkpoint."""
        if step in self._ckpt_done:
            return
        self._ckpt_done.add(step)
        now = self.env.now
        start = self._last_cut
        self._add_segment("ckpt", now, step=step)
        self._last_ckpt_end = now
        self.durable_step = step
        self.checkpoints_written += 1
        self._note(
            "checkpoint",
            {"step": step, "write_seconds": self.policy.schedule.write_seconds},
            counter="recovery.checkpoints",
        )
        self._span("checkpoint", start, now)

    # -- step accounting ----------------------------------------------------
    def end_step(self, comm: Any, step: int) -> None:
        """Mark application step ``step`` complete (call from every rank).

        The first caller per (generation, step) records the segment —
        single-writer and deterministic, since engine ordering is — and
        classifies the execution *before* this pass marks the step
        executed, so only genuinely re-executed work becomes rework.
        """
        key = (self.generation, step)
        if key not in self._steps_recorded:
            self._steps_recorded.add(key)
            kind = "rework" if step in self.executed_steps else "clean"
            self._add_segment(kind, self.env.now, step=step)
        self.executed_steps.add(step)

    def record_abort(self, comm: Any, step: int) -> None:
        """A survivor aborted ``step``: the partial work is lost.

        Recorded once per shrink generation (first caller wins — the
        engine's deterministic ordering makes that reproducible).
        """
        gen = self.generation
        if gen not in self._abort_recorded:
            self._abort_recorded.add(gen)
            self._add_segment("lost", self.env.now, step=step)
        self.executed_steps.add(step)

    def finalize_success(self, now: float) -> None:
        """Close the tiling at a successful run end."""
        if self._finalized:
            return
        self._finalized = True
        self._add_segment("clean", now)

    def finalize_failed(self, now: float) -> None:
        """Close the tiling at a fatal failure (restart mode).

        Work completed after the last durable checkpoint is re-labelled
        ``lost`` — the restart will re-execute it — and the time since
        the last mark becomes a ``lost`` tail.
        """
        if self._finalized:
            return
        self._finalized = True
        relabeled: List[Segment] = []
        for seg in self.segments:
            if (
                seg.kind in ("clean", "rework")
                and seg.step is not None
                and seg.step > self.durable_step
            ):
                seg = Segment("lost", seg.start, seg.end, seg.step)
            relabeled.append(seg)
        self.segments = relabeled
        self._add_segment("lost", now)

    def times(self) -> RecoveryTimes:
        """The (finalized) time decomposition of this attempt."""
        return RecoveryTimes.from_segments(self.segments)

    def _add_segment(
        self, kind: str, end: float, step: Optional[int] = None
    ) -> None:
        if end > self._last_cut:
            self.segments.append(Segment(kind, self._last_cut, end, step))
            self._last_cut = end

    # -- telemetry ----------------------------------------------------------
    def _tracer(self) -> Optional[Any]:
        return getattr(self.cluster, "tracer", None) if self.cluster else None

    def _note(self, name: str, args: Dict[str, Any], counter: str = "") -> None:
        tracer = self._tracer()
        if tracer is None:
            return
        tracer.instant(
            RECOVERY_PID, name, self.cluster.env.now, cat="recovery", args=args
        )
        tracer.metrics.counter(counter or f"recovery.{name}").inc()
        tracer.set_process_name(RECOVERY_PID, "recovery")

    def _count(self, name: str, n: int = 1) -> None:
        tracer = self._tracer()
        if tracer is not None:
            tracer.metrics.counter(name).inc(n)

    def _span(self, name: str, start: float, end: float) -> None:
        tracer = self._tracer()
        if tracer is not None:
            tracer.complete(RECOVERY_PID, name, start, end, cat="recovery")
