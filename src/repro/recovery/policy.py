"""Recovery policies and executed checkpoint schedules.

:class:`RecoveryPolicy` is the frozen configuration object (the
resilience analogue of :class:`~repro.simmpi.p2p.ReliabilityPolicy`)
selecting how a run survives node failures:

* ``mode="shrink"`` — ULFM-style shrink-and-continue: surviving ranks
  agree on the failure, rebuild a live-rank communicator, and keep
  going (no checkpoint needed, work is redistributed);
* ``mode="restart"`` — checkpoint/restart: the run periodically writes
  checkpoints per its :class:`CheckpointSchedule`, and a fatal failure
  rewinds the replay to the last completed checkpoint and re-executes
  the lost work.

:class:`CheckpointSchedule` turns PR 3's *analytic*
:class:`~repro.faults.checkpoint.CheckpointModel` into something the
DES can execute: a checkpoint interval plus the I/O time one checkpoint
write costs (through the machine's real forwarding path, tree → ION →
GPFS on the BG machines) and the restart cost (reboot + checkpoint
read).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..faults.checkpoint import CheckpointModel

__all__ = ["CheckpointSchedule", "RecoveryPolicy"]


@dataclass(frozen=True)
class CheckpointSchedule:
    """When to checkpoint, and what each checkpoint/restart costs.

    All fields are simulation seconds.  ``interval_seconds`` is the
    target spacing between checkpoint *completions*; the runtime
    quantises it to application step boundaries (a checkpoint is taken
    at the first step boundary at least that long after the previous
    one).
    """

    interval_seconds: float
    write_seconds: float
    restart_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError("checkpoint interval must be positive")
        if self.write_seconds <= 0:
            raise ValueError("checkpoint write time must be positive")
        if self.restart_seconds < 0:
            raise ValueError("restart time must be non-negative")

    @classmethod
    def from_model(
        cls, model: CheckpointModel, interval: Optional[float] = None
    ) -> "CheckpointSchedule":
        """Executable schedule from the analytic Young/Daly model.

        The default interval is the model's Daly-optimal one, so a DES
        run under this schedule is directly comparable to
        ``model.expected_runtime``.
        """
        return cls(
            interval_seconds=(
                model.optimal_interval() if interval is None else interval
            ),
            write_seconds=model.checkpoint_seconds,
            restart_seconds=model.restart_seconds,
        )

    @classmethod
    def for_machine(
        cls,
        machine,
        nodes: int,
        memory_fraction: float = 0.5,
        interval: Optional[float] = None,
    ) -> "CheckpointSchedule":
        """Schedule for a partition, via the machine's I/O path + MTBF."""
        model = CheckpointModel.from_machine(
            machine, nodes, memory_fraction=memory_fraction
        )
        return cls.from_model(model, interval=interval)

    def due(self, last_checkpoint_end: float, now: float) -> bool:
        """Is a checkpoint due at a step boundary at sim time ``now``?"""
        return now - last_checkpoint_end >= self.interval_seconds


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a simulated run survives injected node failures.

    ``max_restarts`` bounds restart-mode attempts (a plan that kills
    the partition faster than it can recover raises
    :class:`~repro.recovery.errors.RestartsExhaustedError` instead of
    looping forever).  ``min_ranks`` bounds shrink mode: shrinking
    below this many survivors raises instead of continuing on a
    partition too small to be meaningful.
    """

    mode: str = "shrink"
    schedule: Optional[CheckpointSchedule] = None
    max_restarts: int = 16
    min_ranks: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("shrink", "restart"):
            raise ValueError(
                f"unknown recovery mode {self.mode!r} "
                "(expected 'shrink' or 'restart')"
            )
        if self.mode == "restart" and self.schedule is None:
            raise ValueError(
                "RecoveryPolicy(mode='restart') needs a CheckpointSchedule "
                "(there is nothing to restart from without checkpoints)"
            )
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.min_ranks < 1:
            raise ValueError("min_ranks must be >= 1")

    def describe(self) -> str:
        if self.mode == "restart":
            s = self.schedule
            assert s is not None
            return (
                f"RecoveryPolicy(mode='restart', checkpoint every "
                f"{s.interval_seconds:.6g}s at {s.write_seconds:.6g}s/write, "
                f"restart {s.restart_seconds:.6g}s)"
            )
        return f"RecoveryPolicy(mode='shrink', min_ranks={self.min_ranks})"
