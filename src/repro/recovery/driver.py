"""The recovery driver: restart-from-checkpoint orchestration.

:func:`run_recovered` wraps the whole restart loop the batch system of
a real machine would perform: run the job, and when a node failure
kills it, reboot the partition (paying the schedule's restart time),
rewind to the last *completed* checkpoint, and re-submit — re-executing
only the steps after that checkpoint.  Shrink-mode policies run once
(the program recovers in-place via ``runtime.recover``); restart-mode
policies may run many attempts, each on a fresh cluster whose engine
clock continues where the previous attempt died, so the segments of
every attempt tile one continuous timeline.

The caller supplies factories instead of objects because each attempt
needs a *fresh* simulation world::

    def cluster_factory(env):
        return Cluster(BGP, ranks=16, mode="VN", env=env)

    def program_factory(runtime, start_step):
        def program(comm):
            ...  # step loop from start_step, calling runtime hooks
        return program

    outcome = run_recovered(policy, cluster_factory, program_factory,
                            plan=plan)
    assert abs(outcome.times.walltime - outcome.result.elapsed) < 1e-9
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, List, Optional

from ..faults.errors import FaultError
from ..faults.plan import FaultPlan
from ..simengine import Engine
from .errors import RankFailedError, RestartsExhaustedError
from .policy import RecoveryPolicy
from .runtime import RecoveryRuntime, RecoveryTimes, Segment

__all__ = ["RecoveryOutcome", "run_recovered", "run_with_recovery"]


@dataclass
class RecoveryOutcome:
    """What one :func:`run_recovered` call did, end to end."""

    #: the final (successful) attempt's ``ClusterResult``
    result: Any
    #: exact time decomposition of the whole timeline (all attempts)
    times: RecoveryTimes
    #: attempts executed (1 = no fatal failure ever surfaced)
    attempts: int
    #: checkpoints completed across all attempts
    checkpoints_written: int
    #: every world rank that died across all attempts
    failed_ranks: FrozenSet[int]
    #: the full timeline tiling (segments of every attempt + restarts)
    segments: List[Segment]

    def summary(self) -> str:
        return (
            f"{self.attempts} attempt(s), "
            f"{self.checkpoints_written} checkpoint(s), "
            f"{len(self.failed_ranks)} rank(s) lost | {self.times.summary()}"
        )


def _remaining(plan: Optional[FaultPlan], after: float) -> Optional[FaultPlan]:
    """The sub-plan of faults still ahead of a resumed clock."""
    if plan is None:
        return None
    return FaultPlan(tuple(ev for ev in plan if ev.time > after))


def run_recovered(
    policy: RecoveryPolicy,
    cluster_factory: Callable[[Engine], Any],
    program_factory: Callable[[RecoveryRuntime, int], Callable],
    plan: Optional[FaultPlan] = None,
    *,
    budget: Optional[Any] = None,
    sanitize: bool = False,
    trace: bool = False,
) -> RecoveryOutcome:
    """Run a program under ``policy`` until it completes (or gives up).

    ``cluster_factory(env)`` builds the cluster for one attempt on the
    given engine; ``program_factory(runtime, start_step)`` builds the
    per-rank program, which must run its step loop from ``start_step``
    and call the runtime's ``end_step`` / ``maybe_checkpoint`` hooks
    (and, in shrink mode, ``runtime.recover`` on failure).

    ``plan`` faults are injected per attempt, filtered to those still in
    the future of the resumed clock.  ``budget`` bounds each attempt
    (``max_sim_time`` is absolute simulation time and therefore bounds
    the whole timeline; event/wall bounds are per attempt).

    Raises :class:`RestartsExhaustedError` when restart-mode failures
    exceed ``policy.max_restarts``; shrink-mode failures the program
    does not recover from propagate as-is.
    """
    executed_steps: set = set()
    segments: List[Segment] = []
    failed_ranks: set = set()
    resume_time = 0.0
    start_step = 0
    attempt = 0
    checkpoints = 0

    while True:
        env = Engine(initial_time=resume_time)
        cluster = cluster_factory(env)
        if cluster.env is not env:
            raise ValueError(
                "cluster_factory must build the cluster on the provided "
                "engine (pass env= through to Cluster)"
            )
        runtime = RecoveryRuntime(
            policy,
            start_step=start_step,
            executed_steps=executed_steps,
            attempt=attempt,
        )
        # Earlier attempts' durable progress survives the crash.
        runtime.durable_step = start_step - 1
        program = program_factory(runtime, start_step)
        try:
            result = cluster.run(
                program,
                recovery=runtime,
                faults=_remaining(plan, resume_time),
                sanitize=sanitize,
                trace=trace,
                budget=budget,
            )
        except (RankFailedError, FaultError) as exc:
            failed_ranks.update(runtime.dead_ranks)
            checkpoints += runtime.checkpoints_written
            fail_time = env.now
            attempt += 1
            if policy.mode != "restart" or attempt > policy.max_restarts:
                if policy.mode == "restart":
                    raise RestartsExhaustedError(
                        attempt,
                        policy.max_restarts,
                        sim_time=fail_time,
                        last_error=str(exc),
                    ) from exc
                raise
            runtime.finalize_failed(fail_time)
            segments.extend(runtime.segments)
            start_step = runtime.durable_step + 1
            schedule = policy.schedule
            assert schedule is not None  # restart mode guarantees one
            resume_time = fail_time + schedule.restart_seconds
            if resume_time > fail_time:
                segments.append(Segment("restart", fail_time, resume_time))
            continue

        failed_ranks.update(runtime.dead_ranks)
        checkpoints += runtime.checkpoints_written
        runtime.finalize_success(env.now)
        segments.extend(runtime.segments)
        return RecoveryOutcome(
            result=result,
            times=RecoveryTimes.from_segments(segments),
            attempts=attempt + 1,
            checkpoints_written=checkpoints,
            failed_ranks=frozenset(failed_ranks),
            segments=segments,
        )


def run_with_recovery(
    policy: RecoveryPolicy,
    cluster_factory: Callable[[Optional[Engine]], Any],
    program_factory: Callable[[RecoveryRuntime, int], Callable],
    *,
    faults: Optional[FaultPlan] = None,
    budget: Optional[Any] = None,
    sanitize: bool = False,
    trace: bool = False,
) -> RecoveryOutcome:
    """Mode dispatcher used by the application replays.

    Restart-mode policies go through the full :func:`run_recovered`
    loop; shrink-mode policies run once (the program recovers in-place
    via ``runtime.recover``).  Either way the caller gets one uniform
    :class:`RecoveryOutcome`.
    """
    if policy.mode == "restart":
        return run_recovered(
            policy,
            cluster_factory,
            program_factory,
            plan=faults,
            budget=budget,
            sanitize=sanitize,
            trace=trace,
        )
    cluster = cluster_factory(Engine())
    runtime = RecoveryRuntime(policy)
    result = cluster.run(
        program_factory(runtime, 0),
        recovery=runtime,
        faults=faults,
        sanitize=sanitize,
        trace=trace,
        budget=budget,
    )
    return RecoveryOutcome(
        result=result,
        times=runtime.times(),
        attempts=1,
        checkpoints_written=runtime.checkpoints_written,
        failed_ranks=frozenset(runtime.dead_ranks),
        segments=list(runtime.segments),
    )
