"""Runnable recovery scenarios for ``repro recover``.

Each scenario exercises one slice of the recovery stack on a small
partition and returns ``(tracer, result line)`` like the fault
scenarios in :mod:`repro.faults.scenarios`.  All of them are
deterministic: the same parameters produce byte-identical traces run to
run, which the CI ``recovery`` job checks with a literal ``cmp``.

This module imports :mod:`repro.apps` (which imports
:mod:`repro.simmpi`, which imports :mod:`repro.recovery`) and therefore
must NOT be imported from ``repro.recovery.__init__``; the CLI imports
it directly, mirroring :mod:`repro.faults.scenarios`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from ..obs.tracer import Tracer, tracing
from .policy import CheckpointSchedule, RecoveryPolicy

__all__ = [
    "CheckpointComparison",
    "RECOVER_SCENARIOS",
    "recover_scenario_ids",
    "run_recover_scenario",
    "simulate_checkpointing",
]


def _pop_setup(processes: int, steps: int):
    """Shared prologue of the POP scenarios: grid, healthy probe, plan."""
    from ..apps.pop.des_replay import replay_steps
    from ..apps.pop.grid import PopGrid
    from ..faults import FaultPlan, NodeFail
    from ..machines import BGP
    from ..simmpi import Cluster

    grid = PopGrid(nx=360, ny=240, levels=20)
    probe = replay_steps(BGP, processes, grid, steps=steps, mode="VN")
    step = probe.seconds_per_step
    node = Cluster(BGP, ranks=processes, mode="VN").mapping.node_of(
        processes // 2
    )
    plan = FaultPlan((NodeFail(time=2.5 * step, node=node),))
    return grid, probe, plan


def _pop_shrink(processes: int = 16, steps: int = 5) -> Tuple[Tracer, str]:
    """Kill one node mid-POP; survivors shrink and finish the run.

    A 16-rank tenth-degree-ish POP replay loses a node (four VN-mode
    ranks) halfway through step 2; the survivors agree on the failure,
    rebuild the domain decomposition over 12 ranks, re-execute the
    aborted step, and complete — the time decomposition tiles the
    wall-clock exactly.
    """
    from ..apps.pop.des_replay import replay_steps
    from ..machines import BGP

    grid, probe, plan = _pop_setup(processes, steps)
    tracer = Tracer(engine_stride=64)
    with tracing(tracer):
        r = replay_steps(
            BGP, processes, grid, steps=steps, mode="VN",
            faults=plan, recovery=RecoveryPolicy(mode="shrink"),
        )
    out = r.recovery
    return tracer, (
        f"pop-shrink on BG/P ({processes} ranks VN, {steps} steps): healthy "
        f"{probe.seconds_per_step * steps:.4g}s -> recovered "
        f"{out.times.walltime:.4g}s with {len(out.failed_ranks)} rank(s) "
        f"lost; {out.times.summary()}"
    )


def _pop_restart(processes: int = 16, steps: int = 5) -> Tuple[Tracer, str]:
    """Kill one node mid-POP; rewind to the last checkpoint and re-run.

    The same failure as ``pop-shrink``, survived the other way: the
    replay checkpoints on a fixed interval, the node failure kills the
    job, and the driver reboots it from the last completed checkpoint —
    paying restart and re-execution instead of shrinking.
    """
    from ..apps.pop.des_replay import replay_steps
    from ..machines import BGP

    grid, probe, plan = _pop_setup(processes, steps)
    step = probe.seconds_per_step
    schedule = CheckpointSchedule(
        interval_seconds=1.7 * step,
        write_seconds=0.25 * step,
        restart_seconds=0.5 * step,
    )
    tracer = Tracer(engine_stride=64)
    with tracing(tracer):
        r = replay_steps(
            BGP, processes, grid, steps=steps, mode="VN",
            faults=plan,
            recovery=RecoveryPolicy(mode="restart", schedule=schedule),
        )
    out = r.recovery
    return tracer, (
        f"pop-restart on BG/P ({processes} ranks VN, {steps} steps): healthy "
        f"{step * steps:.4g}s -> {out.summary()}"
    )


def _s3d_shrink(processes: int = 16, steps: int = 6) -> Tuple[Tracer, str]:
    """The S3D flavour of shrink-and-continue (3-D grid redecomposed)."""
    from ..apps.s3d.des_replay import replay_steps
    from ..faults import FaultPlan, NodeFail
    from ..machines import BGP
    from ..simmpi import Cluster

    probe = replay_steps(BGP, processes, edge=20, steps=steps, mode="VN")
    step = probe.seconds_per_step
    node = Cluster(BGP, ranks=processes, mode="VN").mapping.node_of(
        processes // 2
    )
    plan = FaultPlan((NodeFail(time=2.5 * step, node=node),))
    tracer = Tracer(engine_stride=64)
    with tracing(tracer):
        r = replay_steps(
            BGP, processes, edge=20, steps=steps, mode="VN",
            faults=plan, recovery=RecoveryPolicy(mode="shrink"),
        )
    out = r.recovery
    return tracer, (
        f"s3d-shrink on BG/P ({processes} ranks VN, {steps} steps): healthy "
        f"{step * steps:.4g}s -> recovered {out.times.walltime:.4g}s with "
        f"{len(out.failed_ranks)} rank(s) lost; {out.times.summary()}"
    )


def _livelock(
    max_stalled: float = 20000, max_wall_seconds: float = 60.0
) -> Tuple[Tracer, str]:
    """A zero-advance event loop, terminated by the budget watchdog.

    The rank programs spin on ``timeout(0)`` so the event queue churns
    without the simulation clock ever advancing — the shape of a real
    livelock bug.  ``Engine.run(budget=...)`` detects the stall
    deterministically and raises :class:`~repro.simengine.BudgetExceeded`
    with a partial-result summary instead of hanging.
    """
    from ..machines import BGP
    from ..simengine import Budget, BudgetExceeded
    from ..simmpi import Cluster

    cluster = Cluster(BGP, ranks=4, mode="SMP")

    def program(comm):
        while True:
            yield comm.env.timeout(0.0)

    budget = Budget(
        max_stalled_events=int(max_stalled),
        max_wall_seconds=max_wall_seconds,
    )
    try:
        cluster.run(program, budget=budget)
        line = "livelock: UNEXPECTEDLY COMPLETED"
    except BudgetExceeded as err:
        line = f"livelock stopped as intended: {err.summary.format()}"
    return Tracer(), line


@dataclass(frozen=True)
class CheckpointComparison:
    """Executed checkpoint/restart vs the analytic Young/Daly model."""

    machine: str
    work_seconds: float
    analytic_seconds: float
    simulated_seconds: float
    attempts: int
    checkpoints: int

    @property
    def delta_fraction(self) -> float:
        """(simulated - analytic) / analytic."""
        return self.simulated_seconds / self.analytic_seconds - 1.0

    def format(self) -> str:
        return (
            f"{self.machine}: work {self.work_seconds:.4g}s -> analytic "
            f"{self.analytic_seconds:.4g}s, simulated (DES) "
            f"{self.simulated_seconds:.4g}s ({self.delta_fraction:+.1%}); "
            f"{self.attempts} attempt(s), {self.checkpoints} checkpoint(s)"
        )


def simulate_checkpointing(
    machine: Any,
    ranks: int = 8,
    steps: int = 400,
    mtbf_steps: float = 250.0,
    write_steps: float = 5.0,
    restart_steps: float = 10.0,
    mode: str = "SMP",
) -> CheckpointComparison:
    """Run the *executed* checkpoint path and compare with the model.

    A synthetic step-loop workload (compute + one allreduce per step)
    runs under a :class:`~repro.recovery.RecoveryPolicy` in restart
    mode whose :class:`CheckpointSchedule` is Daly-optimal for an
    accelerated :class:`~repro.faults.checkpoint.CheckpointModel`
    (MTBF/write/restart expressed in healthy step times, so the same
    regime holds on every machine).  Node failures are injected
    deterministically at the MTBF spacing; the resulting DES wall-clock
    is compared against ``CheckpointModel.expected_runtime`` — the
    executed protocol should land within ~15% of the analytic
    expectation (deterministic failure spacing vs the model's
    exponential assumption accounts for the residual).
    """
    from ..faults import FaultPlan, NodeFail
    from ..faults.checkpoint import CheckpointModel
    from ..simmpi import Cluster
    from . import RecoveryPolicy as _Policy, run_recovered

    def make_program(runtime, start_step):
        def program(comm):
            for step in range(start_step, steps):
                yield from comm.compute(flops=2e7)
                yield from comm.allreduce(8192, dtype="float64")
                runtime.end_step(comm, step)
                yield from runtime.maybe_checkpoint(comm, step)
            return comm.now
        return program

    # Healthy probe: the per-step rate anchoring the failure regime.
    def healthy(comm):
        for _ in range(4):
            yield from comm.compute(flops=2e7)
            yield from comm.allreduce(8192, dtype="float64")
        return comm.now

    probe = Cluster(machine, ranks=ranks, mode=mode)
    step_seconds = probe.run(healthy).elapsed / 4.0
    fail_node = probe.mapping.node_of(ranks - 1)

    model = CheckpointModel(
        mtbf_seconds=mtbf_steps * step_seconds,
        checkpoint_seconds=write_steps * step_seconds,
        restart_seconds=restart_steps * step_seconds,
    )
    work = steps * step_seconds
    analytic = model.expected_runtime(work)
    schedule = CheckpointSchedule.from_model(model)
    n_failures = int(analytic / model.mtbf_seconds) + 2
    plan = FaultPlan(
        tuple(
            NodeFail(time=(k + 1) * model.mtbf_seconds, node=fail_node)
            for k in range(n_failures)
        )
    )

    def cluster_factory(env):
        return Cluster(machine, ranks=ranks, mode=mode, env=env)

    outcome = run_recovered(
        _Policy(mode="restart", schedule=schedule),
        cluster_factory,
        make_program,
        plan=plan,
    )
    return CheckpointComparison(
        machine=machine.name,
        work_seconds=work,
        analytic_seconds=analytic,
        simulated_seconds=outcome.times.walltime,
        attempts=outcome.attempts,
        checkpoints=outcome.checkpoints_written,
    )


def _checkpoint_sim(steps: float = 300) -> Tuple[Tracer, str]:
    """Simulated-vs-analytic checkpoint economics, two Table 1 machines."""
    from ..machines import BGP, XT4_QC

    lines: List[str] = []
    for machine in (BGP, XT4_QC):
        cmp_ = simulate_checkpointing(machine, steps=int(steps))
        lines.append(cmp_.format())
    return Tracer(), "\n".join(lines)


RECOVER_SCENARIOS: Dict[str, Callable[..., Tuple[Tracer, str]]] = {
    "pop-shrink": _pop_shrink,
    "pop-restart": _pop_restart,
    "s3d-shrink": _s3d_shrink,
    "livelock": _livelock,
    "checkpoint-sim": _checkpoint_sim,
}


def recover_scenario_ids() -> List[str]:
    return list(RECOVER_SCENARIOS)


def run_recover_scenario(scenario_id: str, **params: Any) -> Tuple[Tracer, str]:
    """Run one recovery scenario; returns (tracer, result line).

    ``params`` must match keyword arguments of the scenario function;
    anything else raises :class:`KeyError` naming what is supported.
    """
    try:
        fn = RECOVER_SCENARIOS[scenario_id]
    except KeyError:
        raise KeyError(
            f"unknown recovery scenario {scenario_id!r}; "
            f"known: {recover_scenario_ids()}"
        ) from None
    if params:
        accepted = set(inspect.signature(fn).parameters)
        unknown = sorted(set(params) - accepted)
        if unknown:
            raise KeyError(
                f"scenario {scenario_id!r} does not take parameter(s) "
                f"{unknown}; supported: {sorted(accepted)}"
            )
    return fn(**params)
