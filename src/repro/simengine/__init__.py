"""Discrete-event simulation engine underpinning the whole reproduction.

Public surface::

    from repro.simengine import Engine, US, MS

    env = Engine()

    def worker(env):
        yield env.timeout(3 * US)
        return "done"

    env.process(worker(env))
    env.run()
"""

from .engine import Engine, EmptySchedule, US, MS, NS
from .events import Event, Timeout, AllOf, AnyOf, Interrupt
from .process import Process
from .resources import Resource, Channel, SerialLink
from .rng import make_rng, spawn, DEFAULT_SEED

__all__ = [
    "Engine",
    "EmptySchedule",
    "US",
    "MS",
    "NS",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "Channel",
    "SerialLink",
    "make_rng",
    "spawn",
    "DEFAULT_SEED",
]
