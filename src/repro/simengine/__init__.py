"""Discrete-event simulation engine underpinning the whole reproduction.

Public surface::

    from repro.simengine import Engine, US, MS

    env = Engine()

    def worker(env):
        yield env.timeout(3 * US)
        return "done"

    env.process(worker(env))
    env.run()
"""

from .budget import Budget, BudgetExceeded, BudgetSummary
from .engine import EmptySchedule, Engine, MS, NS, US
from .events import AllOf, AnyOf, Event, Interrupt, Timeout
from .process import Process
from .resources import Channel, Resource, SerialLink
from .rng import DEFAULT_SEED, derive_seed, make_rng, spawn

__all__ = [
    "Budget",
    "BudgetExceeded",
    "BudgetSummary",
    "Engine",
    "EmptySchedule",
    "US",
    "MS",
    "NS",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "Channel",
    "SerialLink",
    "make_rng",
    "spawn",
    "derive_seed",
    "DEFAULT_SEED",
]
