"""Event primitives for the discrete-event simulation engine.

The engine (:mod:`repro.simengine.engine`) schedules :class:`Event`
objects on a time-ordered queue.  Simulation processes (generator
coroutines, see :mod:`repro.simengine.process`) *yield* events to
suspend themselves until the event is triggered.

The design mirrors the small core of SimPy, reimplemented here because
the execution environment is offline and because the simulator needs a
few HPC-specific extensions (e.g. :class:`AllOf` barriers that carry
per-event values in submission order, deterministic tie-breaking).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "PENDING",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *untriggered*.  Calling :meth:`succeed` (or
    :meth:`fail`) schedules it for processing at the current simulation
    time; when the engine processes it, all registered callbacks run.
    Processes register themselves as callbacks by yielding the event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Engine") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._scheduled = False
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid after triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` / :meth:`fail`."""
        if self._value is PENDING:
            raise RuntimeError("event value is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class _Condition(Event):
    """Base for events that fire when a set of child events resolves."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Engine", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._count = 0
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("all events must belong to the same engine")
        # Register on children after validating everything.
        for ev in self.events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self.events and self._value is PENDING:
            self.succeed(self._collect())

    def _collect(self) -> List[Any]:
        return [ev._value for ev in self.events if ev.triggered]

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* child events have triggered.

    The value is the list of child values in submission order, which is
    what collective-communication code wants (one slot per peer).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when *any* child event has triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self.succeed(event._value)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None
