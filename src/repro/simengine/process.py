"""Simulation processes: generator coroutines driven by the engine.

A process wraps a Python generator.  Each ``yield`` must produce an
:class:`~repro.simengine.events.Event`; the process suspends until the
event triggers and receives the event's value as the result of the
``yield`` expression.  A ``return`` statement ends the process and sets
the process's own event value (a :class:`Process` *is* an event, so
processes can wait for each other or be combined with ``AllOf``).
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from .events import Event, Interrupt, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

__all__ = ["Process"]


class Process(Event):
    """A running simulation process (also usable as an event)."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Engine", generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"process() requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Bootstrap: resume on the next engine step.
        init = Event(env)
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        env.schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        hit = Event(self.env)
        hit._ok = False
        hit._value = Interrupt(cause)
        hit._defused = True
        hit.callbacks.append(self._resume)
        self.env.schedule(hit)

    # -- engine callback ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._value is not PENDING:
            # Already finished — e.g. killed by the recovery runtime
            # while its bootstrap event was still queued.  Resuming a
            # closed generator would double-trigger this event.
            return
        self.env._active_process = self  # type: ignore[attr-defined]
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event._defused = True
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                self._target = None
                self.succeed(stop.value)
                break
            except BaseException as exc:
                self._target = None
                self.fail(exc)
                break

            if not isinstance(target, Event):
                exc = TypeError(
                    f"process yielded a non-event: {target!r} "
                    "(did you forget to call env.timeout(...)?)"
                )
                self._target = None
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as err:
                    self.fail(err)
                break

            if target.callbacks is not None:
                # Event still pending: register and suspend.
                target.callbacks.append(self._resume)
                self._target = target
                break
            # Event already processed: loop and feed its value immediately.
            event = target
        self.env._active_process = None  # type: ignore[attr-defined]
