"""Deterministic random-number utilities for the simulator.

Every stochastic element of the simulation (XT allocation fragmentation,
load-imbalance jitter, background-traffic contention) draws from a
:class:`numpy.random.Generator` seeded through this module so that runs
are exactly reproducible and independent subsystems do not perturb each
other's streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "spawn", "derive_seed", "DEFAULT_SEED"]

#: Root seed for all simulator randomness unless a caller overrides it.
DEFAULT_SEED = 20080815  # SC'08 era, arbitrary but fixed


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a generator from ``seed`` (default :data:`DEFAULT_SEED`)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn(rng: np.random.Generator, key: str) -> np.random.Generator:
    """Derive an independent child stream from ``rng`` keyed by ``key``.

    The key is hashed into the child seed so that adding a new consumer
    does not shift the streams of existing consumers.
    """
    # Stable 64-bit hash of the key (Python's hash() is salted per run).
    h = 1469598103934665603
    for ch in key.encode():
        h = ((h ^ ch) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    mix = int(rng.integers(0, 2**32))
    return np.random.default_rng((h ^ mix) & 0xFFFFFFFFFFFFFFFF)


def derive_seed(*keys: object) -> int:
    """Derive a 64-bit child seed from a sequence of keys.

    Same scheme as the campaign worker's per-job reseeding
    (:func:`repro.campaign.worker.job_seed`): sha256 over a stable
    textual encoding, first 8 bytes big-endian.  Use this whenever a
    subsystem needs an independent, reproducible stream per logical
    unit (a pdes shard, a campaign job, a noise source) — child seeds
    are stable across hosts and Python invocations, and adding a new
    consumer never shifts an existing consumer's stream.
    """
    if not keys:
        raise ValueError("derive_seed needs at least one key")
    text = "\x1f".join(repr(k) for k in keys)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")
