"""The discrete-event simulation engine.

:class:`Engine` owns the simulation clock and the pending-event queue.
Time is a ``float`` in **seconds** throughout the simulator; helper
constants for microseconds etc. live in :data:`US` and friends.

Determinism: events scheduled for the same timestamp are processed in
scheduling order (a monotonically increasing sequence number breaks
ties), so repeated runs of the same workload produce identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from .budget import Budget, _BudgetWatch
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Engine", "EmptySchedule", "US", "MS", "NS"]

#: One microsecond, in simulation seconds.
US = 1e-6
#: One millisecond, in simulation seconds.
MS = 1e-3
#: One nanosecond, in simulation seconds.
NS = 1e-9


class EmptySchedule(Exception):
    """Raised when the event queue runs dry while more work was expected.

    Carries a diagnostic message with the simulation time at starvation
    and the number of events processed so far, so "the schedule drained
    early" is debuggable without re-running under a tracer.
    """


class Engine:
    """Discrete-event simulation core.

    Typical use::

        env = Engine()

        def worker(env):
            yield env.timeout(2.5)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 2.5
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        #: Count of events processed; useful for cost accounting in tests.
        self.events_processed = 0
        #: Diagnostic hook consulted when :meth:`run` starves while an
        #: awaited event is still pending (a deadlock).  May return an
        #: exception to raise in place of the generic ``RuntimeError``
        #: (the simulation sanitizer plugs in here), or ``None`` to keep
        #: the default behaviour.
        self.on_empty_schedule: Optional[Callable[[], Optional[BaseException]]] = None
        #: Observability hook (a :class:`repro.obs.Tracer` or anything
        #: with ``engine_step``/``process_spawned``).  ``None`` (the
        #: default) keeps the event loop allocation-free.  Observers
        #: that want to stack (e.g. :class:`repro.perf.HostProfiler`
        #: over a tracer) must save the current value and forward both
        #: callbacks to it — the engine itself only ever calls one.
        self.obs: Optional[Any] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- event construction ----------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events) -> AllOf:
        """Event triggering when every event in ``events`` has triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event triggering when any event in ``events`` has triggered."""
        return AnyOf(self, events)

    def process(self, generator: Generator) -> Process:
        """Start a new simulation process from a generator coroutine."""
        proc = Process(self, generator)
        if self.obs is not None:
            self.obs.process_spawned(self, proc)
        return proc

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue ``event`` for processing ``delay`` seconds from now."""
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    @property
    def pending(self) -> int:
        """Number of events currently scheduled (the heap depth)."""
        return len(self._queue)

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        try:
            when, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule(
                f"no events to process at t={self._now:.6g}s "
                f"({self.events_processed} event(s) processed so far)"
            ) from None
        self._now = when
        self.events_processed += 1
        if self.obs is not None:
            self.obs.engine_step(when, len(self._queue))
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks or ():
            cb(event)
        if not event._ok and not event._defused:
            # An unhandled failure: propagate to the driver of run().
            exc = event._value
            raise exc

    # -- driving -----------------------------------------------------------
    def run(
        self, until: Optional[Any] = None, budget: Optional[Budget] = None
    ) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run up to
        that simulation time), or an :class:`Event` (run until it
        triggers, returning its value).

        ``budget`` bounds the run (events, sim time, wall clock, and a
        no-sim-time-advance livelock watchdog); exceeding any bound
        raises :class:`~repro.simengine.budget.BudgetExceeded` with a
        partial-result summary instead of hanging.
        """
        watch: Optional[_BudgetWatch] = None
        if budget is not None:
            watch = _BudgetWatch(
                budget, start_events=self.events_processed, last_now=self._now
            )
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} lies in the past (now={self._now})"
                )

        while True:
            if stop_event is not None and stop_event.processed:
                if not stop_event.ok:
                    raise stop_event.value
                return stop_event.value
            nxt = self.peek()
            if nxt == float("inf"):
                if stop_event is not None:
                    if self.on_empty_schedule is not None:
                        exc = self.on_empty_schedule()
                        if exc is not None:
                            raise exc
                    raise RuntimeError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)"
                    )
                if stop_time != float("inf"):
                    raise EmptySchedule(
                        f"schedule drained at t={self._now:.6g}s before "
                        f"reaching until={stop_time:.6g}s "
                        f"({self.events_processed} event(s) processed, "
                        f"0 pending)"
                    )
                return None
            if nxt > stop_time:
                self._now = stop_time
                return None
            if watch is not None:
                watch.check(self, nxt)
            self.step()

    def run_all(self) -> float:
        """Run to exhaustion and return the final simulation time."""
        self.run()
        return self._now
