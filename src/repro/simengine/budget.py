"""Runtime guardrails for long simulations: budgets and watchdogs.

A :class:`Budget` bounds one :meth:`Engine.run <repro.simengine.engine.
Engine.run>` call along four axes — events processed, simulation time,
wall-clock time, and forward progress (a livelock detector that trips
when many consecutive events process without the simulation clock
advancing).  Exceeding any bound raises :class:`BudgetExceeded`, which
carries a :class:`BudgetSummary` of how far the run got, so a buggy or
adversarial scenario degrades into a diagnosable partial result instead
of hanging CI.

The simulation-side bounds (events, sim time, stalled events) are fully
deterministic: two runs of the same workload trip at the same event.
The wall-clock bound necessarily reads the host clock and is therefore
the one intentionally nondeterministic guardrail — use it as a backstop,
not as the primary limit, when byte-identical traces matter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["Budget", "BudgetExceeded", "BudgetSummary"]


@dataclass(frozen=True)
class Budget:
    """Bounds for one ``Engine.run`` call (``None`` = unbounded).

    ``max_stalled_events`` is the livelock watchdog: the number of
    consecutive events the engine may process *without the simulation
    clock advancing* before the run is declared livelocked.  Legitimate
    same-timestamp cascades (collective fan-outs, zero-delay callbacks)
    are O(ranks), so the default of 100 000 never fires on a healthy
    run; a ``while True: yield env.timeout(0)`` loop trips it quickly.
    Note the watchdog only catches zero-advance loops — a "Zeno" loop
    that creeps forward by tiny increments must be caught by
    ``max_events``, ``max_sim_time``, or ``max_wall_seconds`` instead.
    """

    max_events: Optional[int] = None
    max_sim_time: Optional[float] = None
    max_wall_seconds: Optional[float] = None
    max_stalled_events: Optional[int] = 100_000
    #: host-clock check cadence, in events (keeps the hot loop cheap)
    wall_check_stride: int = 1024

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events < 1:
            raise ValueError("max_events must be >= 1")
        if self.max_sim_time is not None and self.max_sim_time < 0:
            raise ValueError("max_sim_time must be non-negative")
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ValueError("max_wall_seconds must be positive")
        if self.max_stalled_events is not None and self.max_stalled_events < 1:
            raise ValueError("max_stalled_events must be >= 1")
        if self.wall_check_stride < 1:
            raise ValueError("wall_check_stride must be >= 1")


@dataclass(frozen=True)
class BudgetSummary:
    """How far a budgeted run got before (or when) it was cut off."""

    #: which bound tripped: ``max-events`` | ``max-sim-time`` |
    #: ``max-wall-seconds`` | ``livelock``
    reason: str
    #: simulation time at cutoff, seconds
    sim_time: float
    #: events processed by this ``run`` call
    events: int
    #: host seconds elapsed in this ``run`` call
    wall_seconds: float
    #: consecutive events without sim-time advance at cutoff
    stalled_events: int = 0
    #: caller-supplied partial-result context (e.g. cluster statistics)
    detail: str = ""

    def format(self) -> str:
        text = (
            f"simulation budget exceeded ({self.reason}): stopped at "
            f"t={self.sim_time:.6g}s after {self.events} event(s), "
            f"{self.wall_seconds:.2f}s wall"
        )
        if self.reason == "livelock":
            text += (
                f"; {self.stalled_events} consecutive event(s) without "
                "sim-time advance (livelock watchdog)"
            )
        if self.detail:
            text += f" | {self.detail}"
        return text


class BudgetExceeded(RuntimeError):
    """A budgeted run hit one of its bounds.

    Carries the structured :class:`BudgetSummary` as ``summary`` and is
    picklable, so multiprocess sweep workers can propagate it verbatim.
    """

    def __init__(self, summary: BudgetSummary) -> None:
        super().__init__(summary.format())
        self.summary = summary

    def __reduce__(self):
        return (type(self), (self.summary,))

    def with_detail(self, detail: str) -> "BudgetExceeded":
        """A copy with partial-result context appended to the summary."""
        return BudgetExceeded(replace(self.summary, detail=detail))


@dataclass
class _BudgetWatch:
    """Mutable per-run state enforcing one :class:`Budget`.

    Created by ``Engine.run`` when a budget is given; ``check`` runs
    before each event is processed.
    """

    budget: Budget
    start_events: int
    last_now: float
    wall_start: float = field(
        default_factory=time.monotonic  # simlint: ignore[determinism-hazard]
    )
    stalled: int = 0
    events: int = 0

    def check(self, engine, next_time: float) -> None:
        b = self.budget
        self.events = engine.events_processed - self.start_events
        if b.max_events is not None and self.events >= b.max_events:
            raise BudgetExceeded(self._summary("max-events", engine))
        if b.max_sim_time is not None and next_time > b.max_sim_time:
            raise BudgetExceeded(self._summary("max-sim-time", engine))
        if b.max_stalled_events is not None:
            if next_time > self.last_now:
                self.last_now = next_time
                self.stalled = 0
            else:
                self.stalled += 1
                if self.stalled >= b.max_stalled_events:
                    raise BudgetExceeded(self._summary("livelock", engine))
        if (
            b.max_wall_seconds is not None
            and self.events % b.wall_check_stride == 0
            and self._wall() > b.max_wall_seconds
        ):
            raise BudgetExceeded(self._summary("max-wall-seconds", engine))

    def _wall(self) -> float:
        return time.monotonic() - self.wall_start  # simlint: ignore[determinism-hazard]

    def _summary(self, reason: str, engine) -> BudgetSummary:
        return BudgetSummary(
            reason=reason,
            sim_time=engine.now,
            events=self.events,
            wall_seconds=self._wall(),
            stalled_events=self.stalled,
        )
