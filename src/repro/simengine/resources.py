"""Shared, contended resources for the simulation.

Three primitives cover everything the network and node models need:

* :class:`Resource` — a counted semaphore with a FIFO wait queue.
  Models NIC injection ports, DMA engines, per-core issue slots.
* :class:`Channel` — an unbounded FIFO message queue with blocking
  ``get``.  Models matching queues in the simulated MPI layer.
* :class:`SerialLink` — a bandwidth-serialized pipe: each transfer
  occupies the link for ``bytes / bandwidth`` seconds, transfers are
  FIFO.  Models a directed network link (torus hop, tree uplink).
  Link occupancy statistics are recorded for utilisation reports.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple, TYPE_CHECKING

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

__all__ = ["Resource", "Channel", "SerialLink"]


class Resource:
    """Counted semaphore with FIFO queuing.

    ``request()`` returns an event that triggers when a unit is granted;
    ``release()`` frees a unit.  Use :meth:`acquire` from process code::

        yield res.request()
        try:
            ...
        finally:
            res.release()
    """

    def __init__(self, env: "Engine", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        """Return an event granting one unit of the resource."""
        ev = Event(self.env)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit; the longest-waiting requester is granted."""
        if self.in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting."""
        return len(self._waiters)


class Channel:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event whose value is the
    next item (items are delivered in put order).
    """

    def __init__(self, env: "Engine") -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that resolves to the next item in FIFO order."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)


class SerialLink:
    """A directed link with finite bandwidth and per-hop latency.

    Transfers are serialized: a transfer that arrives while the link is
    busy waits until all earlier transfers have drained.  This is the
    classic store-level contention model — accurate enough to reproduce
    mapping/contention effects (paper Fig. 2c,d) without flit-level cost.

    ``transfer(nbytes)`` returns an event that triggers when the *tail*
    of the message has left the link.
    """

    __slots__ = (
        "env",
        "bandwidth",
        "latency",
        "name",
        "_free_at",
        "busy_time",
        "transfers",
        "bytes_carried",
        "observer",
    )

    def __init__(
        self,
        env: "Engine",
        bandwidth: float,
        latency: float = 0.0,
        name: str = "",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.env = env
        #: bytes per second
        self.bandwidth = float(bandwidth)
        #: seconds added per transfer (router/wire latency)
        self.latency = float(latency)
        self.name = name
        self._free_at = 0.0
        #: cumulative seconds the link spent transferring
        self.busy_time = 0.0
        #: number of transfers carried
        self.transfers = 0
        #: total payload bytes carried
        self.bytes_carried = 0
        #: optional per-transfer telemetry hook
        #: ``observer(nbytes, start, wait, duration)`` — ``wait`` is the
        #: contention stall before the head could enter the link.  The
        #: observability layer plugs in here; ``None`` costs nothing.
        self.observer: Optional[Any] = None

    def transfer(self, nbytes: float) -> Event:
        """Schedule ``nbytes`` through the link; event fires at completion."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        now = self.env.now
        start = max(now, self._free_at)
        duration = nbytes / self.bandwidth
        finish = start + self.latency + duration
        self._free_at = start + duration  # latency is pipelined, bw is not
        self.busy_time += duration
        self.transfers += 1
        self.bytes_carried += int(nbytes)
        if self.observer is not None:
            self.observer(float(nbytes), start, start - now, duration)
        ev = Event(self.env)
        # Trigger via a timeout-like direct schedule.
        ev._ok = True
        ev._value = None
        self.env.schedule(ev, delay=finish - now)
        return ev

    def book(self, nbytes: float, earliest: float) -> Tuple[float, float]:
        """Reserve the link for a cut-through transit without an event.

        ``earliest`` is when the message head can arrive at this link.
        Returns ``(head_start, tail_done)``: when the head actually
        starts crossing (after queued traffic drains) and when the tail
        has left.  Used by the MPI transport to book a whole route and
        schedule a single delivery event.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        start = max(earliest, self._free_at)
        duration = nbytes / self.bandwidth
        self._free_at = start + duration
        self.busy_time += duration
        self.transfers += 1
        self.bytes_carried += int(nbytes)
        if self.observer is not None:
            self.observer(float(nbytes), start, start - earliest, duration)
        return start + self.latency, start + self.latency + duration

    def earliest_finish(self, nbytes: float) -> float:
        """Predict (without booking) when a transfer would complete."""
        start = max(self.env.now, self._free_at)
        return start + self.latency + nbytes / self.bandwidth

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of ``elapsed`` (default: sim time so far) spent busy."""
        t = self.env.now if elapsed is None else elapsed
        return 0.0 if t <= 0 else min(1.0, self.busy_time / t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SerialLink {self.name or id(self):} bw={self.bandwidth:.3g}B/s "
            f"lat={self.latency:.3g}s transfers={self.transfers}>"
        )
