"""The BG global interrupt (barrier) network.

Section I.A lists a dedicated "global barrier network" among the five
BG/P networks.  It performs a full-machine barrier in a handful of
microseconds independent of partition size — far faster than the
software (message-based) barriers the XTs must use.

The model: a barrier completes after a fixed AND-tree propagation time
(up + down the dedicated wire tree).  On machines without the network,
callers fall back to a log2(p) software barrier over MPI.
"""

from __future__ import annotations

import math
from typing import Optional

from ..simengine import Engine, Event

__all__ = ["BarrierNetwork", "software_barrier_time"]

#: One-way propagation of the BG/P global-interrupt tree, seconds.
#: IBM documents ~1.3 us for a full 72-rack barrier; scaled by depth.
_PER_LEVEL = 0.065e-6


class BarrierNetwork:
    """Hardware barrier over ``num_nodes`` nodes."""

    def __init__(self, num_nodes: int, env: Optional[Engine] = None) -> None:
        if num_nodes < 1:
            raise ValueError("barrier needs at least one node")
        self.num_nodes = num_nodes
        self.env = env
        self.operations = 0

    @property
    def depth(self) -> int:
        return max(1, math.ceil(math.log2(self.num_nodes))) if self.num_nodes > 1 else 1

    def barrier_time(self) -> float:
        """Seconds for one global barrier (up + down the AND tree)."""
        return 2 * self.depth * _PER_LEVEL

    def wait(self) -> Event:
        """DES event firing when the barrier completes."""
        if self.env is None:
            raise RuntimeError("barrier was built without an engine")
        self.operations += 1
        ev = Event(self.env)
        ev._ok = True
        ev._value = None
        self.env.schedule(ev, delay=self.barrier_time())
        return ev


def software_barrier_time(num_ranks: int, mpi_latency: float) -> float:
    """Dissemination-barrier cost on machines without barrier hardware.

    ceil(log2(p)) rounds, each costing one MPI latency.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    if num_ranks == 1:
        return 0.0
    rounds = math.ceil(math.log2(num_ranks))
    return rounds * mpi_latency
