"""The BG global collective (tree) network.

Section I.A: "The global collective network has its own distinct
hardware, which is separate from the torus network.  Its topology is a
tree; this is a one-to-all, high-bandwidth network for global
collective operations, such as broadcast and reductions ...  Each
Compute and I/O node has three links to the global collective network
at 850 MB/s per direction."

The tree is modeled as a balanced binary tree over the nodes of a
partition with an ALU at every interior node.  A broadcast streams down
the tree (pipelined: latency = depth x hop + payload / link_bw); a
reduction streams up with the combine done in the tree hardware — but
*only* for dtypes the ALU supports (integers and doubles).  Single-
precision reductions fall back to a software path over the torus,
reproducing the Allreduce precision effect of paper Fig. 3(a,b).

Concurrent collectives serialize on the shared tree, represented by a
single pipelined resource.
"""

from __future__ import annotations

import math
from typing import Optional

from ..machines.specs import TreeSpec
from ..simengine import Engine, Event

__all__ = ["TreeNetwork"]


class TreeNetwork:
    """The collective tree over a partition of ``num_nodes`` nodes."""

    def __init__(
        self,
        num_nodes: int,
        spec: TreeSpec,
        env: Optional[Engine] = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("tree needs at least one node")
        self.num_nodes = num_nodes
        self.spec = spec
        self.env = env
        self._free_at = 0.0  # serialization point for concurrent collectives
        #: operations carried (stats)
        self.operations = 0

    @property
    def depth(self) -> int:
        """Levels between root and leaves of the balanced binary tree."""
        return max(1, math.ceil(math.log2(self.num_nodes))) if self.num_nodes > 1 else 1

    # -- analytic costs -----------------------------------------------------
    def broadcast_time(self, nbytes: int) -> float:
        """Seconds for a hardware broadcast of ``nbytes`` to all nodes.

        Pipelined: the head of the payload reaches the farthest leaf
        after depth hops; the tail follows at link bandwidth.
        """
        if nbytes < 0:
            raise ValueError("negative payload")
        return self.depth * self.spec.hop_latency + nbytes / self.spec.link_bandwidth

    def reduce_time(self, nbytes: int, dtype: str = "float64") -> float:
        """Seconds for a hardware reduction to the root.

        Raises ``ValueError`` for dtypes the tree ALU cannot combine —
        callers must use the software (torus) path for those.
        """
        if not self.spec.supports_reduce(dtype):
            raise ValueError(
                f"tree ALU does not support dtype {dtype!r}; "
                "use the software reduction path"
            )
        return self.depth * self.spec.hop_latency + nbytes / self.spec.link_bandwidth

    def allreduce_time(self, nbytes: int, dtype: str = "float64") -> float:
        """Reduce to root then broadcast back down (both pipelined)."""
        return self.reduce_time(nbytes, dtype) + self.broadcast_time(nbytes)

    # -- DES occupancy --------------------------------------------------------
    def occupy(self, duration: float) -> Event:
        """Reserve the (serialized) tree for ``duration`` seconds.

        Returns an event that fires when this operation completes.
        """
        if self.env is None:
            raise RuntimeError("tree was built without an engine (analytic mode)")
        now = self.env.now
        start = max(now, self._free_at)
        finish = start + duration
        self._free_at = finish
        self.operations += 1
        ev = Event(self.env)
        ev._ok = True
        ev._value = None
        self.env.schedule(ev, delay=finish - now)
        return ev
