"""Process-to-processor mappings on the BG/P torus.

Section I.A of the paper: "By default, processes are mapped to compute
nodes in XYZT ordering, i.e., assigning one process to each node in the
X direction of the torus, then the Y, then the Z, then returning to the
first node and assigning a second process, etc.  In contrast, when
using VN mode the TXYZ ordering assigns processes 0-3 to the first
node, 4-7 to the second node (in the X direction), etc. ...  Other
predefined mappings are XZYT, YXZT, YZXT, ZXYT, and ZYXT, as well as
analogous orderings beginning with 'T'."

A mapping is a permutation of the letters ``X``, ``Y``, ``Z``, ``T``:
the first letter varies fastest as the rank increases.  ``T`` indexes
the task slot within a node (0..tasks_per_node-1).

The HALO experiments (paper Fig. 2c,d) sweep these mappings; the
machinery here converts ranks to torus coordinates for any of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, Iterator, Sequence, Tuple

__all__ = [
    "Mapping",
    "PREDEFINED_MAPPINGS",
    "PAPER_FIG2_MAPPINGS",
    "coords_of_rank",
    "rank_of_coords",
]

#: All 24 permutations of XYZT are valid mapping names.
_VALID = {"".join(p) for p in permutations("XYZT")}

#: The predefined mappings the paper lists in Section I.A.
PREDEFINED_MAPPINGS: Tuple[str, ...] = (
    "XYZT",
    "XZYT",
    "YXZT",
    "YZXT",
    "ZXYT",
    "ZYXT",
    "TXYZ",
    "TXZY",
    "TYXZ",
    "TYZX",
    "TZXY",
    "TZYX",
)

#: The eight mappings compared in the paper's Figure 2(c,d).
PAPER_FIG2_MAPPINGS: Tuple[str, ...] = (
    "TXYZ",
    "TYXZ",
    "TZXY",
    "TZYX",
    "XYZT",
    "YXZT",
    "ZXYT",
    "ZYXT",
)


@dataclass(frozen=True)
class Mapping:
    """A rank -> (x, y, z, t) assignment for a given partition shape.

    ``shape`` is the torus (X, Y, Z) in nodes; ``tasks_per_node`` is the
    T extent (1 for SMP, 2 for DUAL, 4 for VN on BG/P).
    """

    order: str
    shape: Tuple[int, int, int]
    tasks_per_node: int = 1

    def __post_init__(self) -> None:
        if self.order.upper() not in _VALID:
            raise ValueError(
                f"invalid mapping {self.order!r}: must be a permutation of XYZT"
            )
        object.__setattr__(self, "order", self.order.upper())
        if any(d < 1 for d in self.shape):
            raise ValueError(f"invalid torus shape {self.shape}")
        if self.tasks_per_node < 1:
            raise ValueError("tasks_per_node must be >= 1")

    @property
    def extents(self) -> Dict[str, int]:
        x, y, z = self.shape
        return {"X": x, "Y": y, "Z": z, "T": self.tasks_per_node}

    @property
    def size(self) -> int:
        """Total ranks the mapping can place."""
        x, y, z = self.shape
        return x * y * z * self.tasks_per_node

    def coords(self, rank: int) -> Tuple[int, int, int, int]:
        """Torus coordinates ``(x, y, z, t)`` of ``rank``.

        The first letter of :attr:`order` varies fastest.
        """
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")
        ext = self.extents
        vals: Dict[str, int] = {}
        rem = rank
        for letter in self.order:
            vals[letter] = rem % ext[letter]
            rem //= ext[letter]
        return (vals["X"], vals["Y"], vals["Z"], vals["T"])

    def rank(self, x: int, y: int, z: int, t: int = 0) -> int:
        """Inverse of :meth:`coords`."""
        ext = self.extents
        vals = {"X": x, "Y": y, "Z": z, "T": t}
        for letter, v in vals.items():
            if not 0 <= v < ext[letter]:
                raise ValueError(f"{letter}={v} outside [0, {ext[letter]})")
        r = 0
        for letter in reversed(self.order):
            r = r * ext[letter] + vals[letter]
        return r

    def node_of(self, rank: int) -> Tuple[int, int, int]:
        """The (x, y, z) node holding ``rank``."""
        x, y, z, _ = self.coords(rank)
        return (x, y, z)

    def all_coords(self) -> Iterator[Tuple[int, Tuple[int, int, int, int]]]:
        """Yield ``(rank, (x, y, z, t))`` for every rank."""
        for r in range(self.size):
            yield r, self.coords(r)

    def node_index(self, rank: int) -> int:
        """Flat node id (x-major) of the node hosting ``rank``."""
        x, y, z = self.node_of(rank)
        X, Y, Z = self.shape
        return (z * Y + y) * X + x


def coords_of_rank(
    rank: int,
    order: str,
    shape: Sequence[int],
    tasks_per_node: int = 1,
) -> Tuple[int, int, int, int]:
    """Convenience wrapper over :class:`Mapping`."""
    return Mapping(order, tuple(shape), tasks_per_node).coords(rank)


def rank_of_coords(
    coords: Sequence[int],
    order: str,
    shape: Sequence[int],
    tasks_per_node: int = 1,
) -> int:
    """Convenience wrapper over :class:`Mapping.rank`."""
    x, y, z, t = coords
    return Mapping(order, tuple(shape), tasks_per_node).rank(x, y, z, t)
