"""The 3-D torus interconnect.

Both machine families route point-to-point traffic over a 3-D torus
(BG/P: embedded routers, 425 MB/s links; XT: SeaStar/SeaStar2).  The
model is link-level: every directed nearest-neighbour link is a
:class:`~repro.simengine.resources.SerialLink`, messages follow
deterministic dimension-order (X then Y then Z) routes with shortest
wrap-around direction per dimension, and contention arises naturally
when two messages share a directed link.

For analytic (non-DES) estimates the class also provides hop counts,
average/max distances, and bisection bandwidth — the quantities behind
the PTRANS and HALO discussions in the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..machines.specs import TorusSpec
from ..simengine import Engine, SerialLink

__all__ = ["Torus3D", "Coord", "LinkKey", "NoRouteError"]

Coord = Tuple[int, int, int]
#: A directed link: (from_node, to_node) coordinates.
LinkKey = Tuple[Coord, Coord]


class NoRouteError(RuntimeError):
    """No fault-free path exists between two nodes (partitioned torus)."""

    def __init__(self, src: Coord, dst: Coord, shape: Coord) -> None:
        super().__init__(
            f"no fault-free route {src} -> {dst} on torus {shape} "
            "(failed links/nodes partition the network)"
        )
        self.src = src
        self.dst = dst


@dataclass(frozen=True)
class _Shape:
    x: int
    y: int
    z: int

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y
        yield self.z


class Torus3D:
    """A 3-D torus of nodes with directed, contended links.

    Parameters
    ----------
    shape:
        (X, Y, Z) node extents.  Extent 1 in a dimension means that
        dimension does not exist (no self-links are created).
    spec:
        Link bandwidth/latency parameters from the machine model.
    env:
        A simulation engine.  If omitted, the torus works in *analytic*
        mode only (routing and distance queries; no link objects).
    """

    def __init__(
        self,
        shape: Sequence[int],
        spec: TorusSpec,
        env: Optional[Engine] = None,
    ) -> None:
        if len(shape) != 3 or any(d < 1 for d in shape):
            raise ValueError(f"torus shape must be 3 positive extents, got {shape}")
        self.shape: Coord = (int(shape[0]), int(shape[1]), int(shape[2]))
        self.spec = spec
        self.env = env
        self.links: Dict[LinkKey, SerialLink] = {}
        #: directed links taken out of service (fault injection)
        self.failed_links: Set[LinkKey] = set()
        #: nodes taken out of service (all their links are failed too)
        self.failed_nodes: Set[Coord] = set()
        #: per-link bandwidth derating factor in (0, 1]; absent = 1.0
        self.derated: Dict[LinkKey, float] = {}
        #: count of messages that needed a fault detour (reroute stat)
        self.detours = 0
        if env is not None:
            self._build_links(env)

    # -- construction -----------------------------------------------------
    def _build_links(self, env: Engine) -> None:
        for node in self.nodes():
            for nbr in self.neighbors(node):
                key = (node, nbr)
                if key not in self.links:
                    self.links[key] = SerialLink(
                        env,
                        bandwidth=self.spec.link_bandwidth,
                        latency=self.spec.hop_latency,
                        name=f"{node}->{nbr}",
                    )

    # -- basic queries ------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        x, y, z = self.shape
        return x * y * z

    def nodes(self) -> Iterator[Coord]:
        X, Y, Z = self.shape
        for z in range(Z):
            for y in range(Y):
                for x in range(X):
                    yield (x, y, z)

    def contains(self, node: Coord) -> bool:
        return all(0 <= c < d for c, d in zip(node, self.shape))

    def neighbors(self, node: Coord) -> List[Coord]:
        """Nearest neighbours over torus wrap-around (up to 6)."""
        if not self.contains(node):
            raise ValueError(f"{node} outside torus {self.shape}")
        out: List[Coord] = []
        for dim in range(3):
            ext = self.shape[dim]
            if ext == 1:
                continue
            for step in (+1, -1):
                nbr = list(node)
                nbr[dim] = (nbr[dim] + step) % ext
                cand = tuple(nbr)
                if cand != node and cand not in out:
                    out.append(cand)  # type: ignore[arg-type]
        return out

    # -- fault state ---------------------------------------------------------
    def link_key(self, a: Coord, b: Coord) -> LinkKey:
        """Validated directed-link key between two neighbouring nodes."""
        if b not in self.neighbors(a):
            raise ValueError(f"{a} -> {b} is not a torus link on {self.shape}")
        return (a, b)

    def fail_link(self, key: LinkKey, both_directions: bool = True) -> None:
        """Take a directed link (default: both directions) out of service."""
        a, b = self.link_key(*key)
        self.failed_links.add((a, b))
        if both_directions:
            self.failed_links.add((b, a))

    def fail_node(self, node: Coord) -> None:
        """Take a node out of service: every incident link fails with it."""
        if not self.contains(node):
            raise ValueError(f"{node} outside torus {self.shape}")
        self.failed_nodes.add(node)
        for nbr in self.neighbors(node):
            self.failed_links.add((node, nbr))
            self.failed_links.add((nbr, node))

    def degrade_link(self, key: LinkKey, factor: float, both_directions: bool = True) -> None:
        """Derate a link's bandwidth to ``factor`` (in (0, 1]) of spec."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"derating factor must be in (0, 1], got {factor}")
        a, b = self.link_key(*key)
        for k in ((a, b), (b, a)) if both_directions else ((a, b),):
            self.derated[k] = factor
            link = self.links.get(k)
            if link is not None:
                link.bandwidth = self.spec.link_bandwidth * factor

    def restore_link(self, key: LinkKey, both_directions: bool = True) -> None:
        """Return a failed or degraded link to full service."""
        a, b = self.link_key(*key)
        for k in ((a, b), (b, a)) if both_directions else ((a, b),):
            self.failed_links.discard(k)
            self.derated.pop(k, None)
            link = self.links.get(k)
            if link is not None:
                link.bandwidth = self.spec.link_bandwidth

    def link_ok(self, key: LinkKey) -> bool:
        """Whether a directed link is in service."""
        return key not in self.failed_links

    @property
    def has_faults(self) -> bool:
        return bool(self.failed_links)

    def effective_bandwidth(self, key: LinkKey) -> float:
        """Current bytes/s of a directed link (0.0 when failed)."""
        if key in self.failed_links:
            return 0.0
        return self.spec.link_bandwidth * self.derated.get(key, 1.0)

    # -- distances ----------------------------------------------------------
    def hop_distance(self, a: Coord, b: Coord) -> int:
        """Minimal hops between two nodes (per-dimension shortest wrap)."""
        total = 0
        for dim in range(3):
            ext = self.shape[dim]
            d = abs(a[dim] - b[dim])
            total += min(d, ext - d)
        return total

    def average_distance(self) -> float:
        """Mean hop distance between distinct node pairs (closed form).

        For a ring of even extent k the mean one-dimension distance over
        all ordered pairs (including self) is k/4; for odd k it is
        (k*k - 1) / (4*k).  Dimensions are independent, so the torus
        mean is the sum over dimensions.
        """
        mean = 0.0
        for ext in self.shape:
            if ext == 1:
                continue
            if ext % 2 == 0:
                mean += ext / 4.0
            else:
                mean += (ext * ext - 1) / (4.0 * ext)
        return mean

    def max_distance(self) -> int:
        """Torus diameter in hops."""
        return sum(ext // 2 for ext in self.shape if ext > 1)

    def bisection_links(self) -> int:
        """Directed links crossing the worst-case bisection plane.

        Cutting the torus across its *largest* dimension severs
        ``2 * (other-dims product)`` bidirectional link bundles (the cut
        crosses the torus twice because of wrap-around), i.e. twice that
        many directed links per direction.
        """
        X, Y, Z = sorted(self.shape)
        # largest extent is Z after sorting; plane area = X*Y
        return 4 * X * Y  # 2 cuts x 2 directions x plane area

    def bisection_link_keys(self) -> List[LinkKey]:
        """The directed links crossing the worst-case bisection plane.

        Enumerates the links behind :meth:`bisection_links`: the torus is
        cut across its largest dimension, once through the middle and
        once through the wrap-around seam.
        """
        dim = max(range(3), key=lambda d: self.shape[d])
        ext = self.shape[dim]
        if ext == 1:
            return []
        keys: Set[LinkKey] = set()
        cuts = {(ext // 2 - 1, ext // 2), (ext - 1, 0)}
        for node in self.nodes():
            for lo, hi in cuts:
                if node[dim] != lo:
                    continue
                other = list(node)
                other[dim] = hi
                nbr: Coord = tuple(other)  # type: ignore[assignment]
                if nbr != node:
                    keys.add((node, nbr))
                    keys.add((nbr, node))
        return sorted(keys)

    def bisection_bandwidth(self) -> float:
        """Bytes/s crossing the bisection in one direction.

        With injected faults this reflects the *degraded* topology:
        failed links contribute nothing and derated links their reduced
        bandwidth.  (An extent-2 dimension folds the two cuts onto the
        same physical links, so the healthy closed form — which assumes
        distinct wrap links — is kept for the no-fault fast path.)
        """
        if not self.failed_links and not self.derated:
            return self.bisection_links() / 2 * self.spec.link_bandwidth
        return sum(self.effective_bandwidth(k) for k in self.bisection_link_keys()) / 2

    # -- routing --------------------------------------------------------------
    def route(
        self, src: Coord, dst: Coord, dim_order: Tuple[int, int, int] = (0, 1, 2)
    ) -> List[LinkKey]:
        """Dimension-order route with shortest wrap per dimension.

        ``dim_order`` selects the traversal order of the dimensions
        (default X, Y, Z — the deterministic route).
        """
        if not self.contains(src) or not self.contains(dst):
            raise ValueError(f"route endpoints outside torus {self.shape}")
        if sorted(dim_order) != [0, 1, 2]:
            raise ValueError(f"dim_order must permute (0, 1, 2), got {dim_order}")
        path = self._dimension_order_path(src, dst, dim_order)
        if self.failed_links and self._blocked(path):
            detour = self._route_around(src, dst)
            if detour is None:
                raise NoRouteError(src, dst, self.shape)
            self.detours += 1
            return detour
        return path

    def _dimension_order_path(
        self, src: Coord, dst: Coord, dim_order: Tuple[int, int, int]
    ) -> List[LinkKey]:
        path: List[LinkKey] = []
        cur = list(src)
        for dim in dim_order:
            ext = self.shape[dim]
            if ext == 1:
                continue
            delta = (dst[dim] - cur[dim]) % ext
            if delta == 0:
                continue
            # choose the shorter wrap direction; ties go +
            step = +1 if delta <= ext - delta else -1
            hops = delta if step == +1 else ext - delta
            for _ in range(hops):
                nxt = list(cur)
                nxt[dim] = (nxt[dim] + step) % ext
                path.append((tuple(cur), tuple(nxt)))  # type: ignore[arg-type]
                cur = nxt
        assert tuple(cur) == tuple(dst)
        return path

    def _blocked(self, path: List[LinkKey]) -> bool:
        """Whether a path crosses any currently-failed link."""
        failed = self.failed_links
        return any(key in failed for key in path)

    def _route_around(self, src: Coord, dst: Coord) -> Optional[List[LinkKey]]:
        """Shortest fault-free path by BFS (deterministic tie-break).

        Neighbour expansion follows :meth:`neighbors` order (X+, X-,
        Y+, Y-, Z+, Z-), so the chosen detour is identical across runs.
        Returns ``None`` when the faults disconnect ``src`` from ``dst``.
        """
        if src == dst:
            return []
        failed = self.failed_links
        prev: Dict[Coord, Coord] = {src: src}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            for nbr in self.neighbors(node):
                if nbr in prev or (node, nbr) in failed:
                    continue
                prev[nbr] = node
                if nbr == dst:
                    hops: List[LinkKey] = []
                    cur = dst
                    while cur != src:
                        hops.append((prev[cur], cur))
                        cur = prev[cur]
                    hops.reverse()
                    return hops
                frontier.append(nbr)
        return None

    def route_adaptive(self, src: Coord, dst: Coord, nbytes: float) -> List[LinkKey]:
        """Pick the less-congested of the XYZ and ZYX dimension orders.

        BG/P's torus supports adaptive routing; this coarse model
        chooses, per message, whichever of the two canonical dimension
        orders would deliver the head earliest given current link
        bookings.  Requires DES mode (link objects).

        With injected faults, dimension orders that cross a failed link
        are discarded; when both are blocked the message detours along
        the shortest fault-free path (counted in :attr:`detours`).
        """
        if self.env is None:
            raise RuntimeError("adaptive routing needs an engine (DES mode)")
        best_path: Optional[List[LinkKey]] = None
        best_finish = float("inf")
        for order in ((0, 1, 2), (2, 1, 0)):
            path = self._dimension_order_path(src, dst, order)
            if self.failed_links and self._blocked(path):
                continue
            head = self.env.now
            finish = head
            for key in path:
                link = self.links[key]
                start = max(head, link._free_at)
                finish = start + link.latency + nbytes / link.bandwidth
                head = start + link.latency
            if finish < best_finish:
                best_finish = finish
                best_path = path
        if best_path is None:
            best_path = self._route_around(src, dst)
            if best_path is None:
                raise NoRouteError(src, dst, self.shape)
            self.detours += 1
        return best_path

    def route_links(self, src: Coord, dst: Coord) -> List[SerialLink]:
        """The SerialLink objects along the route (DES mode only)."""
        if self.env is None:
            raise RuntimeError("torus was built without an engine (analytic mode)")
        return [self.links[k] for k in self.route(src, dst)]

    # -- utilisation ------------------------------------------------------------
    def link_utilisation(self) -> Dict[LinkKey, float]:
        """Per-link utilisation fraction since simulation start.

        Failed links are excluded — they are no longer part of the
        topology; their historical traffic remains on the link objects.
        """
        failed = self.failed_links
        return {
            k: link.utilization()
            for k, link in self.links.items()
            if k not in failed
        }

    def hottest_links(self, n: int = 5) -> List[Tuple[LinkKey, float]]:
        """The ``n`` most-utilised links (contention diagnostics)."""
        u = self.link_utilisation()
        return sorted(u.items(), key=lambda kv: kv[1], reverse=True)[:n]
