"""The 3-D torus interconnect.

Both machine families route point-to-point traffic over a 3-D torus
(BG/P: embedded routers, 425 MB/s links; XT: SeaStar/SeaStar2).  The
model is link-level: every directed nearest-neighbour link is a
:class:`~repro.simengine.resources.SerialLink`, messages follow
deterministic dimension-order (X then Y then Z) routes with shortest
wrap-around direction per dimension, and contention arises naturally
when two messages share a directed link.

For analytic (non-DES) estimates the class also provides hop counts,
average/max distances, and bisection bandwidth — the quantities behind
the PTRANS and HALO discussions in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..machines.specs import TorusSpec
from ..simengine import Engine, SerialLink

__all__ = ["Torus3D", "Coord", "LinkKey"]

Coord = Tuple[int, int, int]
#: A directed link: (from_node, to_node) coordinates.
LinkKey = Tuple[Coord, Coord]


@dataclass(frozen=True)
class _Shape:
    x: int
    y: int
    z: int

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y
        yield self.z


class Torus3D:
    """A 3-D torus of nodes with directed, contended links.

    Parameters
    ----------
    shape:
        (X, Y, Z) node extents.  Extent 1 in a dimension means that
        dimension does not exist (no self-links are created).
    spec:
        Link bandwidth/latency parameters from the machine model.
    env:
        A simulation engine.  If omitted, the torus works in *analytic*
        mode only (routing and distance queries; no link objects).
    """

    def __init__(
        self,
        shape: Sequence[int],
        spec: TorusSpec,
        env: Optional[Engine] = None,
    ) -> None:
        if len(shape) != 3 or any(d < 1 for d in shape):
            raise ValueError(f"torus shape must be 3 positive extents, got {shape}")
        self.shape: Coord = (int(shape[0]), int(shape[1]), int(shape[2]))
        self.spec = spec
        self.env = env
        self.links: Dict[LinkKey, SerialLink] = {}
        if env is not None:
            self._build_links(env)

    # -- construction -----------------------------------------------------
    def _build_links(self, env: Engine) -> None:
        for node in self.nodes():
            for nbr in self.neighbors(node):
                key = (node, nbr)
                if key not in self.links:
                    self.links[key] = SerialLink(
                        env,
                        bandwidth=self.spec.link_bandwidth,
                        latency=self.spec.hop_latency,
                        name=f"{node}->{nbr}",
                    )

    # -- basic queries ------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        x, y, z = self.shape
        return x * y * z

    def nodes(self) -> Iterator[Coord]:
        X, Y, Z = self.shape
        for z in range(Z):
            for y in range(Y):
                for x in range(X):
                    yield (x, y, z)

    def contains(self, node: Coord) -> bool:
        return all(0 <= c < d for c, d in zip(node, self.shape))

    def neighbors(self, node: Coord) -> List[Coord]:
        """Nearest neighbours over torus wrap-around (up to 6)."""
        if not self.contains(node):
            raise ValueError(f"{node} outside torus {self.shape}")
        out: List[Coord] = []
        for dim in range(3):
            ext = self.shape[dim]
            if ext == 1:
                continue
            for step in (+1, -1):
                nbr = list(node)
                nbr[dim] = (nbr[dim] + step) % ext
                cand = tuple(nbr)
                if cand != node and cand not in out:
                    out.append(cand)  # type: ignore[arg-type]
        return out

    # -- distances ----------------------------------------------------------
    def hop_distance(self, a: Coord, b: Coord) -> int:
        """Minimal hops between two nodes (per-dimension shortest wrap)."""
        total = 0
        for dim in range(3):
            ext = self.shape[dim]
            d = abs(a[dim] - b[dim])
            total += min(d, ext - d)
        return total

    def average_distance(self) -> float:
        """Mean hop distance between distinct node pairs (closed form).

        For a ring of even extent k the mean one-dimension distance over
        all ordered pairs (including self) is k/4; for odd k it is
        (k*k - 1) / (4*k).  Dimensions are independent, so the torus
        mean is the sum over dimensions.
        """
        mean = 0.0
        for ext in self.shape:
            if ext == 1:
                continue
            if ext % 2 == 0:
                mean += ext / 4.0
            else:
                mean += (ext * ext - 1) / (4.0 * ext)
        return mean

    def max_distance(self) -> int:
        """Torus diameter in hops."""
        return sum(ext // 2 for ext in self.shape if ext > 1)

    def bisection_links(self) -> int:
        """Directed links crossing the worst-case bisection plane.

        Cutting the torus across its *largest* dimension severs
        ``2 * (other-dims product)`` bidirectional link bundles (the cut
        crosses the torus twice because of wrap-around), i.e. twice that
        many directed links per direction.
        """
        X, Y, Z = sorted(self.shape)
        # largest extent is Z after sorting; plane area = X*Y
        return 4 * X * Y  # 2 cuts x 2 directions x plane area

    def bisection_bandwidth(self) -> float:
        """Bytes/s crossing the bisection in one direction."""
        return self.bisection_links() / 2 * self.spec.link_bandwidth

    # -- routing --------------------------------------------------------------
    def route(
        self, src: Coord, dst: Coord, dim_order: Tuple[int, int, int] = (0, 1, 2)
    ) -> List[LinkKey]:
        """Dimension-order route with shortest wrap per dimension.

        ``dim_order`` selects the traversal order of the dimensions
        (default X, Y, Z — the deterministic route).
        """
        if not self.contains(src) or not self.contains(dst):
            raise ValueError(f"route endpoints outside torus {self.shape}")
        if sorted(dim_order) != [0, 1, 2]:
            raise ValueError(f"dim_order must permute (0, 1, 2), got {dim_order}")
        path: List[LinkKey] = []
        cur = list(src)
        for dim in dim_order:
            ext = self.shape[dim]
            if ext == 1:
                continue
            delta = (dst[dim] - cur[dim]) % ext
            if delta == 0:
                continue
            # choose the shorter wrap direction; ties go +
            step = +1 if delta <= ext - delta else -1
            hops = delta if step == +1 else ext - delta
            for _ in range(hops):
                nxt = list(cur)
                nxt[dim] = (nxt[dim] + step) % ext
                path.append((tuple(cur), tuple(nxt)))  # type: ignore[arg-type]
                cur = nxt
        assert tuple(cur) == tuple(dst)
        return path

    def route_adaptive(self, src: Coord, dst: Coord, nbytes: float) -> List[LinkKey]:
        """Pick the less-congested of the XYZ and ZYX dimension orders.

        BG/P's torus supports adaptive routing; this coarse model
        chooses, per message, whichever of the two canonical dimension
        orders would deliver the head earliest given current link
        bookings.  Requires DES mode (link objects).
        """
        if self.env is None:
            raise RuntimeError("adaptive routing needs an engine (DES mode)")
        best_path: Optional[List[LinkKey]] = None
        best_finish = float("inf")
        for order in ((0, 1, 2), (2, 1, 0)):
            path = self.route(src, dst, dim_order=order)
            head = self.env.now
            finish = head
            for key in path:
                link = self.links[key]
                start = max(head, link._free_at)
                finish = start + link.latency + nbytes / link.bandwidth
                head = start + link.latency
            if finish < best_finish:
                best_finish = finish
                best_path = path
        assert best_path is not None
        return best_path

    def route_links(self, src: Coord, dst: Coord) -> List[SerialLink]:
        """The SerialLink objects along the route (DES mode only)."""
        if self.env is None:
            raise RuntimeError("torus was built without an engine (analytic mode)")
        return [self.links[k] for k in self.route(src, dst)]

    # -- utilisation ------------------------------------------------------------
    def link_utilisation(self) -> Dict[LinkKey, float]:
        """Per-link utilisation fraction since simulation start."""
        return {k: link.utilization() for k, link in self.links.items()}

    def hottest_links(self, n: int = 5) -> List[Tuple[LinkKey, float]]:
        """The ``n`` most-utilised links (contention diagnostics)."""
        u = self.link_utilisation()
        return sorted(u.items(), key=lambda kv: kv[1], reverse=True)[:n]
